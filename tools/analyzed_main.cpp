// analyzed — the bound-serving daemon (docs/SERVING.md).
//
//   analyzed                           # serve the newline protocol on
//                                      # stdin/stdout; exits 0 on quit/EOF
//   analyzed --listen PORT             # serve TCP connections on
//                                      # 127.0.0.1:PORT, one at a time,
//                                      # until the process is killed
//   analyzed --once --listen PORT      # serve exactly one connection
//   analyzed --threads N               # max requests in flight (default 4)
//   analyzed --analysis-threads N      # subgraph-shard workers per
//                                      # analysis (default 1; 0 = all
//                                      # hardware threads)
//   analyzed --cache-entries N         # bound-cache capacity (default
//                                      # 4096 entries)
//   analyzed --cache-nodes N           # live interned-node budget for the
//                                      # cache (0 = unlimited)
//   analyzed --cache-file PATH         # append-only persistence: loaded at
//                                      # startup, appended on every store,
//                                      # so restarts begin warm
//   analyzed --timeout-ms N            # default per-request deadline
//                                      # (overridable per request)
//   analyzed --node-budget N           # default per-request live-node
//                                      # budget (overridable per request)
//   analyzed --optimizer NAME          # default numeric backend for the
//                                      # chi constant fits (nelder_mead,
//                                      # multistart, subplex; overridable
//                                      # per request with optimizer=NAME)
//
// The protocol and reply shapes are documented in docs/SERVING.md and
// src/service/server.hpp.  Results are bit-identical to analyze_tool with
// the same options — the cache serves the exact interned bound the
// derivation produced.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <streambuf>
#include <string>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bounds/opt/types.hpp"
#include "service/server.hpp"
#include "support/cancel.hpp"
#include "support/parse.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen PORT [--once]] [--threads N] "
               "[--analysis-threads N]\n"
               "       [--cache-entries N] [--cache-nodes N] "
               "[--cache-file PATH]\n"
               "       [--timeout-ms N] [--node-budget N] "
               "[--optimizer NAME]\n"
               "  serves the analyze/kernel/stats/cancel/quit protocol "
               "(docs/SERVING.md)\n"
               "  on stdin/stdout, or on 127.0.0.1:PORT with --listen\n",
               argv0);
  return soap::support::status_exit_code(
      soap::support::StatusCode::kInvalidInput);
}

/// Minimal bidirectional streambuf over a connected socket fd, so the
/// server's istream/ostream loop works unchanged under --listen.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type c) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return traits_type::not_eof(c);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

 private:
  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

int serve_listen(soap::service::Server& server, std::size_t port, bool once) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "analyzed: listening on 127.0.0.1:%zu\n", port);
  int rc = 0;
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      std::perror("accept");
      rc = 1;
      break;
    }
    {
      // Cache (and its stats) persist across connections — that is the
      // point of the daemon.
      FdStreamBuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      rc = server.serve(in, out);
    }
    ::close(conn);
    if (once) break;
  }
  ::close(listener);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soap;
  service::ServerOptions options;
  std::size_t listen_port = 0;
  bool once = false;
  std::size_t cache_entries = 4096;
  std::size_t cache_nodes = 0;
  std::string cache_file;
  std::string optimizer_name;
  struct SizeFlag {
    const char* name;
    std::size_t* out;
  };
  const SizeFlag size_flags[] = {
      {"listen", &listen_port},
      {"threads", &options.request_threads},
      {"analysis-threads", &options.analysis_threads},
      {"cache-entries", &cache_entries},
      {"cache-nodes", &cache_nodes},
      {"timeout-ms", &options.default_timeout_ms},
      {"node-budget", &options.default_node_budget},
  };
  std::string flag_error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
      continue;
    }
    switch (support::consume_string_flag(argc, argv, i, "cache-file",
                                         cache_file, &flag_error)) {
      case support::FlagParse::kOk:
        continue;
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --cache-file: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    switch (support::consume_string_flag(argc, argv, i, "optimizer",
                                         optimizer_name, &flag_error)) {
      case support::FlagParse::kOk: {
        std::string reason;
        options.optimizer =
            soap::bounds::opt::parse_backend_name(optimizer_name, &reason);
        if (!options.optimizer) {
          std::fprintf(stderr, "invalid value for --optimizer: %s\n",
                       reason.c_str());
          return usage(argv[0]);
        }
        continue;
      }
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --optimizer: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    bool matched = false;
    for (const SizeFlag& flag : size_flags) {
      switch (support::consume_size_flag(argc, argv, i, flag.name, *flag.out,
                                         &flag_error)) {
        case support::FlagParse::kOk:
          matched = true;
          break;
        case support::FlagParse::kBadValue:
          std::fprintf(stderr, "invalid value for --%s: %s\n", flag.name,
                       flag_error.c_str());
          return usage(argv[0]);
        case support::FlagParse::kNoMatch:
          break;
      }
      if (matched) break;
    }
    if (matched) continue;
    std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
    return usage(argv[0]);
  }
  if (once && listen_port == 0) {
    std::fprintf(stderr, "--once requires --listen PORT\n");
    return usage(argv[0]);
  }
  options.cache.max_entries = cache_entries;
  options.cache.max_live_nodes = cache_nodes;
  options.cache.persist_path = cache_file;

  service::Server server(options);
  if (listen_port != 0) return serve_listen(server, listen_port, once);
  return server.serve(std::cin, std::cout);
}
