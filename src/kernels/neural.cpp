// Deep-learning workloads of Table 2: direct convolution, softmax, MLP,
// LeNet-5, BERT encoder.
#include "kernels/table2.hpp"

#include "frontend/lower.hpp"

namespace soap::kernels {

namespace {

using sym::Expr;

Expr sy(const char* n) { return Expr::symbol(n); }
Expr S() { return Expr::symbol("S"); }

sdg::SdgOptions singleton() {
  sdg::SdgOptions o;
  o.max_subgraph_size = 1;
  return o;
}

}  // namespace

std::vector<KernelEntry> neural_kernels() {
  std::vector<KernelEntry> v;
  Expr B = sy("B"), Cin = sy("Cin"), Cout = sy("Cout");
  Expr Hout = sy("Hout"), Wout = sy("Wout"), Hker = sy("Hker"),
       Wker = sy("Wker");

  {
    // Direct convolution, Example 6 / Section 5.3.  The sigma >= kernel-size
    // case (1): the image access is injective and the bound matches the
    // paper's 2 Cin Cout Hout Wout Hker Wker B / sqrt(S) (8x over Zhang et
    // al.).  bench_table2_nn additionally reports the sigma = 1 maximal-
    // overlap case (2) with its conditional intensity, mirroring Example 6.
    KernelEntry k;
    k.name = "conv";
    k.family = "neural";
    set_dsl_source(k, R"(
for b in range(B):
  for c in range(Cin):
    for k in range(Cout):
      for h in range(Hout):
        for w in range(Wout):
          for r in range(Hker):
            for s in range(Wker):
              Out[k,h,w,b] += Img[r + 7*h, s + 7*w, c, b] * F[k,r,s,c]
)");
    Expr bound = Expr(2) * B * Cin * Cout * Hout * Wout * Hker * Wker /
                 sym::sqrt(S());
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "Cin Cout Hout Wout Hker Wker B/(4 sqrt(S)) (Zhang et al.)";
    k.improvement = "8";
    k.notes =
        "case (1) of Example 6 (stride >= kernel extent, injective); the "
        "sigma=1 case is reported as a conditional bound by the bench";
    v.push_back(std::move(k));
  }

  {
    // Softmax: four streaming passes over the B x H x M x N tensor
    // (row max, shifted exp, row sum, normalize).
    KernelEntry k;
    k.name = "softmax";
    k.family = "neural";
    set_dsl_source(k, R"(
for b in range(B):
  for h in range(H):
    for m in range(M):
      for n in range(N):
        mx[b,h,m] = max(mx[b,h,m], x[b,h,m,n])
for b in range(B):
  for h in range(H):
    for m in range(M):
      for n in range(N):
        e[b,h,m,n] = exp(x[b,h,m,n] - mx[b,h,m])
for b in range(B):
  for h in range(H):
    for m in range(M):
      for n in range(N):
        sm[b,h,m] += e[b,h,m,n]
for b in range(B):
  for h in range(H):
    for m in range(M):
      for n in range(N):
        out[b,h,m,n] = e[b,h,m,n] / sm[b,h,m]
)");
    Expr bound = Expr(4) * sy("B") * sy("H") * sy("M") * sy("N");
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (first bound)";
    k.improvement = "-";
    k.options = singleton();
    k.notes =
        "per-pass accounting as published; an online-softmax fusion "
        "(recomputation) would lower the achievable I/O, see EXPERIMENTS.md";
    v.push_back(std::move(k));
  }

  {
    // MLP: three dense layers  inp -> fc1 -> fc2 -> out over batch Nb.
    KernelEntry k;
    k.name = "mlp";
    k.family = "neural";
    set_dsl_source(k, R"(
for n in range(Nb):
  for j in range(F1):
    for k in range(Inp):
      h1[n,j] += x[n,k] * W1[k,j]
for n in range(Nb):
  for j in range(F2):
    for k in range(F1):
      h2[n,j] += h1[n,k] * W2[k,j]
for n in range(Nb):
  for j in range(Outd):
    for k in range(F2):
      o[n,j] += h2[n,k] * W3[k,j]
)");
    Expr Nb = sy("Nb"), F1 = sy("F1"), F2 = sy("F2"), Inp = sy("Inp"),
         Outd = sy("Outd");
    Expr bound =
        Expr(2) * Nb * (F1 * F2 + F1 * Inp + F2 * Outd) / sym::sqrt(S());
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (first bound)";
    k.improvement = "-";
    v.push_back(std::move(k));
  }

  {
    // LeNet-5: the I/O-dominant first convolution (6 output channels, 5x5
    // kernels) over a C x H x W x N input batch gives 2*6*25 = 300 CHNW /
    // sqrt(S); the paper's published constant carries an extra sqrt(2) from
    // its pooling-stride sub-case analysis (EXPERIMENTS.md).
    KernelEntry k;
    k.name = "lenet5";
    k.family = "neural";
    set_dsl_source(k, R"(
for n in range(N):
  for c in range(C):
    for k in range(6):
      for h in range(H):
        for w in range(W):
          for r in range(5):
            for s in range(5):
              Out[k,h,w,n] += Img[r + 5*h, s + 5*w, c, n] * F[k,r,s,c]
)");
    Expr C = sy("C"), H = sy("H"), N = sy("N"), W = sy("W");
    k.paper_bound = Expr(300) * sym::sqrt(Expr(2)) * C * H * N * W /
                    sym::sqrt(S());
    k.expected_bound = Expr(300) * C * H * N * W / sym::sqrt(S());
    k.sota = "- (first bound)";
    k.improvement = "-";
    k.options = singleton();
    k.notes = "dominant conv layer; constant factor sqrt(2) below the paper";
    v.push_back(std::move(k));
  }

  {
    // BERT encoder: four E x E projections (E = H*P) plus the two L x L x P
    // attention contractions per head; summing the per-matmul bounds gives
    // exactly the paper's 4 B H P L (L + 2 H P) / sqrt(S) with E = H P.
    KernelEntry k;
    k.name = "bert_encoder";
    k.family = "neural";
    set_dsl_source(k, R"(
for b in range(B):
  for l in range(L):
    for h in range(H):
      for p in range(P):
        for e in range(E):
          Qh[b,l,h,p] += X[b,l,e] * WQ[e,h,p]
for b in range(B):
  for l in range(L):
    for h in range(H):
      for p in range(P):
        for e in range(E):
          Kh[b,l,h,p] += X[b,l,e] * WK[e,h,p]
for b in range(B):
  for l in range(L):
    for h in range(H):
      for p in range(P):
        for e in range(E):
          Vh[b,l,h,p] += X[b,l,e] * WV[e,h,p]
for b in range(B):
  for h in range(H):
    for i in range(L):
      for j in range(L):
        for p in range(P):
          Att[b,h,i,j] += Qh[b,i,h,p] * Kh[b,j,h,p]
for b in range(B):
  for h in range(H):
    for i in range(L):
      for j in range(L):
        for p in range(P):
          Ctx[b,i,h,p] += Att[b,h,i,j] * Vh[b,j,h,p]
for b in range(B):
  for l in range(L):
    for h in range(H):
      for p in range(P):
        for e in range(E):
          O[b,l,e] += Ctx[b,l,h,p] * WO[e,h,p]
)");
    Expr Bb = sy("B"), H = sy("H"), P = sy("P"), L = sy("L"), E = sy("E");
    Expr bound = (Expr(4) * Bb * H * P * L * L +
                  Expr(8) * Bb * L * H * P * E) /
                 sym::sqrt(S());
    k.paper_bound = bound;  // with E = H*P this is 4 B H P L (L + 2 H P)
    k.expected_bound = bound;
    k.sota = "- (first bound)";
    k.improvement = "-";
    k.options = singleton();
    k.notes =
        "E denotes the model width H*P (reshapes are free); per-layer "
        "accounting as published — cross-layer fusion with recomputation "
        "(flash-attention style) would lower the bound, see EXPERIMENTS.md";
    v.push_back(std::move(k));
  }

  return v;
}

void force_link_neural_family() {}

namespace {
const FamilyRegistrar neural_registrar{"neural", 1, &neural_kernels};
}  // namespace

}  // namespace soap::kernels
