// The attention family: post-paper workloads defined through the frontend
// DSL and registered with the corpus registry.  Three variants of
// scaled-dot-product attention over a batch B of sequences of length L:
//
//   * attention       — single-head softmax attention with the standard
//                       four-pass softmax, per-statement accounting (the
//                       published per-operator style of the neural block);
//   * mqa             — multi-query attention: H query heads share one
//                       K/V head, the memory-bound regime of inference
//                       decoders;
//   * flash_attention — the same math with fused-subgraph accounting and
//                       the cold bound, the recomputation argument behind
//                       flash-style kernels: the softmax intermediates are
//                       recomputable inside a tile, so only the matmul
//                       terms survive at leading order.
//
// Each entry records its closed-form expected leading-order bound, pinned
// by the golden tests (tests/support/table2_golden.cpp).
#include "kernels/table2.hpp"

namespace soap::kernels {

namespace {

using sym::Expr;

Expr sy(const char* n) { return Expr::symbol(n); }
Expr S() { return Expr::symbol("S"); }

sdg::SdgOptions singleton() {
  sdg::SdgOptions o;
  o.max_subgraph_size = 1;
  return o;
}

}  // namespace

std::vector<KernelEntry> attention_kernels() {
  std::vector<KernelEntry> v;
  Expr B = sy("B"), L = sy("L"), D = sy("D"), H = sy("H"), P = sy("P");

  {
    // Single-head softmax attention: the two L x L x D contractions
    // (scores, context) dominate; the four softmax passes contribute
    // Theta(B L^2), one polynomial degree below, and drop out of the
    // leading term.  Per-statement accounting, matching the published
    // per-operator style of softmax / bert_encoder.
    KernelEntry k;
    k.name = "attention";
    k.family = "attention";
    set_dsl_source(k, R"(
for b in range(B):
  for i in range(L):
    for j in range(L):
      for d in range(D):
        Sc[b,i,j] += Qm[b,i,d] * Km[b,j,d]
for b in range(B):
  for i in range(L):
    for j in range(L):
      mx[b,i] = max(mx[b,i], Sc[b,i,j])
for b in range(B):
  for i in range(L):
    for j in range(L):
      P[b,i,j] = exp(Sc[b,i,j] - mx[b,i])
for b in range(B):
  for i in range(L):
    for j in range(L):
      sm[b,i] += P[b,i,j]
for b in range(B):
  for i in range(L):
    for j in range(L):
      for d in range(D):
        Acc[b,i,d] += P[b,i,j] * Vm[b,j,d]
for b in range(B):
  for i in range(L):
    for d in range(D):
      O[b,i,d] = Acc[b,i,d] / sm[b,i]
)");
    Expr bound = Expr(4) * B * L * L * D / sym::sqrt(S());
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (not in the paper's corpus)";
    k.improvement = "-";
    k.options = singleton();
    k.notes =
        "scores + context contractions at 2 B L^2 D/sqrt(S) each; the four "
        "softmax passes are Theta(B L^2), below leading order";
    v.push_back(std::move(k));
  }

  {
    // Multi-query attention: H query heads, one shared key/value head.
    // The per-head contractions still meet the matmul intensity sqrt(S),
    // so sharing K/V changes the streamed-operand footprint (B L P instead
    // of B H L P), not the leading term.
    KernelEntry k;
    k.name = "mqa";
    k.family = "attention";
    set_dsl_source(k, R"(
for b in range(B):
  for h in range(H):
    for i in range(L):
      for j in range(L):
        for p in range(P):
          Sc[b,h,i,j] += Qh[b,h,i,p] * Ksh[b,j,p]
for b in range(B):
  for h in range(H):
    for i in range(L):
      for j in range(L):
        for p in range(P):
          Ctx[b,h,i,p] += Sc[b,h,i,j] * Vsh[b,j,p]
)");
    Expr bound = Expr(4) * B * H * L * L * P / sym::sqrt(S());
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (not in the paper's corpus)";
    k.improvement = "-";
    k.options = singleton();
    k.notes =
        "shared K/V head: the gather footprint shrinks H-fold but the "
        "score/context contractions keep the 4 B H L^2 P/sqrt(S) term";
    v.push_back(std::move(k));
  }

  {
    // Flash-style fused attention: identical math to `attention`, analyzed
    // with fused subgraphs and the cold bound — the engine's version of
    // the online-softmax recomputation argument.  The softmax
    // intermediates (mx, P, sm) merge into the contraction subgraphs and
    // stop contributing standalone passes; the surviving leading term is
    // the two contractions' 4 B L^2 D/sqrt(S).
    KernelEntry k;
    k.name = "flash_attention";
    k.family = "attention";
    set_dsl_source(k, R"(
for b in range(B):
  for i in range(L):
    for j in range(L):
      for d in range(D):
        Sc[b,i,j] += Qm[b,i,d] * Km[b,j,d]
for b in range(B):
  for i in range(L):
    for j in range(L):
      mx[b,i] = max(mx[b,i], Sc[b,i,j])
for b in range(B):
  for i in range(L):
    for j in range(L):
      P[b,i,j] = exp(Sc[b,i,j] - mx[b,i])
for b in range(B):
  for i in range(L):
    for j in range(L):
      sm[b,i] += P[b,i,j]
for b in range(B):
  for i in range(L):
    for j in range(L):
      for d in range(D):
        Acc[b,i,d] += P[b,i,j] * Vm[b,j,d]
for b in range(B):
  for i in range(L):
    for d in range(D):
      O[b,i,d] = Acc[b,i,d] / sm[b,i]
)");
    Expr bound = Expr(4) * B * L * L * D / sym::sqrt(S());
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "4 B L^2 D/sqrt(S) + 4 B L^2 (unfused per-pass accounting)";
    k.improvement = "-";
    k.options.use_cold_bound = true;
    k.notes =
        "fused-subgraph accounting (max_subgraph_size 4, cold bound): the "
        "softmax passes fuse away, mirroring the flash-attention "
        "recomputation argument the bert_encoder notes point at";
    v.push_back(std::move(k));
  }

  return v;
}

void force_link_attention_family() {}

namespace {
const FamilyRegistrar attention_registrar{"attention", 3,
                                          &attention_kernels};
}  // namespace

}  // namespace soap::kernels
