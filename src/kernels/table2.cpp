#include "kernels/table2.hpp"

#include <stdexcept>

namespace soap::kernels {

const std::vector<KernelEntry>& table2_kernels() {
  static const std::vector<KernelEntry> all = [] {
    std::vector<KernelEntry> v = polybench_kernels();
    for (auto& k : neural_kernels()) v.push_back(std::move(k));
    for (auto& k : various_kernels()) v.push_back(std::move(k));
    return v;
  }();
  return all;
}

sym::Expr analyze_kernel(const KernelEntry& entry) {
  Program program = entry.build();
  auto bound = sdg::multi_statement_bound(program, entry.options);
  if (!bound) {
    throw std::runtime_error("analyze_kernel: no bound for " + entry.name);
  }
  return bound->Q_leading;
}

const KernelEntry& kernel_by_name(const std::string& name) {
  for (const KernelEntry& k : table2_kernels()) {
    if (k.name == name) return k;
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace soap::kernels
