#include "kernels/table2.hpp"

#include <stdexcept>

#include "support/parallel.hpp"

namespace soap::kernels {

std::vector<const KernelEntry*> table2_kernels() {
  // The published blocks, in published order; registry family ranks 0..2
  // keep this stable no matter how many families register after them.
  std::vector<const KernelEntry*> rows;
  const Registry& registry = Registry::instance();
  for (const char* family : {"polybench", "neural", "various"}) {
    for (const KernelEntry* k : registry.family(family)) rows.push_back(k);
  }
  return rows;
}

sym::Expr analyze_kernel(const KernelEntry& entry) {
  return analyze_kernel(entry, entry.options.threads);
}

sym::Expr analyze_kernel(const KernelEntry& entry, std::size_t threads,
                         support::ExecutorRef executor) {
  Program program = entry.build();
  sdg::SdgOptions options = entry.options;
  options.threads = threads;
  options.executor = executor;
  auto bound = sdg::multi_statement_bound(program, options);
  if (!bound) {
    throw std::runtime_error("analyze_kernel: no bound for " + entry.name);
  }
  return bound->Q_leading;
}

std::vector<sym::Expr> analyze_corpus(std::size_t threads,
                                      support::ExecutorRef executor) {
  std::vector<const KernelEntry*> all;
  for (const KernelEntry& k : Registry::instance().kernels()) {
    all.push_back(&k);
  }
  return analyze_corpus(all, threads, executor);
}

std::vector<sym::Expr> analyze_corpus(
    const std::vector<const KernelEntry*>& kernels, std::size_t threads,
    support::ExecutorRef executor) {
  support::ParallelOptions par;
  par.threads = threads;
  par.executor = executor;
  // Kernels are claimed concurrently, and each kernel's inner analysis
  // pipeline shards its subgraphs across the same executor with the same
  // budget.  While many kernels are in flight the executor is saturated
  // either way; once only a long kernel remains, its subgraph shards fan
  // out over the now-idle workers.  Caller participation at both levels
  // means a starved executor degrades to serial instead of deadlocking,
  // and per-kernel determinism makes the nesting invisible in the output.
  return support::parallel_map<sym::Expr>(
      kernels.size(), par, [&kernels, threads, executor](std::size_t i) {
        return analyze_kernel(*kernels[i], threads, executor);
      });
}

const KernelEntry& kernel_by_name(const std::string& name) {
  return Registry::instance().at(name);
}

}  // namespace soap::kernels
