#include "kernels/table2.hpp"

#include <stdexcept>

#include "support/parallel.hpp"

namespace soap::kernels {

std::vector<const KernelEntry*> table2_kernels() {
  // The published blocks, in published order; registry family ranks 0..2
  // keep this stable no matter how many families register after them.
  std::vector<const KernelEntry*> rows;
  const Registry& registry = Registry::instance();
  for (const char* family : {"polybench", "neural", "various"}) {
    for (const KernelEntry* k : registry.family(family)) rows.push_back(k);
  }
  return rows;
}

sym::Expr analyze_kernel(const KernelEntry& entry) {
  return analyze_kernel(entry, entry.options.threads);
}

sym::Expr analyze_kernel(const KernelEntry& entry, std::size_t threads,
                         support::ExecutorRef executor,
                         std::optional<bounds::opt::BackendKind> optimizer) {
  Program program = entry.build();
  sdg::SdgOptions options = entry.options;
  options.threads = threads;
  options.executor = executor;
  if (optimizer) options.optimizer = *optimizer;
  auto bound = sdg::multi_statement_bound(program, options);
  if (!bound) {
    throw std::runtime_error("analyze_kernel: no bound for " + entry.name);
  }
  return bound->Q_leading;
}

std::vector<sym::Expr> analyze_corpus(std::size_t threads,
                                      support::ExecutorRef executor) {
  std::vector<const KernelEntry*> all;
  for (const KernelEntry& k : Registry::instance().kernels()) {
    all.push_back(&k);
  }
  return analyze_corpus(all, threads, executor);
}

std::vector<sym::Expr> analyze_corpus(
    const std::vector<const KernelEntry*>& kernels, std::size_t threads,
    support::ExecutorRef executor,
    std::optional<bounds::opt::BackendKind> optimizer) {
  support::ParallelOptions par;
  par.threads = threads;
  par.executor = executor;
  // Kernels are claimed concurrently, and each kernel's inner analysis
  // pipeline shards its subgraphs across the same executor with the same
  // budget.  While many kernels are in flight the executor is saturated
  // either way; once only a long kernel remains, its subgraph shards fan
  // out over the now-idle workers.  Caller participation at both levels
  // means a starved executor degrades to serial instead of deadlocking,
  // and per-kernel determinism makes the nesting invisible in the output.
  return support::parallel_map<sym::Expr>(
      kernels.size(), par,
      [&kernels, threads, executor, optimizer](std::size_t i) {
        return analyze_kernel(*kernels[i], threads, executor, optimizer);
      });
}

const KernelEntry& kernel_by_name(const std::string& name) {
  return Registry::instance().at(name);
}

std::size_t CorpusReport::failed() const {
  std::size_t n = 0;
  for (const KernelOutcome& k : kernels) n += k.ok() ? 0 : 1;
  return n;
}

std::size_t CorpusReport::degraded_count() const {
  std::size_t n = 0;
  for (const KernelOutcome& k : kernels) n += k.degraded ? 1 : 0;
  return n;
}

support::StatusCode CorpusReport::worst_status() const {
  for (const KernelOutcome& k : kernels) {
    if (k.status != support::StatusCode::kOk) return k.status;
  }
  return support::StatusCode::kOk;
}

std::string CorpusReport::failure_summary() const {
  const std::size_t nfailed = failed();
  const std::size_t ndegraded = degraded_count();
  if (nfailed == 0 && ndegraded == 0) return "";
  std::string out;
  for (const KernelOutcome& k : kernels) {
    if (k.ok() && !k.degraded) continue;
    out += "  " + k.kernel + " [" +
           support::status_code_name(k.status) + "]" +
           (k.degraded ? " degraded to per-statement bound" : " failed");
    if (!k.message.empty()) out += ": " + k.message;
    out += "\n";
  }
  out += std::to_string(kernels.size() - nfailed) + "/" +
         std::to_string(kernels.size()) + " kernels produced bounds (" +
         std::to_string(ndegraded) + " degraded, " +
         std::to_string(nfailed) + " failed)\n";
  return out;
}

KernelOutcome analyze_kernel_checked(
    const KernelEntry& entry, std::size_t threads,
    support::ExecutorRef executor, const support::StopCriteria& stop,
    std::optional<bounds::opt::BackendKind> optimizer) {
  KernelOutcome out;
  out.kernel = entry.name;
  out.family = entry.family;
  try {
    Program program = entry.build();
    sdg::SdgOptions options = entry.options;
    options.threads = threads;
    options.executor = executor;
    options.stop = stop;
    if (optimizer) options.optimizer = *optimizer;
    auto bound = sdg::multi_statement_bound(program, options);
    if (!bound) {
      out.status = support::StatusCode::kInvalidInput;
      out.message = "no non-trivial bound (unlimited reuse)";
      return out;
    }
    out.bound = bound->Q_leading;
    out.degraded = bound->degraded;
    // A degraded row keeps its bound but reports which criterion tripped.
    out.status = bound->degraded ? bound->degraded_reason
                                 : support::StatusCode::kOk;
  } catch (const support::AnalysisError& error) {
    out.status = error.code();
    out.message = error.what();
  } catch (const std::exception& error) {
    out.status = support::StatusCode::kInternalError;
    out.message = error.what();
  }
  return out;
}

CorpusReport analyze_corpus_resilient(
    const std::vector<const KernelEntry*>& kernels,
    const CorpusOptions& options) {
  support::ParallelOptions par;
  par.threads = options.threads;
  par.executor = options.executor;
  // Deliberately no par.cancel: cancellation must not abort the batch —
  // each kernel observes the token itself and records kCancelled in its own
  // slot, preserving the partial results the resilient contract promises.
  CorpusReport report;
  report.kernels = support::parallel_map<KernelOutcome>(
      kernels.size(), par, [&kernels, &options](std::size_t i) {
        return analyze_kernel_checked(*kernels[i], options.threads,
                                      options.executor, options.stop,
                                      options.optimizer);
      });
  return report;
}

}  // namespace soap::kernels
