#include "kernels/table2.hpp"

#include <stdexcept>

#include "support/parallel.hpp"

namespace soap::kernels {

const std::vector<KernelEntry>& table2_kernels() {
  static const std::vector<KernelEntry> all = [] {
    std::vector<KernelEntry> v = polybench_kernels();
    for (auto& k : neural_kernels()) v.push_back(std::move(k));
    for (auto& k : various_kernels()) v.push_back(std::move(k));
    return v;
  }();
  return all;
}

sym::Expr analyze_kernel(const KernelEntry& entry) {
  return analyze_kernel(entry, entry.options.threads);
}

sym::Expr analyze_kernel(const KernelEntry& entry, std::size_t threads,
                         support::ExecutorRef executor) {
  Program program = entry.build();
  sdg::SdgOptions options = entry.options;
  options.threads = threads;
  options.executor = executor;
  auto bound = sdg::multi_statement_bound(program, options);
  if (!bound) {
    throw std::runtime_error("analyze_kernel: no bound for " + entry.name);
  }
  return bound->Q_leading;
}

std::vector<sym::Expr> analyze_corpus(std::size_t threads,
                                      support::ExecutorRef executor) {
  const std::vector<KernelEntry>& kernels = table2_kernels();
  support::ParallelOptions par;
  par.threads = threads;
  par.executor = executor;
  // Kernels are claimed concurrently, and each kernel's inner analysis
  // pipeline shards its subgraphs across the same executor with the same
  // budget.  While many kernels are in flight the executor is saturated
  // either way; once only a long kernel remains, its subgraph shards fan
  // out over the now-idle workers.  Caller participation at both levels
  // means a starved executor degrades to serial instead of deadlocking,
  // and per-kernel determinism makes the nesting invisible in the output.
  return support::parallel_map<sym::Expr>(
      kernels.size(), par, [&kernels, threads, executor](std::size_t i) {
        return analyze_kernel(kernels[i], threads, executor);
      });
}

const KernelEntry& kernel_by_name(const std::string& name) {
  for (const KernelEntry& k : table2_kernels()) {
    if (k.name == name) return k;
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace soap::kernels
