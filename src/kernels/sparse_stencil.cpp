// The sparse_stencil family: post-paper workloads whose access patterns
// leave the pure affine world, defined through the frontend DSL and
// registered with the corpus registry.
//
//   * spmv_csr      — CSR sparse matrix-vector product in the uniform-row
//                     model (M rows, K stored entries per row).  The
//                     gather `x[colind[i,k]]` is a data-dependent
//                     subscript: the frontend collapses it to a single
//                     representative location (sound for lower bounds — an
//                     adversarial column index stream can hit one element)
//                     and charges the index array `colind` in full, so the
//                     mandatory traffic is the two streamed nnz-sized
//                     arrays: 2 M K.
//   * stencil_sweep — a two-stage jacobi-2d-style sweep (two chained
//                     5-point stars) analyzed with fused subgraphs and the
//                     cold bound: the intermediate field is recomputable
//                     inside a tile, so only the input and output fields
//                     are charged — the same recomputation argument as the
//                     COSMO horizontal diffusion row.
//
// Each entry records its closed-form expected leading-order bound, pinned
// by the golden tests (tests/support/table2_golden.cpp).
#include "kernels/table2.hpp"

namespace soap::kernels {

namespace {

using sym::Expr;

Expr sy(const char* n) { return Expr::symbol(n); }

}  // namespace

std::vector<KernelEntry> sparse_stencil_kernels() {
  std::vector<KernelEntry> v;
  Expr M = sy("M"), K = sy("K"), N = sy("N");

  {
    KernelEntry k;
    k.name = "spmv_csr";
    k.family = "sparse_stencil";
    set_dsl_source(k, R"(
for i in range(M):
  for k in range(K):
    y[i] += val[i,k] * x[colind[i,k]]
)");
    Expr bound = Expr(2) * M * K;
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (outside the polyhedral model)";
    k.improvement = "-";
    k.options.use_cold_bound = true;
    k.notes =
        "uniform-row CSR model (nnz = M K); val and colind stream once "
        "with no reuse, the data-dependent x gather is collapsed to the "
        "adversarial single-element case; the row-pointer array adds a "
        "lower-order M + 1";
    v.push_back(std::move(k));
  }

  {
    KernelEntry k;
    k.name = "stencil_sweep";
    k.family = "sparse_stencil";
    set_dsl_source(k, R"(
for i in range(1, N - 1):
  for j in range(1, N - 1):
    tmp[i,j] = inp[i-1,j] + inp[i+1,j] + inp[i,j-1] + inp[i,j+1] + inp[i,j]
for i in range(1, N - 1):
  for j in range(1, N - 1):
    outp[i,j] = tmp[i-1,j] + tmp[i+1,j] + tmp[i,j-1] + tmp[i,j+1] + tmp[i,j]
)");
    Expr bound = Expr(2) * N * N;
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "4 N^2 (per-pass accounting of the two sweeps)";
    k.improvement = "2";
    k.options.use_cold_bound = true;
    k.notes =
        "two chained 5-point stars: tmp is recomputable inside a fused "
        "tile, so only inp and outp are charged (cold bound), the "
        "horizontal-diffusion recomputation argument on a jacobi-2d shape";
    v.push_back(std::move(k));
  }

  return v;
}

void force_link_sparse_stencil_family() {}

namespace {
const FamilyRegistrar sparse_stencil_registrar{"sparse_stencil", 4,
                                               &sparse_stencil_kernels};
}  // namespace

}  // namespace soap::kernels
