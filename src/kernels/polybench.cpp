// SOAP encodings of the 30 Polybench kernels (Table 2, upper block).
//
// Each kernel is given as loop-nest source (parsed by the frontend) focused
// on its I/O-dominant statements — exactly the projection the paper's tool
// derives before the symbolic stage.  `paper_bound` is the Table 2 row;
// `expected_bound` is what this implementation derives (equal in all but the
// few documented cases, see EXPERIMENTS.md).
#include "kernels/table2.hpp"

#include "frontend/lower.hpp"

namespace soap::kernels {

namespace {

using sym::Expr;

Expr sy(const char* n) { return Expr::symbol(n); }
Expr S() { return Expr::symbol("S"); }

KernelEntry src(std::string name, std::string source, Expr paper,
                Expr expected, std::string sota, std::string improvement,
                sdg::SdgOptions options = {}, std::string notes = "") {
  KernelEntry k;
  k.name = std::move(name);
  k.family = "polybench";
  set_dsl_source(k, std::move(source));
  k.paper_bound = std::move(paper);
  k.expected_bound = std::move(expected);
  k.sota = std::move(sota);
  k.improvement = std::move(improvement);
  k.options = options;
  k.notes = std::move(notes);
  return k;
}

sdg::SdgOptions singleton() {
  sdg::SdgOptions o;
  o.max_subgraph_size = 1;
  return o;
}

}  // namespace

std::vector<KernelEntry> polybench_kernels() {
  std::vector<KernelEntry> v;
  Expr N = sy("N"), M = sy("M"), T = sy("T");

  // --- dense linear algebra -------------------------------------------------
  v.push_back(src("gemm", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)",
                  Expr(2) * N * N * N / sym::sqrt(S()),
                  Expr(2) * N * N * N / sym::sqrt(S()), "2N^3/sqrt(S)", "1"));

  v.push_back(src("2mm", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      tmp[i,j] += A[i,k] * B[k,j]
for i in range(N):
  for j in range(N):
    for k in range(N):
      D[i,j] += tmp[i,k] * C[k,j]
)",
                  Expr(4) * N * N * N / sym::sqrt(S()),
                  Expr(4) * N * N * N / sym::sqrt(S()), "4N^3/sqrt(S)", "1"));

  v.push_back(src("3mm", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      E[i,j] += A[i,k] * B[k,j]
for i in range(N):
  for j in range(N):
    for k in range(N):
      F[i,j] += C[i,k] * D[k,j]
for i in range(N):
  for j in range(N):
    for k in range(N):
      G[i,j] += E[i,k] * F[k,j]
)",
                  Expr(6) * N * N * N / sym::sqrt(S()),
                  Expr(6) * N * N * N / sym::sqrt(S()), "6N^3/sqrt(S)", "1"));

  v.push_back(src("lu", R"(
for k in range(N):
  for i in range(k + 1, N):
    for j in range(k + 1, N):
      A[i,j] = A[i,j] - A[i,k] * A[k,j] / A[k,k]
)",
                  Expr(2) * N * N * N / (Expr(3) * sym::sqrt(S())),
                  Expr(2) * N * N * N / (Expr(3) * sym::sqrt(S())),
                  "2N^3/(3 sqrt(S))", "1",
                  {}, "trailing update dominates; Section 5.1/5.2 projections"));

  v.push_back(src("ludcmp", R"(
for k in range(N):
  for i in range(k + 1, N):
    for j in range(k + 1, N):
      A[i,j] = A[i,j] - A[i,k] * A[k,j] / A[k,k]
)",
                  Expr(2) * N * N * N / (Expr(3) * sym::sqrt(S())),
                  Expr(2) * N * N * N / (Expr(3) * sym::sqrt(S())),
                  "2N^3/(3 sqrt(S))", "1", {},
                  "same dominant statement as lu"));

  v.push_back(src("cholesky", R"(
for i in range(N):
  for j in range(i):
    for k in range(j):
      A[i,j] = A[i,j] - A[i,k] * A[j,k]
)",
                  N * N * N / (Expr(3) * sym::sqrt(S())),
                  N * N * N / (Expr(3) * sym::sqrt(S())), "N^3/(6 sqrt(S))",
                  "2", {}, "paper improves the prior bound by 2x"));

  v.push_back(src("correlation", R"(
for i in range(M):
  for j in range(i, M):
    for k in range(N):
      corr[i,j] += data[k,i] * data[k,j]
)",
                  M * M * N / sym::sqrt(S()), M * M * N / sym::sqrt(S()),
                  "M^2 N/(2 sqrt(S))", "2"));

  v.push_back(src("covariance", R"(
for i in range(M):
  for j in range(i, M):
    for k in range(N):
      cov[i,j] += data[k,i] * data[k,j]
)",
                  M * M * N / sym::sqrt(S()), M * M * N / sym::sqrt(S()),
                  "M^2 N/(2 sqrt(S))", "2"));

  v.push_back(src("syrk", R"(
for i in range(N):
  for j in range(i):
    for k in range(M):
      C[i,j] += A[i,k] * A[j,k]
)",
                  M * N * N / sym::sqrt(S()), M * N * N / sym::sqrt(S()),
                  "M N^2/(2 sqrt(S))", "2"));

  v.push_back(src("syr2k", R"(
for i in range(N):
  for j in range(i):
    for k in range(M):
      C[i,j] += A[i,k] * B[j,k] + B[i,k] * A[j,k]
)",
                  Expr(2) * M * N * N / sym::sqrt(S()),
                  Expr(2) * M * N * N / sym::sqrt(S()), "M N^2/sqrt(S)", "2"));

  v.push_back(src("symm", R"(
for i in range(M):
  for j in range(N):
    for k in range(M):
      C[i,j] += A[i,k] * B[k,j]
)",
                  Expr(2) * M * M * N / sym::sqrt(S()),
                  Expr(2) * M * M * N / sym::sqrt(S()), "2M^2 N/sqrt(S)",
                  "1"));

  v.push_back(src("trmm", R"(
for i in range(M):
  for j in range(N):
    for k in range(i + 1, M):
      B[i,j] += A[k,i] * B[k,j]
)",
                  M * M * N / sym::sqrt(S()), M * M * N / sym::sqrt(S()),
                  "M^2 N/sqrt(S)", "1"));

  v.push_back(src("doitgen", R"(
for r in range(NR):
  for q in range(NQ):
    for p in range(NP):
      for s in range(NP):
        sum[r,q,p] += A[r,q,s] * C4[s,p]
)",
                  Expr(2) * sy("NP") * sy("NP") * sy("NQ") * sy("NR") /
                      sym::sqrt(S()),
                  Expr(2) * sy("NP") * sy("NP") * sy("NQ") * sy("NR") /
                      sym::sqrt(S()),
                  "2 NP^2 NQ NR/sqrt(S)", "1"));

  v.push_back(src("gramschmidt", R"(
for k in range(N):
  for j in range(k + 1, N):
    for i in range(M):
      R[k,j] += Q[i,k] * A[i,j]
)",
                  M * N * N / sym::sqrt(S()), M * N * N / sym::sqrt(S()),
                  "M N^2/sqrt(S)", "1"));

  // --- BLAS-2 style / solvers -------------------------------------------------
  v.push_back(src("atax", R"(
for i in range(M):
  for j in range(N):
    tmp[i] += A[i,j] * x[j]
for i in range(M):
  for j in range(N):
    y[j] += A[i,j] * tmp[i]
)",
                  M * N, M * N, "M N", "1"));

  v.push_back(src("bicg", R"(
for i in range(M):
  for j in range(N):
    s[j] += r[i] * A[i,j]
for i in range(M):
  for j in range(N):
    q[i] += A[i,j] * p[j]
)",
                  M * N, M * N, "M N", "1"));

  v.push_back(src("mvt", R"(
for i in range(N):
  for j in range(N):
    x1[i] += A[i,j] * y1[j]
for i in range(N):
  for j in range(N):
    x2[i] += A[j,i] * y2[j]
)",
                  N * N, N * N, "N^2", "1"));

  v.push_back(src("gemver", R"(
for i in range(N):
  for j in range(N):
    Ah[i,j] = A[i,j] + u1[i] * v1[j] + u2[i] * v2[j]
for i in range(N):
  for j in range(N):
    x[i] += Ah[j,i] * y[j]
for i in range(N):
  for j in range(N):
    w[i] += Ah[i,j] * x[j]
)",
                  N * N, N * N, "N^2", "1"));

  v.push_back(src("gesummv", R"(
for i in range(N):
  for j in range(N):
    tmp[i] += A[i,j] * x[j]
for i in range(N):
  for j in range(N):
    y[i] += B[i,j] * x[j]
)",
                  Expr(2) * N * N, Expr(2) * N * N, "2N^2", "1"));

  v.push_back(src("trisolv", R"(
for i in range(N):
  for j in range(i):
    x[i] -= L[i,j] * x[j]
)",
                  N * N / Expr(2), N * N / Expr(2), "N^2/2", "1"));

  v.push_back(src("durbin", R"(
for k in range(N):
  for i in range(k):
    z[i,k] = y[k - 1 - i, k]
for k in range(N):
  for i in range(k):
    w[i,k] = z[k - 1 - i, k]
for k in range(N):
  for i in range(k):
    yn[i,k] = w[k - 1 - i, k]
)",
                  Expr(3) * N * N / Expr(2), Expr(3) * N * N / Expr(2),
                  "N^2/2", "3", singleton(),
                  "three reversal passes over the triangular iteration space; "
                  "per-statement accounting as in the paper (fusing the "
                  "reversal chain is prevented by the loop-carried "
                  "dependencies the relaxed model drops)"));

  v.push_back(src("deriche", R"(
for i in range(W):
  for j in range(H):
    y1[i,j] = img[i,j]
for i in range(W):
  for j in range(H):
    y2[i,j] = y1[i,j]
for i in range(W):
  for j in range(H):
    out[i,j] = y2[i,j]
)",
                  Expr(3) * sy("H") * sy("W"), Expr(3) * sy("H") * sy("W"),
                  "H W", "3", singleton(),
                  "three recursive-filter passes over the image; "
                  "per-statement accounting as in the paper"));

  // --- stencils ---------------------------------------------------------------
  v.push_back(src("jacobi1d", R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)",
                  Expr(2) * N * T / S(), Expr(2) * N * T / S(), "N T/(4S)",
                  "8", {}, "time-expanded self-stencil (Section 5.2)"));

  v.push_back(src("jacobi2d", R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i,j,t] + A[i-1,j,t] + A[i+1,j,t] + A[i,j-1,t] + A[i,j+1,t]
)",
                  Expr(4) * N * N * T / sym::sqrt(S()),
                  Expr(4) * N * N * T / sym::sqrt(S()),
                  "2 N^2 T/(3 sqrt(3S))", "6 sqrt(3)"));

  v.push_back(src("seidel2d", R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i-1,j-1,t] + A[i-1,j,t] + A[i-1,j+1,t] + A[i,j-1,t] + A[i,j,t] + A[i,j+1,t] + A[i+1,j-1,t] + A[i+1,j,t] + A[i+1,j+1,t]
)",
                  Expr(4) * N * N * T / sym::sqrt(S()),
                  Expr(4) * N * N * T / sym::sqrt(S()),
                  "2 N^2 T/(3 sqrt(3S))", "6 sqrt(3)"));

  v.push_back(src("heat3d", R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      for k in range(1, N - 1):
        A[i,j,k,t+1] = A[i,j,k,t] + A[i-1,j,k,t] + A[i+1,j,k,t] + A[i,j-1,k,t] + A[i,j+1,k,t] + A[i,j,k-1,t] + A[i,j,k+1,t]
)",
                  Expr(6) * N * N * N * T / sym::cbrt(S()),
                  Expr(6) * N * N * N * T / sym::cbrt(S()),
                  "9 N^3 T/(16 cbrt(3S))", "32/(3 cbrt(3))"));

  v.push_back(src("fdtd2d", R"(
for t in range(T):
  for i in range(1, NX):
    for j in range(NY):
      ey[i,j,t+1] = ey[i,j,t] - hz[i,j,t] + hz[i-1,j,t]
for t in range(T):
  for i in range(NX):
    for j in range(1, NY):
      ex[i,j,t+1] = ex[i,j,t] - hz[i,j,t] + hz[i,j-1,t]
for t in range(T):
  for i in range(NX):
    for j in range(NY):
      hz[i,j,t+1] = hz[i,j,t] - ex[i,j+1,t+1] + ex[i,j,t+1] - ey[i+1,j,t+1] + ey[i,j,t+1]
)",
                  Expr(2) * sym::sqrt(Expr(3)) * sy("NX") * sy("NY") * T /
                      sym::sqrt(S()),
                  Expr(4) * sym::sqrt(Expr(3)) * sy("NX") * sy("NY") * T /
                      sym::sqrt(S()),
                  "NX NY T/(3 sqrt(6S))", "6 sqrt(6)", {},
                  "our merged-subgraph optimum yields 4 sqrt(3) NX NY T/"
                  "sqrt(S), a factor 2 above the paper's published constant; "
                  "see EXPERIMENTS.md"));

  v.push_back(src("adi", R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      v[i,j,t] = u[i-1,j,t] + u[i,j,t] + u[i+1,j,t] + v[i,j-1,t]
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      u[i,j,t+1] = v[i,j-1,t] + v[i,j,t] + v[i,j+1,t] + u[i-1,j,t+1]
)",
                  Expr(12) * N * N * T / sym::sqrt(S()),
                  Expr(4) * N * N * T / sym::sqrt(S()), "N^2 T", "12/sqrt(S)",
                  {},
                  "column/row sweeps with time-relaxed dependencies; the "
                  "paper models the full tridiagonal solver (more arrays), "
                  "our two-array projection yields 4 N^2 T/sqrt(S); both "
                  "detect the time-tiling the paper highlights"));

  v.push_back(src("floyd_warshall", R"(
for k in range(N):
  for i in range(N):
    for j in range(N):
      path[i,j] = path[i,j] + path[i,k] * path[k,j]
)",
                  Expr(2) * N * N * N / sym::sqrt(S()),
                  Expr(2) * N * N * N / sym::sqrt(S()), "N^3/sqrt(S)", "2"));

  v.push_back(src("nussinov", R"(
for i in range(N):
  for j in range(i + 1, N):
    for k in range(i + 1, j):
      table[i,j] = table[i,j] + table[i,k] * table[k,j]
)",
                  N * N * N / (Expr(3) * sym::sqrt(S())),
                  N * N * N / (Expr(3) * sym::sqrt(S())),
                  "N^3/(6 sqrt(S))", "2"));

  return v;
}

void force_link_polybench_family() {}

namespace {
const FamilyRegistrar polybench_registrar{"polybench", 0,
                                          &polybench_kernels};
}  // namespace

}  // namespace soap::kernels
