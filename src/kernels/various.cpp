// The "Various" block of Table 2: LULESH's dominant kernel, COSMO
// horizontal diffusion and vertical advection.
#include "kernels/table2.hpp"

#include "frontend/lower.hpp"

namespace soap::kernels {

namespace {

using sym::Expr;

Expr sy(const char* n) { return Expr::symbol(n); }

sdg::SdgOptions singleton() {
  sdg::SdgOptions o;
  o.max_subgraph_size = 1;
  return o;
}

// LULESH main kernel: a chain of 22 per-element field updates
// (CalcLagrangeElements / CalcQForElems / material updates), each producing
// one elemental field from the previous one.  The paper reports 22*numElem;
// per-statement accounting reproduces it (the chained fields are consumed
// immediately, one access each).
std::string lulesh_source() {
  const char* fields[] = {
      "dxx",     "dyy",    "dzz",    "vdov",      "arealg", "delv_xi",
      "delv_eta","delv_zeta","delx_xi","delx_eta", "delx_zeta","qq",
      "ql",      "e_old",  "p_old",  "q_old",     "compression", "delvc",
      "work",    "p_new",  "e_new",  "q_new"};
  std::string src;
  std::string prev = "elemvol";
  for (const char* f : fields) {
    src += "for e in range(numElem):\n  " + std::string(f) + "[e] = " + prev +
           "[e]\n";
    prev = f;
  }
  return src;
}

}  // namespace

std::vector<KernelEntry> various_kernels() {
  std::vector<KernelEntry> v;

  {
    KernelEntry k;
    k.name = "lulesh";
    k.family = "various";
    set_dsl_source(k, lulesh_source());
    Expr bound = Expr(22) * sy("numElem");
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (first bound; outside the polyhedral model)";
    k.improvement = "-";
    k.options = singleton();
    k.notes =
        "22 chained per-element field updates of the dominant time-step "
        "kernel (>60% of runtime per the paper)";
    v.push_back(std::move(k));
  }

  {
    // COSMO horizontal diffusion: lap / flx / fly intermediates are
    // recomputable inside a fused tile, so only the input and output fields
    // are charged: 2 I J K (the cold bound dominates the fused Theorem-1
    // accounting, exactly the recomputation argument of the paper).
    KernelEntry k;
    k.name = "horizontal_diffusion";
    k.family = "various";
    set_dsl_source(k, R"(
for i in range(1, I - 1):
  for j in range(1, J - 1):
    for k in range(K):
      lap[i,j,k] = inf[i-1,j,k] + inf[i+1,j,k] + inf[i,j-1,k] + inf[i,j+1,k] + inf[i,j,k]
for i in range(1, I - 1):
  for j in range(1, J - 1):
    for k in range(K):
      flx[i,j,k] = lap[i+1,j,k] - lap[i,j,k]
for i in range(1, I - 1):
  for j in range(1, J - 1):
    for k in range(K):
      fly[i,j,k] = lap[i,j+1,k] - lap[i,j,k]
for i in range(1, I - 1):
  for j in range(1, J - 1):
    for k in range(K):
      outf[i,j,k] = inf[i,j,k] - flx[i,j,k] + flx[i-1,j,k] - fly[i,j,k] + fly[i,j-1,k]
)");
    Expr bound = Expr(2) * sy("I") * sy("J") * sy("K");
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (first bound)";
    k.improvement = "-";
    k.options.use_cold_bound = true;
    v.push_back(std::move(k));
  }

  {
    // COSMO vertical advection: five field sweeps with vertical (k)
    // recurrences; four distinct external fields are read and the updated
    // velocity tensor is stored: 5 I J K.
    KernelEntry k;
    k.name = "vertical_advection";
    k.family = "various";
    set_dsl_source(k, R"(
for i in range(I):
  for j in range(J):
    for k in range(1, K):
      ccol[i,j,k] = wcon[i,j,k] + ccol[i,j,k-1]
for i in range(I):
  for j in range(J):
    for k in range(1, K):
      dcol[i,j,k] = ucol[i,j,k] + ccol[i,j,k] + dcol[i,j,k-1]
for i in range(I):
  for j in range(J):
    for k in range(1, K):
      datacol[i,j,k] = dcol[i,j,k] + datacol[i,j,k-1]
for i in range(I):
  for j in range(J):
    for k in range(K):
      ustage[i,j,k] = datacol[i,j,k] + upos[i,j,k]
for i in range(I):
  for j in range(J):
    for k in range(K):
      utens[i,j,k] = ustage[i,j,k] + utensin[i,j,k]
)");
    Expr bound = Expr(5) * sy("I") * sy("J") * sy("K");
    k.paper_bound = bound;
    k.expected_bound = bound;
    k.sota = "- (first bound; recomputation required)";
    k.improvement = "-";
    k.options.use_cold_bound = true;
    v.push_back(std::move(k));
  }

  return v;
}

void force_link_various_family() {}

namespace {
const FamilyRegistrar various_registrar{"various", 2, &various_kernels};
}  // namespace

}  // namespace soap::kernels
