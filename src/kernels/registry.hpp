// The extensible kernel corpus: a process-wide registry of analyzable
// kernels, organized into families.  The paper's fixed Table 2 corpus
// (polybench / neural / various) is registered here by its three family
// translation units, and new families (attention, sparse_stencil, ...)
// plug in the same way: a translation unit builds its `KernelEntry`
// vector and self-registers it with a `FamilyRegistrar` at static-init
// time.  Everything that enumerates the corpus — `analyze_corpus`, the
// bench drivers, `analyze_tool --corpus/--family/--list-kernels`, the
// golden tests — walks the registry instead of a hardcoded array.
//
// See docs/ADDING_KERNELS.md for the end-to-end recipe (DSL source,
// registration, golden bound) and the one linker subtlety of
// self-registration from a static library.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sdg/multi_statement.hpp"
#include "soap/statement.hpp"
#include "symbolic/expr.hpp"

namespace soap::kernels {

/// One corpus kernel: how to build its SOAP program, the engine
/// configuration that analyzes it, and the reference bounds the analysis
/// is checked against.
struct KernelEntry {
  /// Unique corpus-wide kernel name (`gemm`, `bert_encoder`, ...).
  std::string name;
  /// Family the kernel belongs to: "polybench" | "neural" | "various"
  /// (the original Table 2 blocks) | "attention" | "sparse_stencil" | any
  /// family a registrar adds.
  std::string family;
  /// Builds the SOAP program (typically by parsing `source` through the
  /// frontend; heavier kernels may construct the Program programmatically).
  std::function<Program()> build;
  /// Frontend DSL source when the kernel is defined through it (set by
  /// `set_dsl_source`); informational — `build` is authoritative.
  std::string source;
  /// Problem-size symbols of the kernel (N, M, T, ...; never S).  Left
  /// empty by most entries and derived from `expected_bound` when the
  /// registry materializes.
  std::vector<std::string> problem_sizes;
  /// Reference bound: the leading-order bound as printed in Table 2 of the
  /// paper for the original 38 rows, or the closed-form expected
  /// leading-order I/O bound recorded when a new kernel is added.
  sym::Expr paper_bound;
  /// What our engine derives with `options` (equals paper_bound for most
  /// kernels; differs where EXPERIMENTS.md documents why).
  sym::Expr expected_bound;
  std::string sota;         ///< prior best bound (display only)
  std::string improvement;  ///< Table 2 improvement factor (display only)
  sdg::SdgOptions options;  ///< engine configuration reproducing the bound
  std::string notes;        ///< encoding decisions worth surfacing
};

/// Sets `entry.source` and installs a `build` that parses it with the
/// frontend (`frontend::parse_program`).  The convenience used by every
/// DSL-defined corpus kernel.
void set_dsl_source(KernelEntry& entry, std::string source);

/// The process-wide kernel corpus.  Families register themselves during
/// static initialization (see FamilyRegistrar); the entry vectors are
/// built lazily on first enumeration and immutable afterwards, so every
/// accessor below returns stable references and is safe to call from any
/// thread.
class Registry {
 public:
  /// The singleton instance (created on first use).
  static Registry& instance();

  /// Registers a family: a display name, an ordering rank (families are
  /// enumerated by ascending rank, then name — the original Table 2 blocks
  /// use ranks 0..2 so corpus order is stable as families are added), and
  /// a builder returning the family's entries.  Must run before the first
  /// enumeration (i.e. during static init); throws std::logic_error after
  /// the registry has materialized.
  void add_family(std::string family, int rank,
                  std::function<std::vector<KernelEntry>()> build);

  /// Every kernel of every family, in (family rank, registration) order.
  const std::vector<KernelEntry>& kernels() const;

  /// Family names in enumeration order.
  std::vector<std::string> families() const;

  /// The kernels of one family (empty vector for an unknown family).
  std::vector<const KernelEntry*> family(const std::string& family) const;

  /// Lookup by kernel name; nullptr when missing.
  const KernelEntry* find(const std::string& name) const;

  /// Lookup by kernel name; throws std::out_of_range when missing.
  const KernelEntry& at(const std::string& name) const;

  /// Total kernel count across all families.
  std::size_t size() const { return kernels().size(); }

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Self-registration hook: a namespace-scope `FamilyRegistrar` in a family
/// translation unit registers the family when the TU's statics are
/// initialized.  Because the corpus is a static library, a family TU that
/// nothing references would be dropped by the linker; registry.cpp anchors
/// every in-tree family TU (see docs/ADDING_KERNELS.md for the recipe when
/// adding one).
struct FamilyRegistrar {
  FamilyRegistrar(const char* family, int rank,
                  std::vector<KernelEntry> (*build)());
};

}  // namespace soap::kernels
