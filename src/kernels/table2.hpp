// The application corpus of the paper's evaluation (Table 2): 30 Polybench
// kernels, 5 deep-learning workloads, and 3 scientific applications, each
// with its SOAP encoding, the paper's reported leading-order bound, the
// prior state of the art, and the engine configuration reproducing the
// published number.  EXPERIMENTS.md documents every encoding decision and
// the places where the general engine derives a different constant than the
// paper's published row.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sdg/multi_statement.hpp"
#include "soap/statement.hpp"
#include "symbolic/expr.hpp"

namespace soap::kernels {

struct KernelEntry {
  std::string name;
  std::string category;  ///< "polybench" | "neural" | "various"
  std::function<Program()> build;
  /// Leading-order bound as printed in Table 2 of the paper.
  sym::Expr paper_bound;
  /// What our engine derives with `options` (equals paper_bound for most
  /// kernels; differs where EXPERIMENTS.md documents why).
  sym::Expr expected_bound;
  std::string sota;         ///< prior best bound (display only)
  std::string improvement;  ///< Table 2 improvement factor (display only)
  sdg::SdgOptions options;
  std::string notes;
};

/// All Polybench entries (30 kernels).
std::vector<KernelEntry> polybench_kernels();
/// Deep learning: direct convolution, softmax, MLP, LeNet-5, BERT encoder.
std::vector<KernelEntry> neural_kernels();
/// LULESH, COSMO horizontal diffusion, COSMO vertical advection.
std::vector<KernelEntry> various_kernels();
/// The full 38-application corpus.
const std::vector<KernelEntry>& table2_kernels();

/// Runs the analysis configured for the entry and returns the leading-order
/// bound.
sym::Expr analyze_kernel(const KernelEntry& entry);

/// Same, with the entry's configured thread budget overridden (see
/// SdgOptions::threads: 1 = serial, 0 = all hardware threads) and an
/// optional executor for the helper workers (default: the global pool).
sym::Expr analyze_kernel(const KernelEntry& entry, std::size_t threads,
                         support::ExecutorRef executor = {});

/// Analyzes the whole 38-application corpus as one batch of (kernel x
/// subgraph-shard) work items: kernels are claimed concurrently AND each
/// kernel's own analysis pipeline shards its subgraphs across the same
/// executor, so a long-tail kernel (bert_encoder) spreads over every idle
/// worker instead of serializing the batch the way kernel-granularity
/// sharding did.  Slot i holds the bound of table2_kernels()[i]; the result
/// is bit-identical for every thread count and executor.
std::vector<sym::Expr> analyze_corpus(std::size_t threads = 1,
                                      support::ExecutorRef executor = {});

/// Lookup by name; throws std::out_of_range when missing.
const KernelEntry& kernel_by_name(const std::string& name);

}  // namespace soap::kernels
