// The application corpus of the paper's evaluation (Table 2) and the
// entry points that analyze it.  The original corpus is 38 applications —
// 30 Polybench kernels, 5 deep-learning workloads, and 3 scientific
// applications — each with its SOAP encoding, the paper's reported
// leading-order bound, the prior state of the art, and the engine
// configuration reproducing the published number; the registry
// (kernels/registry.hpp) extends it with post-paper families (attention
// variants, sparse/stencil kernels) without touching the published rows.
// EXPERIMENTS.md documents every encoding decision and the places where
// the general engine derives a different constant than the paper's
// published row.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "bounds/opt/types.hpp"
#include "kernels/registry.hpp"
#include "support/cancel.hpp"
#include "support/executor.hpp"

namespace soap::kernels {

/// All Polybench entries (30 kernels; registry family "polybench").
std::vector<KernelEntry> polybench_kernels();
/// Deep learning: direct convolution, softmax, MLP, LeNet-5, BERT encoder
/// (registry family "neural").
std::vector<KernelEntry> neural_kernels();
/// LULESH, COSMO horizontal diffusion, COSMO vertical advection (registry
/// family "various").
std::vector<KernelEntry> various_kernels();
/// Attention variants beyond the paper: single-head softmax attention,
/// multi-query attention, and a fused flash-style variant (registry family
/// "attention").
std::vector<KernelEntry> attention_kernels();
/// Sparse and stencil kernels beyond the paper: CSR SpMV (uniform-row
/// model, data-dependent gather) and a two-stage jacobi-2d-style stencil
/// sweep (registry family "sparse_stencil").
std::vector<KernelEntry> sparse_stencil_kernels();

/// The original 38-application Table 2 corpus (families polybench, neural,
/// various), in published order.  The golden tests pin these rows
/// bit-identically; new families never appear here — enumerate
/// Registry::instance().kernels() for the full corpus.
std::vector<const KernelEntry*> table2_kernels();

/// Runs the analysis configured for the entry and returns the leading-order
/// bound (the entry's `options`, including its thread budget).
sym::Expr analyze_kernel(const KernelEntry& entry);

/// Same, with the entry's configured thread budget overridden (see
/// SdgOptions::threads: 1 = serial, 0 = all hardware threads), an optional
/// executor for the helper workers (default: the global pool), and an
/// optional numeric-backend override (default: the entry's configured
/// backend — nullopt, not kNelderMead, so entries keep their own setting).
sym::Expr analyze_kernel(const KernelEntry& entry, std::size_t threads,
                         support::ExecutorRef executor = {},
                         std::optional<bounds::opt::BackendKind> optimizer =
                             std::nullopt);

/// Analyzes the whole registered corpus (every family, registry order) as
/// one batch of (kernel x subgraph-shard) work items: kernels are claimed
/// concurrently AND each kernel's own analysis pipeline shards its
/// subgraphs across the same executor, so a long-tail kernel
/// (bert_encoder) spreads over every idle worker instead of serializing
/// the batch the way kernel-granularity sharding did.  Slot i holds the
/// bound of Registry::instance().kernels()[i]; the result is bit-identical
/// for every thread count and executor.
std::vector<sym::Expr> analyze_corpus(std::size_t threads = 1,
                                      support::ExecutorRef executor = {});

/// Same batch, restricted to an explicit kernel subset (e.g. one family or
/// the original Table 2 rows); slot i holds the bound of kernels[i].
/// `optimizer` overrides every kernel's numeric backend when set.
std::vector<sym::Expr> analyze_corpus(
    const std::vector<const KernelEntry*>& kernels, std::size_t threads = 1,
    support::ExecutorRef executor = {},
    std::optional<bounds::opt::BackendKind> optimizer = std::nullopt);

/// Lookup across the whole registry by name; throws std::out_of_range when
/// missing.  Equivalent to Registry::instance().at(name).
const KernelEntry& kernel_by_name(const std::string& name);

// ---------------------------------------------------------------------------
// Resilient corpus analysis (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

struct CorpusOptions {
  std::size_t threads = 1;
  support::ExecutorRef executor;
  /// Per-kernel termination criteria (deadline/budgets shared wall-clock
  /// across the run; polled inside each kernel's analysis).
  support::StopCriteria stop;
  /// Numeric-backend override applied to every kernel when set (the
  /// `--optimizer` flag of the corpus tools); nullopt keeps each entry's
  /// configured backend.
  std::optional<bounds::opt::BackendKind> optimizer;
};

/// Per-kernel result of a resilient corpus run.  `status` is kOk for a
/// clean bound; a degraded kernel keeps its (per-statement fallback) bound
/// AND records the budget code that tripped; a failed kernel has no bound
/// and `message` carries the error text.
struct KernelOutcome {
  std::string kernel;
  std::string family;
  support::StatusCode status = support::StatusCode::kOk;
  bool degraded = false;
  std::optional<sym::Expr> bound;
  std::string message;

  [[nodiscard]] bool ok() const { return bound.has_value(); }
};

struct CorpusReport {
  std::vector<KernelOutcome> kernels;  ///< slot i = input kernel i

  [[nodiscard]] std::size_t failed() const;
  [[nodiscard]] std::size_t degraded_count() const;
  /// The class of the first (input-order) non-ok kernel, kOk when clean —
  /// the aggregate exit code of a corpus run.
  [[nodiscard]] support::StatusCode worst_status() const;
  /// Human-readable per-failure lines + totals; "" when fully clean.
  [[nodiscard]] std::string failure_summary() const;
};

/// Analyzes `entry` under `stop`, never throwing: every error class —
/// deadline/budget (after the degraded fallback also failed), cancellation,
/// invalid input, optimizer no-converge, unexpected exceptions — is folded
/// into the returned outcome's status/message.
KernelOutcome analyze_kernel_checked(
    const KernelEntry& entry, std::size_t threads = 1,
    support::ExecutorRef executor = {},
    const support::StopCriteria& stop = {},
    std::optional<bounds::opt::BackendKind> optimizer = std::nullopt);

/// analyze_corpus that survives per-kernel failures: same slot-per-kernel
/// determinism, but a kernel that fails (or degrades) reports its status in
/// its own slot instead of aborting the batch — partial results plus a
/// failure summary, never all-or-nothing.
CorpusReport analyze_corpus_resilient(
    const std::vector<const KernelEntry*>& kernels,
    const CorpusOptions& options = {});

}  // namespace soap::kernels
