#include "kernels/registry.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "frontend/lower.hpp"

namespace soap::kernels {

// Anchor symbols of the in-tree family translation units.  The corpus is a
// static library: an archive member is only linked in when something
// references a symbol it defines, and a family TU whose only content is a
// FamilyRegistrar defines nothing anyone calls.  Referencing each anchor
// from materialize() (below) forces the linker to keep every family object
// file, whose static registrars then run before main() as usual.
void force_link_polybench_family();
void force_link_neural_family();
void force_link_various_family();
void force_link_attention_family();
void force_link_sparse_stencil_family();

void set_dsl_source(KernelEntry& entry, std::string source) {
  entry.source = std::move(source);
  entry.build = [src = entry.source] { return frontend::parse_program(src); };
}

struct Registry::Impl {
  struct Family {
    std::string name;
    int rank = 0;
    std::function<std::vector<KernelEntry>()> build;
  };

  std::mutex mu;
  bool built = false;
  std::vector<Family> pending;
  std::vector<KernelEntry> kernels;
  std::vector<std::string> family_names;
  std::unordered_map<std::string, std::size_t> by_name;

  // Builds the immutable corpus from the registered families: families are
  // ordered by (rank, name) — independent of static-init order across
  // translation units, so enumeration order is deterministic — and every
  // entry is validated (unique corpus-wide name, family tag consistent
  // with the registrar, problem sizes derived when unset).  Built into
  // locals and committed at the end, so a throwing validation or family
  // builder leaves the registry empty-but-consistent instead of half
  // populated.  Caller holds `mu`.
  void materialize() {
    if (built) return;
    // Link-time anchors; the calls themselves are no-ops.
    force_link_polybench_family();
    force_link_neural_family();
    force_link_various_family();
    force_link_attention_family();
    force_link_sparse_stencil_family();
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Family& a, const Family& b) {
                       return a.rank != b.rank ? a.rank < b.rank
                                               : a.name < b.name;
                     });
    std::vector<KernelEntry> all;
    std::vector<std::string> names;
    std::unordered_map<std::string, std::size_t> index;
    for (Family& fam : pending) {
      names.push_back(fam.name);
      for (KernelEntry& k : fam.build()) {
        if (!k.family.empty() && k.family != fam.name) {
          throw std::logic_error("kernel '" + k.name + "' tagged family '" +
                                 k.family + "' but registered under '" +
                                 fam.name + "'");
        }
        k.family = fam.name;
        if (k.problem_sizes.empty()) {
          for (const std::string& s : k.expected_bound.symbols()) {
            if (s != "S") k.problem_sizes.push_back(s);
          }
        }
        auto [it, inserted] = index.try_emplace(k.name, all.size());
        if (!inserted) {
          throw std::logic_error("kernel registered twice: " + k.name);
        }
        all.push_back(std::move(k));
      }
    }
    kernels = std::move(all);
    family_names = std::move(names);
    by_name = std::move(index);
    pending.clear();
    built = true;
  }
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

void Registry::add_family(std::string family, int rank,
                          std::function<std::vector<KernelEntry>()> build) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.built) {
    throw std::logic_error("Registry::add_family(" + family +
                           ") after the corpus materialized; families must "
                           "register during static initialization");
  }
  im.pending.push_back({std::move(family), rank, std::move(build)});
}

const std::vector<KernelEntry>& Registry::kernels() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.materialize();
  return im.kernels;
}

std::vector<std::string> Registry::families() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.materialize();
  return im.family_names;
}

std::vector<const KernelEntry*> Registry::family(
    const std::string& family) const {
  std::vector<const KernelEntry*> out;
  for (const KernelEntry& k : kernels()) {
    if (k.family == family) out.push_back(&k);
  }
  return out;
}

const KernelEntry* Registry::find(const std::string& name) const {
  const std::vector<KernelEntry>& all = kernels();  // materializes
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(name);
  return it == im.by_name.end() ? nullptr : &all[it->second];
}

const KernelEntry& Registry::at(const std::string& name) const {
  const KernelEntry* k = find(name);
  if (k == nullptr) throw std::out_of_range("unknown kernel: " + name);
  return *k;
}

FamilyRegistrar::FamilyRegistrar(const char* family, int rank,
                                 std::vector<KernelEntry> (*build)()) {
  Registry::instance().add_family(family, rank, build);
}

}  // namespace soap::kernels
