// Fixed-size worker pool shared by every parallel stage of the analyzer —
// the canonical `Executor` implementation.
//
// The pool is deliberately minimal: a mutex/condvar task queue and N
// detachedly-long-lived workers.  All structured parallelism (sharding,
// result collection, exception propagation, nested-use safety) lives one
// layer up in support/parallel.hpp and support/pipeline.hpp, which submit
// plain thunks here through the Executor interface.
//
// Thread-safety contract: `submit` may be called concurrently from any
// thread, including from inside a running task (nested submission never
// blocks — the task is queued and the call returns).  The destructor drains
// the queue: every task submitted before the destructor runs is executed
// before the workers are joined.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/executor.hpp"

namespace soap::support {

class ThreadPool final : public Executor {
 public:
  /// Spawns `threads` workers; 0 means hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains the queue (all submitted tasks run) and joins the workers.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.  Never blocks on other
  /// tasks; safe to call from inside a task running on this same pool.
  void submit(std::function<void()> task) override;

  /// Executor contract: the pool can run `size()` tasks concurrently with
  /// the submitting thread.
  [[nodiscard]] std::size_t concurrency() const override {
    return workers_.size();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Process-wide pool sized to hardware_threads().  Created on first use
  /// and intentionally leaked: analysis results held in static storage may
  /// be destroyed after any static pool would be, and idle workers parked
  /// on the queue condvar are harmless at process exit.
  static ThreadPool& global();

  /// std::thread::hardware_concurrency(), clamped to at least 1 (the
  /// standard allows it to report 0 when unknown).
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace soap::support
