// Stable content digests for the memoized bound cache.
//
// The hash-consed symbolic core gives every Expr an O(1) cached hash and a
// process-wide intern id — but both are *process-local*: the cached hash
// seeds differ per build and the intern id is handed out in first-creation
// order, so neither survives a restart or agrees between two servers.  The
// serving layer (src/service, docs/SERVING.md) needs a key that is a pure
// function of the canonical *content*, identical across processes, builds,
// and platforms, so a persisted cache file written by one `analyzed` run is
// warm in the next.
//
// This header supplies the primitives: a 128-bit `Digest` value and a
// `DigestWriter` that absorbs typed tokens (integers, strings, tags)
// through a fixed, platform-independent mixing function.  Nothing here
// knows about Expr or Program — the support layer sits below symbolic — so
// the bottom-up DAG walk that digests expressions and lowered programs
// lives in src/service/cache_key.{hpp,cpp}, built on these primitives.
//
// Stability contract: the mixing function and the token encodings are part
// of the persisted-cache format (docs/SERVING.md).  Changing either
// invalidates every persisted digest, so bump kDigestFormatVersion when
// you do — stale files then miss cleanly instead of aliasing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace soap::support {

/// Version tag mixed into every cache key (see service/cache_key.cpp); bump
/// on any change to the mixing function or the token encodings below.
inline constexpr std::uint64_t kDigestFormatVersion = 2;

/// A 128-bit content digest.  Value type: compare, hash, render as 32 hex
/// characters, parse back.  The default-constructed digest is the all-zero
/// "null" digest, never produced by DigestWriter::finish().
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest& a, const Digest& b) {
    return !(a == b);
  }
  friend bool operator<(const Digest& a, const Digest& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex characters, hi half first.
  [[nodiscard]] std::string hex() const;
  /// Parses exactly 32 hex characters; nullopt on anything else.
  static std::optional<Digest> from_hex(std::string_view hex);
};

/// Accumulates typed tokens into a Digest through a fixed 128-bit mixing
/// function (two lanes of splitmix64-style rounds, cross-fed per word).
/// The result depends only on the sequence of mix_* calls and their
/// arguments — never on pointer values, hash seeds, or platform word
/// order — so equal token streams digest equally in every process.
///
/// Each token is length- or tag-prefixed, so adjacent variable-length
/// tokens cannot alias ("ab","c" vs "a","bc" differ).
class DigestWriter {
 public:
  DigestWriter();

  void mix_u64(std::uint64_t v);
  /// Two's-complement encoding, sign carried by the full word.
  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  /// One-byte discriminator for sum types (expression kinds, record tags).
  void mix_tag(std::uint8_t tag) { mix_u64(0xa5a5a5a500000000ULL | tag); }
  void mix_bool(bool b) { mix_u64(b ? 0x74727565 : 0x66616c73); }
  /// Length-prefixed bytes, absorbed 8 at a time little-endian (explicitly
  /// assembled, so big-endian hosts digest identically).
  void mix_string(std::string_view s);
  /// Nested digest (e.g. a memoized sub-DAG digest).
  void mix_digest(const Digest& d) {
    mix_u64(d.hi);
    mix_u64(d.lo);
  }

  /// The digest of everything mixed so far (idempotent; the writer can
  /// keep absorbing afterwards).
  [[nodiscard]] Digest finish() const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t count_ = 0;
};

}  // namespace soap::support

/// Hash support so the cache layers can key unordered containers by Digest
/// (the digest is already uniformly mixed; the low word suffices).
template <>
struct std::hash<soap::support::Digest> {
  std::size_t operator()(const soap::support::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
  }
};
