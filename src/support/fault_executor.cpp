#include "support/fault_executor.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace soap::support {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t FaultInjectingExecutor::decision(std::uint64_t index,
                                               std::uint64_t salt) const {
  return splitmix64(plan_.seed ^ splitmix64(index * 3 + salt));
}

std::function<void()> FaultInjectingExecutor::decorate(
    std::function<void()> task, std::uint64_t index) {
  const bool drop =
      plan_.drop_permille != 0 &&
      decision(index, /*salt=*/1) % 1000 < plan_.drop_permille;
  const bool delay =
      plan_.delay_permille != 0 &&
      decision(index, /*salt=*/2) % 1000 < plan_.delay_permille;
  const std::uint64_t sleep_us =
      delay && plan_.delay_max_us != 0
          ? decision(index, /*salt=*/3) % (plan_.delay_max_us + 1)
          : 0;
  if (drop) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dropped;
    }
    // The thunk the inner worker runs models a task that throws: the
    // exception must not escape into the worker loop (that would terminate
    // the pool), so the decorator is its own catch boundary.
    return [] {
      try {
        throw FaultInjectedError("injected task fault");
      } catch (const FaultInjectedError&) {
        // Swallowed: to the rest of the system this helper simply died.
      }
    };
  }
  if (delay) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.delayed;
  }
  return [task = std::move(task), sleep_us] {
    if (sleep_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    task();
  };
}

void FaultInjectingExecutor::submit(std::function<void()> task) {
  std::uint64_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = index_++;
    ++stats_.submitted;
  }
  std::function<void()> wrapped = decorate(std::move(task), index);
  if (plan_.reorder_window == 0) {
    inner_.submit(std::move(wrapped));
    return;
  }
  // Reorder mode: buffer the submission; once the window is full, release
  // one seeded-random held entry per new arrival (FIFO becomes a bounded
  // shuffle).
  std::function<void()> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    held_.push_back(std::move(wrapped));
    if (held_.size() <= plan_.reorder_window) return;
    const std::size_t pick =
        static_cast<std::size_t>(decision(index, /*salt=*/4) % held_.size());
    release = std::move(held_[pick]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(pick));
    if (pick != held_.size()) ++stats_.reordered;
  }
  inner_.submit(std::move(release));
}

void FaultInjectingExecutor::flush() {
  for (;;) {
    std::function<void()> release;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (held_.empty()) return;
      const std::size_t pick = static_cast<std::size_t>(
          decision(index_ + held_.size(), /*salt=*/5) % held_.size());
      release = std::move(held_[pick]);
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    inner_.submit(std::move(release));
  }
}

FaultInjectingExecutor::Stats FaultInjectingExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace soap::support
