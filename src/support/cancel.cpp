#include "support/cancel.hpp"

namespace soap::support {

namespace {
std::atomic<LiveNodeGauge> g_live_node_gauge{nullptr};
}  // namespace

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInternalError:
      return "internal_error";
    case StatusCode::kInvalidInput:
      return "invalid_input";
    case StatusCode::kOptimizerNoConverge:
      return "optimizer_no_converge";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kBudgetExceeded:
      return "budget_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

int status_exit_code(StatusCode code) noexcept {
  return static_cast<int>(code);
}

void register_live_node_gauge(LiveNodeGauge gauge) noexcept {
  g_live_node_gauge.store(gauge, std::memory_order_release);
}

std::size_t live_node_count() noexcept {
  LiveNodeGauge gauge = g_live_node_gauge.load(std::memory_order_acquire);
  return gauge != nullptr ? gauge() : 0;
}

void StopCriteria::enforce(const char* where) const {
  const StatusCode code = check();
  switch (code) {
    case StatusCode::kOk:
      return;
    case StatusCode::kCancelled:
      throw AnalysisError(code,
                          std::string("cancelled during ") + where);
    case StatusCode::kDeadlineExceeded:
      throw AnalysisError(code,
                          std::string("deadline exceeded during ") + where);
    case StatusCode::kBudgetExceeded:
      throw AnalysisError(
          code, "live-node budget exceeded (live=" +
                    std::to_string(live_node_count()) +
                    ", max=" + std::to_string(budget.max_live_nodes) +
                    ") during " + where);
    default:
      throw AnalysisError(code, std::string(status_code_name(code)) +
                                    " during " + where);
  }
}

}  // namespace soap::support
