#include "support/arena.hpp"

#include <new>

namespace soap::support {

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {}

Arena::~Arena() {
  for (void* b : blocks_) ::operator delete(b);
}

void* Arena::allocate_large(std::size_t bytes, std::size_t align) {
  return align > __STDCPP_DEFAULT_NEW_ALIGNMENT__
             ? ::operator new(bytes, std::align_val_t{align})
             : ::operator new(bytes);
}

void Arena::deallocate_large(void* p, std::size_t align) noexcept {
  if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
    ::operator delete(p, std::align_val_t{align});
  } else {
    ::operator delete(p);
  }
}

void* Arena::refill_and_carve(std::size_t slot_bytes) {
  // operator new without align_val_t guarantees
  // __STDCPP_DEFAULT_NEW_ALIGNMENT__ (>= kGranularity), and slot sizes are
  // multiples of kGranularity, so every carve stays aligned.
  auto* block = static_cast<unsigned char*>(::operator new(block_bytes_));
  blocks_.push_back(block);
  bump_ = block + slot_bytes;
  bump_left_ = block_bytes_ - slot_bytes;
  return block;
}

std::atomic<long long> Arena::fail_countdown_{-1};

void Arena::fail_after(std::size_t count) noexcept {
  fail_countdown_.store(count == 0 ? -1 : static_cast<long long>(count),
                        std::memory_order_relaxed);
}

void Arena::clear_failure_hook() noexcept {
  fail_countdown_.store(-1, std::memory_order_relaxed);
}

void Arena::fail_hook_tick() {
  // fetch_sub makes exactly one thread observe the 1 -> 0 transition; later
  // callers drift the counter below zero, which reads as disarmed.
  if (fail_countdown_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    throw std::bad_alloc();
  }
}

Arena::Stats Arena::stats() const {
  // Reads the serialized-allocate state: callers must exclude allocate()
  // (the intern table calls this under at least a shared shard lock, which
  // excludes the exclusive-locked allocate path).
  Stats s;
  s.blocks = blocks_.size();
  s.bytes_reserved = blocks_.size() * block_bytes_;
  s.live = live_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace soap::support
