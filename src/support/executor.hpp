// The injectable execution backend of the parallel subsystem.
//
// Every structured-parallel layer (parallel_for/parallel_map, the staged
// pipeline, the sharded pebble-game validation) submits plain helper thunks
// through the `Executor` interface instead of talking to a concrete thread
// pool, so callers can swap the backend — the process-global pool, a private
// fixed-size pool, or the serial executor — without touching the algorithms.
//
// `concurrency()` is the contract that makes the serial bypass zero-overhead:
// it reports how many tasks the executor can run *concurrently with the
// submitting thread*.  Structured layers spawn at most that many helpers, so
// with SerialExecutor (concurrency 0) they never submit at all and fall back
// to the inline serial path — same results, no queues, no synchronization.
#pragma once

#include <cstddef>
#include <functional>

namespace soap::support {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueues `task` for execution.  Must never block on other submitted
  /// tasks; safe to call from inside a running task on the same executor.
  virtual void submit(std::function<void()> task) = 0;

  /// How many tasks can run concurrently with the submitting thread: 0 for
  /// the serial executor, the worker count for a thread pool.  Structured
  /// layers use this to cap helper fan-out (and to skip submission — and all
  /// shared state — entirely when it is 0).
  [[nodiscard]] virtual std::size_t concurrency() const = 0;
};

/// Degenerate executor: `submit` runs the task inline on the calling thread.
/// `concurrency()` is 0, so the structured layers never actually submit to
/// it — injecting one forces every loop and pipeline onto the caller, which
/// is the deterministic reference schedule the parity tests compare against.
/// (Direct `submit` is only safe for tasks that do not wait on the
/// submitting thread.)
class SerialExecutor final : public Executor {
 public:
  void submit(std::function<void()> task) override;
  [[nodiscard]] std::size_t concurrency() const override { return 0; }
};

/// Non-owning, copyable handle to an executor.  Default-constructed it
/// resolves to the process-global thread pool on first use (so plumbed
/// options default to "shared pool" without eagerly creating it); use
/// `ExecutorRef::serial()` or bind a concrete executor to override.
class ExecutorRef {
 public:
  ExecutorRef() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a ref is the executor.
  ExecutorRef(Executor& executor) : executor_(&executor) {}

  /// A handle to a shared process-wide SerialExecutor.
  static ExecutorRef serial();

  /// The bound executor, resolving the default to ThreadPool::global().
  [[nodiscard]] Executor& get() const;

  [[nodiscard]] std::size_t concurrency() const { return get().concurrency(); }
  void submit(std::function<void()> task) const {
    get().submit(std::move(task));
  }

 private:
  Executor* executor_ = nullptr;  ///< nullptr = ThreadPool::global()
};

}  // namespace soap::support
