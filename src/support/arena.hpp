// Arena: a block/pool allocator for small, churny objects.
//
// Memory is carved from large blocks (64 KiB by default) in bump order;
// freed allocations are recycled through per-size-class free lists, so a
// steady-state workload of equal-sized objects (the hash-consed symbolic
// nodes and their shared_ptr control blocks) reuses a bounded set of slots
// instead of hitting the global allocator once per object.  Blocks are only
// returned to the system by the destructor: the arena's footprint is the
// high-water mark of its live set, which is exactly the working-set
// guarantee the intern table's weak eviction provides one level up.
//
// Concurrency contract (asymmetric by design, matched to the intern table):
//   * allocate() must be externally serialized per arena — the intern table
//     calls it only while holding its shard's exclusive lock.  This keeps
//     the hot bump/pop path completely lock-free and unsynchronized.
//   * deallocate() is thread-safe and lock-free (an atomic Treiber push
//     onto the size-class free list): node deleters and shared_ptr
//     control-block teardown run it outside any table lock.
//   * The single-popper/multi-pusher split makes the classic Treiber ABA
//     hazard impossible: only allocate() (serialized) ever removes list
//     nodes, so a popped head cannot be recycled mid-CAS.
//
// The pop/push/bump fast paths are defined inline below: allocate and
// deallocate run once per node *and* once per control block, and the
// out-of-line call was measurable in the canonicalization benchmarks.
//
// Sanitizers: under AddressSanitizer the arena degrades to per-allocation
// operator new/delete (SOAP_ARENA_PASSTHROUGH), so use-after-free and
// overflow detection on arena-backed objects keeps working in the
// asan-ubsan preset.  The stats API is live in both modes.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define SOAP_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SOAP_ARENA_PASSTHROUGH 1
#endif
#endif
#ifndef SOAP_ARENA_PASSTHROUGH
#define SOAP_ARENA_PASSTHROUGH 0
#endif

namespace soap::support {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns storage for `bytes` bytes aligned to `align`.  Requests up to
  /// kMaxSmall bytes with fundamental alignment come from the pooled size
  /// classes; anything larger falls through to operator new (still tracked
  /// and freed through deallocate).  NOT thread-safe: callers serialize
  /// (the intern table holds its shard's exclusive lock).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Returns storage obtained from allocate.  `bytes`/`align` must match the
  /// allocating call (allocator-style contract, as with operator delete).
  /// Thread-safe and lock-free; may race with allocate() and itself.
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept;

  struct Stats {
    std::size_t blocks = 0;          ///< owned bump blocks
    std::size_t bytes_reserved = 0;  ///< total bytes in those blocks
    std::size_t live = 0;            ///< allocations not yet deallocated
  };
  [[nodiscard]] Stats stats() const;

  /// Fault-injection hook: after `count - 1` more successful allocations
  /// (process-wide, across every arena), one allocate() call throws
  /// std::bad_alloc and the hook disarms — count == 1 fails the very next
  /// allocation.  count == 0 disarms.  Thread-safe; exactly one caller
  /// observes the failure.  Active in every build mode (including the ASan
  /// passthrough) so the out-of-memory paths are testable everywhere.
  static void fail_after(std::size_t count) noexcept;
  /// Disarms the fault-injection hook (idempotent).
  static void clear_failure_hook() noexcept;

  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;
  /// Largest pooled request; chosen to cover the symbolic Node plus the
  /// shared_ptr control block with room to spare.
  static constexpr std::size_t kMaxSmall = 512;
  /// Size-class granularity; also the strongest alignment the pooled path
  /// guarantees (== default operator new alignment on this toolchain).
  static constexpr std::size_t kGranularity = 16;

 private:
  struct FreeSlot {
    FreeSlot* next;
  };
  static constexpr std::size_t kClasses = kMaxSmall / kGranularity;

  /// Rounds a pooled request up to its size class.  Every slot must be able
  /// to hold the intrusive free-list node.
  static constexpr std::size_t size_class(std::size_t bytes) {
    if (bytes < sizeof(void*)) bytes = sizeof(void*);
    return (bytes + kGranularity - 1) / kGranularity;
  }

  /// Slow paths, out of line: oversized requests and bump-block refill.
  void* allocate_large(std::size_t bytes, std::size_t align);
  void* refill_and_carve(std::size_t slot_bytes);
  static void deallocate_large(void* p, std::size_t align) noexcept;
  /// Out-of-line slow path of the fault hook: decrements the countdown and
  /// throws std::bad_alloc on the designated allocation.
  static void fail_hook_tick();

  /// < 0 disarmed; armed allocates pay one relaxed load.
  static std::atomic<long long> fail_countdown_;

  // Serialized-allocate state (guarded by the caller's serialization).
  std::vector<void*> blocks_;
  std::size_t block_bytes_;
  unsigned char* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  // Free lists: multi-producer (lock-free deallocate) / single consumer
  // (serialized allocate).
  std::atomic<FreeSlot*> free_[kClasses] = {};
  std::atomic<std::size_t> live_{0};
};

inline void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (fail_countdown_.load(std::memory_order_relaxed) >= 0) fail_hook_tick();
  live_.fetch_add(1, std::memory_order_relaxed);
#if SOAP_ARENA_PASSTHROUGH
  return align > __STDCPP_DEFAULT_NEW_ALIGNMENT__
             ? ::operator new(bytes, std::align_val_t{align})
             : ::operator new(bytes);
#else
  if (bytes > kMaxSmall || align > kGranularity) {
    return allocate_large(bytes, align);
  }
  const std::size_t cls = size_class(bytes);
  // Pop from the free list.  We are the only popper (allocate is serialized
  // by the caller), but lock-free deallocate() may push concurrently — the
  // CAS retries until the head is stable.  Acquire pairs with the release
  // in deallocate so the slot's memory is safely reusable.
  FreeSlot* head = free_[cls - 1].load(std::memory_order_acquire);
  while (head != nullptr &&
         !free_[cls - 1].compare_exchange_weak(head, head->next,
                                               std::memory_order_acquire,
                                               std::memory_order_acquire)) {
  }
  if (head != nullptr) return head;
  const std::size_t slot_bytes = cls * kGranularity;
  if (bump_left_ >= slot_bytes) {
    void* p = bump_;
    bump_ += slot_bytes;
    bump_left_ -= slot_bytes;
    return p;
  }
  return refill_and_carve(slot_bytes);
#endif
}

inline void Arena::deallocate(void* p, std::size_t bytes,
                              std::size_t align) noexcept {
  if (p == nullptr) return;
  live_.fetch_sub(1, std::memory_order_relaxed);
#if SOAP_ARENA_PASSTHROUGH
  (void)bytes;
  deallocate_large(p, align);
#else
  if (bytes > kMaxSmall || align > kGranularity) {
    deallocate_large(p, align);
    return;
  }
  const std::size_t cls = size_class(bytes);
  auto* slot = static_cast<FreeSlot*>(p);
  // Lock-free Treiber push (multi-producer safe; see the top-of-file note
  // for why the single-popper discipline rules out ABA).
  FreeSlot* head = free_[cls - 1].load(std::memory_order_relaxed);
  do {
    slot->next = head;
  } while (!free_[cls - 1].compare_exchange_weak(head, slot,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed));
#endif
}

/// std-allocator adapter over an Arena, usable wherever an Allocator is
/// accepted.  Inherits the arena's contract: allocate() only from the
/// serialized context (the intern table's shard lock), deallocate() from
/// anywhere.  The arena must outlive every allocation made through the
/// adapter.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

}  // namespace soap::support
