// Termination and degradation primitives for the analysis stack.
//
// Every long-running layer (subgraph enumeration, the numeric optimizer,
// corpus/attainment sweeps, the staged pipeline) accepts a `StopCriteria`
// and polls it at chunk boundaries.  The criteria aggregate three
// independent stop signals:
//
//   * CancellationToken — external, thread-safe request to stop (a service
//     frontend dropping a request, a test tearing a pipeline down).
//   * Deadline — a wall-clock budget on the whole derivation.
//   * ResourceBudget — caps on interned symbolic nodes (polled against the
//     sharded table's live count via a registered gauge), enumerated
//     subgraphs, and numeric-solver objective evaluations.
//
// A tripped criterion surfaces as a structured `AnalysisError` carrying a
// machine-readable `StatusCode`; each code maps to a distinct process exit
// code (status_exit_code) so callers of analyze_tool can distinguish
// deadline / budget / cancellation / bad input without parsing text.  The
// SDG layer catches deadline/budget errors and degrades to the sound
// per-statement bound instead of failing the kernel (docs/ROBUSTNESS.md).
//
// Default-constructed criteria are entirely unlimited and cost one branch
// per poll, so the hot no-limits path is unaffected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

namespace soap::support {

/// Structured result taxonomy, ordered by exit-code assignment.  kOk is the
/// absence of failure; everything else names why a derivation stopped.
enum class StatusCode {
  kOk = 0,                  ///< completed (possibly degraded)
  kInternalError = 1,       ///< unexpected exception escaping a layer
  kInvalidInput = 2,        ///< malformed DSL/flags (matches usage exit 2)
  kOptimizerNoConverge = 3, ///< numeric solve produced no finite intensity
  kDeadlineExceeded = 4,    ///< wall-clock deadline tripped
  kBudgetExceeded = 5,      ///< node/subgraph/eval budget tripped
  kCancelled = 6,           ///< external cancellation requested
};

/// Stable machine-readable name ("deadline_exceeded", ...).
[[nodiscard]] const char* status_code_name(StatusCode code) noexcept;

/// Process exit code for the class: 0 ok, 1 internal, 2 invalid input,
/// 3 no-converge, 4 deadline, 5 budget, 6 cancelled.
[[nodiscard]] int status_exit_code(StatusCode code) noexcept;

/// The one exception type the termination layer throws.  Derives from
/// std::runtime_error so pre-existing catch sites keep working; carries the
/// StatusCode so new catch sites can route on it.
class AnalysisError : public std::runtime_error {
 public:
  AnalysisError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

/// Copyable, thread-safe view of a cancellation flag.  Default-constructed
/// tokens are never cancelled (null flag, one pointer test per poll).
class CancellationToken {
 public:
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }
  /// True when this token is wired to a source (even if not yet tripped).
  [[nodiscard]] bool armed() const noexcept { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owns a cancellation flag; hand out token() copies to the work being
/// guarded and call request_cancel() from any thread.  Tokens outlive the
/// source safely (shared ownership of the flag).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_release);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }
  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(flag_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Wall-clock deadline on steady_clock.  Default-constructed deadlines
/// never expire.
class Deadline {
 public:
  Deadline() = default;

  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }
  [[nodiscard]] static Deadline after_ms(std::size_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Resource caps; 0 = unlimited.  max_live_nodes is polled against the
/// registered live-node gauge (the sharded intern table's live count);
/// max_subgraphs / max_solver_evals are enforced by the layers that own the
/// counters (SDG enumeration, the numeric optimizer) and are deliberately
/// per-run / per-solve so that which chunk trips is deterministic.
struct ResourceBudget {
  std::size_t max_live_nodes = 0;
  std::size_t max_subgraphs = 0;
  std::size_t max_solver_evals = 0;

  [[nodiscard]] bool unlimited() const noexcept {
    return max_live_nodes == 0 && max_subgraphs == 0 && max_solver_evals == 0;
  }
};

/// Gauge wiring: the symbolic layer registers its live interned-node count
/// at static-init time (support cannot depend on symbolic).  Unregistered
/// gauge reads as 0, i.e. the node budget never trips.
using LiveNodeGauge = std::size_t (*)();
void register_live_node_gauge(LiveNodeGauge gauge) noexcept;
[[nodiscard]] std::size_t live_node_count() noexcept;

/// Aggregate stop signals, passed by value through the analysis layers.
/// check()/enforce() poll in severity order cancel > deadline > node
/// budget; subgraph/eval budgets live in their owning layers' counters.
struct StopCriteria {
  CancellationToken cancel;
  Deadline deadline;
  ResourceBudget budget;

  [[nodiscard]] bool unlimited() const noexcept {
    return !cancel.armed() && !deadline.armed() && budget.unlimited();
  }

  /// Non-throwing poll: the highest-severity tripped criterion, or kOk.
  [[nodiscard]] StatusCode check() const noexcept {
    if (cancel.cancelled()) return StatusCode::kCancelled;
    if (deadline.expired()) return StatusCode::kDeadlineExceeded;
    if (budget.max_live_nodes != 0 &&
        live_node_count() > budget.max_live_nodes) {
      return StatusCode::kBudgetExceeded;
    }
    return StatusCode::kOk;
  }

  /// Throwing poll: raises AnalysisError naming the tripped criterion and
  /// `where` (the layer doing the polling) on any non-kOk check().
  void enforce(const char* where) const;
};

}  // namespace soap::support
