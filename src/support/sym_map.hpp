// SymMap<V>: a flat, sorted, SymId-keyed map.
//
// The analysis layers keep many tiny environments (tile sizes, substitution
// bindings, affine coefficients) that used to be std::map<std::string, V>.
// Symbol counts are small (a handful to a few dozen), so a sorted vector with
// binary search beats a node-based tree by a wide margin: one contiguous
// allocation, integer comparisons, cache-friendly iteration.
//
// Iteration order is SymId order (first-intern order) — deterministic within
// a run, but not lexicographic; render paths that need name order must sort
// by name explicitly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <string_view>
#include <utility>
#include <vector>

#include "support/interner.hpp"

namespace soap {

template <class V>
class SymMap {
 public:
  using value_type = std::pair<SymId, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  SymMap() = default;
  SymMap(std::initializer_list<value_type> init) {
    for (const value_type& kv : init) set(kv.first, kv.second);
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Inserts or overwrites the binding for `id`.
  void set(SymId id, V value) {
    auto it = lower_bound(id);
    if (it != entries_.end() && it->first == id) {
      it->second = std::move(value);
    } else {
      entries_.insert(it, value_type(id, std::move(value)));
    }
  }
  /// Convenience: interns `name` and binds it.
  void set(std::string_view name, V value) {
    set(intern_symbol(name), std::move(value));
  }

  /// Pointer to the bound value, or nullptr when absent.
  [[nodiscard]] const V* find(SymId id) const {
    auto it = lower_bound(id);
    return it != entries_.end() && it->first == id ? &it->second : nullptr;
  }
  [[nodiscard]] V* find(SymId id) {
    auto it = lower_bound(id);
    return it != entries_.end() && it->first == id ? &it->second : nullptr;
  }
  [[nodiscard]] bool contains(SymId id) const { return find(id) != nullptr; }

  /// Value reference, default-constructing the binding when absent.
  V& operator[](SymId id) {
    auto it = lower_bound(id);
    if (it == entries_.end() || it->first != id) {
      it = entries_.insert(it, value_type(id, V()));
    }
    return it->second;
  }

  void erase(SymId id) {
    auto it = lower_bound(id);
    if (it != entries_.end() && it->first == id) entries_.erase(it);
  }
  void clear() { entries_.clear(); }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  friend bool operator==(const SymMap& a, const SymMap& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator!=(const SymMap& a, const SymMap& b) {
    return !(a == b);
  }

 private:
  typename std::vector<value_type>::iterator lower_bound(SymId id) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& kv, SymId key) { return kv.first < key; });
  }
  [[nodiscard]] typename std::vector<value_type>::const_iterator lower_bound(
      SymId id) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& kv, SymId key) { return kv.first < key; });
  }

  std::vector<value_type> entries_;  // invariant: sorted by SymId, unique
};

/// Sorted set of SymIds with a 64-bit bloom mask for fast negative lookups.
/// This is the shape of the per-node symbol caches in the symbolic core and
/// of the "which variables does this term involve" sets in the bounds layer.
class SymIdSet {
 public:
  SymIdSet() = default;
  explicit SymIdSet(std::vector<SymId> sorted_unique)
      : ids_(std::move(sorted_unique)) {
    for (SymId id : ids_) mask_ |= bit(id);
  }

  static SymIdSet from_unsorted(std::vector<SymId> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return SymIdSet(std::move(ids));
  }

  [[nodiscard]] bool contains(SymId id) const {
    if ((mask_ & bit(id)) == 0) return false;
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] const std::vector<SymId>& ids() const { return ids_; }
  [[nodiscard]] std::uint64_t mask() const { return mask_; }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }

 private:
  static std::uint64_t bit(SymId id) { return 1ULL << (id.value & 63u); }

  std::vector<SymId> ids_;  // sorted, unique
  std::uint64_t mask_ = 0;
};

}  // namespace soap
