#include "support/interner.hpp"

#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace soap {

namespace {

struct InternTable {
  std::mutex mu;
  // string_view keys point into `names`, whose elements have stable addresses.
  std::unordered_map<std::string_view, std::uint32_t> index;
  std::deque<std::string> names;
};

// Leaked on purpose: symbol nodes (and through them, interned exprs held in
// static storage by tests/benches) may outlive any static destruction order
// we could arrange.  The pointer stays reachable, so LeakSanitizer is happy.
InternTable& table() {
  static auto* t = new InternTable();
  return *t;
}

}  // namespace

SymId intern_symbol(std::string_view name) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(name);
  if (it != t.index.end()) return SymId{it->second};
  auto id = static_cast<std::uint32_t>(t.names.size());
  const std::string& stored = t.names.emplace_back(name);
  t.index.emplace(std::string_view(stored), id);
  return SymId{id};
}

const std::string& symbol_name(SymId id) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (!id.valid() || id.value >= t.names.size()) {
    throw std::out_of_range("symbol_name: unknown SymId");
  }
  return t.names[id.value];
}

std::size_t interned_symbol_count() {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names.size();
}

}  // namespace soap
