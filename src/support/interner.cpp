#include "support/interner.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace soap {

namespace {

/// Interner sharding: the name -> id index is split 16 ways by the name's
/// hash, each slice behind its own mutex, so concurrent intern_symbol calls
/// on different names proceed without contention.  Ids stay dense and in
/// global first-intern order via one atomic counter.
constexpr std::size_t kShardBits = 4;
constexpr std::size_t kNumShards = 1u << kShardBits;  // 16

/// id -> name directory: a two-level array of atomic pointers, appended-to
/// only.  symbol_name() reads it lock-free — an id can only be observed by a
/// caller after intern_symbol published its entry (release/acquire pairing),
/// and entries are never removed or moved.
constexpr std::size_t kSegmentSize = 4096;
constexpr std::size_t kMaxSegments = 4096;  // 16M symbols, far beyond any run

struct DirSegment {
  std::atomic<const std::string*> names[kSegmentSize] = {};
};

struct InternShard {
  std::mutex mu;
  // string_view keys point into `names`, whose elements have stable addresses.
  std::unordered_map<std::string_view, std::uint32_t> index;
  std::deque<std::string> names;
};

struct InternTable {
  std::atomic<std::uint32_t> count{0};
  InternShard shards[kNumShards];
  std::atomic<DirSegment*> directory[kMaxSegments] = {};
};

// Leaked on purpose: symbol nodes (and through them, interned exprs held in
// static storage by tests/benches) may outlive any static destruction order
// we could arrange.  The pointer stays reachable, so LeakSanitizer is happy.
InternTable& table() {
  static auto* t = new InternTable();
  return *t;
}

DirSegment& segment_for(std::uint32_t id) {
  InternTable& t = table();
  const std::size_t seg = id / kSegmentSize;
  if (seg >= kMaxSegments) throw std::length_error("interner: id space full");
  DirSegment* s = t.directory[seg].load(std::memory_order_acquire);
  if (s == nullptr) {
    auto* fresh = new DirSegment();
    if (t.directory[seg].compare_exchange_strong(s, fresh,
                                                 std::memory_order_acq_rel)) {
      s = fresh;
    } else {
      delete fresh;  // another thread won the race; `s` now holds its segment
    }
  }
  return *s;
}

}  // namespace

SymId intern_symbol(std::string_view name) {
  InternTable& t = table();
  const std::size_t h = std::hash<std::string_view>{}(name);
  InternShard& sh =
      t.shards[(h >> (8 * sizeof(std::size_t) - kShardBits)) & (kNumShards - 1)];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.index.find(name);
  if (it != sh.index.end()) return SymId{it->second};
  const std::string& stored = sh.names.emplace_back(name);
  const std::uint32_t id = t.count.fetch_add(1, std::memory_order_relaxed);
  // Publish before returning: any thread that can name this id got it
  // (directly or transitively) from this call, ordering the acquire load in
  // symbol_name after this release store.
  segment_for(id).names[id % kSegmentSize].store(&stored,
                                                 std::memory_order_release);
  sh.index.emplace(std::string_view(stored), id);
  return SymId{id};
}

const std::string& symbol_name(SymId id) {
  InternTable& t = table();
  if (id.valid() && id.value / kSegmentSize < kMaxSegments) {
    if (DirSegment* seg =
            t.directory[id.value / kSegmentSize].load(std::memory_order_acquire)) {
      if (const std::string* name =
              seg->names[id.value % kSegmentSize].load(std::memory_order_acquire)) {
        return *name;
      }
    }
  }
  throw std::out_of_range("symbol_name: unknown SymId");
}

std::size_t interned_symbol_count() {
  return table().count.load(std::memory_order_acquire);
}

}  // namespace soap
