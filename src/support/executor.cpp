#include "support/executor.hpp"

#include <utility>

#include "support/thread_pool.hpp"

namespace soap::support {

void SerialExecutor::submit(std::function<void()> task) {
  // Inline execution keeps the class total (no hidden queue to drain), but
  // the structured layers never reach here: concurrency() == 0 makes them
  // run everything on the caller without submitting.
  std::function<void()> t = std::move(task);
  t();
}

ExecutorRef ExecutorRef::serial() {
  static SerialExecutor executor;
  return ExecutorRef(executor);
}

Executor& ExecutorRef::get() const {
  if (executor_ != nullptr) return *executor_;
  return ThreadPool::global();
}

}  // namespace soap::support
