// Small strict-parse helpers for CLI surfaces.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <optional>
#include <string>

namespace soap::support {

/// Strict digits-only parse of a non-negative integer: rejects empty input,
/// sign prefixes (strtoul would silently wrap "-1" to ULONG_MAX), trailing
/// garbage, and out-of-range values (ERANGE).  Shared by every `--threads`
/// flag so a typo can never dial a tool up to hardware_concurrency.  When
/// `error` is non-null, a rejection stores the human-readable reason — the
/// CLI layer prints it next to the flag name so the user learns *why* the
/// value was refused, not just that it was.
inline std::optional<std::size_t> parse_size_t(const std::string& value,
                                               std::string* error = nullptr) {
  const auto fail = [error](std::string reason) -> std::optional<std::size_t> {
    if (error != nullptr) *error = std::move(reason);
    return std::nullopt;
  };
  if (value.empty()) {
    return fail("empty value (expected a non-negative integer)");
  }
  if (value[0] == '-') {
    return fail("negative value '" + value + "' (sizes are non-negative)");
  }
  if (!std::isdigit(static_cast<unsigned char>(value[0]))) {
    return fail("'" + value + "' is not a non-negative integer");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long n = std::strtoul(value.c_str(), &end, 10);
  if (errno == ERANGE) {
    return fail("'" + value + "' is out of range for a size");
  }
  if (*end != '\0') {
    return fail("trailing characters after the number in '" + value + "'");
  }
  return static_cast<std::size_t>(n);
}

enum class FlagParse {
  kNoMatch,   ///< argv[i] is not this flag
  kOk,        ///< flag matched, value parsed into `out`
  kBadValue,  ///< flag matched but the value is missing or malformed
};

/// Matches `--<name> V` (advancing `i` past the value token) or
/// `--<name>=V` at argv[i] and strict-parses V via parse_size_t.  The one
/// shared implementation behind every size-valued CLI flag (`--threads`,
/// `--max-subgraph-size`, ...) across the bench drivers and analyze_tool;
/// only the callers' error policies differ (silent fallback vs hard exit).
/// On kBadValue with a non-null `error`, the reason (missing value /
/// parse_size_t's rejection message) is stored for the caller to print.
inline FlagParse consume_size_flag(int argc, char** argv, int& i,
                                   const std::string& name, std::size_t& out,
                                   std::string* error = nullptr) {
  const std::string flag = "--" + name;
  const std::string arg = argv[i];
  std::string value;
  if (arg == flag) {
    if (i + 1 >= argc) {
      if (error != nullptr) *error = "missing value (expected " + flag + " N)";
      return FlagParse::kBadValue;
    }
    value = argv[++i];
  } else if (arg.rfind(flag + "=", 0) == 0) {
    value = arg.substr(flag.size() + 1);
  } else {
    return FlagParse::kNoMatch;
  }
  std::optional<std::size_t> parsed = parse_size_t(value, error);
  if (!parsed) return FlagParse::kBadValue;
  out = *parsed;
  return FlagParse::kOk;
}

/// Matches `--<name> V` (advancing `i` past the value token) or
/// `--<name>=V` at argv[i] and stores the raw value.  An empty value
/// (`--family=` or a missing token) is kBadValue, so callers never see ""
/// where a name was required.  String sibling of consume_size_flag, shared
/// by the `--family` filters of the bench drivers and analyze_tool.
inline FlagParse consume_string_flag(int argc, char** argv, int& i,
                                     const std::string& name,
                                     std::string& out,
                                     std::string* error = nullptr) {
  const std::string flag = "--" + name;
  const std::string arg = argv[i];
  std::string value;
  if (arg == flag) {
    if (i + 1 >= argc) {
      if (error != nullptr) {
        *error = "missing value (expected " + flag + " NAME)";
      }
      return FlagParse::kBadValue;
    }
    value = argv[++i];
  } else if (arg.rfind(flag + "=", 0) == 0) {
    value = arg.substr(flag.size() + 1);
  } else {
    return FlagParse::kNoMatch;
  }
  if (value.empty()) {
    if (error != nullptr) *error = "empty value for " + flag;
    return FlagParse::kBadValue;
  }
  out = std::move(value);
  return FlagParse::kOk;
}

}  // namespace soap::support
