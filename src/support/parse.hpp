// Small strict-parse helpers for CLI surfaces.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <optional>
#include <string>

namespace soap::support {

/// Strict digits-only parse of a non-negative integer: rejects empty input,
/// sign prefixes (strtoul would silently wrap "-1" to ULONG_MAX), trailing
/// garbage, and out-of-range values (ERANGE).  Shared by every `--threads`
/// flag so a typo can never dial a tool up to hardware_concurrency.
inline std::optional<std::size_t> parse_size_t(const std::string& value) {
  if (value.empty() || !std::isdigit(static_cast<unsigned char>(value[0]))) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long n = std::strtoul(value.c_str(), &end, 10);
  if (*end != '\0' || errno == ERANGE) return std::nullopt;
  return static_cast<std::size_t>(n);
}

}  // namespace soap::support
