#include "support/digest.hpp"

namespace soap::support {

namespace {

// splitmix64 finalizer: the full-avalanche word scrambler both lanes use.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest::hex() const {
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHexDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kHexDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

std::optional<Digest> Digest::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  Digest d;
  for (int i = 0; i < 16; ++i) {
    const int h = hex_value(hex[i]);
    const int l = hex_value(hex[16 + i]);
    if (h < 0 || l < 0) return std::nullopt;
    d.hi = (d.hi << 4) | static_cast<std::uint64_t>(h);
    d.lo = (d.lo << 4) | static_cast<std::uint64_t>(l);
  }
  return d;
}

DigestWriter::DigestWriter()
    // Distinct fixed lane seeds; never zero so an empty stream still
    // finishes to a non-null digest.
    : a_(0x736f617020646967ULL),   // "soap dig"
      b_(0x657374207631202eULL) {  // "est v1 ."
}

void DigestWriter::mix_u64(std::uint64_t v) {
  ++count_;
  // Cross-feed the lanes so the pair behaves as one 128-bit state: a word
  // that collides one lane still separates the other.
  const std::uint64_t m = mix64(v ^ count_);
  a_ = mix64(a_ ^ m);
  b_ = mix64(b_ + (m ^ 0x5bf03635d0d8a495ULL) + a_);
}

void DigestWriter::mix_string(std::string_view s) {
  mix_u64(0x737472ULL);  // token tag "str"
  mix_u64(s.size());
  std::uint64_t word = 0;
  int shift = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << shift;
    shift += 8;
    if (shift == 64) {
      mix_u64(word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) mix_u64(word);
}

Digest DigestWriter::finish() const {
  // Finalize a copy so the writer stays usable.
  Digest d;
  d.hi = mix64(a_ ^ mix64(b_ ^ count_));
  d.lo = mix64(b_ + mix64(a_ + count_));
  if (d.hi == 0 && d.lo == 0) d.lo = 1;  // keep the null digest reserved
  return d;
}

}  // namespace soap::support
