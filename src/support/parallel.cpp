#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>

namespace soap::support {

std::size_t resolve_threads(std::size_t threads) {
  return threads == 0 ? ThreadPool::hardware_threads() : threads;
}

namespace {

// State shared between the calling thread and its pool helpers.  Owned by
// shared_ptr so helpers that wake up after parallel_for returned (their work
// already stolen by the caller) still have valid state to no-op against.
// The fn reference is only dereferenced while holding a claimed chunk, and
// chunks can no longer be claimed once parallel_for returns (either the
// cursor is exhausted or `cancelled` is set), so the reference never
// outlives its referent observably.
struct SharedWork {
  SharedWork(std::size_t n_in, std::size_t grain_in,
             const std::function<void(std::size_t)>& fn_in,
             CancellationToken cancel_in)
      : n(n_in), grain(grain_in), fn(fn_in), cancel(std::move(cancel_in)) {}

  const std::size_t n;
  const std::size_t grain;
  const std::function<void(std::size_t)>& fn;
  const CancellationToken cancel;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable cv;
  int active = 0;  // helpers currently inside drain(); guarded by mu
  std::exception_ptr error;           // guarded by mu
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  // Claims and runs chunks until the cursor is exhausted or a failure
  // cancels the loop.  Runs on the caller and on every started helper.
  void drain() {
    for (;;) {
      if (cancelled.load()) return;
      if (cancel.cancelled()) {
        // External cancellation: stop claiming.  The caller raises
        // kCancelled after the helpers retire (a recorded fn failure still
        // outranks it).
        cancelled.store(true);
        return;
      }
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
          }
          cancelled.store(true);
          return;
        }
      }
    }
  }
};

void helper_main(const std::shared_ptr<SharedWork>& work) {
  {
    std::lock_guard<std::mutex> lock(work->mu);
    ++work->active;
  }
  work->drain();
  {
    std::lock_guard<std::mutex> lock(work->mu);
    --work->active;
  }
  work->cv.notify_all();
}

}  // namespace

void parallel_for(std::size_t n, const ParallelOptions& options,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t threads = resolve_threads(options.threads);
  const std::size_t chunks = (n + grain - 1) / grain;
  if (threads <= 1 || chunks <= 1) {
    // Serial bypass: no executor, no shared state, native exception flow.
    for (std::size_t i = 0; i < n; ++i) {
      if (options.cancel.cancelled()) {
        throw AnalysisError(StatusCode::kCancelled,
                            "parallel_for cancelled");
      }
      fn(i);
    }
    return;
  }

  // The caller is one executor; there is never a point in more helpers than
  // remaining chunks, nor than the executor can actually run concurrently
  // (a SerialExecutor therefore yields zero helpers and the caller drains
  // every chunk itself).
  const std::size_t helpers = std::min(
      std::min(threads, chunks) - 1, options.executor.concurrency());
  if (helpers == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (options.cancel.cancelled()) {
        throw AnalysisError(StatusCode::kCancelled,
                            "parallel_for cancelled");
      }
      fn(i);
    }
    return;
  }
  auto work = std::make_shared<SharedWork>(n, grain, fn, options.cancel);
  for (std::size_t h = 0; h < helpers; ++h) {
    options.executor.submit([work] { helper_main(work); });
  }

  work->drain();

  std::unique_lock<std::mutex> lock(work->mu);
  work->cv.wait(lock, [&] { return work->active == 0; });
  if (work->error) {
    // Move the error out so the exception object's last reference is
    // released on this thread, not by whichever late helper happens to drop
    // the final SharedWork ref.
    std::exception_ptr error = std::move(work->error);
    work->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
  lock.unlock();
  if (options.cancel.cancelled()) {
    throw AnalysisError(StatusCode::kCancelled, "parallel_for cancelled");
  }
}

}  // namespace soap::support
