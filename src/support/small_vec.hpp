// SmallVec<T, N>: a contiguous vector with inline storage for the first N
// elements, spilling to the heap only beyond that.
//
// The symbolic core stores every node's operand list in one of these
// (symbolic/expr.hpp): the overwhelming majority of Add/Mul/Min/Max nodes
// have arity <= 4, so inline capacity turns the per-node operand heap
// allocation into plain struct storage.  The container is deliberately
// minimal — exactly the surface the canonicalizers and their callers use —
// and keeps vector-compatible iterator/semantics so call sites read the
// same as before:
//
//   * contiguous storage, T* iterators, data()/size()/operator[];
//   * push_back/emplace_back with amortized-doubling growth;
//   * single-element insert/erase (the sorted-merge fast path in make_add);
//   * construction from initializer lists and iterator ranges.
//
// Not thread-safe (like std::vector).  Iterators invalidate on growth and
// on insert/erase, exactly as for std::vector.  T must be movable; moves
// are used for relocation whenever they cannot throw.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace soap::support {

template <class T, std::size_t N>
class SmallVec {
  static_assert(N >= 1, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) unchecked_push(v);
  }

  template <class It>
  SmallVec(It first, It last) {
    assign(first, last);
  }

  SmallVec(const SmallVec& other) {
    reserve(other.size_);
    for (const T& v : other) unchecked_push(v);
  }

  SmallVec(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    steal_or_move(std::move(other));
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) unchecked_push(v);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      clear();
      release_heap();
      steal_or_move(std::move(other));
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t want) {
    if (want > cap_) grow_to(want);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow_to(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    data_[size_ - 1].~T();
    --size_;
  }

  /// Inserts a single element before `pos` (vector semantics: returns an
  /// iterator to the inserted element; invalidates iterators).
  iterator insert(const_iterator pos, T value) {
    std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == cap_) grow_to(size_ + 1);  // recompute base after growth
    if (at == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(value));
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (std::size_t i = size_ - 1; i > at; --i) {
        data_[i] = std::move(data_[i - 1]);
      }
      data_[at] = std::move(value);
    }
    ++size_;
    return data_ + at;
  }

  /// Erases the element at `pos`; returns an iterator to the next element.
  iterator erase(const_iterator pos) {
    std::size_t at = static_cast<std::size_t>(pos - data_);
    for (std::size_t i = at + 1; i < size_; ++i) {
      data_[i - 1] = std::move(data_[i]);
    }
    pop_back();
    return data_ + at;
  }

  template <class It>
  void assign(It first, It last) {
    clear();
    if constexpr (std::is_base_of_v<
                      std::random_access_iterator_tag,
                      typename std::iterator_traits<It>::iterator_category>) {
      reserve(static_cast<std::size_t>(std::distance(first, last)));
    }
    for (; first != last; ++first) push_back(*first);
  }

  void clear() {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
    size_ = 0;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }

 private:
  T* inline_slots() { return std::launder(reinterpret_cast<T*>(inline_)); }
  [[nodiscard]] bool is_inline() const {
    return data_ == reinterpret_cast<const T*>(inline_);
  }

  void unchecked_push(const T& v) {
    ::new (static_cast<void*>(data_ + size_)) T(v);
    ++size_;
  }

  void grow_to(std::size_t want) {
    std::size_t cap = std::max(cap_ * 2, want);
    T* heap = static_cast<T*>(::operator new(cap * sizeof(T), kAlign));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move_if_noexcept(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = heap;
    cap_ = cap;
  }

  void release_heap() {
    if (!is_inline()) ::operator delete(data_, kAlign);
    data_ = inline_slots();
    cap_ = N;
  }

  /// Move-construction core: steal the heap buffer outright, or move the
  /// inline elements one by one.  `other` is left empty either way.
  void steal_or_move(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = other.inline_slots();
      other.size_ = 0;
      other.cap_ = N;
    }
  }

  static constexpr std::align_val_t kAlign{alignof(T)};

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_);
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace soap::support
