#include "support/rational.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>

namespace soap {

namespace {

constexpr int128 kInt128Max =
    (int128{0x7fffffffffffffffLL} << 64) | int128{0xffffffffffffffffULL};
constexpr int128 kInt128Min = -kInt128Max - 1;

int128 abs128(int128 v) { return v < 0 ? -v : v; }

}  // namespace

int128 gcd128(int128 a, int128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int128 add_checked(int128 a, int128 b) {
  int128 r;
  if (__builtin_add_overflow(a, b, &r)) {
    throw OverflowError("int128 add overflow");
  }
  return r;
}

int128 mul_checked(int128 a, int128 b) {
  int128 r;
  // __builtin_mul_overflow is well-defined for __int128 and safe under
  // optimization (a manual r/b != a check is UB-prone: the compiler may
  // assume signed overflow never happens and elide it).
  if (__builtin_mul_overflow(a, b, &r)) {
    throw OverflowError("int128 mul overflow");
  }
  return r;
}

std::string int128_str(int128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  // kInt128Min cannot be negated; peel the last digit first.
  std::string out;
  while (v != 0) {
    int digit = static_cast<int>(v % 10);
    if (digit < 0) digit = -digit;
    out.push_back(static_cast<char>('0' + digit));
    v /= 10;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

Rational::Rational(int128 num, int128 den) {
  if (den == 0) throw std::domain_error("Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  int128 g = gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

long long Rational::to_int() const {
  if (den_ != 1) throw std::logic_error("Rational::to_int on non-integer");
  if (num_ > std::numeric_limits<long long>::max() ||
      num_ < std::numeric_limits<long long>::min()) {
    throw OverflowError("Rational::to_int overflow");
  }
  return static_cast<long long>(num_);
}

std::string Rational::str() const {
  if (den_ == 1) return int128_str(num_);
  return int128_str(num_) + "/" + int128_str(den_);
}

Rational Rational::operator-() const { return Rational(-num_, den_); }

Rational operator+(const Rational& a, const Rational& b) {
  int128 g = gcd128(a.den_, b.den_);
  int128 bd = b.den_ / g;
  int128 num = add_checked(mul_checked(a.num_, bd),
                           mul_checked(b.num_, a.den_ / g));
  int128 den = mul_checked(a.den_, bd);
  return Rational(num, den);
}

Rational operator-(const Rational& a, const Rational& b) { return a + (-b); }

Rational operator*(const Rational& a, const Rational& b) {
  // Cross-cancel before multiplying to keep magnitudes small.
  int128 g1 = gcd128(a.num_, b.den_);
  int128 g2 = gcd128(b.num_, a.den_);
  return Rational(mul_checked(a.num_ / g1, b.num_ / g2),
                  mul_checked(a.den_ / g2, b.den_ / g1));
}

Rational operator/(const Rational& a, const Rational& b) {
  return a * b.inverse();
}

bool operator<(const Rational& a, const Rational& b) {
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  return mul_checked(a.num_, b.den_) < mul_checked(b.num_, a.den_);
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

Rational Rational::inverse() const {
  if (num_ == 0) throw std::domain_error("Rational: divide by zero");
  return Rational(den_, num_);
}

Rational Rational::pow(long long e) const {
  if (e < 0) return inverse().pow(-e);
  Rational base = *this;
  Rational acc = 1;
  while (e > 0) {
    if (e & 1) acc *= base;
    base = (e > 1) ? base * base : base;
    e >>= 1;
  }
  return acc;
}

int128 Rational::floor() const {
  int128 q = num_ / den_;
  if (num_ < 0 && num_ % den_ != 0) --q;
  return q;
}

namespace {

// Exact integer n-th root: returns true and sets *root if v is a perfect
// n-th power (v >= 0).
bool int_nth_root(int128 v, long long n, int128* root) {
  if (v < 0) return false;
  if (v == 0 || v == 1) {
    *root = v;
    return true;
  }
  // Newton-style search seeded from double.
  double guess = std::pow(static_cast<double>(v), 1.0 / static_cast<double>(n));
  int128 lo = static_cast<int128>(guess) - 2;
  if (lo < 1) lo = 1;
  for (int128 r = lo; r <= lo + 4; ++r) {
    int128 p = 1;
    bool over = false;
    for (long long i = 0; i < n; ++i) {
      try {
        p = mul_checked(p, r);
      } catch (const OverflowError&) {
        over = true;
        break;
      }
      if (p > v) break;
    }
    if (!over && p == v) {
      *root = r;
      return true;
    }
  }
  return false;
}

}  // namespace

bool Rational::nth_root(long long n, Rational* out) const {
  if (n <= 0) return false;
  if (num_ < 0) return false;
  int128 rn = 0, rd = 0;
  if (!int_nth_root(num_, n, &rn)) return false;
  if (!int_nth_root(den_, n, &rd)) return false;
  *out = Rational(rn, rd);
  return true;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.str();
}

Rational rationalize(double x, long long max_den) {
  if (!std::isfinite(x)) throw std::domain_error("rationalize: non-finite");
  bool neg = x < 0;
  if (neg) x = -x;
  // Continued fraction expansion keeping convergents p/q with q <= max_den.
  long long p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double frac = x;
  for (int it = 0; it < 64; ++it) {
    double fl = std::floor(frac);
    if (fl > 9e17) break;
    long long a = static_cast<long long>(fl);
    long long p2, q2;
    if (__builtin_mul_overflow(a, p1, &p2) ||
        __builtin_add_overflow(p2, p0, &p2) ||
        __builtin_mul_overflow(a, q1, &q2) ||
        __builtin_add_overflow(q2, q0, &q2)) {
      break;
    }
    if (q2 > max_den) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    double rem = frac - fl;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (q1 == 0) return Rational(0);
  Rational r(p1, q1);
  return neg ? -r : r;
}

bool rationalize_within(double x, double rel_tol, long long max_den,
                        Rational* out) {
  if (!std::isfinite(x)) return false;
  bool neg = x < 0;
  double ax = neg ? -x : x;
  long long p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double frac = ax;
  for (int it = 0; it < 64; ++it) {
    double fl = std::floor(frac);
    if (fl > 9e17) break;
    long long a = static_cast<long long>(fl);
    long long p2, q2;
    if (__builtin_mul_overflow(a, p1, &p2) ||
        __builtin_add_overflow(p2, p0, &p2) ||
        __builtin_mul_overflow(a, q1, &q2) ||
        __builtin_add_overflow(q2, q0, &q2)) {
      break;
    }
    if (q2 > max_den) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    // First convergent within tolerance wins: smallest denominator.
    double approx = static_cast<double>(p1) / static_cast<double>(q1);
    if (std::fabs(approx - ax) <= rel_tol * std::max(1e-300, ax)) {
      Rational r(p1, q1);
      *out = neg ? -r : r;
      return true;
    }
    double rem = frac - fl;
    if (rem < 1e-15) break;
    frac = 1.0 / rem;
  }
  return false;
}

}  // namespace soap
