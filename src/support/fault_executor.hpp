// FaultInjectingExecutor: a seeded, deterministic fault decorator over any
// Executor, for stress-testing the structured-parallel layers.
//
// Every fault decision is a pure function of (seed, submission index), so a
// given plan replays identically run after run — the property the
// determinism suite relies on when it asserts bit-identical analysis output
// under an adversarial schedule.  Three fault modes, composable:
//
//   * delay    — the helper sleeps a seeded duration before running, which
//                exercises reorder-window stalls and help-first
//                backpressure on the producer.
//   * drop     — the submitted thunk never runs (a lost or crashed helper;
//                internally the decorator raises and swallows a
//                FaultInjectedError so the "thrown task" path is exercised
//                without tearing down the inner pool's worker).  Progress
//                must not depend on any helper actually running — the
//                pipeline/parallel_for contract — so dropped tasks must
//                never hang a run.
//   * reorder  — submissions are buffered and released to the inner
//                executor in a seeded shuffle, up to `reorder_window` held
//                at a time.
//
// The decorator honestly reports the inner executor's concurrency(), so the
// structured layers plan the same helper fan-out they would without faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "support/executor.hpp"

namespace soap::support {

/// The exception a dropped task raises (and the decorator swallows) inside
/// the inner executor's worker.  Public so tests can also throw it from
/// work functions to model faulty work items.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Fault probabilities are in permille (0..1000) of submissions, decided
/// deterministically per submission index.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::uint32_t delay_permille = 0;  ///< chance of an injected pre-task sleep
  std::uint32_t delay_max_us = 200;  ///< injected sleeps span [0, this]
  std::uint32_t drop_permille = 0;   ///< chance the task never runs
  std::uint32_t reorder_window = 0;  ///< >0: hold + shuffled release depth
};

class FaultInjectingExecutor final : public Executor {
 public:
  FaultInjectingExecutor(Executor& inner, const FaultPlan& plan)
      : inner_(inner), plan_(plan) {}
  /// Releases anything still held in the reorder buffer.
  ~FaultInjectingExecutor() override { flush(); }

  void submit(std::function<void()> task) override;
  [[nodiscard]] std::size_t concurrency() const override {
    return inner_.concurrency();
  }

  /// Forwards every held submission (seeded order) to the inner executor.
  /// Call before waiting on work that must eventually run.
  void flush();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t reordered = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// splitmix64 of (seed, index, salt): the per-decision random word.
  [[nodiscard]] std::uint64_t decision(std::uint64_t index,
                                       std::uint64_t salt) const;
  /// Wraps `task` with the delay/drop faults decided for `index`.
  [[nodiscard]] std::function<void()> decorate(std::function<void()> task,
                                               std::uint64_t index);

  Executor& inner_;
  const FaultPlan plan_;

  mutable std::mutex mu_;
  std::vector<std::function<void()>> held_;  ///< reorder buffer
  std::uint64_t index_ = 0;
  Stats stats_;
};

}  // namespace soap::support
