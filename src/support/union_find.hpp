// Disjoint-set forest with path compression and union by size.
// Used by the SDG merge pass (src/sdg/merge.cpp) to unify iteration variables
// of different statements that index the same array dimension.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace soap {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns the new root (no-op if already joined).
  std::size_t unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace soap
