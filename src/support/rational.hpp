// Exact rational arithmetic on checked 128-bit integers.
//
// The symbolic engine (src/symbolic) keeps every coefficient exact; Table 2
// bounds carry constants such as 1/3 or 32/(3*cbrt(3)) whose integrity we must
// preserve end to end.  128-bit magnitude is far beyond what the analysis of
// the paper's kernel corpus produces; overflow aborts loudly instead of
// silently wrapping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace soap {

/// Signed 128-bit integer used as the numerator/denominator storage type.
using int128 = __int128;

/// Thrown when exact arithmetic would exceed 128-bit magnitude.
class OverflowError : public std::runtime_error {
 public:
  explicit OverflowError(const std::string& what) : std::runtime_error(what) {}
};

/// An always-normalized rational number p/q with q > 0 and gcd(p, q) == 1.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(long long n) : num_(n), den_(1) {}  // NOLINT(implicit)
  Rational(int128 num, int128 den);

  [[nodiscard]] int128 num() const { return num_; }
  [[nodiscard]] int128 den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_one() const { return num_ == 1 && den_ == 1; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_negative() const { return num_ < 0; }
  [[nodiscard]] bool is_positive() const { return num_ > 0; }

  [[nodiscard]] double to_double() const;
  /// Requires is_integer(); throws std::logic_error otherwise.
  [[nodiscard]] long long to_int() const;
  [[nodiscard]] std::string str() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

  /// abs(p)/q.
  [[nodiscard]] Rational abs() const;
  /// Reciprocal; throws std::domain_error on zero.
  [[nodiscard]] Rational inverse() const;
  /// Integer power (exponent may be negative; 0^negative throws).
  [[nodiscard]] Rational pow(long long e) const;
  /// Floor of the rational as an int128.
  [[nodiscard]] int128 floor() const;

  /// Exact n-th root if it exists (e.g. (8/27).nth_root(3) == 2/3).
  /// Returns false if the rational is not a perfect n-th power.
  bool nth_root(long long n, Rational* out) const;

 private:
  int128 num_;
  int128 den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// gcd on int128 magnitudes.
int128 gcd128(int128 a, int128 b);
/// Checked int128 multiply; throws OverflowError.
int128 mul_checked(int128 a, int128 b);
/// Checked int128 add; throws OverflowError.
int128 add_checked(int128 a, int128 b);
/// Decimal rendering of an int128.
std::string int128_str(int128 v);

/// Best rational approximation of `x` with denominator <= max_den
/// (continued-fraction convergents).  Used to recover exact exponents and
/// constants from the numeric optimizer's output.
Rational rationalize(double x, long long max_den);

/// Smallest-denominator continued-fraction convergent of `x` within the given
/// relative tolerance, or std::nullopt-like failure signalled by returning
/// false.  Prefers simple constants (1/8, 4/27, ...) over high-denominator
/// coincidences, which matters when snapping numerically-fitted constants.
bool rationalize_within(double x, double rel_tol, long long max_den,
                        Rational* out);

}  // namespace soap
