// Global symbol interner: maps symbol names to dense 32-bit `SymId`s.
//
// Every symbol the analysis touches (program parameters N, M, T, ..., the
// fast-memory size S, iteration/tile variables i, j, k, ...) is interned
// exactly once; all hot paths then key their environments and symbol sets by
// `SymId` instead of `std::string`, turning string hashing/comparison into
// integer arithmetic.  The symbolic core (symbolic/expr.*) stores the SymId in
// every symbol node and derives per-node symbol-set caches from it.
//
// Thread-safety contract: `intern_symbol` and `symbol_name` may be called
// concurrently from any thread.  The name -> id index is sharded 16 ways by
// the name's hash (one mutex per shard), and `symbol_name` is lock-free: it
// reads an append-only id -> name directory of atomic pointers.  Ids are
// dense and assigned in global first-intern order (one atomic counter);
// names are never evicted, so a `const std::string&` returned by
// `symbol_name()` stays valid for the lifetime of the process.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace soap {

/// Dense identifier of an interned symbol name.  Value-comparable and
/// hashable; the numeric order is first-intern order (stable within a run,
/// *not* lexicographic — callers that need name order must sort by name).
struct SymId {
  std::uint32_t value = kInvalidValue;

  static constexpr std::uint32_t kInvalidValue = 0xffffffffu;

  [[nodiscard]] constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr bool operator==(SymId a, SymId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(SymId a, SymId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(SymId a, SymId b) {
    return a.value < b.value;
  }
  friend constexpr bool operator<=(SymId a, SymId b) {
    return a.value <= b.value;
  }
  friend constexpr bool operator>(SymId a, SymId b) {
    return a.value > b.value;
  }
  friend constexpr bool operator>=(SymId a, SymId b) {
    return a.value >= b.value;
  }
};

/// Interns `name`, returning its dense id (idempotent).
SymId intern_symbol(std::string_view name);

/// Name of an interned id.  The reference is stable for the process lifetime.
/// Throws std::out_of_range for ids that were never handed out.
const std::string& symbol_name(SymId id);

/// Number of distinct symbols interned so far.
std::size_t interned_symbol_count();

}  // namespace soap

template <>
struct std::hash<soap::SymId> {
  std::size_t operator()(soap::SymId id) const noexcept {
    // Fibonacci multiplicative mix; ids are dense so identity would also do,
    // but mixing keeps unordered_map buckets balanced under striding.
    return static_cast<std::size_t>(id.value) * 0x9e3779b97f4a7c15ULL;
  }
};
