#include "support/thread_pool.hpp"

#include <utility>

namespace soap::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static auto* pool = new ThreadPool(0);
  return *pool;
}

std::size_t ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace soap::support
