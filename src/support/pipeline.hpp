// Staged pipeline with a streaming producer, parallel workers, and an
// ordered-reduction sink — the execution shape of the whole analysis stack
// (subgraph enumeration -> per-subgraph analysis -> deterministic reduction).
//
//   run_pipeline<Item>(options, produce, work, consume)
//
//     produce(emit)     runs on the calling thread; calls emit(item) once
//                       per work item.  emit returns false when the
//                       pipeline has been cancelled — stop producing.
//     work(Item&&) -> R runs on the caller and up to workers-1 executor
//                       helpers, overlapped with production.
//     consume(seq, R&&) called exclusively and in strictly increasing
//                       sequence order (seq = the emit index), so the
//                       reduction is bit-identical for every worker count,
//                       executor, and completion interleaving.
//
// Design points, in the order they matter to callers:
//
// * Determinism.  Scheduling decides only *who* runs an item; results are
//   reordered by sequence index before consume sees them, so a pure `work`
//   makes the reduction independent of thread count and timing.
//
// * Serial bypass.  An effective worker count of 1 — or any executor whose
//   concurrency() is 0, e.g. SerialExecutor — runs emit -> work -> consume
//   inline with no queue, no locks, and native exception flow: zero
//   overhead over a hand-written loop.
//
// * Backpressure, bounded memory.  The stage queue holds at most
//   `queue_capacity` items and the reorder buffer at most `reorder_window`
//   completed results.  A producer that outruns the workers, or workers
//   that outrun the consumer, block instead of accumulating unboundedly.
//
// * Progress never depends on the executor.  The producer, when the queue
//   is full, processes an item itself instead of waiting for a helper
//   (help-first backpressure), and the caller drains the queue after
//   producing; a fully starved pool degrades to the serial schedule
//   instead of deadlocking.  Items are claimed FIFO, so the holder of the
//   lowest undelivered sequence index is never blocked on the reorder
//   window — some thread can always advance it.
//
// * Exceptions.  The first failure — in produce, work, or consume — cancels
//   the pipeline (emit starts returning false, queued items are dropped);
//   among the failures that ran, the one with the smallest sequence index
//   is rethrown on the calling thread after all active helpers retired.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

#include "support/cancel.hpp"
#include "support/executor.hpp"
#include "support/parallel.hpp"

namespace soap::support {

struct PipelineOptions {
  /// Worker budget counting the calling thread: 1 = serial inline
  /// (default), 0 = hardware_threads(), N = up to N.  Helper fan-out is
  /// additionally capped by executor.concurrency().
  std::size_t workers = 1;
  /// Stage-queue capacity (producer blocks / helps past it); 0 = auto.
  std::size_t queue_capacity = 0;
  /// Max completed results held for reordering before workers block
  /// (bounds memory under a slow consumer); 0 = auto.
  std::size_t reorder_window = 0;
  /// Where helper workers run; default = ThreadPool::global().
  ExecutorRef executor;
  /// External cooperative cancellation, polled by the producer before every
  /// enqueue and by workers at every claim.  Once the token trips, emit
  /// returns false, queued items are dropped, and run_pipeline raises
  /// AnalysisError{kCancelled} after the helpers retire — unless a real
  /// failure with a lower sequence index was recorded first (the usual
  /// ranking rule).  The consumed prefix remains valid.  Default: never
  /// cancelled, one null-pointer test per poll.
  CancellationToken cancel;
};

namespace detail {

// The non-templated spine of a pipeline run: cancellation, lowest-sequence
// error recording, helper accounting, and every condition variable.  One
// mutex guards the templated queue/reorder state too — the per-item work is
// orders of magnitude heavier than the handoffs, so lock granularity is not
// the bottleneck, and a single mutex keeps the blocking protocol auditable.
class PipelineControl {
 public:
  std::mutex mu;
  std::condition_variable item_cv;    ///< waiting for queue items
  std::condition_variable window_cv;  ///< waiting for the reorder window
  std::condition_variable idle_cv;    ///< caller waiting for helpers
  // No queue-capacity condvar: a producer facing a full queue processes an
  // item itself (help-first backpressure) instead of ever blocking for
  // space.

  std::atomic<bool> cancelled{false};
  bool closed = false;  ///< producer finished; guarded by mu
  int active = 0;       ///< helpers currently running; guarded by mu

  /// Records the exception for `seq` if it is the lowest-index failure so
  /// far, then cancels the pipeline.  Call with mu held.
  void record_error_locked(std::size_t seq, std::exception_ptr error);
  /// Sets `cancelled` and wakes every waiter.  Call with mu held.
  void cancel_locked();
  /// Blocks until every started helper has retired.  Caller-side.
  void wait_helpers_retired();
  /// Rethrows the recorded lowest-index failure, if any, releasing the
  /// exception's last pipeline-held reference on this thread.
  void rethrow_if_error();

 private:
  std::exception_ptr error_;
  std::size_t error_seq_ = static_cast<std::size_t>(-1);
};

template <class Item, class R>
struct PipelineState {
  PipelineControl ctl;
  const std::size_t capacity;
  const std::size_t window;
  const std::function<R(Item&&)>& work;
  const std::function<void(std::size_t, R&&)>& consume;
  const CancellationToken cancel;  ///< external token; see PipelineOptions

  // All guarded by ctl.mu.
  std::deque<std::pair<std::size_t, Item>> queue;
  std::map<std::size_t, R> held;  ///< completed, waiting for their turn
  std::size_t next_seq = 0;       ///< next sequence index to consume

  PipelineState(std::size_t capacity_in, std::size_t window_in,
                const std::function<R(Item&&)>& work_in,
                const std::function<void(std::size_t, R&&)>& consume_in,
                CancellationToken cancel_in)
      : capacity(capacity_in),
        window(window_in),
        work(work_in),
        consume(consume_in),
        cancel(std::move(cancel_in)) {}

  /// Claims one queued item and runs it through work + ordered delivery.
  /// wait=true blocks until an item arrives, the queue closes, or the
  /// pipeline cancels; wait=false (producer help) only takes what is
  /// already queued.  Returns false when there was nothing left to claim.
  bool run_one(bool wait) {
    std::optional<std::pair<std::size_t, Item>> claim;
    {
      std::unique_lock<std::mutex> lock(ctl.mu);
      if (wait) {
        ctl.item_cv.wait(lock, [&] {
          return ctl.cancelled.load() || ctl.closed || !queue.empty();
        });
      }
      // Convert external cancellation into the internal cancelled state so
      // queued items drop and every waiter wakes, same as an error would.
      if (!ctl.cancelled.load() && cancel.cancelled()) ctl.cancel_locked();
      if (ctl.cancelled.load() || queue.empty()) return false;
      claim.emplace(std::move(queue.front()));
      queue.pop_front();
    }
    try {
      deliver(claim->first, work(std::move(claim->second)));
    } catch (...) {
      std::lock_guard<std::mutex> lock(ctl.mu);
      ctl.record_error_locked(claim->first, std::current_exception());
    }
    return true;
  }

  /// Hands a completed result to the ordered sink: waits for the reorder
  /// window, then drains every consecutive ready result through consume.
  /// consume runs under the lock — that is what serializes it and gives
  /// the strict sequence order.
  void deliver(std::size_t seq, R&& result) {
    std::unique_lock<std::mutex> lock(ctl.mu);
    ctl.window_cv.wait(lock, [&] {
      return ctl.cancelled.load() || seq < next_seq + window;
    });
    if (ctl.cancelled.load()) return;
    held.emplace(seq, std::move(result));
    while (!held.empty() && held.begin()->first == next_seq) {
      auto node = held.extract(held.begin());
      try {
        consume(node.key(), std::move(node.mapped()));
      } catch (...) {
        ctl.record_error_locked(node.key(), std::current_exception());
        return;
      }
      ++next_seq;
      ctl.window_cv.notify_all();
    }
  }

  /// Worker loop: claim-and-run until the queue is closed and empty or the
  /// pipeline cancels.  Runs on every helper and, post-production, on the
  /// caller.
  void drain() {
    while (run_one(/*wait=*/true)) {
    }
  }

  void helper_main() {
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      ++ctl.active;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      --ctl.active;
    }
    ctl.idle_cv.notify_all();
  }
};

}  // namespace detail

/// Runs the produce -> work -> consume pipeline described at the top of
/// this header.  Item is the stage payload (explicit template argument);
/// R is deduced from `work`.
template <class Item, class Produce, class Work, class Consume>
void run_pipeline(const PipelineOptions& options, Produce&& produce,
                  Work&& work, Consume&& consume) {
  using R = std::decay_t<std::invoke_result_t<Work&, Item&&>>;
  using Emit = std::function<bool(Item&&)>;

  const std::size_t workers = resolve_threads(options.workers);
  const std::size_t helpers = std::min(
      workers > 0 ? workers - 1 : 0, options.executor.concurrency());
  if (helpers == 0) {
    // Serial bypass: emit -> work -> consume inline, native exceptions.
    std::size_t seq = 0;
    Emit emit = [&](Item&& item) -> bool {
      if (options.cancel.cancelled()) return false;
      consume(seq, work(std::move(item)));
      ++seq;
      return true;
    };
    produce(static_cast<const Emit&>(emit));
    if (options.cancel.cancelled()) {
      throw AnalysisError(StatusCode::kCancelled, "pipeline cancelled");
    }
    return;
  }

  const std::size_t capacity = options.queue_capacity != 0
                                   ? options.queue_capacity
                                   : 2 * (helpers + 1);
  const std::size_t window = options.reorder_window != 0
                                 ? options.reorder_window
                                 : 2 * (capacity + helpers + 1);

  const std::function<R(Item&&)> work_fn = std::ref(work);
  const std::function<void(std::size_t, R&&)> consume_fn = std::ref(consume);
  // shared_ptr so a helper that starts after the caller already returned
  // (its work long since drained) still has valid state to no-op against.
  auto state = std::make_shared<detail::PipelineState<Item, R>>(
      capacity, window, work_fn, consume_fn, options.cancel);
  for (std::size_t h = 0; h < helpers; ++h) {
    options.executor.submit([state] { state->helper_main(); });
  }

  std::size_t produced = 0;
  Emit emit = [&](Item&& item) -> bool {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state->ctl.mu);
        if (state->ctl.cancelled.load()) return false;
        if (options.cancel.cancelled()) {
          // External cancellation observed at the enqueue point (including
          // while spinning on a full queue): drop to the cancelled state so
          // helpers drain out instead of chewing queued items.
          state->ctl.cancel_locked();
          return false;
        }
        if (state->queue.size() < state->capacity) {
          state->queue.emplace_back(produced, std::move(item));
          ++produced;
          state->ctl.item_cv.notify_one();
          return true;
        }
      }
      // Queue full: help-first backpressure.  Processing an item here (a)
      // frees a slot and (b) guarantees progress even if the executor never
      // actually runs a helper.
      state->run_one(/*wait=*/false);
    }
  };
  try {
    produce(static_cast<const Emit&>(emit));
  } catch (...) {
    // A producer failure ranks after every item it already emitted.
    std::lock_guard<std::mutex> lock(state->ctl.mu);
    state->ctl.record_error_locked(produced, std::current_exception());
  }
  {
    std::lock_guard<std::mutex> lock(state->ctl.mu);
    state->ctl.closed = true;
  }
  state->ctl.item_cv.notify_all();

  state->drain();
  state->ctl.wait_helpers_retired();
  state->ctl.rethrow_if_error();
  if (options.cancel.cancelled()) {
    throw AnalysisError(StatusCode::kCancelled, "pipeline cancelled");
  }
}

}  // namespace soap::support
