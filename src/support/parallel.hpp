// Structured data-parallel loops over the shared ThreadPool.
//
// `parallel_for(n, opts, fn)` runs fn(0..n-1) with up to opts.threads
// executors (the calling thread plus helpers submitted to the pool), claiming
// indices in `grain`-sized chunks from an atomic cursor.
//
// Design points, in the order they matter to callers:
//
// * Determinism.  The scheduler decides only *who* runs an index, never what
//   the index computes or where its result lands.  `parallel_map` collects
//   results into per-index slots, so for a pure fn the returned vector is
//   identical — bit for bit — for every thread count, pool size, and
//   interleaving.
//
// * Serial fallback.  threads <= 1 (the default), n == 0/1, or a single
//   chunk runs the loop inline on the calling thread without touching the
//   pool: no allocation, no synchronization, exceptions propagate natively.
//   `SdgOptions::threads = 1` therefore costs nothing over the pre-parallel
//   code.
//
// * Nested use never deadlocks.  The calling thread participates in the
//   loop and only ever waits for helpers that are *actively executing* fn —
//   never for tasks still sitting in the pool queue.  A parallel_for issued
//   from inside a pool task therefore completes even on a 1-worker pool: the
//   caller drains every chunk itself and the queued helpers later wake up to
//   an empty cursor and return.  (Helpers keep the shared state alive via
//   shared_ptr, so a late no-op helper is harmless.)
//
// * Exceptions.  The first failure cancels further chunk claims; among the
//   failures that did run, the one with the smallest index wins and is
//   rethrown on the calling thread after all active helpers have retired.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "support/cancel.hpp"
#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace soap::support {

struct ParallelOptions {
  /// Executor budget for the loop, counting the calling thread: 1 = serial
  /// inline (default), 0 = hardware_threads(), N = up to N.
  std::size_t threads = 1;
  /// Indices claimed per cursor fetch; raise it when fn is tiny so the
  /// atomic traffic amortizes.  Clamped to at least 1.
  std::size_t grain = 1;
  /// Where helper tasks run; default = ThreadPool::global().  Helper
  /// fan-out is additionally capped by executor.concurrency(), so injecting
  /// ExecutorRef::serial() forces the whole loop onto the calling thread
  /// regardless of `threads`.
  ExecutorRef executor;
  /// External cooperative cancellation, polled between indices/chunks.  A
  /// tripped token stops further claims and parallel_for raises
  /// AnalysisError{kCancelled} — unless an earlier fn failure outranks it
  /// (lowest index first, same rule as exceptions).  Default: never
  /// cancelled, one null-pointer test per index.
  CancellationToken cancel;
};

/// 0 -> hardware_threads(), anything else unchanged.
std::size_t resolve_threads(std::size_t threads);

/// Runs fn(i) for every i in [0, n) under `options`.
void parallel_for(std::size_t n, const ParallelOptions& options,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for with deterministic index-slotted result collection: slot i
/// holds fn(i).  R needs no default constructor (slots are engaged in
/// place); a pure fn yields a bit-identical vector for every thread count.
template <class R, class Fn>
std::vector<R> parallel_map(std::size_t n, const ParallelOptions& options,
                            Fn&& fn) {
  std::vector<std::optional<R>> slots(n);
  parallel_for(n, options,
               [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace soap::support
