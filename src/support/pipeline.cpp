#include "support/pipeline.hpp"

namespace soap::support::detail {

void PipelineControl::record_error_locked(std::size_t seq,
                                          std::exception_ptr error) {
  if (seq < error_seq_) {
    error_seq_ = seq;
    error_ = std::move(error);
  }
  cancel_locked();
}

void PipelineControl::cancel_locked() {
  cancelled.store(true);
  item_cv.notify_all();
  window_cv.notify_all();
  idle_cv.notify_all();
}

void PipelineControl::wait_helpers_retired() {
  std::unique_lock<std::mutex> lock(mu);
  idle_cv.wait(lock, [this] { return active == 0; });
}

void PipelineControl::rethrow_if_error() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!error_) return;
    // Move the error out so the exception object's last pipeline-held
    // reference is released on the calling thread, not by whichever late
    // helper happens to drop the final PipelineState ref.
    error = std::move(error_);
    error_ = nullptr;
  }
  std::rethrow_exception(error);
}

}  // namespace soap::support::detail
