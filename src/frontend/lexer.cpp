#include "frontend/lexer.hpp"

#include <cctype>
#include <stdexcept>

#include "support/cancel.hpp"

namespace soap::frontend {

namespace {

[[noreturn]] void fail(const std::string& msg, int line, int col) {
  throw support::AnalysisError(support::StatusCode::kInvalidInput,
                               "lex error at " + std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + msg);
}

// Two- then one-character operators.
const char* kTwoCharOps[] = {"+=", "-=", "*=", "/=", "==", "<=", ">=",
                             "++", "--", "->", "!="};

bool starts_two_char_op(const std::string& s, std::size_t i,
                        std::string* out) {
  if (i + 1 >= s.size()) return false;
  for (const char* op : kTwoCharOps) {
    if (s[i] == op[0] && s[i + 1] == op[1]) {
      *out = op;
      return true;
    }
  }
  return false;
}

void lex_line(const std::string& s, int line, std::vector<Token>* out) {
  std::size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    int col = static_cast<int>(i) + 1;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                              s[j] == '_')) {
        ++j;
      }
      out->push_back({TokenKind::kIdent, s.substr(i, j - i), 0, line, col});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < s.size() && (std::isdigit(static_cast<unsigned char>(s[j])) ||
                              s[j] == '.' || s[j] == 'e' || s[j] == 'f')) {
        // Floating constants appear in statement bodies (e.g. 0.33*...);
        // their exact value is irrelevant to the access analysis.
        if ((s[j] == 'e') && j + 1 < s.size() &&
            !std::isdigit(static_cast<unsigned char>(s[j + 1])) &&
            s[j + 1] != '-' && s[j + 1] != '+') {
          break;
        }
        ++j;
      }
      Token t{TokenKind::kNumber, s.substr(i, j - i), 0, line, col};
      try {
        t.number = std::stoll(t.text);
      } catch (...) {
        t.number = 0;  // float literal; value unused
      }
      out->push_back(std::move(t));
      i = j;
      continue;
    }
    std::string two;
    if (starts_two_char_op(s, i, &two)) {
      out->push_back({TokenKind::kPunct, two, 0, line, col});
      i += 2;
      continue;
    }
    static const std::string kSingles = "()[]{}:;,=+-*/<>.&|%!";
    if (kSingles.find(c) != std::string::npos) {
      out->push_back({TokenKind::kPunct, std::string(1, c), 0, line, col});
      ++i;
      continue;
    }
    fail(std::string("unexpected character '") + c + "'", line, col);
  }
}

std::string strip_comment(const std::string& line, bool python) {
  std::size_t pos = python ? line.find('#') : line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

bool looks_like_c(const std::string& source) {
  return source.find("for (") != std::string::npos ||
         source.find("for(") != std::string::npos ||
         source.find('{') != std::string::npos ||
         source.find(';') != std::string::npos;
}

std::vector<Token> tokenize(const std::string& source, bool python_layout) {
  std::vector<Token> out;
  std::vector<int> indents = {0};
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    std::string line = source.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    ++line_no;
    line = strip_comment(line, python_layout);
    // Trailing whitespace / blank lines.
    std::size_t content = line.find_first_not_of(" \t");
    if (content == std::string::npos) {
      if (eol == std::string::npos) break;
      pos = eol + 1;
      continue;
    }
    if (python_layout) {
      int indent = 0;
      for (std::size_t i = 0; i < content; ++i) {
        indent += line[i] == '\t' ? 8 : 1;
      }
      if (indent > indents.back()) {
        indents.push_back(indent);
        out.push_back({TokenKind::kIndent, "", 0, line_no, 1});
      } else {
        while (indent < indents.back()) {
          indents.pop_back();
          out.push_back({TokenKind::kDedent, "", 0, line_no, 1});
        }
        if (indent != indents.back()) {
          fail("inconsistent indentation", line_no, 1);
        }
      }
    }
    lex_line(line, line_no, &out);
    if (python_layout) {
      out.push_back({TokenKind::kNewline, "", 0, line_no,
                     static_cast<int>(line.size()) + 1});
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (python_layout) {
    while (indents.size() > 1) {
      indents.pop_back();
      out.push_back({TokenKind::kDedent, "", 0, line_no, 1});
    }
  }
  out.push_back({TokenKind::kEnd, "", 0, line_no + 1, 1});
  return out;
}

}  // namespace soap::frontend
