#include "frontend/parser.hpp"

#include <stdexcept>

#include "frontend/lexer.hpp"
#include "support/cancel.hpp"

namespace soap::frontend {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, bool python)
      : tokens_(std::move(tokens)), python_(python) {}

  AstProgram parse_program() {
    AstProgram out;
    skip_newlines();
    while (!at(TokenKind::kEnd)) {
      out.push_back(parse_item());
      skip_newlines();
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = peek();
    throw support::AnalysisError(
        support::StatusCode::kInvalidInput,
        "parse error at " + std::to_string(t.line) + ":" +
            std::to_string(t.column) + ": " + msg +
            (t.text.empty() ? "" : " (near '" + t.text + "')"));
  }

  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokenKind k) const { return peek().kind == k; }
  bool at_punct(const std::string& p) const {
    return peek().kind == TokenKind::kPunct && peek().text == p;
  }
  bool at_ident(const std::string& name) const {
    return peek().kind == TokenKind::kIdent && peek().text == name;
  }
  Token take() { return tokens_[pos_++]; }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "'");
    ++pos_;
  }
  std::string expect_ident() {
    if (!at(TokenKind::kIdent)) fail("expected identifier");
    return take().text;
  }
  void skip_newlines() {
    while (at(TokenKind::kNewline)) ++pos_;
  }

  // --- expressions ---

  // Stamps the source position of the token that starts the expression so
  // lowering diagnostics can point at the offending subexpression.
  AstExprPtr parse_primary() {
    const int line = peek().line;
    const int column = peek().column;
    AstExprPtr e = parse_primary_impl();
    if (e->line == 0) {
      e->line = line;
      e->column = column;
    }
    return e;
  }

  AstExprPtr parse_primary_impl() {
    if (at(TokenKind::kNumber)) {
      return AstExpr::make_number(take().number);
    }
    if (at_punct("(")) {
      ++pos_;
      AstExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (at(TokenKind::kIdent)) {
      std::string name = take().text;
      if (at_punct("(")) {  // call
        ++pos_;
        std::vector<AstExprPtr> args;
        if (!at_punct(")")) {
          args.push_back(parse_expr());
          while (at_punct(",")) {
            ++pos_;
            args.push_back(parse_expr());
          }
        }
        expect_punct(")");
        return AstExpr::make_call(std::move(name), std::move(args));
      }
      if (at_punct("[")) {  // array reference: A[i,j] or A[i][j]
        std::vector<AstExprPtr> subs;
        while (at_punct("[")) {
          ++pos_;
          subs.push_back(parse_expr());
          while (at_punct(",")) {
            ++pos_;
            subs.push_back(parse_expr());
          }
          expect_punct("]");
        }
        return AstExpr::make_ref(std::move(name), std::move(subs));
      }
      return AstExpr::make_var(std::move(name));
    }
    fail("expected expression");
  }

  AstExprPtr parse_unary() {
    if (at_punct("-")) {
      const Token op = take();
      AstExprPtr e = AstExpr::make_unary("-", parse_unary());
      e->line = op.line;
      e->column = op.column;
      return e;
    }
    if (at_punct("+")) {
      ++pos_;
      return parse_unary();
    }
    return parse_primary();
  }

  AstExprPtr parse_term() {
    AstExprPtr e = parse_unary();
    while (at_punct("*") || at_punct("/") || at_punct("%")) {
      const Token op = take();
      e = AstExpr::make_binary(op.text, e, parse_unary());
      e->line = op.line;
      e->column = op.column;
    }
    return e;
  }

  AstExprPtr parse_expr() {
    AstExprPtr e = parse_term();
    while (at_punct("+") || at_punct("-")) {
      const Token op = take();
      e = AstExpr::make_binary(op.text, e, parse_term());
      e->line = op.line;
      e->column = op.column;
    }
    return e;
  }

  // --- statements ---

  bool at_assign_op() const {
    return peek().kind == TokenKind::kPunct &&
           (peek().text == "=" || peek().text == "+=" || peek().text == "-=" ||
            peek().text == "*=" || peek().text == "/=");
  }

  AstItemPtr parse_assign() {
    auto item = std::make_shared<AstItem>();
    item->kind = AstItem::Kind::kAssign;
    item->line = peek().line;
    item->lhs = parse_primary();
    if (item->lhs->kind != AstExpr::Kind::kRef) {
      fail("assignment target must be an array reference");
    }
    if (!at_assign_op()) fail("expected assignment operator");
    item->assign_op = take().text;
    item->rhs = parse_expr();
    return item;
  }

  // --- Python mode ---

  AstItemPtr parse_python_for() {
    auto item = std::make_shared<AstItem>();
    item->kind = AstItem::Kind::kLoop;
    item->line = peek().line;
    ++pos_;  // 'for'
    item->loop_var = expect_ident();
    if (!at_ident("in")) fail("expected 'in'");
    ++pos_;
    if (!at_ident("range")) fail("expected 'range'");
    ++pos_;
    expect_punct("(");
    AstExprPtr first = parse_expr();
    if (at_punct(",")) {
      ++pos_;
      item->lower = first;
      item->upper = parse_expr();
    } else {
      item->lower = AstExpr::make_number(0);
      item->upper = first;
    }
    expect_punct(")");
    expect_punct(":");
    if (!at(TokenKind::kNewline)) fail("expected newline after ':'");
    ++pos_;
    if (!at(TokenKind::kIndent)) fail("expected indented block");
    ++pos_;
    while (!at(TokenKind::kDedent) && !at(TokenKind::kEnd)) {
      item->body.push_back(parse_item());
      skip_newlines();
    }
    if (at(TokenKind::kDedent)) ++pos_;
    return item;
  }

  // --- C mode ---

  AstItemPtr parse_c_for() {
    auto item = std::make_shared<AstItem>();
    item->kind = AstItem::Kind::kLoop;
    item->line = peek().line;
    ++pos_;  // 'for'
    expect_punct("(");
    // Optional type name: "int i = ..." (one leading identifier).
    if (at(TokenKind::kIdent) && peek(1).kind == TokenKind::kIdent) ++pos_;
    item->loop_var = expect_ident();
    expect_punct("=");
    item->lower = parse_expr();
    expect_punct(";");
    std::string cond_var = expect_ident();
    if (cond_var != item->loop_var) fail("for-condition on a different variable");
    if (at_punct("<")) {
      ++pos_;
      item->upper = parse_expr();
    } else if (at_punct("<=")) {
      ++pos_;
      item->upper = AstExpr::make_binary("+", parse_expr(),
                                         AstExpr::make_number(1));
    } else {
      fail("expected '<' or '<=' in for-condition");
    }
    expect_punct(";");
    // increment: i++ / ++i / i += 1
    if (at_punct("++")) {
      ++pos_;
      expect_ident();
    } else {
      std::string inc_var = expect_ident();
      if (inc_var != item->loop_var) fail("for-increment on a different variable");
      if (at_punct("++")) {
        ++pos_;
      } else if (at_punct("+=")) {
        ++pos_;
        if (!at(TokenKind::kNumber) || peek().number != 1) {
          fail("only unit-stride loops are supported");
        }
        ++pos_;
      } else {
        fail("expected '++' or '+= 1'");
      }
    }
    expect_punct(")");
    if (at_punct("{")) {
      ++pos_;
      while (!at_punct("}")) {
        if (at(TokenKind::kEnd)) fail("unterminated '{'");
        item->body.push_back(parse_item());
      }
      ++pos_;
    } else {
      item->body.push_back(parse_item());
    }
    return item;
  }

  AstItemPtr parse_item() {
    skip_newlines();
    if (at_ident("for")) {
      return python_ ? parse_python_for() : parse_c_for();
    }
    AstItemPtr a = parse_assign();
    if (python_) {
      if (at(TokenKind::kNewline)) ++pos_;
    } else {
      expect_punct(";");
    }
    return a;
  }

  std::vector<Token> tokens_;
  bool python_;
  std::size_t pos_ = 0;
};

}  // namespace

AstProgram parse_python(const std::string& source) {
  return Parser(tokenize(source, /*python_layout=*/true), /*python=*/true)
      .parse_program();
}

AstProgram parse_c(const std::string& source) {
  return Parser(tokenize(source, /*python_layout=*/false), /*python=*/false)
      .parse_program();
}

AstProgram parse(const std::string& source) {
  return looks_like_c(source) ? parse_c(source) : parse_python(source);
}

}  // namespace soap::frontend
