// Lowering from the frontend AST to SOAP programs.
#pragma once

#include <string>

#include "frontend/ast.hpp"
#include "soap/statement.hpp"

namespace soap::frontend {

/// Lowers a parsed loop-nest program to a SOAP Program:
///   * every assignment becomes one Statement enclosed in its loop stack,
///   * array subscripts are converted to affine forms (non-affine
///     arithmetic is rejected with a diagnostic; use the programmatic API
///     plus the Section 5.3 hints for those),
///   * a data-dependent subscript — one that reads an array, as in the
///     gather `x[colind[i,k]]` — collapses to a single representative
///     location (sound for lower bounds: an adversarial index stream can
///     address one element), and the index array becomes an ordinary
///     affine read charged in full,
///   * an update operator (`+=` etc.) or a re-read of the output array adds
///     the output to the statement's inputs (input-output overlap).
Program lower(const AstProgram& ast);

/// Convenience: parse (auto-detect language) and lower.
Program parse_program(const std::string& source);

}  // namespace soap::frontend
