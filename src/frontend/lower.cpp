#include "frontend/lower.hpp"

#include <algorithm>
#include <stdexcept>

#include "frontend/parser.hpp"
#include "support/cancel.hpp"

namespace soap::frontend {

namespace {

// Renders an AST expression back to source-like text so a lowering
// diagnostic can show the offending subexpression, not just its position.
std::string render(const AstExprPtr& e) {
  const auto join = [](const std::vector<AstExprPtr>& args) {
    std::string out;
    for (const AstExprPtr& a : args) {
      if (!out.empty()) out += ",";
      out += render(a);
    }
    return out;
  };
  switch (e->kind) {
    case AstExpr::Kind::kNumber:
      return std::to_string(e->number);
    case AstExpr::Kind::kVar:
      return e->name;
    case AstExpr::Kind::kUnary:
      return e->op + render(e->args[0]);
    case AstExpr::Kind::kBinary:
      return render(e->args[0]) + e->op + render(e->args[1]);
    case AstExpr::Kind::kCall:
      return e->name + "(" + join(e->args) + ")";
    case AstExpr::Kind::kRef:
      return e->name + "[" + join(e->args) + "]";
  }
  return "?";
}

// Diagnostics carry line:column (the parser stamps every expression with
// the token that started it; `line` is the enclosing statement's fallback
// for synthesized nodes) plus the offending expression text.
[[noreturn]] void fail(const std::string& msg, int line,
                       const AstExprPtr& offending) {
  std::string where = "line " + std::to_string(line);
  if (offending != nullptr && offending->line > 0) {
    where = std::to_string(offending->line) + ":" +
            std::to_string(offending->column);
  }
  throw support::AnalysisError(
      support::StatusCode::kInvalidInput,
      "lowering error at " + where + ": " + msg +
          (offending == nullptr ? ""
                                : " (near '" + render(offending) + "')"));
}

// Affine interpretation of an expression; throws on non-affine shapes.
Affine to_affine(const AstExprPtr& e, int line) {
  switch (e->kind) {
    case AstExpr::Kind::kNumber:
      return Affine(e->number);
    case AstExpr::Kind::kVar:
      return Affine::variable(e->name);
    case AstExpr::Kind::kUnary:
      if (e->op == "-") return -to_affine(e->args[0], line);
      fail("non-affine unary operator '" + e->op + "'", line, e);
    case AstExpr::Kind::kBinary: {
      if (e->op == "+") {
        return to_affine(e->args[0], line) + to_affine(e->args[1], line);
      }
      if (e->op == "-") {
        return to_affine(e->args[0], line) - to_affine(e->args[1], line);
      }
      if (e->op == "*") {
        Affine l = to_affine(e->args[0], line);
        Affine r = to_affine(e->args[1], line);
        if (l.is_constant()) return l.constant() * r;
        if (r.is_constant()) return r.constant() * l;
        fail("non-affine product in subscript/bound", line, e);
      }
      if (e->op == "/") {
        Affine l = to_affine(e->args[0], line);
        Affine r = to_affine(e->args[1], line);
        if (r.is_constant() && !r.constant().is_zero()) {
          return r.constant().inverse() * l;
        }
        fail("non-constant divisor in subscript/bound", line, e);
      }
      fail("non-affine operator '" + e->op + "'", line, e);
    }
    case AstExpr::Kind::kCall:
    case AstExpr::Kind::kRef:
      fail("non-affine subscript/bound", line, e);
  }
  fail("bad expression", line, e);
}

bool contains_ref(const AstExprPtr& e) {
  if (e->kind == AstExpr::Kind::kRef) return true;
  for (const AstExprPtr& a : e->args) {
    if (contains_ref(a)) return true;
  }
  return false;
}

// A subscript that itself reads an array (`x[colind[i,k]]`) is
// data-dependent: no affine form describes which element of `x` an
// iteration touches.  For a *lower* bound the sound model is adversarial
// reuse — the index stream may address a single element — so the
// data-dependent subscript collapses to one representative location
// (affine 0) and contributes no mandatory traffic for the gathered array,
// while the index array itself (`colind`, an ordinary affine access) is
// charged in full as a read (collect_refs below descends into subscripts).
AccessComponent to_component(const AstExprPtr& ref, int line) {
  AccessComponent comp;
  comp.index.reserve(ref->args.size());
  for (const AstExprPtr& sub : ref->args) {
    comp.index.push_back(contains_ref(sub) ? Affine(0)
                                           : to_affine(sub, line));
  }
  return comp;
}

void collect_refs(const AstExprPtr& e, std::vector<AstExprPtr>* out) {
  if (e->kind == AstExpr::Kind::kRef) {
    out->push_back(e);
    // Data-dependent subscripts nest further refs (the index arrays of a
    // gather/scatter); they are reads like any other.
  }
  for (const AstExprPtr& a : e->args) collect_refs(a, out);
}

struct LoweringState {
  Program program;
  int counter = 0;

  void walk(const AstItemPtr& item, std::vector<Loop>* loop_stack) {
    if (item->kind == AstItem::Kind::kLoop) {
      loop_stack->push_back({item->loop_var, to_affine(item->lower, item->line),
                             to_affine(item->upper, item->line)});
      for (const AstItemPtr& child : item->body) walk(child, loop_stack);
      loop_stack->pop_back();
      return;
    }
    Statement st;
    st.name = "St" + std::to_string(++counter);
    st.domain = Domain(*loop_stack);
    st.output.array = item->lhs->name;
    st.output.components = {to_component(item->lhs, item->line)};

    std::vector<AstExprPtr> refs;
    collect_refs(item->rhs, &refs);
    // Update operators read the output location too.
    if (item->assign_op != "=") refs.push_back(item->lhs);
    // Index arrays of a data-dependent store (`y[rowind[k]] = ...`) are
    // read to compute the address even when the op is a plain `=`.
    for (const AstExprPtr& sub : item->lhs->args) collect_refs(sub, &refs);

    for (const AstExprPtr& ref : refs) {
      AccessComponent comp = to_component(ref, item->line);
      ArrayAccess* slot = nullptr;
      for (ArrayAccess& in : st.inputs) {
        if (in.array == ref->name) slot = &in;
      }
      if (slot == nullptr) {
        st.inputs.push_back({ref->name, {}});
        slot = &st.inputs.back();
      }
      if (std::find(slot->components.begin(), slot->components.end(), comp) ==
          slot->components.end()) {
        slot->components.push_back(std::move(comp));
      }
    }
    program.statements.push_back(std::move(st));
  }
};

}  // namespace

Program lower(const AstProgram& ast) {
  LoweringState state;
  std::vector<Loop> loop_stack;
  for (const AstItemPtr& item : ast) state.walk(item, &loop_stack);
  return state.program;
}

Program parse_program(const std::string& source) {
  return lower(parse(source));
}

}  // namespace soap::frontend
