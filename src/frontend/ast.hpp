// Abstract syntax for the loop-nest mini-languages.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace soap::frontend {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

struct AstExpr {
  enum class Kind { kNumber, kVar, kBinary, kUnary, kCall, kRef };
  Kind kind;
  long long number = 0;        // kNumber
  std::string name;            // kVar / kCall (callee) / kRef (array)
  std::string op;              // kBinary / kUnary
  std::vector<AstExprPtr> args;  // operands / call args / subscripts
  // Source position of the token that started this expression (binary /
  // unary nodes: the operator token); 0 when synthesized (e.g. the implicit
  // range lower bound).  Lowering diagnostics point here.
  int line = 0;
  int column = 0;

  static AstExprPtr make_number(long long v) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kNumber;
    e->number = v;
    return e;
  }
  static AstExprPtr make_var(std::string n) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kVar;
    e->name = std::move(n);
    return e;
  }
  static AstExprPtr make_binary(std::string o, AstExprPtr l, AstExprPtr r) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kBinary;
    e->op = std::move(o);
    e->args = {std::move(l), std::move(r)};
    return e;
  }
  static AstExprPtr make_unary(std::string o, AstExprPtr v) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kUnary;
    e->op = std::move(o);
    e->args = {std::move(v)};
    return e;
  }
  static AstExprPtr make_call(std::string callee,
                              std::vector<AstExprPtr> args) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kCall;
    e->name = std::move(callee);
    e->args = std::move(args);
    return e;
  }
  static AstExprPtr make_ref(std::string array,
                             std::vector<AstExprPtr> subscripts) {
    auto e = std::make_shared<AstExpr>();
    e->kind = Kind::kRef;
    e->name = std::move(array);
    e->args = std::move(subscripts);
    return e;
  }
};

struct AstItem;
using AstItemPtr = std::shared_ptr<AstItem>;

struct AstItem {
  enum class Kind { kLoop, kAssign };
  Kind kind;
  // kLoop
  std::string loop_var;
  AstExprPtr lower;   // inclusive
  AstExprPtr upper;   // exclusive (range semantics)
  std::vector<AstItemPtr> body;
  // kAssign
  AstExprPtr lhs;     // a kRef
  std::string assign_op;  // "=", "+=", "-=", "*=", "/="
  AstExprPtr rhs;
  int line = 0;
};

using AstProgram = std::vector<AstItemPtr>;

}  // namespace soap::frontend
