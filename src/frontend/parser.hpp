// Recursive-descent parsers for the Python-style and C-style loop-nest
// languages.  Together with frontend/lower.* this fulfils the paper's
// "derive lower bounds directly from provided C code".
//
// Grammar (shared expression core, precedence climbing):
//   expr    := term (('+'|'-') term)*
//   term    := unary (('*'|'/'|'%') unary)*
//   unary   := '-' unary | primary
//   primary := NUMBER | IDENT | IDENT '(' args ')' | ref | '(' expr ')'
//   ref     := IDENT ('[' expr (',' expr)* ']')+
//
// Python mode:
//   item   := 'for' IDENT 'in' 'range' '(' expr (',' expr)? ')' ':' block
//           | ref ASSIGNOP expr NEWLINE
//   block  := NEWLINE INDENT item+ DEDENT
//
// C mode:
//   item   := 'for' '(' [type] IDENT '=' expr ';' IDENT ('<'|'<=') expr ';'
//                       (IDENT '++' | '++' IDENT | IDENT '+=' '1') ')' body
//           | ref ASSIGNOP expr ';'
//   body   := '{' item* '}' | item
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace soap::frontend {

/// Parses source in either language (auto-detected via looks_like_c).
/// Throws std::runtime_error with location info on syntax errors.
AstProgram parse(const std::string& source);

AstProgram parse_python(const std::string& source);
AstProgram parse_c(const std::string& source);

}  // namespace soap::frontend
