// Tokenizer for the loop-nest input languages (Python-style and C-style),
// replacing the DaCe frontend of the paper's tool.
#pragma once

#include <string>
#include <vector>

namespace soap::frontend {

enum class TokenKind {
  kIdent,
  kNumber,
  kPunct,    // operators and delimiters, text in `text`
  kNewline,  // logical end of line (Python mode)
  kIndent,   // indentation increase (Python mode)
  kDedent,   // indentation decrease (Python mode)
  kEnd
};

struct Token {
  TokenKind kind;
  std::string text;
  long long number = 0;
  int line = 0;
  int column = 0;
};

struct LexError {
  std::string message;
  int line = 0;
  int column = 0;
};

/// Tokenizes `source`.  When `python_layout` is true, emits
/// kNewline/kIndent/kDedent tokens from the line structure (comments `#...`
/// stripped); otherwise whitespace is insignificant and `//...` comments are
/// stripped.  Throws support::AnalysisError{kInvalidInput} (a
/// std::runtime_error) with line:column position info on bad input.
std::vector<Token> tokenize(const std::string& source, bool python_layout);

/// Heuristic: C-style when the source contains "for (" / "for(" or braces.
bool looks_like_c(const std::string& source);

}  // namespace soap::frontend
