// SOAP validity diagnostics (Section 3 definition, properties (5)-(7)).
#pragma once

#include <string>
#include <vector>

#include "soap/statement.hpp"

namespace soap {

struct SoapViolation {
  std::string statement;
  std::string array;
  std::string reason;
};

/// Checks the SOAP properties for every statement:
///   * every access-function vector is a simple overlap (components equal up
///     to constant translations),
///   * subscripts are injective affine forms (unit coefficient per variable,
///     no repeated variable across dimensions) unless covered by a
///     max-overlap hint,
///   * input/output accesses of the same array jointly form a simple overlap.
/// Violations are reported, not fatal: Section 5 projections (split disjoint
/// accesses, version dimensions, overlap bounds) handle them downstream.
std::vector<SoapViolation> check_soap(const Program& program);

inline bool is_soap(const Program& program) { return check_soap(program).empty(); }

}  // namespace soap
