#include "soap/program.hpp"

#include <algorithm>
#include <set>

namespace soap {

namespace {

bool dim_has_max_hint(const Statement& st, const std::string& array, int dim) {
  auto it = st.max_overlap_dims.find(array);
  if (it == st.max_overlap_dims.end()) return false;
  return std::find(it->second.begin(), it->second.end(), dim) !=
         it->second.end();
}

void check_access(const Statement& st, const ArrayAccess& acc,
                  std::vector<SoapViolation>* out) {
  if (!simple_overlap_translations(acc)) {
    out->push_back({st.name, acc.array,
                    "access-function components are not a simple overlap "
                    "(Section 5.1 disjoint-split projection applies)"});
  }
  if (acc.components.empty()) return;
  const AccessComponent& base = acc.components[0];
  std::set<std::string> used_vars;
  for (std::size_t d = 0; d < base.index.size(); ++d) {
    const Affine& idx = base.index[d];
    std::vector<std::string> vars;
    for (const std::string& v : idx.variables()) {
      if (st.domain.has_variable(v)) vars.push_back(v);
    }
    for (const std::string& v : vars) {
      if (!used_vars.insert(v).second) {
        out->push_back({st.name, acc.array,
                        "iteration variable '" + v +
                            "' indexes several dimensions (non-injective)"});
      }
      if (idx.coeff(v).abs() != Rational(1)) {
        out->push_back({st.name, acc.array,
                        "non-unit stride on '" + v +
                            "' (Section 5.3 overlap bound applies)"});
      }
    }
    if (vars.size() > 1 && !dim_has_max_hint(st, acc.array,
                                             static_cast<int>(d))) {
      out->push_back({st.name, acc.array,
                      "dimension " + std::to_string(d) +
                          " indexed by several iteration variables without a "
                          "Section 5.3 overlap hint"});
    }
  }
}

}  // namespace

std::vector<SoapViolation> check_soap(const Program& program) {
  std::vector<SoapViolation> out;
  for (const Statement& st : program.statements) {
    for (const ArrayAccess& in : st.inputs) check_access(st, in, &out);
    check_access(st, st.output, &out);
    // Property (7): input/output joint simple overlap.
    const ArrayAccess* self = st.input_for(st.output.array);
    if (self != nullptr) {
      ArrayAccess joint = *self;
      for (const AccessComponent& c : st.output.components)
        joint.components.push_back(c);
      if (!simple_overlap_translations(joint)) {
        out.push_back({st.name, st.output.array,
                       "input and output accesses of the updated array are "
                       "not jointly a simple overlap"});
      }
    }
  }
  return out;
}

}  // namespace soap
