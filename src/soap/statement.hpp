// SOAP statements and programs (Section 3 of the paper): a statement is a
// constant-time function evaluated over a loop nest, reading input arrays
// through access-function vectors and writing one output array.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soap/access.hpp"
#include "soap/domain.hpp"

namespace soap {

struct Statement {
  std::string name;
  Domain domain;
  ArrayAccess output;
  /// One entry per distinct input array (components merged per array).
  std::vector<ArrayAccess> inputs;
  /// Section 5.3 hints: array -> dimensions whose multi-variable index is
  /// treated with the maximal-overlap rule |g[H]| >= max_i |D_i| (the
  /// sigma = 1 convolution case).  Dimensions not listed use the injective
  /// product rule.
  std::map<std::string, std::vector<int>> max_overlap_dims;

  [[nodiscard]] const ArrayAccess* input_for(const std::string& array) const;
  [[nodiscard]] bool reads(const std::string& array) const {
    return input_for(array) != nullptr;
  }
  [[nodiscard]] bool updates_output() const {
    return input_for(output.array) != nullptr;
  }
  [[nodiscard]] std::string str() const;
};

struct Program {
  std::vector<Statement> statements;
  /// Optional overrides for symbolic array sizes (element counts) used by the
  /// SDG accounting (Theorem 1); arrays not listed get sizes inferred from
  /// the statements that write them / the accesses that read them.
  std::map<std::string, sym::Expr> array_size_hint;

  /// All array names appearing anywhere in the program.
  [[nodiscard]] std::vector<std::string> arrays() const;
  /// Arrays that are never written by any statement (SDG input set I).
  [[nodiscard]] std::vector<std::string> input_arrays() const;
  /// Arrays written by at least one statement.
  [[nodiscard]] std::vector<std::string> computed_arrays() const;
  /// Number of CDAG vertices belonging to `array`:
  ///   * computed arrays: sum of |D| of the statements writing it (each
  ///     execution produces one new version vertex);
  ///   * pure inputs: the bounding-box size of the union of read accesses.
  [[nodiscard]] sym::Expr array_cdag_size(const std::string& array) const;

  /// Number of distinct elements of `array` the program touches (leading
  /// order): the largest access bounding box over all reads and writes.
  /// Used by the cold bound (each touched input element is loaded and each
  /// terminal output element stored at least once).
  [[nodiscard]] sym::Expr array_element_count(const std::string& array) const;

  /// Computed arrays never read by any statement other than their writers
  /// (the program's live outputs).
  [[nodiscard]] std::vector<std::string> terminal_arrays() const;

  [[nodiscard]] std::string str() const;
};

}  // namespace soap
