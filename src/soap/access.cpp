#include "soap/access.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace soap {

Affine Affine::variable(SymId id) {
  Affine a;
  a.coeffs_[id] = Rational(1);
  return a;
}

Affine Affine::variable(const std::string& name) {
  return variable(intern_symbol(name));
}

Rational Affine::coeff(SymId var) const {
  const Rational* c = coeffs_.find(var);
  return c == nullptr ? Rational(0) : *c;
}

Rational Affine::coeff(const std::string& var) const {
  return coeff(intern_symbol(var));
}

std::vector<std::string> Affine::variables() const {
  std::vector<std::string> out;
  out.reserve(coeffs_.size());
  for (const auto& [v, _] : coeffs_) out.push_back(symbol_name(v));
  std::sort(out.begin(), out.end());
  return out;
}

Affine Affine::operator-() const {
  Affine out;
  out.constant_ = -constant_;
  for (const auto& [v, c] : coeffs_) out.coeffs_[v] = -c;
  return out;
}

Affine operator+(const Affine& a, const Affine& b) {
  Affine out = a;
  out.constant_ += b.constant_;
  for (const auto& [v, c] : b.coeffs_) {
    Rational& slot = out.coeffs_[v];
    slot += c;
    if (slot.is_zero()) out.coeffs_.erase(v);
  }
  return out;
}

Affine operator-(const Affine& a, const Affine& b) { return a + (-b); }

Affine operator*(const Rational& s, const Affine& a) {
  Affine out;
  if (s.is_zero()) return out;
  out.constant_ = s * a.constant_;
  for (const auto& [v, c] : a.coeffs_) out.coeffs_[v] = s * c;
  return out;
}

Rational Affine::eval(const SymMap<Rational>& env) const {
  Rational r = constant_;
  for (const auto& [v, c] : coeffs_) {
    const Rational* bound = env.find(v);
    if (bound == nullptr) {
      throw std::out_of_range("Affine::eval: unbound variable " +
                              symbol_name(v));
    }
    r += c * *bound;
  }
  return r;
}

Rational Affine::eval(const std::map<std::string, Rational>& env) const {
  SymMap<Rational> ids;
  for (const auto& [name, v] : env) ids.set(intern_symbol(name), v);
  return eval(ids);
}

std::string Affine::str() const {
  // Render in name order (the SymId-keyed storage iterates in intern order,
  // which would make output depend on interning history).
  std::vector<std::pair<std::string, Rational>> named;
  named.reserve(coeffs_.size());
  for (const auto& [id, c] : coeffs_) named.emplace_back(symbol_name(id), c);
  std::sort(named.begin(), named.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os;
  bool first = true;
  for (const auto& [v, c] : named) {
    if (first) {
      if (c == Rational(1)) {
        os << v;
      } else if (c == Rational(-1)) {
        os << "-" << v;
      } else {
        os << c.str() << "*" << v;
      }
      first = false;
      continue;
    }
    if (c.is_negative()) {
      os << " - ";
      if (-c != Rational(1)) os << (-c).str() << "*";
    } else {
      os << " + ";
      if (c != Rational(1)) os << c.str() << "*";
    }
    os << v;
  }
  if (!constant_.is_zero() || first) {
    if (first) {
      os << constant_.str();
    } else if (constant_.is_negative()) {
      os << " - " << (-constant_).str();
    } else {
      os << " + " << constant_.str();
    }
  }
  return os.str();
}

std::string AccessComponent::str() const {
  std::string out = "[";
  for (std::size_t i = 0; i < index.size(); ++i) {
    if (i) out += ",";
    out += index[i].str();
  }
  return out + "]";
}

std::string ArrayAccess::str() const {
  std::string out = array;
  for (const AccessComponent& c : components) out += c.str();
  return out;
}

std::optional<std::vector<std::vector<Rational>>> simple_overlap_translations(
    const ArrayAccess& access) {
  if (access.components.empty()) return std::nullopt;
  const AccessComponent& base = access.components[0];
  std::vector<std::vector<Rational>> out;
  out.reserve(access.components.size());
  for (const AccessComponent& comp : access.components) {
    if (comp.index.size() != base.index.size()) return std::nullopt;
    std::vector<Rational> t(comp.index.size());
    for (std::size_t d = 0; d < comp.index.size(); ++d) {
      Affine diff = comp.index[d] - base.index[d];
      if (!diff.is_constant()) return std::nullopt;  // not a simple overlap
      t[d] = diff.constant();
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<long long> access_offset_counts(
    const std::vector<std::vector<Rational>>& translations) {
  if (translations.empty()) return {};
  const std::size_t dim = translations[0].size();
  std::vector<long long> counts(dim, 0);
  for (std::size_t d = 0; d < dim; ++d) {
    std::set<std::string> distinct;
    for (const auto& t : translations) {
      if (!t[d].is_zero()) distinct.insert(t[d].str());
    }
    counts[d] = static_cast<long long>(distinct.size());
  }
  return counts;
}

}  // namespace soap
