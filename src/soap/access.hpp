// Access-function machinery of the SOAP program class (Section 3 of the
// paper): affine index expressions, access-function vectors, translation
// vectors and access-offset sets.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/interner.hpp"
#include "support/rational.hpp"
#include "support/sym_map.hpp"

namespace soap {

/// An affine form  c0 + sum_i c_i * var_i  over iteration variables and
/// program parameters.  Used for array subscripts and loop bounds.
/// Variables are interned SymIds internally; the string API is a thin
/// convenience layer.
class Affine {
 public:
  Affine() = default;
  Affine(long long c) : constant_(c) {}  // NOLINT(implicit)
  Affine(const Rational& c) : constant_(c) {}  // NOLINT(implicit)
  static Affine variable(SymId id);
  static Affine variable(const std::string& name);

  [[nodiscard]] const Rational& constant() const { return constant_; }
  /// SymId-keyed coefficients (iteration order: SymId, not name).
  [[nodiscard]] const SymMap<Rational>& coeffs() const { return coeffs_; }
  [[nodiscard]] Rational coeff(SymId var) const;
  [[nodiscard]] Rational coeff(const std::string& var) const;
  [[nodiscard]] bool is_constant() const { return coeffs_.empty(); }
  /// Variables with non-zero coefficient, sorted by name.
  [[nodiscard]] std::vector<std::string> variables() const;

  Affine operator-() const;
  friend Affine operator+(const Affine& a, const Affine& b);
  friend Affine operator-(const Affine& a, const Affine& b);
  /// Scalar multiple.
  friend Affine operator*(const Rational& s, const Affine& a);
  friend bool operator==(const Affine& a, const Affine& b) {
    return a.constant_ == b.constant_ && a.coeffs_ == b.coeffs_;
  }

  [[nodiscard]] Rational eval(const SymMap<Rational>& env) const;
  [[nodiscard]] Rational eval(const std::map<std::string, Rational>& env) const;
  [[nodiscard]] std::string str() const;

 private:
  Rational constant_ = 0;
  SymMap<Rational> coeffs_;  // invariant: no zero coefficients
};

/// One access-function-vector component phi_{j,k}: a subscript tuple, one
/// affine form per array dimension.
struct AccessComponent {
  std::vector<Affine> index;

  friend bool operator==(const AccessComponent& a, const AccessComponent& b) {
    return a.index == b.index;
  }
  [[nodiscard]] std::string str() const;
};

/// All accesses of one statement to one array: the access-function vector
/// phi_j = [phi_{j,1}, ..., phi_{j,n_j}].
struct ArrayAccess {
  std::string array;
  std::vector<AccessComponent> components;

  [[nodiscard]] std::size_t dim() const {
    return components.empty() ? 0 : components[0].index.size();
  }
  [[nodiscard]] std::string str() const;
};

/// Checks the simple-overlap property (Section 3, property 6): all components
/// are equal up to constant translation vectors.  On success returns the
/// translation vectors t_k relative to components[0] (t_1 = 0).
std::optional<std::vector<std::vector<Rational>>> simple_overlap_translations(
    const ArrayAccess& access);

/// Access-offset sets (Definition 3): for each array dimension i, the set of
/// distinct non-zero i-th coordinates among the translation vectors.
/// Returns |t-hat^i| per dimension.
std::vector<long long> access_offset_counts(
    const std::vector<std::vector<Rational>>& translations);

}  // namespace soap
