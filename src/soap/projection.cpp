#include "soap/projection.hpp"

#include <vector>

namespace soap {

namespace {

// True when the two components differ by a constant translation vector.
bool constant_offset(const AccessComponent& a, const AccessComponent& b) {
  if (a.index.size() != b.index.size()) return false;
  for (std::size_t d = 0; d < a.index.size(); ++d) {
    if (!(a.index[d] - b.index[d]).is_constant()) return false;
  }
  return true;
}

}  // namespace

Statement split_disjoint_accesses(const Statement& st) {
  Statement out = st;
  out.inputs.clear();
  for (const ArrayAccess& acc : st.inputs) {
    // Greedy grouping into constant-offset classes (transitive, since
    // constant-offset differences are closed under subtraction).
    std::vector<ArrayAccess> groups;
    for (const AccessComponent& comp : acc.components) {
      bool placed = false;
      for (ArrayAccess& g : groups) {
        if (constant_offset(comp, g.components[0])) {
          g.components.push_back(comp);
          placed = true;
          break;
        }
      }
      if (!placed) {
        ArrayAccess g;
        g.array = acc.array;
        g.components = {comp};
        groups.push_back(std::move(g));
      }
    }
    if (groups.size() == 1) {
      out.inputs.push_back(acc);
      continue;
    }
    // Several disjoint groups: pseudo-arrays A@0, A@1, ...  The group whose
    // base component is constant-offset from the output access keeps a name
    // that still matches the output array, so the input-output analysis
    // (Corollary 1 / version dimension) continues to see the update.
    int tag = 0;
    for (ArrayAccess& g : groups) {
      bool matches_output =
          st.output.array == acc.array && !st.output.components.empty() &&
          constant_offset(g.components[0], st.output.components[0]);
      if (!matches_output) {
        g.array = acc.array + "@" + std::to_string(tag++);
      }
      // Propagate max-overlap hints to the split arrays.
      auto hint = st.max_overlap_dims.find(acc.array);
      if (hint != st.max_overlap_dims.end()) {
        out.max_overlap_dims[g.array] = hint->second;
      }
      out.inputs.push_back(std::move(g));
    }
  }
  return out;
}

bool needs_version_dimension(const Statement& st) {
  const ArrayAccess* self = st.input_for(st.output.array);
  if (self == nullptr) return false;
  for (const AccessComponent& in : self->components) {
    for (const AccessComponent& outc : st.output.components) {
      if (in == outc) return true;
    }
  }
  return false;
}

Program project_to_soap(const Program& program) {
  Program out;
  out.array_size_hint = program.array_size_hint;
  out.statements.reserve(program.statements.size());
  for (const Statement& st : program.statements) {
    out.statements.push_back(split_disjoint_accesses(st));
  }
  return out;
}

}  // namespace soap
