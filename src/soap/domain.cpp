#include "soap/domain.hpp"

#include <algorithm>

#include "symbolic/faulhaber.hpp"

namespace soap {

std::string Loop::str() const {
  return "for " + var + " in range(" + lower.str() + ", " + upper.str() + ")";
}

std::vector<std::string> Domain::variables() const {
  std::vector<std::string> out;
  out.reserve(loops_.size());
  for (const Loop& l : loops_) out.push_back(l.var);
  return out;
}

bool Domain::has_variable(const std::string& var) const {
  return std::any_of(loops_.begin(), loops_.end(),
                     [&var](const Loop& l) { return l.var == var; });
}

sym::Polynomial affine_to_polynomial(const Affine& a) {
  sym::Polynomial p(a.constant());
  for (const auto& [v, c] : a.coeffs()) {
    p += sym::Polynomial(c) * sym::Polynomial::variable(v);
  }
  return p;
}

sym::Polynomial Domain::cardinality() const {
  // sum over the nest, innermost summed first:
  //   |D| = sum_{v1} ... sum_{vl} 1, with range(lo, hi) = [lo, hi-1].
  sym::Polynomial acc(1);
  for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
    sym::Polynomial lo = affine_to_polynomial(it->lower);
    sym::Polynomial hi = affine_to_polynomial(it->upper) - sym::Polynomial(1);
    acc = sym::sum_over(acc, it->var, lo, hi);
  }
  return acc;
}

std::string Domain::str() const {
  std::string out;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    out += std::string(2 * i, ' ') + loops_[i].str() + ":\n";
  }
  return out;
}

}  // namespace soap
