#include "soap/statement.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace soap {

const ArrayAccess* Statement::input_for(const std::string& array) const {
  for (const ArrayAccess& in : inputs) {
    if (in.array == array) return &in;
  }
  return nullptr;
}

std::string Statement::str() const {
  std::ostringstream os;
  os << domain.str();
  os << std::string(2 * domain.depth(), ' ') << name << ": "
     << output.str() << " = f(";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << ", ";
    os << inputs[i].str();
  }
  os << ")";
  return os.str();
}

std::vector<std::string> Program::arrays() const {
  std::set<std::string> names;
  for (const Statement& st : statements) {
    names.insert(st.output.array);
    for (const ArrayAccess& in : st.inputs) names.insert(in.array);
  }
  return {names.begin(), names.end()};
}

std::vector<std::string> Program::input_arrays() const {
  std::set<std::string> written;
  for (const Statement& st : statements) written.insert(st.output.array);
  std::vector<std::string> out;
  for (const std::string& a : arrays()) {
    if (!written.count(a)) out.push_back(a);
  }
  return out;
}

std::vector<std::string> Program::computed_arrays() const {
  std::set<std::string> written;
  for (const Statement& st : statements) written.insert(st.output.array);
  return {written.begin(), written.end()};
}

namespace {

// Leading-order extent of an affine subscript over the statement's domain:
// for  c0 + sum c_i v_i  the index sweeps roughly sum |c_i| * extent(v_i)
// values; we use the leading term of that sum.
sym::Expr subscript_extent(const Affine& idx, const Domain& dom) {
  sym::ExprVec terms;
  for (const auto& [v, c] : idx.coeffs()) {
    const std::string& name = symbol_name(v);
    for (const Loop& l : dom.loops()) {
      if (l.var == name) {
        sym::Polynomial extent = affine_to_polynomial(l.upper) -
                                 affine_to_polynomial(l.lower);
        terms.push_back(sym::make_mul(
            {sym::Expr(c.abs()), extent.leading_terms().to_expr()}));
      }
    }
  }
  if (terms.empty()) return sym::Expr(1);
  return sym::make_add(std::move(terms));
}

}  // namespace

sym::Expr Program::array_cdag_size(const std::string& array) const {
  auto hint = array_size_hint.find(array);
  if (hint != array_size_hint.end()) return hint->second;

  // Computed array: one vertex per write.
  sym::ExprVec writes;
  bool written = false;
  for (const Statement& st : statements) {
    if (st.output.array == array) {
      writes.push_back(st.domain.cardinality().leading_terms().to_expr());
      written = true;
    }
  }
  if (written) return sym::make_add(std::move(writes));

  // Pure input: bounding box of the accesses (leading order); take the max
  // over reading statements.
  sym::ExprVec candidates;
  for (const Statement& st : statements) {
    const ArrayAccess* acc = st.input_for(array);
    if (acc == nullptr || acc->components.empty()) continue;
    sym::ExprVec extents;
    for (const Affine& idx : acc->components[0].index) {
      extents.push_back(subscript_extent(idx, st.domain));
    }
    candidates.push_back(sym::make_mul(std::move(extents)));
  }
  if (candidates.empty()) return sym::Expr(0);
  if (candidates.size() == 1) return candidates[0];
  return sym::max(std::move(candidates));
}

sym::Expr Program::array_element_count(const std::string& array) const {
  auto hint = array_size_hint.find(array);
  if (hint != array_size_hint.end()) return hint->second;
  sym::ExprVec candidates;
  auto add_access = [&candidates](const ArrayAccess& acc, const Domain& dom) {
    if (acc.components.empty()) return;
    sym::ExprVec extents;
    for (const Affine& idx : acc.components[0].index) {
      extents.push_back(subscript_extent(idx, dom));
    }
    candidates.push_back(sym::make_mul(std::move(extents)));
  };
  for (const Statement& st : statements) {
    if (st.output.array == array) add_access(st.output, st.domain);
    const ArrayAccess* in = st.input_for(array);
    if (in != nullptr) add_access(*in, st.domain);
  }
  if (candidates.empty()) return sym::Expr(0);
  if (candidates.size() == 1) return candidates[0];
  return sym::max(std::move(candidates));
}

std::vector<std::string> Program::terminal_arrays() const {
  std::vector<std::string> out;
  for (const std::string& a : computed_arrays()) {
    bool external_read = false;
    for (const Statement& st : statements) {
      if (st.output.array != a && st.reads(a)) external_read = true;
    }
    if (!external_read) out.push_back(a);
  }
  return out;
}

std::string Program::str() const {
  std::string out;
  for (const Statement& st : statements) out += st.str() + "\n";
  return out;
}

}  // namespace soap
