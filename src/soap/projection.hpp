// Projections of non-SOAP programs onto SOAP (Section 5 of the paper).
#pragma once

#include "soap/statement.hpp"

namespace soap {

/// Section 5.1 (non-overlapping access sets): when an array is referenced by
/// access-function components that are *not* mutually offset by constants
/// (e.g. LU's A[i,j], A[i,k], A[k,j]), partition the components into
/// maximal constant-offset groups and model each group as its own disjoint
/// pseudo-array `A@0`, `A@1`, ....  The output access keeps the group that
/// matches it (if any), so the input-output overlap analysis still applies.
Statement split_disjoint_accesses(const Statement& st);

/// Section 5.2 (equivalent input-output accesses): true when the statement
/// updates its output array through an *identical* access function
/// (A[i,j] = f(A[i,j], ...)), which requires the version-dimension
/// projection.  The bounds engine applies the resulting count (the plain
/// product over the accessed dimensions) directly; this predicate is used by
/// diagnostics and by the explicit CDAG instantiation, which materializes
/// versions as separate vertices.
bool needs_version_dimension(const Statement& st);

/// Applies split_disjoint_accesses to every statement of the program.
Program project_to_soap(const Program& program);

}  // namespace soap
