// Iteration domains of SOAP loop nests: loops with affine bounds, exact
// symbolic domain cardinality |D| via Faulhaber summation.
#pragma once

#include <string>
#include <vector>

#include "soap/access.hpp"
#include "symbolic/expr.hpp"
#include "symbolic/polynomial.hpp"

namespace soap {

/// One loop level `for var in range(lower, upper)`: the iteration variable
/// ranges over the half-open interval [lower, upper); bounds are affine in
/// outer iteration variables and program parameters.
struct Loop {
  std::string var;
  Affine lower;
  Affine upper;

  [[nodiscard]] std::string str() const;
};

/// Iteration domain D of a statement: the loop nest, outermost first.
class Domain {
 public:
  Domain() = default;
  explicit Domain(std::vector<Loop> loops) : loops_(std::move(loops)) {}

  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }
  [[nodiscard]] std::size_t depth() const { return loops_.size(); }
  [[nodiscard]] std::vector<std::string> variables() const;
  [[nodiscard]] bool has_variable(const std::string& var) const;

  /// Exact |D| as a polynomial in the program parameters (Faulhaber over the
  /// nest, innermost first).  E.g. the LU domain k<N, k<i<N, k<j<N gives
  /// N^3/3 - N^2/2 + N/6.
  [[nodiscard]] sym::Polynomial cardinality() const;

  /// |D| as a symbolic expression.
  [[nodiscard]] sym::Expr cardinality_expr() const {
    return cardinality().to_expr();
  }

  [[nodiscard]] std::string str() const;

 private:
  std::vector<Loop> loops_;
};

/// Converts an affine form to a polynomial (variables keep their names).
sym::Polynomial affine_to_polynomial(const Affine& a);

}  // namespace soap
