// Construction of the "subgraph SOAP statement" St_H (Definition 6): the
// member statements writing the arrays of H are merged into one virtual
// statement by unifying their iteration variables through the arrays they
// share, inputs outside H are counted once (reuse), arrays inside H
// contribute only their input-output boundary terms (recomputation), and the
// objective |H| sums the tile volume of every member statement.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bounds/optimizer.hpp"
#include "sdg/sdg.hpp"

namespace soap::sdg {

struct MergedSubgraph {
  std::vector<std::string> arrays;   ///< H
  std::vector<int> members;          ///< statement indices writing into H
  std::vector<Loop> merged_loops;    ///< unified loop nest
  bounds::OptimizationProblem problem;
  /// (statement index, original variable) -> unified variable.
  std::map<std::pair<int, std::string>, std::string> rename;

  [[nodiscard]] std::string str() const;
};

/// Builds St_H for the subgraph H (array names, all computed).
MergedSubgraph merge_subgraph(const Sdg& sdg,
                              const std::vector<std::string>& H);

}  // namespace soap::sdg
