// Symbolic Directed Graph (Definition 5 of the paper): one vertex per array,
// an edge (A, B) when some statement reads A and writes B.  Self-edges mark
// updated arrays.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "soap/statement.hpp"

namespace soap::sdg {

class Sdg {
 public:
  static Sdg build(const Program& program);

  [[nodiscard]] const std::vector<std::string>& arrays() const {
    return arrays_;
  }
  [[nodiscard]] int index_of(const std::string& array) const;
  [[nodiscard]] bool has_edge(const std::string& from,
                              const std::string& to) const;
  [[nodiscard]] const std::set<std::pair<int, int>>& edges() const {
    return edges_;
  }
  /// Arrays with in-degree zero (set I in the paper).
  [[nodiscard]] const std::vector<std::string>& input_arrays() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& computed_arrays() const {
    return computed_;
  }
  /// Statements whose output is `array` (indices into the program).
  [[nodiscard]] std::vector<int> writers(const std::string& array) const;
  /// Statements reading `array`.
  [[nodiscard]] std::vector<int> readers(const std::string& array) const;

  /// Two computed arrays are "adjacent" for subgraph enumeration when they
  /// are connected by an SDG edge or share a common accessed array (the
  /// merged subcomputation then shares loads, which is what makes merging
  /// profitable, cf. atax / mvt).
  [[nodiscard]] bool adjacent(const std::string& a, const std::string& b) const;

  [[nodiscard]] std::string dot() const;  ///< Graphviz rendering

  [[nodiscard]] const Program& program() const { return *program_; }

 private:
  const Program* program_ = nullptr;
  std::vector<std::string> arrays_;
  std::map<std::string, int> index_;
  std::set<std::pair<int, int>> edges_;
  std::vector<std::string> inputs_;
  std::vector<std::string> computed_;
};

}  // namespace soap::sdg
