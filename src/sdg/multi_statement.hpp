// Theorem 1 of the paper: the multi-statement I/O lower bound
//   Q >= sum_{A in V_S} |A| / max_{H in S(A)} rho_H,
// evaluated over the enumerated connected SDG subgraphs, combined with the
// cold bound (every touched input loaded and every terminal output stored at
// least once).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bounds/opt/types.hpp"
#include "bounds/result.hpp"
#include "sdg/merge.hpp"
#include "sdg/sdg.hpp"
#include "support/cancel.hpp"
#include "support/executor.hpp"

namespace soap::sdg {

/// How the per-subgraph analysis is scheduled over the enumeration.  Both
/// schedules produce bit-identical MultiStatementBounds at every worker
/// count — the determinism suite enforces it — so kPipelined is strictly a
/// wall-clock improvement.
enum class SdgSchedule : std::uint8_t {
  /// Staged pipeline: the subgraph producer streams into the per-subgraph
  /// analysis stages, so analysis overlaps with the enumeration of the next
  /// level and the reduction happens in enumeration order as results
  /// arrive.  Default.
  kPipelined,
  /// Level-synchronous: each enumeration level is fully materialized, then
  /// sharded, with a barrier before the next level is generated.  Kept as
  /// the reference schedule for the determinism oracle.
  kLevelSync,
};

struct SdgOptions {
  /// Largest subgraph cardinality enumerated; 1 disables fusion analysis.
  std::size_t max_subgraph_size = 4;
  /// Cap on the total number of subgraphs enumerated (the streaming
  /// producer stops exactly here; corpus programs stay far below it).
  std::size_t max_subgraphs = 100000;
  /// Worker budget for the per-subgraph analysis (merge -> chi -> minimize
  /// -> eval), counting the calling thread: 1 = serial (default, bypasses
  /// the pool entirely), 0 = all hardware threads, N = up to N.  The result
  /// is bit-identical for every value — sharding only changes who computes
  /// each subgraph, never what is computed or the order it is reduced in.
  std::size_t threads = 1;
  /// Where helper workers run: the process-global pool by default; inject a
  /// private pool or ExecutorRef::serial() to override (helper fan-out is
  /// capped by the executor's concurrency).
  support::ExecutorRef executor;
  /// Pipelined (default) vs level-synchronous scheduling; see SdgSchedule.
  SdgSchedule schedule = SdgSchedule::kPipelined;
  /// Include the cold bound (inputs touched + terminal outputs stored at
  /// least once) via max().  Off by default: the bounding-box footprint
  /// over-counts for version-dimension encodings (time stencils) and
  /// triangular domains; enable it for streaming pipelines where it is exact
  /// (horizontal diffusion, vertical advection).
  bool use_cold_bound = false;
  /// Termination criteria, polled at subgraph-enumeration boundaries and
  /// inside the numeric optimizer.  Default: unlimited — the analysis runs
  /// exactly its historical path and the golden rows stay bit-identical.
  support::StopCriteria stop;
  /// When a deadline or resource budget trips mid-derivation, fall back to
  /// the sound per-statement accounting (max_subgraph_size = 1, serial,
  /// cancellation still honored) and mark the result `degraded` instead of
  /// failing the kernel.  Cancellation never degrades — it always raises
  /// AnalysisError{kCancelled}.  Set false to surface budget trips as
  /// errors.
  bool degrade_on_budget = true;
  /// Numeric optimizer backend for the per-subgraph chi constant fits
  /// (bounds/opt, docs/OPTIMIZER.md).  All shipped backends agree on the
  /// corpus (the differential suite enforces it); the default is the
  /// historical solver, bit-identical.  Part of the service cache key.
  bounds::opt::BackendKind optimizer = bounds::opt::BackendKind::kNelderMead;
};

struct ArrayBound {
  std::string array;
  sym::Expr cdag_size;               ///< |A|: CDAG vertices of the array
  sym::Expr rho;                     ///< best intensity (leading in S)
  double rho_value = 0.0;            ///< rho at the reference S
  std::vector<std::string> best_subgraph;
};

struct MultiStatementBound {
  sym::Expr Q_leading;  ///< final Table 2 style bound
  sym::Expr Q_sdg;      ///< Theorem 1 sum over computed arrays
  sym::Expr Q_cold;     ///< inputs touched + terminal outputs stored
  std::vector<ArrayBound> per_array;
  std::size_t subgraphs_evaluated = 0;
  /// True when a deadline/budget trip forced the per-statement fallback;
  /// `degraded_reason` records which criterion tripped.  A degraded bound
  /// is still sound (per-statement accounting is the soundness baseline the
  /// attainment table validates against) but may be weaker than the fused
  /// bound the full enumeration would have derived.
  bool degraded = false;
  support::StatusCode degraded_reason = support::StatusCode::kOk;

  [[nodiscard]] std::string str() const {
    return "Q >= " + Q_leading.str();
  }
};

/// Full multi-statement analysis of a SOAP program.  Polls `options.stop`
/// at enumeration/solver chunk boundaries; see SdgOptions::degrade_on_budget
/// for what happens when a criterion trips.
std::optional<MultiStatementBound> multi_statement_bound(
    const Program& program, const SdgOptions& options = {});

}  // namespace soap::sdg
