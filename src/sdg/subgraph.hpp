// Enumeration of SDG subgraphs (Section 6.1): connected subsets of computed
// arrays, each of which induces a "subgraph SOAP statement" whose intensity
// bounds the subcomputations spanning those arrays.
#pragma once

#include <string>
#include <vector>

#include "sdg/sdg.hpp"

namespace soap::sdg {

/// All connected subsets of the computed arrays with size <= max_size
/// (connectivity per Sdg::adjacent, which includes shared-input adjacency).
/// The enumeration is capped at max_count subsets (largest programs in the
/// corpus stay far below it; the paper notes its approach scales to ~35
/// statements).
std::vector<std::vector<std::string>> enumerate_subgraphs(
    const Sdg& sdg, std::size_t max_size, std::size_t max_count = 100000);

}  // namespace soap::sdg
