// Enumeration of SDG subgraphs (Section 6.1): connected subsets of computed
// arrays, each of which induces a "subgraph SOAP statement" whose intensity
// bounds the subcomputations spanning those arrays.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sdg/sdg.hpp"

namespace soap::sdg {

/// Receives one enumeration level (all emitted subsets of a single
/// cardinality, in canonical generation order).  The vector is the
/// producer's scratch for that level; sinks may move elements out of it.
using SubgraphLevelSink =
    std::function<void(std::vector<std::vector<std::string>>&)>;

/// Level-synchronous streaming enumeration of the connected subsets of the
/// computed arrays: level k (all subsets of size k, grown from level k-1 by
/// one adjacent vertex, deduplicated) is materialized and handed to `sink`
/// before level k+1 is generated, so at most one level is ever held in
/// memory and the consumer can process each level — e.g. shard it across a
/// thread pool — while the total enumeration stays in canonical order.
/// Generation stops exactly at `max_count` emitted subsets (mid-level if
/// necessary) instead of enumerating past the cap.
void for_each_subgraph_level(const Sdg& sdg, std::size_t max_size,
                             std::size_t max_count,
                             const SubgraphLevelSink& sink);

/// All connected subsets of the computed arrays with size <= max_size
/// (connectivity per Sdg::adjacent, which includes shared-input adjacency),
/// materialized in the same canonical order the streaming producer emits.
/// The enumeration is capped at max_count subsets (largest programs in the
/// corpus stay far below it; the paper notes its approach scales to ~35
/// statements).
std::vector<std::vector<std::string>> enumerate_subgraphs(
    const Sdg& sdg, std::size_t max_size, std::size_t max_count = 100000);

}  // namespace soap::sdg
