// Enumeration of SDG subgraphs (Section 6.1): connected subsets of computed
// arrays, each of which induces a "subgraph SOAP statement" whose intensity
// bounds the subcomputations spanning those arrays.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sdg/sdg.hpp"

namespace soap::sdg {

/// Receives one emitted subset (ownership transferred, canonical generation
/// order).  Return false to stop the enumeration early — the producer
/// returns without generating further subsets.
using SubgraphSink = std::function<bool(std::vector<std::string>&&)>;

/// Streaming enumeration of the connected subsets of the computed arrays:
/// each subset is handed to `sink` the moment it is generated, so a
/// consumer — e.g. the staged analysis pipeline — can process subgraphs
/// while the enumeration of the next level is still in progress.  Subsets
/// are emitted in canonical order (by cardinality, then generation order
/// within a level: level k+1 grows every level-k subset by one adjacent
/// vertex, deduplicated); generation stops exactly at `max_count` emitted
/// subsets or when `sink` returns false.
void for_each_subgraph(const Sdg& sdg, std::size_t max_size,
                       std::size_t max_count, const SubgraphSink& sink);

/// Receives one enumeration level (all emitted subsets of a single
/// cardinality, in canonical generation order).  The vector is the
/// producer's scratch for that level; sinks may move elements out of it.
using SubgraphLevelSink =
    std::function<void(std::vector<std::vector<std::string>>&)>;

/// Level-synchronous batching of for_each_subgraph: level k (all subsets of
/// size k) is materialized and handed to `sink` before level k+1 is
/// generated, so at most one level is ever held in memory.  This is the
/// barriered schedule the pipelined analysis replaced; it remains the
/// reference oracle for the determinism suite and the shape for consumers
/// that genuinely need whole levels.
void for_each_subgraph_level(const Sdg& sdg, std::size_t max_size,
                             std::size_t max_count,
                             const SubgraphLevelSink& sink);

/// All connected subsets of the computed arrays with size <= max_size
/// (connectivity per Sdg::adjacent, which includes shared-input adjacency),
/// materialized in the same canonical order the streaming producer emits.
/// The enumeration is capped at max_count subsets (largest programs in the
/// corpus stay far below it; the paper notes its approach scales to ~35
/// statements).
std::vector<std::vector<std::string>> enumerate_subgraphs(
    const Sdg& sdg, std::size_t max_size, std::size_t max_count = 100000);

}  // namespace soap::sdg
