#include "sdg/subgraph.hpp"

#include <algorithm>
#include <set>

namespace soap::sdg {

std::vector<std::vector<std::string>> enumerate_subgraphs(
    const Sdg& sdg, std::size_t max_size, std::size_t max_count) {
  const std::vector<std::string>& computed = sdg.computed_arrays();
  const std::size_t n = computed.size();
  // Adjacency among computed arrays.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (sdg.adjacent(computed[i], computed[j])) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  // BFS over connected subsets: grow each subset by a neighbour with an index
  // larger than the subset's minimum to avoid duplicates, dedup via a set.
  std::set<std::vector<std::size_t>> seen;
  std::vector<std::vector<std::size_t>> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    frontier.push_back({i});
    seen.insert({i});
  }
  std::vector<std::vector<std::string>> out;
  auto emit = [&](const std::vector<std::size_t>& subset) {
    std::vector<std::string> names;
    names.reserve(subset.size());
    for (std::size_t i : subset) names.push_back(computed[i]);
    out.push_back(std::move(names));
  };
  for (const auto& s : frontier) emit(s);
  while (!frontier.empty() && out.size() < max_count) {
    std::vector<std::vector<std::size_t>> next;
    for (const auto& subset : frontier) {
      if (subset.size() >= max_size) continue;
      // Candidate extensions: neighbours of any member.
      std::set<std::size_t> cand;
      for (std::size_t v : subset) {
        for (std::size_t w : adj[v]) cand.insert(w);
      }
      for (std::size_t w : cand) {
        if (std::binary_search(subset.begin(), subset.end(), w)) continue;
        std::vector<std::size_t> grown = subset;
        grown.insert(std::lower_bound(grown.begin(), grown.end(), w), w);
        if (!seen.insert(grown).second) continue;
        emit(grown);
        next.push_back(std::move(grown));
        if (out.size() >= max_count) break;
      }
      if (out.size() >= max_count) break;
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace soap::sdg
