#include "sdg/subgraph.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>

namespace soap::sdg {

namespace {

/// Hash of a sorted index subset (boost::hash_combine-style mixing).  Keys
/// the per-level dedup set; cheaper than the lexicographic compares of the
/// ordered std::set<std::vector<...>> it replaced.
struct SubsetHash {
  std::size_t operator()(const std::vector<std::size_t>& subset) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::size_t v : subset) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

void for_each_subgraph(const Sdg& sdg, std::size_t max_size,
                       std::size_t max_count, const SubgraphSink& sink) {
  const std::vector<std::string>& computed = sdg.computed_arrays();
  const std::size_t n = computed.size();
  if (n == 0 || max_size == 0 || max_count == 0) return;
  // Adjacency among computed arrays.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (sdg.adjacent(computed[i], computed[j])) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }

  std::size_t emitted = 0;
  // Emits one subset; false = stop (cap reached or the sink declined more).
  auto emit = [&](const std::vector<std::size_t>& subset) -> bool {
    std::vector<std::string> names;
    names.reserve(subset.size());
    for (std::size_t i : subset) names.push_back(computed[i]);
    ++emitted;
    if (!sink(std::move(names))) return false;
    return emitted < max_count;
  };

  // Level 1: singletons.
  std::vector<std::vector<std::size_t>> frontier;
  frontier.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    frontier.push_back({i});
    if (!emit(frontier.back())) return;
  }

  // Level k+1: grow every level-k subset by one adjacent vertex.  A size-k
  // subset can only be produced while generating level k, so deduplication
  // needs just the current level's set (cleared between levels).
  std::size_t size = 1;
  while (!frontier.empty() && size < max_size) {
    std::vector<std::vector<std::size_t>> next;
    std::unordered_set<std::vector<std::size_t>, SubsetHash> seen;
    for (const auto& subset : frontier) {
      // Candidate extensions: neighbours of any member, in ascending order.
      std::set<std::size_t> cand;
      for (std::size_t v : subset) {
        for (std::size_t w : adj[v]) cand.insert(w);
      }
      for (std::size_t w : cand) {
        if (std::binary_search(subset.begin(), subset.end(), w)) continue;
        std::vector<std::size_t> grown = subset;
        grown.insert(std::lower_bound(grown.begin(), grown.end(), w), w);
        if (!seen.insert(grown).second) continue;
        next.push_back(std::move(grown));
        if (!emit(next.back())) return;
      }
    }
    frontier = std::move(next);
    ++size;
  }
}

void for_each_subgraph_level(const Sdg& sdg, std::size_t max_size,
                             std::size_t max_count,
                             const SubgraphLevelSink& sink) {
  std::vector<std::vector<std::string>> level;
  std::size_t current_size = 0;
  for_each_subgraph(
      sdg, max_size, max_count, [&](std::vector<std::string>&& names) {
        if (names.size() != current_size && !level.empty()) {
          sink(level);
          level.clear();
        }
        current_size = names.size();
        level.push_back(std::move(names));
        return true;
      });
  if (!level.empty()) sink(level);
}

std::vector<std::vector<std::string>> enumerate_subgraphs(
    const Sdg& sdg, std::size_t max_size, std::size_t max_count) {
  std::vector<std::vector<std::string>> out;
  for_each_subgraph(sdg, max_size, max_count,
                    [&out](std::vector<std::string>&& names) {
                      out.push_back(std::move(names));
                      return true;
                    });
  return out;
}

}  // namespace soap::sdg
