#include "sdg/sdg.hpp"

#include <sstream>
#include <stdexcept>

namespace soap::sdg {

Sdg Sdg::build(const Program& program) {
  Sdg g;
  g.program_ = &program;
  g.arrays_ = program.arrays();
  for (std::size_t i = 0; i < g.arrays_.size(); ++i) {
    g.index_[g.arrays_[i]] = static_cast<int>(i);
  }
  for (const Statement& st : program.statements) {
    int out = g.index_.at(st.output.array);
    for (const ArrayAccess& in : st.inputs) {
      g.edges_.insert({g.index_.at(in.array), out});
    }
  }
  g.inputs_ = program.input_arrays();
  g.computed_ = program.computed_arrays();
  return g;
}

int Sdg::index_of(const std::string& array) const {
  auto it = index_.find(array);
  if (it == index_.end()) throw std::out_of_range("Sdg: unknown array " + array);
  return it->second;
}

bool Sdg::has_edge(const std::string& from, const std::string& to) const {
  return edges_.count({index_of(from), index_of(to)}) > 0;
}

std::vector<int> Sdg::writers(const std::string& array) const {
  std::vector<int> out;
  const auto& sts = program_->statements;
  for (std::size_t i = 0; i < sts.size(); ++i) {
    if (sts[i].output.array == array) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Sdg::readers(const std::string& array) const {
  std::vector<int> out;
  const auto& sts = program_->statements;
  for (std::size_t i = 0; i < sts.size(); ++i) {
    if (sts[i].reads(array)) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Sdg::adjacent(const std::string& a, const std::string& b) const {
  if (has_edge(a, b) || has_edge(b, a)) return true;
  // Shared accessed array between the writers of a and b.
  for (int sa : writers(a)) {
    const Statement& st_a = program_->statements[static_cast<std::size_t>(sa)];
    for (int sb : writers(b)) {
      const Statement& st_b =
          program_->statements[static_cast<std::size_t>(sb)];
      for (const ArrayAccess& ia : st_a.inputs) {
        if (st_b.reads(ia.array)) return true;
      }
    }
  }
  return false;
}

std::string Sdg::dot() const {
  std::ostringstream os;
  os << "digraph sdg {\n";
  for (const std::string& a : arrays_) {
    bool is_input = false;
    for (const std::string& i : inputs_) is_input |= i == a;
    os << "  \"" << a << "\"" << (is_input ? " [shape=box]" : "") << ";\n";
  }
  for (const auto& [u, v] : edges_) {
    os << "  \"" << arrays_[static_cast<std::size_t>(u)] << "\" -> \""
       << arrays_[static_cast<std::size_t>(v)] << "\";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace soap::sdg
