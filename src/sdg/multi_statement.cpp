#include "sdg/multi_statement.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bounds/intensity.hpp"
#include "sdg/subgraph.hpp"
#include "support/sym_map.hpp"
#include "symbolic/leading.hpp"

namespace soap::sdg {

namespace {

constexpr double kReferenceS = 1 << 20;

const SymIdSet& s_only() {
  static const SymIdSet set = SymIdSet::from_unsorted({intern_symbol("S")});
  return set;
}

double eval_all(const sym::Expr& e, double size_value, double s_value) {
  SymMap<double> env;
  for (SymId v : e.symbol_ids()) env.set(v, size_value);
  env.set(intern_symbol("S"), s_value);
  return e.eval(env);
}

}  // namespace

std::optional<MultiStatementBound> multi_statement_bound(
    const Program& program, const SdgOptions& options) {
  if (program.statements.empty()) return std::nullopt;
  Sdg sdg = Sdg::build(program);

  struct Evaluated {
    std::vector<std::string> arrays;
    sym::Expr rho;
    double rho_value;
  };
  std::vector<Evaluated> evaluated;
  auto subgraphs = enumerate_subgraphs(sdg, options.max_subgraph_size);
  // Distinct subgraphs frequently derive the *same* intensity expression
  // (hash-consing makes them the same node); cache the reference evaluation
  // by expression identity.
  std::unordered_map<sym::Expr, double> rho_value_cache;
  for (const auto& H : subgraphs) {
    MergedSubgraph merged = merge_subgraph(sdg, H);
    auto chi = bounds::derive_chi(merged.problem);
    if (!chi) continue;  // unbounded intensity: no constraint from this H
    bounds::IntensityResult in = bounds::minimize_intensity(*chi);
    auto [it, inserted] = rho_value_cache.try_emplace(in.rho, 0.0);
    if (inserted) it->second = eval_all(in.rho, 1.0, kReferenceS);
    double value = it->second;
    if (!std::isfinite(value) || value <= 0) continue;
    evaluated.push_back({H, in.rho, value});
  }

  MultiStatementBound out;
  out.subgraphs_evaluated = evaluated.size();

  // Theorem 1 sum over computed arrays.
  sym::Expr q_sdg(0);
  for (const std::string& array : sdg.computed_arrays()) {
    const Evaluated* best = nullptr;
    for (const Evaluated& e : evaluated) {
      if (std::find(e.arrays.begin(), e.arrays.end(), array) ==
          e.arrays.end()) {
        continue;
      }
      if (best == nullptr || e.rho_value > best->rho_value) best = &e;
    }
    ArrayBound ab;
    ab.array = array;
    ab.cdag_size =
        sym::leading_term_except(program.array_cdag_size(array), s_only());
    if (best == nullptr) {
      // No finite-intensity subgraph covers this array: it contributes no
      // I/O in this accounting (unlimited reuse).
      ab.rho = sym::Expr(0);
      out.per_array.push_back(std::move(ab));
      continue;
    }
    ab.rho = best->rho;
    ab.rho_value = best->rho_value;
    ab.best_subgraph = best->arrays;
    q_sdg = q_sdg + ab.cdag_size / best->rho;
    out.per_array.push_back(std::move(ab));
  }
  out.Q_sdg = sym::leading_term_except(q_sdg, s_only());

  // Cold bound: touched inputs + terminal outputs, each at least once.
  sym::Expr q_cold(0);
  for (const std::string& a : program.input_arrays()) {
    q_cold = q_cold + program.array_element_count(a);
  }
  for (const std::string& a : program.terminal_arrays()) {
    q_cold = q_cold + program.array_element_count(a);
  }
  out.Q_cold = sym::leading_term_except(q_cold, s_only());

  // Final: the numerically larger of the two sound bounds at a reference
  // point (sizes >> S so the leading terms dominate).
  double sdg_val = eval_all(out.Q_sdg, 1e7, kReferenceS);
  double cold_val = eval_all(out.Q_cold, 1e7, kReferenceS);
  if (options.use_cold_bound && cold_val > sdg_val) {
    out.Q_leading = out.Q_cold;
  } else {
    out.Q_leading = out.Q_sdg;
  }
  return out;
}

}  // namespace soap::sdg
