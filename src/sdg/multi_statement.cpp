#include "sdg/multi_statement.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/intensity.hpp"
#include "sdg/subgraph.hpp"
#include "symbolic/leading.hpp"

namespace soap::sdg {

namespace {

constexpr double kReferenceS = 1 << 20;

double eval_all(const sym::Expr& e, double size_value, double s_value) {
  std::map<std::string, double> env;
  for (const std::string& v : e.symbols()) env[v] = size_value;
  env["S"] = s_value;
  return e.eval(env);
}

}  // namespace

std::optional<MultiStatementBound> multi_statement_bound(
    const Program& program, const SdgOptions& options) {
  if (program.statements.empty()) return std::nullopt;
  Sdg sdg = Sdg::build(program);

  struct Evaluated {
    std::vector<std::string> arrays;
    sym::Expr rho;
    double rho_value;
  };
  std::vector<Evaluated> evaluated;
  auto subgraphs = enumerate_subgraphs(sdg, options.max_subgraph_size);
  for (const auto& H : subgraphs) {
    MergedSubgraph merged = merge_subgraph(sdg, H);
    auto chi = bounds::derive_chi(merged.problem);
    if (!chi) continue;  // unbounded intensity: no constraint from this H
    bounds::IntensityResult in = bounds::minimize_intensity(*chi);
    double value = eval_all(in.rho, 1.0, kReferenceS);
    if (!std::isfinite(value) || value <= 0) continue;
    evaluated.push_back({H, in.rho, value});
  }

  MultiStatementBound out;
  out.subgraphs_evaluated = evaluated.size();

  // Theorem 1 sum over computed arrays.
  sym::Expr q_sdg(0);
  for (const std::string& array : sdg.computed_arrays()) {
    const Evaluated* best = nullptr;
    for (const Evaluated& e : evaluated) {
      if (std::find(e.arrays.begin(), e.arrays.end(), array) ==
          e.arrays.end()) {
        continue;
      }
      if (best == nullptr || e.rho_value > best->rho_value) best = &e;
    }
    ArrayBound ab;
    ab.array = array;
    ab.cdag_size = sym::leading_term_except(program.array_cdag_size(array),
                                            {"S"});
    if (best == nullptr) {
      // No finite-intensity subgraph covers this array: it contributes no
      // I/O in this accounting (unlimited reuse).
      ab.rho = sym::Expr(0);
      out.per_array.push_back(std::move(ab));
      continue;
    }
    ab.rho = best->rho;
    ab.rho_value = best->rho_value;
    ab.best_subgraph = best->arrays;
    q_sdg = q_sdg + ab.cdag_size / best->rho;
    out.per_array.push_back(std::move(ab));
  }
  out.Q_sdg = sym::leading_term_except(q_sdg, {"S"});

  // Cold bound: touched inputs + terminal outputs, each at least once.
  sym::Expr q_cold(0);
  for (const std::string& a : program.input_arrays()) {
    q_cold = q_cold + program.array_element_count(a);
  }
  for (const std::string& a : program.terminal_arrays()) {
    q_cold = q_cold + program.array_element_count(a);
  }
  out.Q_cold = sym::leading_term_except(q_cold, {"S"});

  // Final: the numerically larger of the two sound bounds at a reference
  // point (sizes >> S so the leading terms dominate).
  double sdg_val = eval_all(out.Q_sdg, 1e7, kReferenceS);
  double cold_val = eval_all(out.Q_cold, 1e7, kReferenceS);
  if (options.use_cold_bound && cold_val > sdg_val) {
    out.Q_leading = out.Q_cold;
  } else {
    out.Q_leading = out.Q_sdg;
  }
  return out;
}

}  // namespace soap::sdg
