#include "sdg/multi_statement.hpp"

#include <cmath>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "bounds/intensity.hpp"
#include "sdg/subgraph.hpp"
#include "support/parallel.hpp"
#include "support/pipeline.hpp"
#include "support/sym_map.hpp"
#include "symbolic/leading.hpp"

namespace soap::sdg {

namespace {

constexpr double kReferenceS = 1 << 20;

SymId s_symbol() {
  static const SymId id = intern_symbol("S");
  return id;
}

const SymIdSet& s_only() {
  static const SymIdSet set = SymIdSet::from_unsorted({s_symbol()});
  return set;
}

// Evaluates `e` with every size symbol at `size_value` and S at `s_value`.
// The env is a per-thread template reused across calls (cleared, not
// reallocated) and the "S" id is interned once, so per-subgraph evaluation
// does no string interning and no steady-state allocation.
double eval_all(const sym::Expr& e, double size_value, double s_value) {
  thread_local SymMap<double> env;
  env.clear();
  for (SymId v : e.symbol_ids()) env.set(v, size_value);
  env.set(s_symbol(), s_value);
  return e.eval(env);
}

// Distinct subgraphs frequently derive the *same* intensity expression
// (hash-consing makes them the same node); cache the reference evaluation
// by expression identity.  Shared across workers: the value is a pure
// function of the expression, so whichever worker computes or reuses it the
// number is the same and the cache cannot introduce schedule dependence.
class RhoValueCache {
 public:
  double value(const sym::Expr& rho) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = values_.find(rho);
      if (it != values_.end()) return it->second;
    }
    double v = eval_all(rho, 1.0, kReferenceS);
    std::lock_guard<std::mutex> lock(mu_);
    return values_.try_emplace(rho, v).first->second;
  }

 private:
  std::mutex mu_;
  std::unordered_map<sym::Expr, double> values_;
};

struct Evaluated {
  std::vector<std::string> arrays;
  sym::Expr rho;
  double rho_value = 0.0;
};

// Enumeration-side stop polling.  The subgraph budget is an exact count
// check; cancellation/deadline are checked every emit (cheap: a pointer
// test and, when a deadline is armed, a clock read); the node-budget gauge
// sweep piggybacks on every 16th emit.
class EnumerationGuard {
 public:
  explicit EnumerationGuard(const support::StopCriteria& stop)
      : stop_(stop), limited_(!stop.unlimited()) {}

  void poll() {
    if (!limited_) return;
    ++emitted_;
    if (stop_.budget.max_subgraphs != 0 &&
        emitted_ > stop_.budget.max_subgraphs) {
      throw support::AnalysisError(
          support::StatusCode::kBudgetExceeded,
          "subgraph budget exceeded (max=" +
              std::to_string(stop_.budget.max_subgraphs) + ")");
    }
    if ((emitted_ & 15u) == 0 || stop_.cancel.cancelled() ||
        stop_.deadline.expired()) {
      stop_.enforce("subgraph enumeration");
    }
  }

 private:
  const support::StopCriteria& stop_;
  const bool limited_;
  std::size_t emitted_ = 0;
};

// The historical analysis body, unchanged in what it computes; the public
// wrapper below adds the degrade-on-budget fallback around it.
std::optional<MultiStatementBound> derive_bound(const Program& program,
                                                const SdgOptions& options) {
  Sdg sdg = Sdg::build(program);

  // The per-subgraph chain merge_subgraph -> derive_chi -> minimize_intensity
  // -> eval is independent per subgraph.  Whichever schedule runs it, the
  // scheduler decides only *who* analyzes a subgraph: results are reduced
  // into `evaluated` in canonical enumeration order, so `evaluated` — and
  // every reduction below — is identical for any thread count, executor,
  // and schedule.
  std::vector<Evaluated> evaluated;
  RhoValueCache rho_cache;
  auto analyze_one =
      [&](std::vector<std::string>&& arrays) -> std::optional<Evaluated> {
    MergedSubgraph merged = merge_subgraph(sdg, arrays);
    auto chi =
        bounds::derive_chi(merged.problem, options.stop, options.optimizer);
    // Unbounded intensity: no constraint from this subgraph.
    if (!chi) return std::nullopt;
    bounds::IntensityResult in = bounds::minimize_intensity(*chi);
    double value = rho_cache.value(in.rho);
    if (!std::isfinite(value) || value <= 0) return std::nullopt;
    return Evaluated{std::move(arrays), in.rho, value};
  };

  if (options.schedule == SdgSchedule::kPipelined) {
    // Staged pipeline: the enumeration producer streams each subgraph into
    // the analysis stage the moment it is generated — per-subgraph analysis
    // overlaps with the enumeration of the next level — and the ordered
    // sink appends results by sequence index.
    support::PipelineOptions pipe;
    pipe.workers = options.threads;
    pipe.executor = options.executor;
    pipe.cancel = options.stop.cancel;
    EnumerationGuard guard(options.stop);
    support::run_pipeline<std::vector<std::string>>(
        pipe,
        [&](const std::function<bool(std::vector<std::string> &&)>& emit) {
          for_each_subgraph(sdg, options.max_subgraph_size,
                            options.max_subgraphs,
                            [&](std::vector<std::string>&& arrays) {
                              guard.poll();
                              return emit(std::move(arrays));
                            });
        },
        analyze_one,
        [&](std::size_t, std::optional<Evaluated>&& slot) {
          if (slot) evaluated.push_back(std::move(*slot));
        });
  } else {
    // Level-synchronous reference schedule: materialize each enumeration
    // level, shard it, barrier, continue.
    support::ParallelOptions par;
    par.threads = options.threads;
    par.executor = options.executor;
    par.cancel = options.stop.cancel;
    EnumerationGuard guard(options.stop);
    for_each_subgraph_level(
        sdg, options.max_subgraph_size, options.max_subgraphs,
        [&](std::vector<std::vector<std::string>>& level) {
          for (std::size_t i = 0; i < level.size(); ++i) guard.poll();
          auto slots = support::parallel_map<std::optional<Evaluated>>(
              level.size(), par,
              [&](std::size_t i) { return analyze_one(std::move(level[i])); });
          for (std::optional<Evaluated>& slot : slots) {
            if (slot) evaluated.push_back(std::move(*slot));
          }
        });
  }

  MultiStatementBound out;
  out.subgraphs_evaluated = evaluated.size();

  // One pass over `evaluated` builds the array -> best-candidate index;
  // ties keep the earliest-enumerated subgraph, matching the order the
  // quadratic per-array scan used to visit them in.
  std::unordered_map<std::string, const Evaluated*> best_for;
  best_for.reserve(2 * evaluated.size());
  for (const Evaluated& e : evaluated) {
    for (const std::string& array : e.arrays) {
      auto [it, inserted] = best_for.try_emplace(array, &e);
      if (!inserted && e.rho_value > it->second->rho_value) it->second = &e;
    }
  }

  // Theorem 1 sum over computed arrays (batch-canonicalized at the end).
  sym::ExprVec q_sdg_terms;
  for (const std::string& array : sdg.computed_arrays()) {
    auto it = best_for.find(array);
    const Evaluated* best = it == best_for.end() ? nullptr : it->second;
    ArrayBound ab;
    ab.array = array;
    ab.cdag_size =
        sym::leading_term_except(program.array_cdag_size(array), s_only());
    if (best == nullptr) {
      // No finite-intensity subgraph covers this array: it contributes no
      // I/O in this accounting (unlimited reuse).
      ab.rho = sym::Expr(0);
      out.per_array.push_back(std::move(ab));
      continue;
    }
    ab.rho = best->rho;
    ab.rho_value = best->rho_value;
    ab.best_subgraph = best->arrays;
    q_sdg_terms.push_back(ab.cdag_size / best->rho);
    out.per_array.push_back(std::move(ab));
  }
  out.Q_sdg =
      sym::leading_term_except(sym::make_add(std::move(q_sdg_terms)), s_only());

  // Cold bound: touched inputs + terminal outputs, each at least once.
  sym::ExprVec q_cold_terms;
  for (const std::string& a : program.input_arrays()) {
    q_cold_terms.push_back(program.array_element_count(a));
  }
  for (const std::string& a : program.terminal_arrays()) {
    q_cold_terms.push_back(program.array_element_count(a));
  }
  out.Q_cold =
      sym::leading_term_except(sym::make_add(std::move(q_cold_terms)), s_only());

  // Final: the numerically larger of the two sound bounds at a reference
  // point (sizes >> S so the leading terms dominate).
  double sdg_val = eval_all(out.Q_sdg, 1e7, kReferenceS);
  double cold_val = eval_all(out.Q_cold, 1e7, kReferenceS);
  if (options.use_cold_bound && cold_val > sdg_val) {
    out.Q_leading = out.Q_cold;
  } else {
    out.Q_leading = out.Q_sdg;
  }
  return out;
}

}  // namespace

std::optional<MultiStatementBound> multi_statement_bound(
    const Program& program, const SdgOptions& options) {
  if (program.statements.empty()) return std::nullopt;
  try {
    return derive_bound(program, options);
  } catch (const support::AnalysisError& error) {
    const support::StatusCode code = error.code();
    const bool budget_trip =
        code == support::StatusCode::kDeadlineExceeded ||
        code == support::StatusCode::kBudgetExceeded;
    if (!budget_trip || !options.degrade_on_budget) {
      throw;  // cancellation/invalid-input always surface; so does a trip
              // when degradation is off
    }
    // Graceful degradation: re-derive with the sound per-statement
    // accounting (singleton subgraphs — exactly PR 6's soundness baseline).
    // The fallback is bounded work (one solve per statement), so the
    // tripped deadline/budget is dropped; only cancellation stays live.
    // Kernels already configured per-statement degrade to the same
    // accounting run to completion — the bound is identical, just late.
    SdgOptions fallback = options;
    fallback.max_subgraph_size = 1;
    fallback.threads = 1;
    fallback.executor = support::ExecutorRef::serial();
    fallback.stop = support::StopCriteria{};
    fallback.stop.cancel = options.stop.cancel;
    std::optional<MultiStatementBound> out = derive_bound(program, fallback);
    if (out) {
      out->degraded = true;
      out->degraded_reason = code;
    }
    return out;
  }
}

}  // namespace soap::sdg
