#include "sdg/merge.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "bounds/access_size.hpp"
#include "soap/projection.hpp"
#include "support/union_find.hpp"

namespace soap::sdg {

namespace {

/// Variable renaming as a SymId -> SymId flat map (no string traffic on the
/// per-subgraph merge path, which bench_sdg_scaling exercises heavily).
using Rename = SymMap<SymId>;

Affine rename_affine(const Affine& a, const Rename& rename) {
  Affine out(a.constant());
  for (const auto& [v, c] : a.coeffs()) {
    const SymId* unified = rename.find(v);
    out = out + c * Affine::variable(unified == nullptr ? v : *unified);
  }
  return out;
}

AccessComponent rename_component(const AccessComponent& comp,
                                 const Rename& rename) {
  AccessComponent out;
  out.index.reserve(comp.index.size());
  for (const Affine& idx : comp.index) {
    out.index.push_back(rename_affine(idx, rename));
  }
  return out;
}

// The canonical component a statement uses to address `array` (reads win,
// then the output); nullptr when the statement does not touch it.
const AccessComponent* canonical_component(const Statement& st,
                                           const std::string& array) {
  const ArrayAccess* in = st.input_for(array);
  if (in != nullptr && !in->components.empty()) return &in->components[0];
  if (st.output.array == array && !st.output.components.empty()) {
    return &st.output.components[0];
  }
  return nullptr;
}

}  // namespace

MergedSubgraph merge_subgraph(const Sdg& sdg,
                              const std::vector<std::string>& H) {
  const Program& program = sdg.program();
  MergedSubgraph out;
  out.arrays = H;
  std::set<std::string> in_h(H.begin(), H.end());

  // Member statements: writers of arrays in H, in program order.
  std::set<int> member_set;
  for (const std::string& a : H) {
    for (int w : sdg.writers(a)) member_set.insert(w);
  }
  out.members.assign(member_set.begin(), member_set.end());

  // --- iteration-variable unification -------------------------------------
  // Register (statement, var) pairs.
  std::vector<std::pair<int, std::string>> slots;
  std::map<std::pair<int, std::string>, std::size_t> slot_of;
  for (int s : out.members) {
    const Statement& st = program.statements[static_cast<std::size_t>(s)];
    for (const std::string& v : st.domain.variables()) {
      slot_of[{s, v}] = slots.size();
      slots.emplace_back(s, v);
    }
  }
  UnionFind uf(slots.size());
  // Align per-dimension single-variable subscripts of shared arrays.
  std::set<std::string> touched;
  for (int s : out.members) {
    const Statement& st = program.statements[static_cast<std::size_t>(s)];
    touched.insert(st.output.array);
    for (const ArrayAccess& in : st.inputs) touched.insert(in.array);
  }
  for (const std::string& array : touched) {
    int anchor = -1;
    const AccessComponent* anchor_comp = nullptr;
    for (int s : out.members) {
      const Statement& st = program.statements[static_cast<std::size_t>(s)];
      const AccessComponent* comp = canonical_component(st, array);
      if (comp == nullptr) continue;
      if (anchor < 0) {
        anchor = s;
        anchor_comp = comp;
        continue;
      }
      if (comp->index.size() != anchor_comp->index.size()) continue;
      for (std::size_t d = 0; d < comp->index.size(); ++d) {
        const Statement& ast =
            program.statements[static_cast<std::size_t>(anchor)];
        std::vector<std::string> va, vb;
        for (const std::string& v : anchor_comp->index[d].variables()) {
          if (ast.domain.has_variable(v)) va.push_back(v);
        }
        for (const std::string& v : comp->index[d].variables()) {
          if (st.domain.has_variable(v)) vb.push_back(v);
        }
        if (va.size() == 1 && vb.size() == 1) {
          uf.unite(slot_of.at({anchor, va[0]}), slot_of.at({s, vb[0]}));
        }
      }
    }
  }

  // --- class naming ---------------------------------------------------------
  std::map<std::size_t, std::string> class_name;
  std::set<std::string> used_names;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    std::size_t root = uf.find(i);
    if (class_name.count(root)) continue;
    std::string base = slots[root].second;
    std::string name = base;
    int suffix = 2;
    while (used_names.count(name)) {
      name = base + "_" + std::to_string(suffix++);
    }
    used_names.insert(name);
    class_name[root] = name;
  }
  std::map<int, Rename> stmt_rename;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::string& unified = class_name.at(uf.find(i));
    stmt_rename[slots[i].first].set(intern_symbol(slots[i].second),
                                    intern_symbol(unified));
    out.rename[slots[i]] = unified;
  }

  // --- merged loop nest ------------------------------------------------------
  std::set<std::string> loop_added;
  for (int s : out.members) {
    const Statement& st = program.statements[static_cast<std::size_t>(s)];
    const auto& rename = stmt_rename[s];
    for (const Loop& l : st.domain.loops()) {
      const SymId* unified = rename.find(intern_symbol(l.var));
      if (unified == nullptr) {
        throw std::logic_error("merge_subgraph: unregistered loop variable " +
                               l.var);
      }
      const std::string& name = symbol_name(*unified);
      if (!loop_added.insert(name).second) continue;
      out.merged_loops.push_back({name, rename_affine(l.lower, rename),
                                  rename_affine(l.upper, rename)});
    }
  }
  Domain merged_domain(out.merged_loops);
  out.problem.vars = merged_domain.variables();

  // --- access terms -----------------------------------------------------------
  // Arrays outside H: one shared load term over the union of their (renamed)
  // access components across all members.
  std::map<std::string, ArrayAccess> outside;
  std::map<std::string, std::vector<int>> outside_hints;
  for (int s : out.members) {
    const Statement& st = program.statements[static_cast<std::size_t>(s)];
    const auto& rename = stmt_rename[s];
    for (const ArrayAccess& in : st.inputs) {
      if (in_h.count(in.array)) continue;
      ArrayAccess& slot = outside[in.array];
      slot.array = in.array;
      for (const AccessComponent& c : in.components) {
        AccessComponent rc = rename_component(c, rename);
        if (std::find(slot.components.begin(), slot.components.end(), rc) ==
            slot.components.end()) {
          slot.components.push_back(std::move(rc));
        }
      }
      auto hint = st.max_overlap_dims.find(in.array);
      if (hint != st.max_overlap_dims.end()) {
        outside_hints[in.array] = hint->second;
      }
    }
  }
  if (!outside.empty()) {
    Statement synthetic;
    synthetic.name = "St_H_inputs";
    synthetic.domain = merged_domain;
    synthetic.output.array = "__subgraph_out";
    for (auto& [name, acc] : outside) synthetic.inputs.push_back(acc);
    for (auto& [name, dims] : outside_hints) {
      synthetic.max_overlap_dims[name] = dims;
    }
    Statement split = split_disjoint_accesses(synthetic);
    bounds::StatementAnalysis analysis = bounds::analyze_statement(split);
    for (auto& t : analysis.input_terms) {
      out.problem.sum_terms.push_back(std::move(t));
    }
  }

  // Arrays inside H: only their input-output boundary term (Corollary 1 /
  // version dimension); vertices computed inside the tile are reused or
  // recomputed for free.  Arrays in H never read by a member contribute a
  // minimum-set (output) constraint instead.
  for (const std::string& array : H) {
    ArrayAccess reads;
    reads.array = array;
    const AccessComponent* out_comp = nullptr;
    AccessComponent out_renamed;
    std::vector<int> hint_dims;
    for (int s : out.members) {
      const Statement& st = program.statements[static_cast<std::size_t>(s)];
      const auto& rename = stmt_rename[s];
      const ArrayAccess* in = st.input_for(array);
      if (in != nullptr) {
        for (const AccessComponent& c : in->components) {
          AccessComponent rc = rename_component(c, rename);
          if (std::find(reads.components.begin(), reads.components.end(),
                        rc) == reads.components.end()) {
            reads.components.push_back(std::move(rc));
          }
        }
        auto hint = st.max_overlap_dims.find(array);
        if (hint != st.max_overlap_dims.end()) hint_dims = hint->second;
      }
      if (st.output.array == array && !st.output.components.empty()) {
        out_renamed = rename_component(st.output.components[0], rename);
        out_comp = &out_renamed;
      }
    }
    Statement synthetic;
    synthetic.name = "St_H_" + array;
    synthetic.domain = merged_domain;
    synthetic.output.array = array;
    if (out_comp != nullptr) synthetic.output.components = {*out_comp};
    if (!hint_dims.empty()) synthetic.max_overlap_dims[array] = hint_dims;
    bool self_read = false;
    bool writer_reduction = false;
    for (int s : out.members) {
      const Statement& st = program.statements[static_cast<std::size_t>(s)];
      if (st.output.array != array) continue;
      if (st.reads(array)) self_read = true;
      // Reduction loops of the writer: variables of its nest that do not
      // appear in the output subscript.  With a reduction, the final version
      // of an element exists only once the whole reduction range ran, so a
      // partial tile cannot hand it to readers for free.
      std::set<std::string> in_access;
      if (!st.output.components.empty()) {
        for (const Affine& idx : st.output.components[0].index) {
          for (const std::string& v : idx.variables()) in_access.insert(v);
        }
      }
      for (const std::string& v : st.domain.variables()) {
        if (!in_access.count(v)) writer_reduction = true;
      }
    }
    if (!reads.components.empty()) {
      synthetic.inputs.push_back(reads);
      Statement split = split_disjoint_accesses(synthetic);
      bounds::StatementAnalysis analysis = bounds::analyze_statement(split);
      const std::size_t array_dims = reads.dim();
      for (auto& t : analysis.input_terms) {
        // Values the in-subgraph writer produces inside the tile are reused
        // from fast memory for free (cf. Figure 2: "reusing outputs from St1
        // to compute E").  The term is charged only when the readers can
        // reach versions from outside the tile: the writer itself re-reading
        // its previous version, a reduction remainder, or offset (halo)
        // accesses.
        bool offsets_in_array_dims = false;
        for (std::size_t d = 0; d < std::min(array_dims, t.dims.size()); ++d) {
          offsets_in_array_dims |= t.dims[d].offsets > 0;
        }
        if (!self_read && !writer_reduction && !offsets_in_array_dims &&
            t.array == array) {
          continue;
        }
        if (t.kind == bounds::TermKind::kVersioned && !self_read) continue;
        out.problem.sum_terms.push_back(std::move(t));
      }
      for (auto& t : analysis.output_terms) {
        out.problem.single_terms.push_back(std::move(t));
      }
    } else {
      bounds::StatementAnalysis analysis = bounds::analyze_statement(synthetic);
      for (auto& t : analysis.output_terms) {
        out.problem.single_terms.push_back(std::move(t));
      }
    }
  }

  // --- objective: one tile-volume monomial per member statement ---------------
  for (int s : out.members) {
    const Statement& st = program.statements[static_cast<std::size_t>(s)];
    const auto& rename = stmt_rename[s];
    bounds::ObjectiveMonomial mono;
    for (const std::string& v : st.domain.variables()) {
      const SymId* unified = rename.find(intern_symbol(v));
      if (unified == nullptr) {
        throw std::logic_error("merge_subgraph: unregistered variable " + v);
      }
      mono.degrees[symbol_name(*unified)] += 1;
    }
    bool merged = false;
    for (auto& existing : out.problem.objective) {
      if (existing.degrees == mono.degrees) {
        existing.coeff += mono.coeff;
        merged = true;
        break;
      }
    }
    if (!merged) out.problem.objective.push_back(std::move(mono));
  }
  return out;
}

std::string MergedSubgraph::str() const {
  std::ostringstream os;
  os << "H = {";
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (i) os << ", ";
    os << arrays[i];
  }
  os << "}, loops:";
  for (const Loop& l : merged_loops) os << " " << l.var;
  os << ", terms:";
  for (const auto& t : problem.sum_terms) os << " " << t.array;
  return os.str();
}

}  // namespace soap::sdg
