#include "bounds/access_size.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace soap::bounds {

namespace {

using sym::Expr;

Expr extent_expr(const DimSpec& d) {
  if (d.vars.empty()) return Expr(1);
  if (d.mode == DimSpec::Mode::kMax) {
    sym::ExprVec args;
    args.reserve(d.vars.size());
    for (const std::string& v : d.vars) args.push_back(Expr::symbol(v));
    return sym::max(std::move(args));
  }
  sym::ExprVec factors;
  factors.reserve(d.vars.size());
  for (const std::string& v : d.vars) factors.push_back(Expr::symbol(v));
  return sym::make_mul(std::move(factors));
}

double extent_eval(const DimSpec& d,
                   const std::map<std::string, double>& tiles) {
  if (d.vars.empty()) return 1.0;
  double out = d.mode == DimSpec::Mode::kMax ? 0.0 : 1.0;
  for (const std::string& v : d.vars) {
    auto it = tiles.find(v);
    if (it == tiles.end())
      throw std::out_of_range("AccessTerm::eval: unbound tile " + v);
    if (d.mode == DimSpec::Mode::kMax) {
      out = std::max(out, it->second);
    } else {
      out *= it->second;
    }
  }
  return out;
}

}  // namespace

Expr AccessTerm::size_expr() const {
  sym::ExprVec extents;
  sym::ExprVec extents_minus;
  bool any_offset = false;
  for (const DimSpec& d : dims) {
    Expr e = extent_expr(d);
    extents.push_back(e);
    extents_minus.push_back(e - Expr(d.offsets));
    if (d.offsets > 0) any_offset = true;
  }
  Expr prod = sym::make_mul(std::move(extents));
  Expr prod_minus = sym::make_mul(std::move(extents_minus));
  switch (kind) {
    case TermKind::kPlain:
      if (!any_offset) return prod;
      return Expr(2) * prod - prod_minus;
    case TermKind::kInputOutput:
      return prod - prod_minus;
    case TermKind::kVersioned:
    case TermKind::kOutput:
      return prod;
  }
  throw std::logic_error("AccessTerm::size_expr: bad kind");
}

// prod(e_i) - prod(e_i - c_i) suffers catastrophic cancellation for large
// tiles; evaluate it by inclusion-exclusion instead:
//   prod(e) - prod(e - c) = sum_{T != 0} (-1)^{|T|+1} prod_{i in T} c_i *
//                                                prod_{i not in T} e_i,
// whose summands have the magnitude of the result, not of prod(e).
double combine_access_extents(TermKind kind, const double* e, const double* c,
                              std::size_t n) {
  if (n > 20) throw std::logic_error("AccessTerm::eval: too many dims");
  double prod = 1.0;
  bool any_offset = false;
  for (std::size_t i = 0; i < n; ++i) {
    prod *= e[i];
    if (c[i] > 0) any_offset = true;
  }
  auto difference = [&]() {
    double total = 0.0;
    for (std::size_t mask = 1; mask < (1u << n); ++mask) {
      double term = 1.0;
      int bits = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          term *= c[i];
          ++bits;
        } else {
          term *= e[i];
        }
      }
      total += (bits % 2 == 1) ? term : -term;
    }
    return total;
  };
  switch (kind) {
    case TermKind::kPlain:
      return any_offset ? prod + difference() : prod;
    case TermKind::kInputOutput:
      return difference();
    case TermKind::kVersioned:
    case TermKind::kOutput:
      return prod;
  }
  throw std::logic_error("AccessTerm::eval: bad kind");
}

double AccessTerm::eval(const std::map<std::string, double>& tiles) const {
  std::vector<double> e(dims.size());
  std::vector<double> c(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    e[i] = extent_eval(dims[i], tiles);
    c[i] = static_cast<double>(dims[i].offsets);
  }
  return combine_access_extents(kind, e.data(), c.data(), dims.size());
}

std::vector<std::vector<std::string>> AccessTerm::lp_monomials() const {
  // Per-dimension variable-set choices: a kProduct dimension contributes all
  // of its variables, a kMax dimension contributes one variable at a time
  // (the constraint must hold for every choice since max(x,y) >= each).
  std::vector<std::vector<std::vector<std::string>>> choices;
  for (const DimSpec& d : dims) {
    if (d.vars.empty()) {
      choices.push_back({{}});
    } else if (d.mode == DimSpec::Mode::kMax) {
      std::vector<std::vector<std::string>> c;
      for (const std::string& v : d.vars) c.push_back({v});
      choices.push_back(std::move(c));
    } else {
      choices.push_back({d.vars});
    }
  }
  // Which dimension subsets form dominant monomials?
  //   kPlain / kVersioned / kOutput: the full product.
  //   kInputOutput: prod(e) - prod(e - c) has no full-product term; the
  //   dominant monomials drop exactly one offset dimension each.
  std::vector<std::vector<std::size_t>> dim_subsets;
  const std::size_t n = dims.size();
  if (kind == TermKind::kInputOutput) {
    for (std::size_t skip = 0; skip < n; ++skip) {
      if (dims[skip].offsets <= 0) continue;
      std::vector<std::size_t> subset;
      for (std::size_t i = 0; i < n; ++i)
        if (i != skip) subset.push_back(i);
      dim_subsets.push_back(std::move(subset));
    }
    if (dim_subsets.empty()) {
      throw std::logic_error(
          "AccessTerm: input-output term without any offset dimension "
          "(the version-dimension projection should have added one)");
    }
  } else {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    dim_subsets.push_back(std::move(all));
  }
  // Expand the kMax choices for every subset.
  std::vector<std::vector<std::string>> out;
  for (const auto& subset : dim_subsets) {
    std::vector<std::set<std::string>> partial = {{}};
    for (std::size_t i : subset) {
      std::vector<std::set<std::string>> next;
      for (const auto& p : partial) {
        for (const auto& choice : choices[i]) {
          std::set<std::string> q = p;
          q.insert(choice.begin(), choice.end());
          next.push_back(std::move(q));
        }
      }
      partial = std::move(next);
    }
    for (const auto& p : partial) out.emplace_back(p.begin(), p.end());
  }
  // Deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool AccessTerm::has_max_dims() const {
  return std::any_of(dims.begin(), dims.end(), [](const DimSpec& d) {
    return d.mode == DimSpec::Mode::kMax && d.vars.size() > 1;
  });
}

std::vector<AccessTerm::SignedMonomial> AccessTerm::signed_monomials() const {
  if (has_max_dims())
    throw std::logic_error(
        "AccessTerm::signed_monomials: kMax dimensions not expandable");
  const std::size_t n = dims.size();
  if (n > 20) throw std::logic_error("signed_monomials: too many dims");
  auto dim_monomial = [&](std::size_t i) {
    std::map<std::string, int> m;
    for (const std::string& v : dims[i].vars) m[v] += 1;
    return m;
  };
  std::vector<SignedMonomial> out;
  auto add = [&out](std::map<std::string, int> degrees, Rational coeff) {
    for (SignedMonomial& m : out) {
      if (m.degrees == degrees) {
        m.coeff += coeff;
        return;
      }
    }
    out.push_back({std::move(degrees), coeff});
  };
  auto full_product = [&]() {
    std::map<std::string, int> m;
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& [v, d] : dim_monomial(i)) m[v] += d;
    }
    return m;
  };
  // difference() = prod(e) - prod(e - c), expanded by inclusion-exclusion.
  auto add_difference = [&]() {
    for (std::size_t mask = 1; mask < (1u << n); ++mask) {
      Rational coeff = 1;
      std::map<std::string, int> degs;
      int bits = 0;
      bool zero = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          if (dims[i].offsets == 0) {
            zero = true;
            break;
          }
          coeff *= Rational(dims[i].offsets);
          ++bits;
        } else {
          for (const auto& [v, d] : dim_monomial(i)) degs[v] += d;
        }
      }
      if (zero) continue;
      add(std::move(degs), bits % 2 == 1 ? coeff : -coeff);
    }
  };
  bool any_offset = std::any_of(dims.begin(), dims.end(), [](const DimSpec& d) {
    return d.offsets > 0;
  });
  switch (kind) {
    case TermKind::kPlain:
      add(full_product(), Rational(1));
      if (any_offset) add_difference();
      break;
    case TermKind::kInputOutput:
      add_difference();
      break;
    case TermKind::kVersioned:
    case TermKind::kOutput:
      add(full_product(), Rational(1));
      break;
  }
  // Drop cancelled monomials.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const SignedMonomial& m) {
                             return m.coeff.is_zero();
                           }),
            out.end());
  return out;
}

std::string AccessTerm::str() const {
  std::ostringstream os;
  os << array << ": |A| = " << size_expr().str();
  switch (kind) {
    case TermKind::kPlain:
      os << "  (Lemma 3)";
      break;
    case TermKind::kInputOutput:
      os << "  (Corollary 1)";
      break;
    case TermKind::kVersioned:
      os << "  (version dimension)";
      break;
    case TermKind::kOutput:
      os << "  (output / minimum set)";
      break;
  }
  return os.str();
}

namespace {

DimSpec::Mode dim_mode(const Statement& st, const std::string& array,
                       int dim) {
  auto it = st.max_overlap_dims.find(array);
  if (it == st.max_overlap_dims.end()) return DimSpec::Mode::kProduct;
  bool listed = std::find(it->second.begin(), it->second.end(), dim) !=
                it->second.end();
  return listed ? DimSpec::Mode::kMax : DimSpec::Mode::kProduct;
}

std::vector<DimSpec> dims_from_access(const Statement& st,
                                      const ArrayAccess& acc,
                                      const std::vector<long long>& offsets) {
  std::vector<DimSpec> out;
  const AccessComponent& base = acc.components[0];
  // A variable indexing several dimensions (diagonal accesses like A[k,k])
  // contributes its tile extent only once: the number of distinct index
  // tuples is the product over *distinct* variables.
  std::set<std::string> seen;
  for (std::size_t d = 0; d < base.index.size(); ++d) {
    DimSpec spec;
    spec.mode = dim_mode(st, acc.array, static_cast<int>(d));
    for (const std::string& v : base.index[d].variables()) {
      if (st.domain.has_variable(v) && seen.insert(v).second) {
        spec.vars.push_back(v);
      }
    }
    spec.offsets = d < offsets.size() ? offsets[d] : 0;
    out.push_back(std::move(spec));
  }
  return out;
}

// Variables of the statement's domain not appearing anywhere in the access.
std::vector<std::string> free_variables(const Statement& st,
                                        const ArrayAccess& acc) {
  std::set<std::string> used;
  for (const AccessComponent& c : acc.components) {
    for (const Affine& idx : c.index) {
      for (const std::string& v : idx.variables()) used.insert(v);
    }
  }
  std::vector<std::string> out;
  for (const std::string& v : st.domain.variables()) {
    if (!used.count(v)) out.push_back(v);
  }
  return out;
}

}  // namespace

StatementAnalysis analyze_statement(const Statement& st) {
  StatementAnalysis out;
  out.tile_vars = st.domain.variables();
  sym::Polynomial card = st.domain.cardinality();
  out.domain_size = card.to_expr();
  out.domain_size_leading = card.leading_terms().to_expr();

  for (const ArrayAccess& acc : st.inputs) {
    AccessTerm term;
    term.array = acc.array;
    const bool is_io = acc.array == st.output.array;

    if (!is_io) {
      auto trans = simple_overlap_translations(acc);
      if (trans) {
        term.kind = TermKind::kPlain;
        term.dims = dims_from_access(st, acc, access_offset_counts(*trans));
      } else {
        // Conservative fallback: a single component already needs the full
        // product (Lemma 2), which is a valid lower bound on |A|.
        term.kind = TermKind::kPlain;
        term.dims = dims_from_access(st, acc, {});
      }
      out.input_terms.push_back(std::move(term));
      continue;
    }

    // Input-output overlap (Section 4.3 + Section 5.2).
    ArrayAccess joint = acc;
    for (const AccessComponent& c : st.output.components)
      joint.components.push_back(c);
    auto trans = simple_overlap_translations(joint);
    if (!trans) {
      term.kind = TermKind::kPlain;
      term.dims = dims_from_access(st, acc, {});
      out.input_terms.push_back(std::move(term));
      continue;
    }
    term.kind = TermKind::kInputOutput;
    term.dims = dims_from_access(st, joint, access_offset_counts(*trans));

    // Section 5.2: identical input and output access functions require the
    // version dimension (offset 1, extent = the free iteration variables).
    bool identical = false;
    for (const AccessComponent& in : acc.components) {
      for (const AccessComponent& o : st.output.components) {
        if (in == o) identical = true;
      }
    }
    if (identical) {
      // Section 5.2: only meaningful when some iteration variable is free of
      // the access (it then versions the element).  With no free variables
      // each element has a single in-tile version and the identical read is
      // internal.
      std::vector<std::string> free_vars = free_variables(st, joint);
      if (!free_vars.empty()) {
        DimSpec version;
        version.mode = DimSpec::Mode::kProduct;
        version.vars = std::move(free_vars);
        version.offsets = 1;
        term.dims.push_back(std::move(version));
      }
    }
    // An input-output term with no offset dimension at all counts the plain
    // first-version loads (the subtracted product would cancel exactly).
    bool any_offset = std::any_of(
        term.dims.begin(), term.dims.end(),
        [](const DimSpec& d) { return d.offsets > 0; });
    if (!any_offset) term.kind = TermKind::kVersioned;
    out.input_terms.push_back(std::move(term));
  }

  // Pure output (not read back): minimum-set constraint.
  if (!st.updates_output() && !st.output.components.empty()) {
    AccessTerm term;
    term.array = st.output.array;
    term.kind = TermKind::kOutput;
    term.dims = dims_from_access(st, st.output, {});
    out.output_terms.push_back(std::move(term));
  }
  return out;
}

}  // namespace soap::bounds
