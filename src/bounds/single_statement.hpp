// End-to-end I/O lower bound for a single SOAP statement (Section 4).
#pragma once

#include <optional>

#include "bounds/optimizer.hpp"
#include "bounds/result.hpp"
#include "soap/statement.hpp"

namespace soap::bounds {

/// Derives the bound Q >= |D| * (sum_j |A_j(X0)| - S) / prod_t |D_t(X0)|
/// (inequality 9 of the paper) for one statement.  The statement is first
/// projected onto SOAP (disjoint-access split); version dimensions and
/// overlap modes are applied by the access analysis.
///
/// Returns std::nullopt when no non-trivial bound exists (e.g. a loop
/// variable with unlimited reuse makes the intensity unbounded).
std::optional<IoLowerBound> single_statement_bound(const Statement& st);

/// The optimization problem (8) extracted from a statement; exposed for
/// tests and for the SDG engine, which builds problems for merged
/// subgraph statements.
OptimizationProblem statement_problem(const Statement& st);

}  // namespace soap::bounds
