// Computational intensity rho(X) = chi(X)/(X - S) and its symbolic
// minimization (Section 4.5 of the paper).
#pragma once

#include "bounds/optimizer.hpp"
#include "bounds/result.hpp"
#include "symbolic/expr.hpp"

namespace soap::bounds {

/// Minimizes rho(X) = c X^alpha / (X - S) over X > S, leading order in S:
///   alpha > 1:  X0 = alpha/(alpha-1) * S,
///               rho_min = c * alpha^alpha / (alpha-1)^(alpha-1) * S^(alpha-1)
///   alpha = 1:  rho decreases towards c as X -> infinity (finite_X0=false).
/// Lower-order terms of chi (offset corrections) do not affect the leading
/// order of rho_min; tests/test_intensity.cpp verifies the closed form
/// against symbolic differentiation and numeric minimization.
struct IntensityResult {
  sym::Expr rho;   ///< leading order in S
  sym::Expr X0;
  bool finite_X0 = true;
};

IntensityResult minimize_intensity(const ChiForm& chi);

/// Assembles the full bound Q >= |D| / rho_min from a domain size and chi.
IoLowerBound assemble_bound(const sym::Expr& domain_size,
                            const ChiForm& chi);

}  // namespace soap::bounds
