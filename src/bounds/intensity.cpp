#include "bounds/intensity.hpp"

#include "symbolic/leading.hpp"

namespace soap::bounds {

using sym::Expr;

IntensityResult minimize_intensity(const ChiForm& chi) {
  IntensityResult out;
  Expr S = Expr::symbol("S");
  const Rational& a = chi.alpha;
  if (a == Rational(1)) {
    // rho(X) = (c X + lower) / (X - S) is decreasing; infimum c at X -> inf.
    out.rho = chi.coefficient;
    out.X0 = Expr(0);
    out.finite_X0 = false;
    return out;
  }
  if (a < Rational(1)) {
    // Cannot happen for well-formed problems (chi grows at least linearly
    // once any single variable may take the whole budget); treat like the
    // flat case for robustness.
    out.rho = chi.coefficient;
    out.X0 = Expr(0);
    out.finite_X0 = false;
    return out;
  }
  // d/dX [ c X^a / (X-S) ] = 0  =>  a (X-S) = X  =>  X0 = a/(a-1) S.
  Rational am1 = a - Rational(1);
  out.X0 = Expr(a / am1) * S;
  // rho(X0) = c X0^a / (X0 - S) = c * a^a / (a-1)^(a-1) * S^(a-1).
  Expr factor = sym::pow(Expr(a), a) / sym::pow(Expr(am1), am1);
  out.rho = chi.coefficient * factor * sym::pow(S, am1);
  out.finite_X0 = true;
  return out;
}

IoLowerBound assemble_bound(const sym::Expr& domain_size, const ChiForm& chi) {
  IoLowerBound out;
  IntensityResult in = minimize_intensity(chi);
  out.rho = in.rho;
  out.X0 = in.X0;
  out.finite_X0 = in.finite_X0;
  out.alpha = chi.alpha;
  out.chi_coeff = chi.coefficient;
  out.exact = chi.coefficient_exact;
  out.Q = domain_size / in.rho;
  static const SymIdSet s_only =
      SymIdSet::from_unsorted({intern_symbol("S")});
  out.Q_leading = sym::leading_term_except(out.Q, s_only);
  for (const auto& [v, e] : chi.exponents) {
    TileSize t;
    t.exponent = e;
    auto it = chi.tile_coeffs.find(v);
    t.coefficient = it == chi.tile_coeffs.end() ? 1.0 : it->second;
    out.tiles[v] = t;
  }
  return out;
}

}  // namespace soap::bounds
