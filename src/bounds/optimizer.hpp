// Solver for the paper's optimization problem (8):
//
//     maximize  chi = prod_t |D_t|
//     subject to  sum_j |A_j(D)| <= X   (dominator-set budget)
//                 |A_out(D)| <= X       (minimum-set budget, per output)
//                 |D_t| >= 1
//
// yielding chi(X) = |H_max(X)| and, downstream, the computational intensity
// rho = chi(X)/(X - S).
//
// Strategy (see DESIGN.md and docs/OPTIMIZER.md): the *exponent* alpha of
// chi(X) = c * X^alpha is obtained exactly from a rational LP over the
// dominant monomials of the access terms; the *constant* c is computed by a
// pluggable numeric backend (bounds/opt: log-space Nelder-Mead with exact
// feasibility projection by default, seeded at the LP solution; a multistart
// wrapper and a subplex second opinion ship alongside it and the
// differential suite keeps them in agreement) and then snapped to an exact
// value by rationalizing c^q (q = den(alpha)), which recovers radicals such
// as (1/27)^(1/2) = sqrt(3)/9 for matrix multiplication.  The LP and the
// numeric fit cross-check each other; disagreement is an error.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bounds/access_size.hpp"
#include "bounds/opt/types.hpp"
#include "support/cancel.hpp"
#include "support/rational.hpp"
#include "symbolic/expr.hpp"

namespace soap::bounds {

/// One monomial of the objective: coeff * prod_v x_v^deg.
struct ObjectiveMonomial {
  std::map<std::string, int> degrees;
  Rational coeff = 1;
};

struct OptimizationProblem {
  std::vector<std::string> vars;         ///< tile-size variables |D_t|
  std::vector<AccessTerm> sum_terms;     ///< sum over these <= X
  std::vector<AccessTerm> single_terms;  ///< each individually <= X
  /// Objective chi = sum of monomials.  Empty means the single-statement
  /// default prod of all vars.  Merged SDG subgraph statements (Section 6)
  /// produce one monomial per member statement: |H| sums the vertices each
  /// member computes inside the tile.
  std::vector<ObjectiveMonomial> objective;

  [[nodiscard]] std::vector<ObjectiveMonomial> effective_objective() const {
    if (!objective.empty()) return objective;
    ObjectiveMonomial all;
    for (const std::string& v : vars) all.degrees[v] = 1;
    return {all};
  }
};

/// Result of one numeric solve at a concrete X.
struct NumericOptimum {
  std::map<std::string, double> tiles;
  double chi = 0.0;
};

/// Numerically maximizes prod x_v subject to the constraints at budget X,
/// through the selected bounds/opt backend (docs/OPTIMIZER.md).  `stop` is
/// polled inside the backend's inner loops (deadline and cancellation every
/// few dozen objective evaluations; the per-derivation solver-eval budget on
/// every one) and raises AnalysisError when tripped.
NumericOptimum maximize_subcomputation(
    const OptimizationProblem& problem, double X,
    const support::StopCriteria& stop = {},
    opt::BackendKind backend = opt::BackendKind::kNelderMead);

/// Symbolic form of chi(X) ~ coefficient * X^alpha (leading order).
struct ChiForm {
  Rational alpha;                      ///< exact, from the exponent LP
  sym::Expr coefficient;               ///< exact-ified constant c
  double coefficient_num = 0.0;        ///< numeric c (pre-snap)
  bool coefficient_exact = false;      ///< snap succeeded
  std::map<std::string, Rational> exponents;  ///< a_v: x_v ~ X^{a_v}
  std::map<std::string, double> tile_coeffs;  ///< kappa_v: x_v ~ kappa_v X^{a_v}
  double fit_residual = 0.0;           ///< |log chi - (log c + alpha log X)|
  /// Least healthy backend result across the constant-fit solves.  Before
  /// the backend interface, a solve that exhausted its iterations without
  /// meeting tolerance silently fell through to the LP-seeded point; now it
  /// is recorded here as kNoConverge (the fit still uses the best point
  /// found — only a non-finite chi is a hard error).
  opt::ResultCode solve_code = opt::ResultCode::kSuccess;
};

/// Derives chi(X) using the selected numeric backend for the constant (the
/// exponent LP is exact and backend-independent).  Returns std::nullopt when
/// the problem is unbounded (some loop variable occurs in no access:
/// unlimited reuse, no bound).  Throws
/// AnalysisError{kDeadlineExceeded|kBudgetExceeded|kCancelled} when `stop`
/// trips mid-solve, and AnalysisError{kOptimizerNoConverge} when the numeric
/// fit produces no finite chi.  Default criteria are unlimited and keep the
/// inner loops on their historical path; the default backend is bit-identical
/// to the pre-interface solver.
std::optional<ChiForm> derive_chi(
    const OptimizationProblem& problem, const support::StopCriteria& stop = {},
    opt::BackendKind backend = opt::BackendKind::kNelderMead);

}  // namespace soap::bounds
