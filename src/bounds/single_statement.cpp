#include "bounds/single_statement.hpp"

#include "bounds/intensity.hpp"
#include "soap/projection.hpp"

namespace soap::bounds {

OptimizationProblem statement_problem(const Statement& st) {
  Statement split = split_disjoint_accesses(st);
  StatementAnalysis analysis = analyze_statement(split);
  OptimizationProblem problem;
  problem.vars = analysis.tile_vars;
  problem.sum_terms = analysis.input_terms;
  problem.single_terms = analysis.output_terms;
  return problem;
}

std::optional<IoLowerBound> single_statement_bound(const Statement& st) {
  Statement split = split_disjoint_accesses(st);
  StatementAnalysis analysis = analyze_statement(split);
  OptimizationProblem problem;
  problem.vars = analysis.tile_vars;
  problem.sum_terms = analysis.input_terms;
  problem.single_terms = analysis.output_terms;
  std::optional<ChiForm> chi = derive_chi(problem);
  if (!chi) return std::nullopt;
  return assemble_bound(analysis.domain_size_leading, *chi);
}

}  // namespace soap::bounds
