// The pluggable numeric-optimizer backend interface (docs/OPTIMIZER.md).
//
// A backend maximizes Problem (8)'s objective chi over the tile sizes at a
// concrete budget X.  The contract, modeled on nlopt-style optimizer layers:
// typed problem input (OptimizationProblem + per-dimension VarBound ranges),
// StopCriteria integration (PR 8's deadlines/cancellation/solver-eval
// budgets are the maxtime/forced-stop/maxeval analogues, threaded through an
// EvalGuard shared across a derivation's solves), explicit ResultCodes
// instead of the historical bool/throw mix, and determinism: a backend is a
// pure function of (problem, request) — same inputs give bit-identical
// SolveResults on any thread, executor, or process (stochastic backends
// derive every random number from SolveRequest::seed).
//
// Three backends ship (see types.hpp); all must agree with the exact-LP
// exponent and with each other's snapped constant — the `optimizer`-labeled
// differential/fuzz suite enforces it corpus-wide the same way PR 6 made
// `Q_sim >= Q_lb` a standing invariant.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "bounds/opt/types.hpp"
#include "bounds/optimizer.hpp"
#include "support/cancel.hpp"

namespace soap::bounds::opt {

/// Per-dimension range of one tile variable, in tile space.  The default
/// reproduces the paper's |D_t| >= 1 constraint; a finite `hi` additionally
/// caps the tile (used by the projection property tests and available to
/// callers that know a dimension's extent).
struct VarBound {
  double lo = 1.0;
  double hi = std::numeric_limits<double>::infinity();
};

/// Counts projected-objective evaluations against StopCriteria's
/// solver-eval budget (the nlopt `maxeval` analogue) and polls
/// deadline/cancellation every 32 ticks so the poll cost stays invisible
/// next to the evaluation itself.  One guard per chi derivation — shared
/// across the derivation's solves so the budget is per-derivation, not
/// per-solve, and the evaluation that trips is deterministic.
struct EvalGuard {
  const support::StopCriteria* stop = nullptr;  ///< nullptr = unlimited
  std::uint64_t ticks = 0;

  void tick();  ///< throws AnalysisError when a criterion trips
};

/// One solve request at a concrete budget X.
struct SolveRequest {
  double X = 0.0;
  /// Extra log-space starting points (e.g. the LP-exponent seed).  Every
  /// backend appends its own default seeds after these.
  std::vector<std::vector<double>> seeds;
  /// Per-variable tile ranges, parallel to problem.vars; empty means the
  /// default [1, inf) everywhere (the historical clamp-at-1 path,
  /// bit-identical).
  std::vector<VarBound> bounds;
  /// Deterministic RNG stream for stochastic backends (multistart jitter);
  /// ignored by deterministic ones.  Same seed, same result — always.
  std::uint64_t seed = 0;
  /// Iteration cap per local search (0 = the backend's default).  The
  /// nlopt-maxeval-style knob for tests; production paths leave it 0.
  int max_iterations = 0;
  /// Stop integration: ticked on every projected-objective evaluation.
  /// Null = unlimited.
  EvalGuard* guard = nullptr;
};

/// Outcome of one solve.  `optimum` is always populated with the best point
/// found (on kInfeasible it is the clamped lower-bound point with chi = 0);
/// `code` says how much to trust it.
struct SolveResult {
  NumericOptimum optimum;
  ResultCode code = ResultCode::kNoConverge;
  /// Projected-objective evaluations this solve performed.
  std::uint64_t evaluations = 0;
  /// Set iff code == kStopReached: the AnalysisError the guard raised,
  /// stashed so the backend boundary stays exception-free; derive_chi
  /// rethrows it (preserving the PR 8 degradation contract).
  std::optional<support::AnalysisError> stop_error;
};

/// A numeric optimizer backend.  Implementations are stateless and
/// process-wide (the registry below hands out singletons); solve() must be
/// safe to call concurrently from any number of threads.
class OptimizerBackend {
 public:
  virtual ~OptimizerBackend() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual SolveResult solve(const OptimizationProblem& problem,
                                          const SolveRequest& request) const = 0;
};

/// The process-wide backend registry: singletons, one per BackendKind.
[[nodiscard]] const OptimizerBackend& backend(BackendKind kind);

/// The feasibility projection every backend shares, exposed for the
/// property tests: scales `tiles` by the largest uniform factor that keeps
/// every constraint within budget X, clamping each tile into its VarBound
/// range (default [1, inf)).  The result lies on the budget surface (or at
/// the clamp), satisfies every constraint, and is a fixed point of
/// re-projection within bisection tolerance.  Returns std::nullopt when no
/// feasible point exists (even the all-lower-bound tile violates a
/// constraint).  Throws std::out_of_range when `tiles` misses a variable.
[[nodiscard]] std::optional<std::map<std::string, double>> project_feasible(
    const OptimizationProblem& problem,
    const std::map<std::string, double>& tiles, double X,
    const std::vector<VarBound>& bounds = {});

}  // namespace soap::bounds::opt
