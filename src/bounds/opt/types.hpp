// Result codes and backend identifiers of the pluggable numeric-optimizer
// layer (bounds/opt, docs/OPTIMIZER.md).  Split from backend.hpp so option
// structs (sdg::SdgOptions, the service cache key) and ChiForm can name a
// backend or carry a result code without pulling in the problem types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace soap::bounds::opt {

/// nlopt-style classification of one numeric solve, replacing the
/// historical bool/throw mix.  Ordered by severity: `worst()` below keeps
/// the higher value, so a derivation that runs several solves reports its
/// least healthy one.
enum class ResultCode : std::uint8_t {
  /// The search met its convergence tolerance and the optimum is a finite
  /// positive objective at a feasible point.
  kSuccess = 0,
  /// A StopCriteria criterion (deadline, cancellation, solver-eval budget)
  /// tripped mid-solve.  The backend returns instead of throwing — the
  /// stashed AnalysisError in SolveResult::stop_error carries the class —
  /// and derive_chi rethrows it to preserve the PR 8 degradation contract.
  kStopReached,
  /// Iteration caps exhausted before the convergence tolerance, or the
  /// search produced no finite positive objective.  The best point found is
  /// still returned (it may be essentially the seed); callers decide
  /// whether a non-converged optimum is usable.
  kNoConverge,
  /// No feasible point exists at this budget: even the all-lower-bound
  /// tile point violates a constraint.
  kInfeasible,
};

/// Stable machine-readable name ("success", "stop_reached", ...).
[[nodiscard]] const char* result_code_name(ResultCode code) noexcept;

/// The smaller code wins on health: kSuccess < kStopReached < kNoConverge
/// < kInfeasible.  Used to fold several solves into one ChiForm code.
[[nodiscard]] constexpr ResultCode worst(ResultCode a, ResultCode b) noexcept {
  return a < b ? b : a;
}

/// The shipped backends.  The enum (not a string) is what option structs
/// carry so it can be digested into the service cache key; parse/print via
/// the helpers below.  All backends agree on the corpus — the `optimizer`
/// differential suite (tests/test_optimizer_diff.cpp) enforces it.
enum class BackendKind : std::uint8_t {
  /// Default: log-space Nelder-Mead with exact feasibility projection and
  /// KKT polish — the historical solver, bit-identical behind the
  /// interface.
  kNelderMead = 0,
  /// Multistart wrapper: re-seeds the default single-start pipeline from
  /// deterministically jittered copies of the LP seeds and keeps the best
  /// feasible optimum.
  kMultistart,
  /// Subplex-style coordinate descent (compass search with step halving,
  /// then KKT polish): an independent second opinion on the same projected
  /// objective.
  kSubplex,
};

/// CLI/display name: "nelder_mead", "multistart", "subplex".
[[nodiscard]] const char* backend_name(BackendKind kind) noexcept;

/// Strict parse of a backend name; on rejection stores a human-readable
/// reason (including the list of valid names) into `error` when non-null.
[[nodiscard]] std::optional<BackendKind> parse_backend_name(
    const std::string& name, std::string* error = nullptr);

/// All registered backend names, registration order (for usage strings and
/// the bench sweep).
[[nodiscard]] std::vector<std::string> backend_names();

}  // namespace soap::bounds::opt
