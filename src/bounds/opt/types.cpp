#include "bounds/opt/types.hpp"

namespace soap::bounds::opt {

const char* result_code_name(ResultCode code) noexcept {
  switch (code) {
    case ResultCode::kSuccess:
      return "success";
    case ResultCode::kStopReached:
      return "stop_reached";
    case ResultCode::kNoConverge:
      return "no_converge";
    case ResultCode::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kNelderMead:
      return "nelder_mead";
    case BackendKind::kMultistart:
      return "multistart";
    case BackendKind::kSubplex:
      return "subplex";
  }
  return "unknown";
}

std::vector<std::string> backend_names() {
  return {"nelder_mead", "multistart", "subplex"};
}

std::optional<BackendKind> parse_backend_name(const std::string& name,
                                              std::string* error) {
  if (name == "nelder_mead") return BackendKind::kNelderMead;
  if (name == "multistart") return BackendKind::kMultistart;
  if (name == "subplex") return BackendKind::kSubplex;
  if (error != nullptr) {
    std::string valid;
    for (const std::string& b : backend_names()) {
      if (!valid.empty()) valid += ", ";
      valid += b;
    }
    *error = "unknown optimizer backend '" + name + "' (valid: " + valid + ")";
  }
  return std::nullopt;
}

}  // namespace soap::bounds::opt
