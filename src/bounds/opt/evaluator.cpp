#include "bounds/opt/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace soap::bounds::opt {

void EvalGuard::tick() {
  if (stop == nullptr) return;
  ++ticks;
  const std::size_t cap = stop->budget.max_solver_evals;
  if (cap != 0 && ticks > cap) {
    throw support::AnalysisError(
        support::StatusCode::kBudgetExceeded,
        "solver evaluation budget exceeded (max=" + std::to_string(cap) + ")");
  }
  if ((ticks & 31u) == 0) stop->enforce("numeric optimizer");
}

double CompiledTerm::eval(const std::vector<double>& x) const {
  // Stack scratch: this runs hundreds of thousands of times per solve
  // (Nelder-Mead x bisection x terms); combine_access_extents caps n at 20.
  double e[20];
  double c[20];
  const std::size_t n = dims.size();
  if (n > 20) throw std::logic_error("CompiledTerm::eval: too many dims");
  for (std::size_t i = 0; i < n; ++i) {
    const CompiledDim& d = dims[i];
    // Empty dimensions have extent 1; kMax starts from 0 and takes maxima.
    double extent = d.vars.empty()                ? 1.0
                    : d.mode == DimSpec::Mode::kMax ? 0.0
                                                    : 1.0;
    for (std::size_t v : d.vars) {
      extent = d.mode == DimSpec::Mode::kMax ? std::max(extent, x[v])
                                             : extent * x[v];
    }
    e[i] = extent;
    c[i] = d.offsets;
  }
  // Same counting rules as AccessTerm::eval, via the shared combiner.
  return combine_access_extents(kind, e, c, n);
}

Evaluator::Evaluator(const OptimizationProblem& p) : problem(p) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < p.vars.size(); ++i) index[p.vars[i]] = i;
  auto compile_term = [&index](const AccessTerm& t) {
    CompiledTerm out;
    out.kind = t.kind;
    out.dims.reserve(t.dims.size());
    for (const DimSpec& d : t.dims) {
      CompiledDim cd;
      cd.mode = d.mode;
      cd.offsets = static_cast<double>(d.offsets);
      cd.vars.reserve(d.vars.size());
      for (const std::string& v : d.vars) {
        auto it = index.find(v);
        if (it == index.end()) {
          throw std::out_of_range("AccessTerm::eval: unbound tile " + v);
        }
        cd.vars.push_back(it->second);
      }
      out.dims.push_back(std::move(cd));
    }
    return out;
  };
  for (const AccessTerm& t : p.sum_terms) {
    sum_terms.push_back(compile_term(t));
  }
  for (const AccessTerm& t : p.single_terms) {
    single_terms.push_back(compile_term(t));
  }
  for (const ObjectiveMonomial& m : p.effective_objective()) {
    std::vector<std::pair<std::size_t, int>> degs;
    degs.reserve(m.degrees.size());
    for (const auto& [v, d] : m.degrees) degs.emplace_back(index.at(v), d);
    objective.emplace_back(std::move(degs), m.coeff.to_double());
  }
}

double Evaluator::objective_value(const std::vector<double>& x) const {
  double f = 0.0;
  for (const auto& [degs, coeff] : objective) {
    double term = coeff;
    for (const auto& [i, d] : degs) term *= std::pow(x[i], d);
    f += term;
  }
  return f;
}

double Evaluator::utilization(const std::vector<double>& x, double X) const {
  double sum = 0.0;
  for (const CompiledTerm& t : sum_terms) sum += t.eval(x);
  double u = sum / X;
  for (const CompiledTerm& t : single_terms) {
    u = std::max(u, t.eval(x) / X);
  }
  return u;
}

BoundsView BoundsView::make(std::size_t n, const std::vector<VarBound>& b) {
  BoundsView bv;
  bv.lo.assign(n, 1.0);
  bv.hi.assign(n, std::numeric_limits<double>::infinity());
  if (b.empty()) return bv;
  if (b.size() != n) {
    throw std::invalid_argument(
        "SolveRequest::bounds must be empty or match problem.vars");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(b[i].lo > 0.0) || !(b[i].hi >= b[i].lo)) {
      throw std::invalid_argument(
          "SolveRequest::bounds must satisfy 0 < lo <= hi");
    }
    bv.lo[i] = b[i].lo;
    bv.hi[i] = b[i].hi;
    bv.defaulted =
        bv.defaulted && b[i].lo == 1.0 &&
        b[i].hi == std::numeric_limits<double>::infinity();
  }
  return bv;
}

double feasible_scale(const Evaluator& ev, const std::vector<double>& x,
                      double X, const BoundsView& bv) {
  std::vector<double> tiles(x.size());
  auto feasible = [&](double m) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      tiles[i] = bv.clamp(i, m * x[i]);
    }
    return ev.utilization(tiles, X) <= 1.0;
  };
  if (!feasible(1e-12)) return 0.0;
  double lo = 1e-12, hi = 1.0;
  while (feasible(hi) && hi < 1e18) {
    lo = hi;
    hi *= 4.0;
  }
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

double projected_objective(const Evaluator& ev, const std::vector<double>& u,
                           double X, const BoundsView& bv, EvalGuard* guard,
                           std::vector<double>* tiles_out) {
  if (guard != nullptr) guard->tick();
  std::vector<double> x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) x[i] = std::exp(u[i]);
  double m = feasible_scale(ev, x, X, bv);
  if (m == 0.0) return -1e300;
  std::vector<double> tiles(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    double xi = bv.clamp(i, m * x[i]);
    tiles[i] = xi;
    if (tiles_out) (*tiles_out)[i] = xi;
  }
  return std::log(ev.objective_value(tiles));
}

std::vector<double> nelder_mead(const Evaluator& ev, double X,
                                std::vector<double> start, int iters,
                                EvalGuard* guard, const BoundsView& bv,
                                bool* converged) {
  const std::size_t n = start.size();
  if (converged != nullptr) *converged = false;
  auto f = [&](const std::vector<double>& u) {
    return projected_objective(ev, u, X, bv, guard);
  };
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += 0.7;
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  for (int it = 0; it < iters; ++it) {
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] > fv[b]; });
    std::vector<std::vector<double>> sx(n + 1);
    std::vector<double> sf(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      sx[i] = simplex[idx[i]];
      sf[i] = fv[idx[i]];
    }
    simplex = std::move(sx);
    fv = std::move(sf);
    if (std::fabs(fv[0] - fv[n]) < 1e-13 * (1.0 + std::fabs(fv[0]))) {
      if (converged != nullptr) *converged = true;
      break;
    }

    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j] / n;
    }
    auto combine = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + t * (simplex[n][j] - centroid[j]);
      }
      return p;
    };
    std::vector<double> refl = combine(-1.0);
    double fr = f(refl);
    if (fr > fv[0]) {
      std::vector<double> expd = combine(-2.0);
      double fe = f(expd);
      if (fe > fr) {
        simplex[n] = expd;
        fv[n] = fe;
      } else {
        simplex[n] = refl;
        fv[n] = fr;
      }
    } else if (fr > fv[n - 1]) {
      simplex[n] = refl;
      fv[n] = fr;
    } else {
      std::vector<double> ctr = combine(0.5);
      double fc = f(ctr);
      if (fc > fv[n]) {
        simplex[n] = ctr;
        fv[n] = fc;
      } else {
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] =
                simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
          }
          fv[i] = f(simplex[i]);
        }
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fv[i] > fv[best]) best = i;
  }
  return simplex[best];
}

void kkt_polish(const Evaluator& ev, double X, std::vector<double>* u,
                EvalGuard* guard, const BoundsView& bv) {
  const std::size_t n = u->size();
  auto tiles_of = [&](const std::vector<double>& uu) {
    std::vector<double> tiles(n);
    for (std::size_t i = 0; i < n; ++i) {
      tiles[i] = std::exp(std::max(0.0, uu[i]));
    }
    return tiles;
  };
  auto sum_g = [&](const std::vector<double>& uu) {
    auto tiles = tiles_of(uu);
    double s = 0.0;
    for (const CompiledTerm& t : ev.sum_terms) s += t.eval(tiles);
    return s;
  };
  auto singles_ok = [&](const std::vector<double>& uu) {
    auto tiles = tiles_of(uu);
    for (const CompiledTerm& t : ev.single_terms) {
      if (t.eval(tiles) > X * (1.0 + 1e-9)) return false;
    }
    return true;
  };
  auto project = [&](std::vector<double>* uu) {
    double lo = -60.0, hi = 60.0;
    for (int it = 0; it < 100; ++it) {
      double mid = 0.5 * (lo + hi);
      std::vector<double> shifted = *uu;
      for (double& v : shifted) v += mid;
      (sum_g(shifted) <= X ? lo : hi) = mid;
    }
    for (double& v : *uu) v = std::max(0.0, v + lo);
  };

  std::vector<double> w = *u;
  project(&w);
  const double eps = 1e-6;
  for (int iter = 0; iter < 400; ++iter) {
    if (guard != nullptr) guard->tick();
    std::vector<double> r(n);
    double mean_log = 0.0;
    int active = 0;
    double f0 = std::exp(projected_objective(ev, w, X, bv, guard));
    (void)f0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> up = w, dn = w;
      up[i] += eps;
      dn[i] -= eps;
      double dg = (sum_g(up) - sum_g(dn)) / (2 * eps);
      double df = (ev.objective_value(tiles_of(up)) -
                   ev.objective_value(tiles_of(dn))) /
                  (2 * eps);
      if (dg <= 0 || df <= 0) {
        r[i] = 0;
        continue;
      }
      r[i] = df / dg;
      if (w[i] > 1e-12) {
        mean_log += std::log(r[i]);
        ++active;
      }
    }
    if (active == 0) break;
    mean_log /= active;
    double step = iter < 100 ? 0.4 : 0.8;
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (r[i] <= 0) continue;
      double delta = step * (std::log(r[i]) - mean_log);
      if (w[i] <= 1e-12 && delta < 0) continue;
      w[i] = std::max(0.0, w[i] + delta);
      if (std::fabs(delta) > 1e-13) moved = true;
    }
    project(&w);
    if (!moved) break;
  }
  if (!singles_ok(w)) return;
  double before = projected_objective(ev, *u, X, bv, guard);
  double after = projected_objective(ev, w, X, bv, guard);
  if (after >= before - 1e-12) *u = w;
}

std::vector<std::vector<double>> default_seeds(std::size_t n, double X) {
  std::vector<std::vector<double>> seeds;
  seeds.emplace_back(n, std::log(X) / (2.0 * std::max<std::size_t>(n, 1)));
  {
    std::vector<double> staggered(n);
    for (std::size_t i = 0; i < n; ++i) {
      staggered[i] = std::log(X) * (0.15 + 0.1 * static_cast<double>(i % 3));
    }
    seeds.push_back(std::move(staggered));
  }
  return seeds;
}

SingleStart run_single_start(const Evaluator& ev, double X,
                             std::vector<double> seed, int iters,
                             EvalGuard* guard, const BoundsView& bv) {
  SingleStart out;
  out.u = nelder_mead(ev, X, std::move(seed), iters, guard, bv,
                      &out.converged);
  // The KKT polish's projection hard-codes the clamp-at-1 contract; with
  // custom bounds the Nelder-Mead result (already projected) stands alone.
  if (bv.defaulted) kkt_polish(ev, X, &out.u, guard, bv);
  out.objective = projected_objective(ev, out.u, X, bv, guard);
  return out;
}

SolveResult finish_solve(const Evaluator& ev, const OptimizationProblem& p,
                         double X, const std::vector<double>& best_u,
                         bool converged, EvalGuard* guard,
                         const BoundsView& bv) {
  const std::size_t n = p.vars.size();
  SolveResult out;
  std::vector<double> tiles(n);
  double logf = projected_objective(ev, best_u, X, bv, guard, &tiles);
  if (logf <= -1e300) {
    // No feasible scaling from this point.  Distinguish a genuinely
    // infeasible problem (even the all-lower-bound tile busts a budget)
    // from a search that wandered into numeric trouble.
    std::vector<double> floor_tiles(n);
    for (std::size_t i = 0; i < n; ++i) floor_tiles[i] = bv.lo[i];
    for (std::size_t i = 0; i < n; ++i) out.optimum.tiles[p.vars[i]] =
        floor_tiles[i];
    out.optimum.chi = 0.0;
    out.code = ev.utilization(floor_tiles, X) > 1.0 ? ResultCode::kInfeasible
                                                    : ResultCode::kNoConverge;
    out.evaluations = guard != nullptr ? guard->ticks : 0;
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) out.optimum.tiles[p.vars[i]] = tiles[i];
  out.optimum.chi = std::exp(logf);
  const bool finite =
      std::isfinite(out.optimum.chi) && out.optimum.chi > 0.0;
  out.code = !finite ? ResultCode::kNoConverge
             : converged ? ResultCode::kSuccess
                         : ResultCode::kNoConverge;
  out.evaluations = guard != nullptr ? guard->ticks : 0;
  return out;
}

}  // namespace soap::bounds::opt
