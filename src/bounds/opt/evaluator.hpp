// Internal shared numerics of the bounds/opt backends: the index-compiled
// problem view, the exact feasibility projection, and the local searches
// (log-space Nelder-Mead, KKT equalization polish) the shipped backends
// compose.  Everything here lives in one translation layer so the backends
// cannot drift apart numerically — the projection a backend optimizes over
// is by construction the projection the differential harness checks.
//
// This header is internal to soap::bounds; the public surface is
// bounds/opt/backend.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "bounds/access_size.hpp"
#include "bounds/opt/backend.hpp"
#include "bounds/optimizer.hpp"

namespace soap::bounds::opt {

// Compiled (dense-index) view of the problem for the numeric inner loops:
// tile variables become vector indices and access terms precompile their
// per-dimension variable lists, so Nelder-Mead / compass iterations never
// touch a string-keyed map.  Mirrors AccessTerm::eval's inclusion-exclusion.
struct CompiledDim {
  DimSpec::Mode mode = DimSpec::Mode::kProduct;
  std::vector<std::size_t> vars;
  double offsets = 0.0;
};

struct CompiledTerm {
  TermKind kind = TermKind::kPlain;
  std::vector<CompiledDim> dims;

  [[nodiscard]] double eval(const std::vector<double>& x) const;
};

struct Evaluator {
  const OptimizationProblem& problem;
  std::vector<CompiledTerm> sum_terms;
  std::vector<CompiledTerm> single_terms;
  // Objective monomials as ((var index, degree)..., coeff) pairs.
  std::vector<std::pair<std::vector<std::pair<std::size_t, int>>, double>>
      objective;

  explicit Evaluator(const OptimizationProblem& p);

  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  // Worst constraint utilization g_k(x)/X (>1 means infeasible).
  [[nodiscard]] double utilization(const std::vector<double>& x,
                                   double X) const;
};

// Dense per-variable bound view in tile space.  The default (empty
// VarBound list) is lo = 1, hi = +inf everywhere, which reproduces the
// historical clamp-at-1 code path bit-identically: max(1.0, v) == max(lo, v)
// and the hi test never fires.
struct BoundsView {
  std::vector<double> lo;
  std::vector<double> hi;
  bool defaulted = true;  ///< every bound is the default [1, inf)

  static BoundsView make(std::size_t n, const std::vector<VarBound>& bounds);

  [[nodiscard]] double clamp(std::size_t i, double v) const {
    double t = v < lo[i] ? lo[i] : v;
    if (t > hi[i]) t = hi[i];
    return t;
  }
};

// Largest uniform multiplicative scale m such that scaling every tile by m
// (clamped into its bound range) stays feasible; constraint terms are
// monotone non-decreasing in every tile so feasibility is monotone in m.
double feasible_scale(const Evaluator& ev, const std::vector<double>& x,
                      double X, const BoundsView& bv);

// Projected objective: log chi after scaling onto the feasible boundary.
// Returns -1e300 when no feasible scaling exists.  Ticks `guard` once per
// call (the unit StopCriteria's solver-eval budget counts).
double projected_objective(const Evaluator& ev, const std::vector<double>& u,
                           double X, const BoundsView& bv,
                           EvalGuard* guard = nullptr,
                           std::vector<double>* tiles_out = nullptr);

// Nelder-Mead in log-space (maximization); dimensions are tiny (<= ~10).
// Sets *converged (when non-null) to whether the simplex met the spread
// tolerance within `iters` — the signal the default backend surfaces as
// kSuccess vs kNoConverge.
std::vector<double> nelder_mead(const Evaluator& ev, double X,
                                std::vector<double> start, int iters,
                                EvalGuard* guard, const BoundsView& bv,
                                bool* converged = nullptr);

// KKT polish on the sum-constraint boundary: at an interior optimum,
// r_v = (dF/du_v)/F / (dg/du_v) is equal across variables; iterate
// multiplicative equalization with projection back onto g = X.  Variables
// clamped at x >= 1 stay clamped.  Only valid under default bounds (the
// clamp-at-1 contract is baked into its projection); callers skip it when
// custom VarBounds are present.
void kkt_polish(const Evaluator& ev, double X, std::vector<double>* u,
                EvalGuard* guard, const BoundsView& bv);

// The two historical default seeds every backend appends after the
// request's seeds: the uniform log(X)/(2n) point and a staggered ramp.
std::vector<std::vector<double>> default_seeds(std::size_t n, double X);

// One default-pipeline local search (Nelder-Mead then, under default
// bounds, KKT polish) from `seed`; shared by the nelder_mead and multistart
// backends so multistart is exactly "the default, from more starts".
struct SingleStart {
  std::vector<double> u;
  double objective = -1e300;
  bool converged = false;
};
SingleStart run_single_start(const Evaluator& ev, double X,
                             std::vector<double> seed, int iters,
                             EvalGuard* guard, const BoundsView& bv);

// Folds a backend's best point into a SolveResult: extracts tiles/chi via a
// final projected evaluation, probes feasibility of the all-lower-bound
// point for the kInfeasible classification, and applies the
// kSuccess/kNoConverge rule (finite positive chi + converged search).
SolveResult finish_solve(const Evaluator& ev, const OptimizationProblem& p,
                         double X, const std::vector<double>& best_u,
                         bool converged, EvalGuard* guard,
                         const BoundsView& bv);

}  // namespace soap::bounds::opt
