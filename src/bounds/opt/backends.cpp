// The three shipped optimizer backends and the process-wide registry.
//
// All three optimize the same projected objective from evaluator.hpp, so
// they can only disagree through search dynamics — which is exactly what
// the differential suite (tests/test_optimizer_diff.cpp) measures:
//
//  * nelder_mead  — the historical default pipeline, bit-identical: per
//    seed, log-space Nelder-Mead then KKT equalization polish, best wins.
//  * multistart   — the same single-start pipeline re-seeded from
//    deterministically jittered copies of every base seed (splitmix64
//    stream from SolveRequest::seed), to escape bad basins.
//  * subplex      — compass/coordinate descent with step halving as an
//    independent global phase, sharing only the local KKT refiner.
//
// Backends never throw: a StopCriteria trip inside the guard is caught and
// surfaced as kStopReached with the AnalysisError stashed in the result.

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "bounds/opt/backend.hpp"
#include "bounds/opt/evaluator.hpp"
#include "support/cancel.hpp"

namespace soap::bounds::opt {

namespace {

constexpr int kDefaultIterations = 3000;

// Local copy of splitmix64 (same constants as support/digest): a tiny,
// reproducible-everywhere generator so multistart jitter never depends on
// libstdc++'s distribution implementations.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4a4ca9d5ef4bdULL;
  return z ^ (z >> 31);
}

// Uniform double in [-1, 1) from the top 53 bits.
double unit_jitter(std::uint64_t& state) {
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;  // [0, 1)
  return 2.0 * u - 1.0;
}

std::vector<std::vector<double>> base_seeds(const SolveRequest& request,
                                            std::size_t n) {
  std::vector<std::vector<double>> seeds = request.seeds;
  for (auto& s : default_seeds(n, request.X)) seeds.push_back(std::move(s));
  return seeds;
}

// Shared multi-start driver: run the single-start pipeline from every seed,
// keep the best.  `converged` reports the winning start's convergence (the
// all-zeros fallback point, used when every start is infeasible, counts as
// not converged).
SolveResult best_of_starts(const Evaluator& ev,
                           const OptimizationProblem& problem,
                           const SolveRequest& request,
                           const std::vector<std::vector<double>>& seeds,
                           const BoundsView& bv, int iters) {
  const std::size_t n = problem.vars.size();
  double best_obj = -1e300;
  std::vector<double> best_u(n, 0.0);
  bool best_converged = false;
  for (const auto& seed : seeds) {
    SingleStart s =
        run_single_start(ev, request.X, seed, iters, request.guard, bv);
    if (s.objective > best_obj) {
      best_obj = s.objective;
      best_u = std::move(s.u);
      best_converged = s.converged;
    }
  }
  return finish_solve(ev, problem, request.X, best_u, best_converged,
                      request.guard, bv);
}

SolveResult stop_result(const support::AnalysisError& err,
                        const SolveRequest& request) {
  SolveResult out;
  out.code = ResultCode::kStopReached;
  out.stop_error = err;
  out.evaluations = request.guard != nullptr ? request.guard->ticks : 0;
  return out;
}

class NelderMeadBackend final : public OptimizerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "nelder_mead";
  }

  [[nodiscard]] SolveResult solve(const OptimizationProblem& problem,
                                  const SolveRequest& request) const override {
    const std::size_t n = problem.vars.size();
    const int iters =
        request.max_iterations > 0 ? request.max_iterations : kDefaultIterations;
    try {
      Evaluator ev(problem);
      BoundsView bv = BoundsView::make(n, request.bounds);
      return best_of_starts(ev, problem, request, base_seeds(request, n), bv,
                            iters);
    } catch (const support::AnalysisError& err) {
      return stop_result(err, request);
    }
  }
};

class MultistartBackend final : public OptimizerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "multistart";
  }

  [[nodiscard]] SolveResult solve(const OptimizationProblem& problem,
                                  const SolveRequest& request) const override {
    const std::size_t n = problem.vars.size();
    const int iters =
        request.max_iterations > 0 ? request.max_iterations : kDefaultIterations;
    try {
      Evaluator ev(problem);
      BoundsView bv = BoundsView::make(n, request.bounds);
      std::vector<std::vector<double>> seeds = base_seeds(request, n);
      // Jittered restarts: kRestarts perturbed copies of every base seed,
      // amplitude in log-space (one e-fold covers a decent basin shift).
      // The stream depends only on SolveRequest::seed, never on thread or
      // schedule, so the solve stays a pure function of its inputs.
      constexpr int kRestarts = 3;
      constexpr double kAmplitude = 0.8;
      std::uint64_t state = request.seed ^ 0x51d0f6e29aa1a2cdULL;
      const std::size_t base_count = seeds.size();
      seeds.reserve(base_count * (1 + kRestarts));
      for (std::size_t b = 0; b < base_count; ++b) {
        for (int r = 0; r < kRestarts; ++r) {
          std::vector<double> jittered = seeds[b];
          for (double& v : jittered) v += kAmplitude * unit_jitter(state);
          seeds.push_back(std::move(jittered));
        }
      }
      return best_of_starts(ev, problem, request, seeds, bv, iters);
    } catch (const support::AnalysisError& err) {
      return stop_result(err, request);
    }
  }
};

// Compass (coordinate-descent) search on the projected objective: cycle
// through coordinates, try +/- the current step, accept improvements, halve
// the step when a full sweep makes no progress.  Converged when the step
// drops below tolerance.
std::vector<double> compass_search(const Evaluator& ev, double X,
                                   std::vector<double> start, int iters,
                                   EvalGuard* guard, const BoundsView& bv,
                                   bool* converged) {
  *converged = false;
  std::vector<double> u = std::move(start);
  const std::size_t n = u.size();
  double f = projected_objective(ev, u, X, bv, guard);
  double step = 2.0;
  for (int it = 0; it < iters; ++it) {
    bool improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (double dir : {1.0, -1.0}) {
        std::vector<double> trial = u;
        trial[i] += dir * step;
        double ft = projected_objective(ev, trial, X, bv, guard);
        if (ft > f) {
          f = ft;
          u = std::move(trial);
          improved = true;
          break;  // re-probe this coordinate's new neighborhood next sweep
        }
      }
    }
    if (!improved) {
      step *= 0.5;
      if (step < 1e-10) {
        *converged = true;
        break;
      }
    }
  }
  return u;
}

class SubplexBackend final : public OptimizerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "subplex";
  }

  [[nodiscard]] SolveResult solve(const OptimizationProblem& problem,
                                  const SolveRequest& request) const override {
    const std::size_t n = problem.vars.size();
    const int iters =
        request.max_iterations > 0 ? request.max_iterations : kDefaultIterations;
    try {
      Evaluator ev(problem);
      BoundsView bv = BoundsView::make(n, request.bounds);
      double best_obj = -1e300;
      std::vector<double> best_u(n, 0.0);
      bool best_converged = false;
      for (const auto& seed : base_seeds(request, n)) {
        bool conv = false;
        std::vector<double> u = compass_search(ev, request.X, seed, iters,
                                               request.guard, bv, &conv);
        if (bv.defaulted) kkt_polish(ev, request.X, &u, request.guard, bv);
        double obj = projected_objective(ev, u, request.X, bv, request.guard);
        if (obj > best_obj) {
          best_obj = obj;
          best_u = std::move(u);
          best_converged = conv;
        }
      }
      return finish_solve(ev, problem, request.X, best_u, best_converged,
                          request.guard, bv);
    } catch (const support::AnalysisError& err) {
      return stop_result(err, request);
    }
  }
};

}  // namespace

const OptimizerBackend& backend(BackendKind kind) {
  static const NelderMeadBackend nelder_mead;
  static const MultistartBackend multistart;
  static const SubplexBackend subplex;
  switch (kind) {
    case BackendKind::kMultistart:
      return multistart;
    case BackendKind::kSubplex:
      return subplex;
    case BackendKind::kNelderMead:
      break;
  }
  return nelder_mead;
}

std::optional<std::map<std::string, double>> project_feasible(
    const OptimizationProblem& problem,
    const std::map<std::string, double>& tiles, double X,
    const std::vector<VarBound>& bounds) {
  const std::size_t n = problem.vars.size();
  Evaluator ev(problem);
  BoundsView bv = BoundsView::make(n, bounds);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto it = tiles.find(problem.vars[i]);
    if (it == tiles.end()) {
      throw std::out_of_range("project_feasible: missing tile " +
                              problem.vars[i]);
    }
    x[i] = it->second;
  }
  double m = feasible_scale(ev, x, X, bv);
  if (m == 0.0) return std::nullopt;
  std::map<std::string, double> out;
  for (std::size_t i = 0; i < n; ++i) {
    out[problem.vars[i]] = bv.clamp(i, m * x[i]);
  }
  return out;
}

}  // namespace soap::bounds::opt
