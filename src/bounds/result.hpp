// Result type of the I/O lower-bound derivations.
#pragma once

#include <map>
#include <string>

#include "support/rational.hpp"
#include "symbolic/expr.hpp"

namespace soap::bounds {

/// One derived tile size |D_t|(X0) ~ coefficient * S^{exponent}.
struct TileSize {
  Rational exponent;
  double coefficient = 0.0;
};

/// A symbolic I/O lower bound Q >= ... for a two-level memory hierarchy with
/// fast-memory size S (symbol "S").
struct IoLowerBound {
  sym::Expr Q;          ///< bound with the exact |D| factor
  sym::Expr Q_leading;  ///< Table 2 style simplified leading-order term
  sym::Expr rho;        ///< computational intensity at X0 (leading in S)
  sym::Expr X0;         ///< optimal dominator budget (leading in S)
  bool finite_X0 = true;  ///< false when rho is minimized as X -> infinity
  Rational alpha;       ///< chi(X) ~ c X^alpha
  sym::Expr chi_coeff;  ///< the exact-ified c
  bool exact = true;    ///< constant snapping succeeded everywhere
  std::map<std::string, TileSize> tiles;  ///< optimal tiling guideline

  [[nodiscard]] std::string str() const {
    return "Q >= " + Q_leading.str();
  }
};

}  // namespace soap::bounds
