#include "bounds/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "linalg/simplex.hpp"
#include "support/cancel.hpp"

namespace soap::bounds {

namespace {

// One guard per chi derivation, threaded through every numeric inner loop.
// Counts projected-objective evaluations against the per-derivation solver
// budget (single-threaded per subgraph, so which evaluation trips is
// deterministic) and polls deadline/cancellation every 32 ticks so the poll
// cost stays invisible next to the evaluation itself.
struct SolveGuard {
  const support::StopCriteria* stop = nullptr;
  std::uint64_t ticks = 0;

  void tick() {
    if (stop == nullptr) return;
    ++ticks;
    const std::size_t cap = stop->budget.max_solver_evals;
    if (cap != 0 && ticks > cap) {
      throw support::AnalysisError(
          support::StatusCode::kBudgetExceeded,
          "solver evaluation budget exceeded (max=" + std::to_string(cap) +
              ")");
    }
    if ((ticks & 31u) == 0) stop->enforce("numeric optimizer");
  }
};

// ---------------------------------------------------------------------------
// Numeric solve
// ---------------------------------------------------------------------------

// Compiled (dense-index) view of the problem for the numeric inner loops:
// tile variables become vector indices and access terms precompile their
// per-dimension variable lists, so Nelder-Mead / KKT iterations never touch
// a string-keyed map.  Mirrors AccessTerm::eval's inclusion-exclusion.
struct CompiledDim {
  DimSpec::Mode mode = DimSpec::Mode::kProduct;
  std::vector<std::size_t> vars;
  double offsets = 0.0;
};

struct CompiledTerm {
  TermKind kind = TermKind::kPlain;
  std::vector<CompiledDim> dims;

  [[nodiscard]] double eval(const std::vector<double>& x) const {
    // Stack scratch: this runs hundreds of thousands of times per solve
    // (Nelder-Mead x bisection x terms); combine_access_extents caps n at 20.
    double e[20];
    double c[20];
    const std::size_t n = dims.size();
    if (n > 20) throw std::logic_error("CompiledTerm::eval: too many dims");
    for (std::size_t i = 0; i < n; ++i) {
      const CompiledDim& d = dims[i];
      // Empty dimensions have extent 1; kMax starts from 0 and takes maxima.
      double extent = d.vars.empty() ? 1.0
                      : d.mode == DimSpec::Mode::kMax ? 0.0
                                                      : 1.0;
      for (std::size_t v : d.vars) {
        extent = d.mode == DimSpec::Mode::kMax ? std::max(extent, x[v])
                                               : extent * x[v];
      }
      e[i] = extent;
      c[i] = d.offsets;
    }
    // Same counting rules as AccessTerm::eval, via the shared combiner.
    return combine_access_extents(kind, e, c, n);
  }
};

struct Evaluator {
  const OptimizationProblem& problem;
  std::vector<CompiledTerm> sum_terms;
  std::vector<CompiledTerm> single_terms;
  // Objective monomials as ((var index, degree)..., coeff) pairs.
  std::vector<std::pair<std::vector<std::pair<std::size_t, int>>, double>>
      objective;

  explicit Evaluator(const OptimizationProblem& p) : problem(p) {
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < p.vars.size(); ++i) index[p.vars[i]] = i;
    auto compile_term = [&index](const AccessTerm& t) {
      CompiledTerm out;
      out.kind = t.kind;
      out.dims.reserve(t.dims.size());
      for (const DimSpec& d : t.dims) {
        CompiledDim cd;
        cd.mode = d.mode;
        cd.offsets = static_cast<double>(d.offsets);
        cd.vars.reserve(d.vars.size());
        for (const std::string& v : d.vars) {
          auto it = index.find(v);
          if (it == index.end()) {
            throw std::out_of_range("AccessTerm::eval: unbound tile " + v);
          }
          cd.vars.push_back(it->second);
        }
        out.dims.push_back(std::move(cd));
      }
      return out;
    };
    for (const AccessTerm& t : p.sum_terms) {
      sum_terms.push_back(compile_term(t));
    }
    for (const AccessTerm& t : p.single_terms) {
      single_terms.push_back(compile_term(t));
    }
    for (const ObjectiveMonomial& m : p.effective_objective()) {
      std::vector<std::pair<std::size_t, int>> degs;
      degs.reserve(m.degrees.size());
      for (const auto& [v, d] : m.degrees) degs.emplace_back(index.at(v), d);
      objective.emplace_back(std::move(degs), m.coeff.to_double());
    }
  }

  double objective_value(const std::vector<double>& x) const {
    double f = 0.0;
    for (const auto& [degs, coeff] : objective) {
      double term = coeff;
      for (const auto& [i, d] : degs) term *= std::pow(x[i], d);
      f += term;
    }
    return f;
  }

  // Worst constraint utilization g_k(x)/X (>1 means infeasible).
  double utilization(const std::vector<double>& x, double X) const {
    double sum = 0.0;
    for (const CompiledTerm& t : sum_terms) sum += t.eval(x);
    double u = sum / X;
    for (const CompiledTerm& t : single_terms) {
      u = std::max(u, t.eval(x) / X);
    }
    return u;
  }
};

// Largest uniform multiplicative scale m such that scaling every tile by m
// (clamped below at 1) stays feasible; constraint terms are monotone
// non-decreasing in every tile so feasibility is monotone in m.
double feasible_scale(const Evaluator& ev, const std::vector<double>& x,
                      double X) {
  std::vector<double> tiles(x.size());
  auto feasible = [&](double m) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      tiles[i] = std::max(1.0, m * x[i]);
    }
    return ev.utilization(tiles, X) <= 1.0;
  };
  if (!feasible(1e-12)) return 0.0;
  double lo = 1e-12, hi = 1.0;
  while (feasible(hi) && hi < 1e18) {
    lo = hi;
    hi *= 4.0;
  }
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

// Projected objective: log chi after scaling onto the feasible boundary.
double projected_objective(const Evaluator& ev, const std::vector<double>& u,
                           double X, SolveGuard* guard = nullptr,
                           std::vector<double>* tiles_out = nullptr) {
  if (guard != nullptr) guard->tick();
  std::vector<double> x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) x[i] = std::exp(u[i]);
  double m = feasible_scale(ev, x, X);
  if (m == 0.0) return -1e300;
  std::vector<double> tiles(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    double xi = std::max(1.0, m * x[i]);
    tiles[i] = xi;
    if (tiles_out) (*tiles_out)[i] = xi;
  }
  return std::log(ev.objective_value(tiles));
}

// Nelder-Mead in log-space (maximization); dimensions are tiny (<= ~10).
std::vector<double> nelder_mead(const Evaluator& ev, double X,
                                std::vector<double> start, int iters,
                                SolveGuard* guard) {
  const std::size_t n = start.size();
  auto f = [&](const std::vector<double>& u) {
    return projected_objective(ev, u, X, guard);
  };
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += 0.7;
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  for (int it = 0; it < iters; ++it) {
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] > fv[b]; });
    std::vector<std::vector<double>> sx(n + 1);
    std::vector<double> sf(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      sx[i] = simplex[idx[i]];
      sf[i] = fv[idx[i]];
    }
    simplex = std::move(sx);
    fv = std::move(sf);
    if (std::fabs(fv[0] - fv[n]) < 1e-13 * (1.0 + std::fabs(fv[0]))) break;

    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j] / n;
    }
    auto combine = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + t * (simplex[n][j] - centroid[j]);
      }
      return p;
    };
    std::vector<double> refl = combine(-1.0);
    double fr = f(refl);
    if (fr > fv[0]) {
      std::vector<double> expd = combine(-2.0);
      double fe = f(expd);
      if (fe > fr) {
        simplex[n] = expd;
        fv[n] = fe;
      } else {
        simplex[n] = refl;
        fv[n] = fr;
      }
    } else if (fr > fv[n - 1]) {
      simplex[n] = refl;
      fv[n] = fr;
    } else {
      std::vector<double> ctr = combine(0.5);
      double fc = f(ctr);
      if (fc > fv[n]) {
        simplex[n] = ctr;
        fv[n] = fc;
      } else {
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] =
                simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
          }
          fv[i] = f(simplex[i]);
        }
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fv[i] > fv[best]) best = i;
  }
  return simplex[best];
}

// KKT polish on the sum-constraint boundary: at an interior optimum,
// r_v = (dF/du_v)/F / (dg/du_v) is equal across variables; iterate
// multiplicative equalization with projection back onto g = X.  Variables
// clamped at x >= 1 stay clamped.  Only runs when no minimum-set constraint
// is active.
void kkt_polish(const Evaluator& ev, double X, std::vector<double>* u,
                SolveGuard* guard) {
  const std::size_t n = u->size();
  auto tiles_of = [&](const std::vector<double>& uu) {
    std::vector<double> tiles(n);
    for (std::size_t i = 0; i < n; ++i) {
      tiles[i] = std::exp(std::max(0.0, uu[i]));
    }
    return tiles;
  };
  auto sum_g = [&](const std::vector<double>& uu) {
    auto tiles = tiles_of(uu);
    double s = 0.0;
    for (const CompiledTerm& t : ev.sum_terms) s += t.eval(tiles);
    return s;
  };
  auto singles_ok = [&](const std::vector<double>& uu) {
    auto tiles = tiles_of(uu);
    for (const CompiledTerm& t : ev.single_terms) {
      if (t.eval(tiles) > X * (1.0 + 1e-9)) return false;
    }
    return true;
  };
  auto project = [&](std::vector<double>* uu) {
    double lo = -60.0, hi = 60.0;
    for (int it = 0; it < 100; ++it) {
      double mid = 0.5 * (lo + hi);
      std::vector<double> shifted = *uu;
      for (double& v : shifted) v += mid;
      (sum_g(shifted) <= X ? lo : hi) = mid;
    }
    for (double& v : *uu) v = std::max(0.0, v + lo);
  };

  std::vector<double> w = *u;
  project(&w);
  const double eps = 1e-6;
  for (int iter = 0; iter < 400; ++iter) {
    if (guard != nullptr) guard->tick();
    std::vector<double> r(n);
    double mean_log = 0.0;
    int active = 0;
    double f0 = std::exp(projected_objective(ev, w, X, guard));
    (void)f0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> up = w, dn = w;
      up[i] += eps;
      dn[i] -= eps;
      double dg = (sum_g(up) - sum_g(dn)) / (2 * eps);
      double df = (ev.objective_value(tiles_of(up)) -
                   ev.objective_value(tiles_of(dn))) /
                  (2 * eps);
      if (dg <= 0 || df <= 0) {
        r[i] = 0;
        continue;
      }
      r[i] = df / dg;
      if (w[i] > 1e-12) {
        mean_log += std::log(r[i]);
        ++active;
      }
    }
    if (active == 0) break;
    mean_log /= active;
    double step = iter < 100 ? 0.4 : 0.8;
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (r[i] <= 0) continue;
      double delta = step * (std::log(r[i]) - mean_log);
      if (w[i] <= 1e-12 && delta < 0) continue;
      w[i] = std::max(0.0, w[i] + delta);
      if (std::fabs(delta) > 1e-13) moved = true;
    }
    project(&w);
    if (!moved) break;
  }
  if (!singles_ok(w)) return;
  double before = projected_objective(ev, *u, X, guard);
  double after = projected_objective(ev, w, X, guard);
  if (after >= before - 1e-12) *u = w;
}

// ---------------------------------------------------------------------------
// Exponent LP
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> all_monomials(
    const OptimizationProblem& p) {
  std::vector<std::vector<std::string>> out;
  for (const AccessTerm& t : p.sum_terms) {
    auto ms = t.lp_monomials();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  for (const AccessTerm& t : p.single_terms) {
    auto ms = t.lp_monomials();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  return out;
}

NumericOptimum solve_at(const OptimizationProblem& problem, double X,
                        const std::vector<std::vector<double>>& extra_seeds,
                        SolveGuard* guard) {
  Evaluator ev(problem);
  const std::size_t n = problem.vars.size();

  double best_obj = -1e300;
  std::vector<double> best_u(n, 0.0);
  std::vector<std::vector<double>> seeds = extra_seeds;
  seeds.emplace_back(n, std::log(X) / (2.0 * std::max<std::size_t>(n, 1)));
  {
    std::vector<double> staggered(n);
    for (std::size_t i = 0; i < n; ++i) {
      staggered[i] = std::log(X) * (0.15 + 0.1 * static_cast<double>(i % 3));
    }
    seeds.push_back(std::move(staggered));
  }
  for (auto& seed : seeds) {
    std::vector<double> u = nelder_mead(ev, X, seed, 3000, guard);
    kkt_polish(ev, X, &u, guard);
    double obj = projected_objective(ev, u, X, guard);
    if (obj > best_obj) {
      best_obj = obj;
      best_u = u;
    }
  }

  NumericOptimum out;
  std::vector<double> tiles(n);
  double logf = projected_objective(ev, best_u, X, guard, &tiles);
  for (std::size_t i = 0; i < n; ++i) out.tiles[problem.vars[i]] = tiles[i];
  out.chi = std::exp(logf);
  return out;
}

// ---------------------------------------------------------------------------
// Asymptotic geometric program for the exact constant
// ---------------------------------------------------------------------------

// Substituting x_v = kappa_v * X^{a_v} with the exact LP exponents a_v turns
// the dominator budget into X * h(kappa) with h a posynomial over the
// LP-degree-1 constraint monomials, and the objective into X^alpha * F(kappa)
// over the LP-degree-alpha objective monomials.  max F s.t. h = 1 is solved
// to machine precision by multiplicative KKT equalization with analytic
// gradients.  Returns nullopt when the structure is outside this form; the
// caller then keeps the generic numeric fit.
std::optional<double> asymptotic_constant(
    const OptimizationProblem& problem,
    const std::map<std::string, Rational>& a, const Rational& alpha,
    std::map<std::string, double>* kappa_out, SolveGuard* guard = nullptr) {
  const std::size_t n = problem.vars.size();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[problem.vars[i]] = i;

  struct Mono {
    std::vector<std::pair<std::size_t, int>> degs;
    double coeff;
  };
  std::vector<Mono> constraint_monos;
  for (const AccessTerm& t : problem.sum_terms) {
    if (t.has_max_dims()) return std::nullopt;
    for (const auto& sm : t.signed_monomials()) {
      Rational lp_degree = 0;
      for (const auto& [v, d] : sm.degrees) {
        auto it = a.find(v);
        if (it == a.end()) return std::nullopt;
        lp_degree += it->second * Rational(d);
      }
      if (lp_degree != Rational(1)) {
        if (lp_degree > Rational(1)) return std::nullopt;
        continue;
      }
      if (!sm.coeff.is_positive()) return std::nullopt;
      Mono m;
      m.coeff = sm.coeff.to_double();
      for (const auto& [v, d] : sm.degrees) m.degs.emplace_back(index[v], d);
      constraint_monos.push_back(std::move(m));
    }
  }
  if (constraint_monos.empty()) return std::nullopt;
  for (const AccessTerm& t : problem.single_terms) {
    if (t.has_max_dims()) return std::nullopt;
    for (const auto& m : t.lp_monomials()) {
      Rational deg = 0;
      for (const std::string& v : m) deg += a.at(v);
      if (deg == Rational(1)) return std::nullopt;  // potentially active
    }
  }
  std::vector<Mono> objective_monos;
  for (const ObjectiveMonomial& om : problem.effective_objective()) {
    Rational deg = 0;
    for (const auto& [v, d] : om.degrees) deg += a.at(v) * Rational(d);
    if (deg > alpha) return std::nullopt;
    if (deg != alpha) continue;
    if (!om.coeff.is_positive()) return std::nullopt;
    Mono m;
    m.coeff = om.coeff.to_double();
    for (const auto& [v, d] : om.degrees) m.degs.emplace_back(index[v], d);
    objective_monos.push_back(std::move(m));
  }
  if (objective_monos.empty()) return std::nullopt;

  // Variables appearing nowhere relevant must have zero exponent (their
  // kappa is clamped to 1; nonzero-exponent uncovered vars are a failure).
  std::vector<bool> relevant(n, false);
  for (const Mono& m : constraint_monos) {
    for (const auto& [i, _] : m.degs) relevant[i] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!relevant[i] && !a.at(problem.vars[i]).is_zero()) return std::nullopt;
  }

  std::vector<double> u(n, 0.0);
  std::vector<bool> clamped(n);
  for (std::size_t i = 0; i < n; ++i) {
    clamped[i] = a.at(problem.vars[i]).is_zero();
  }
  auto eval_monos = [&](const std::vector<Mono>& monos,
                        const std::vector<double>& uu,
                        std::vector<double>* grad) {
    double total = 0.0;
    if (grad) grad->assign(n, 0.0);
    for (const Mono& m : monos) {
      double val = m.coeff;
      for (const auto& [i, d] : m.degs) val *= std::exp(d * uu[i]);
      total += val;
      if (grad) {
        for (const auto& [i, d] : m.degs) (*grad)[i] += val * d;
      }
    }
    return total;
  };
  auto project = [&](std::vector<double>* uu) {
    double lo = -80.0, hi = 80.0;
    for (int it = 0; it < 200; ++it) {
      double mid = 0.5 * (lo + hi);
      std::vector<double> shifted = *uu;
      for (std::size_t i = 0; i < n; ++i) {
        shifted[i] += mid;
        if (clamped[i]) shifted[i] = std::max(0.0, shifted[i]);
      }
      (eval_monos(constraint_monos, shifted, nullptr) <= 1.0 ? lo : hi) = mid;
    }
    for (std::size_t i = 0; i < n; ++i) {
      (*uu)[i] += lo;
      if (clamped[i]) (*uu)[i] = std::max(0.0, (*uu)[i]);
    }
  };
  project(&u);
  for (int iter = 0; iter < 8000; ++iter) {
    if (guard != nullptr) guard->tick();
    std::vector<double> gh, gf;
    eval_monos(constraint_monos, u, &gh);
    double f = eval_monos(objective_monos, u, &gf);
    double mean_log = 0.0;
    int active = 0;
    std::vector<double> r(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!relevant[i]) continue;
      if (gh[i] <= 0) continue;
      // r_i = (dF/du_i / F) / (dh/du_i); equal across free vars at optimum.
      r[i] = (gf[i] / std::max(1e-300, f)) / gh[i];
      if (r[i] <= 0) continue;
      if (clamped[i] && u[i] <= 1e-15) continue;
      mean_log += std::log(r[i]);
      ++active;
    }
    if (active == 0) break;
    mean_log /= active;
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!relevant[i] || r[i] <= 0) continue;
      double delta = 0.4 * (std::log(r[i]) - mean_log);
      if (clamped[i] && u[i] <= 1e-15 && delta < 0) continue;
      u[i] += delta;
      if (clamped[i]) u[i] = std::max(0.0, u[i]);
      worst = std::max(worst, std::fabs(delta));
    }
    project(&u);
    if (worst < 1e-15) break;
  }
  double c = eval_monos(objective_monos, u, nullptr);
  if (kappa_out) {
    for (std::size_t i = 0; i < n; ++i) {
      (*kappa_out)[problem.vars[i]] = std::exp(u[i]);
    }
  }
  return c;
}

}  // namespace

NumericOptimum maximize_subcomputation(const OptimizationProblem& problem,
                                       double X,
                                       const support::StopCriteria& stop) {
  SolveGuard guard;
  guard.stop = stop.unlimited() ? nullptr : &stop;
  return solve_at(problem, X, {}, &guard);
}

std::optional<ChiForm> derive_chi(const OptimizationProblem& problem,
                                  const support::StopCriteria& stop) {
  SolveGuard guard;
  guard.stop = stop.unlimited() ? nullptr : &stop;
  if (guard.stop != nullptr) stop.enforce("chi derivation");
  const std::size_t n = problem.vars.size();
  if (n == 0) return std::nullopt;

  // --- exact exponent LP ---
  auto monomials = all_monomials(problem);
  {
    std::set<std::string> covered;
    for (const auto& m : monomials) covered.insert(m.begin(), m.end());
    for (const std::string& v : problem.vars) {
      if (!covered.count(v)) return std::nullopt;  // unbounded reuse
    }
  }
  std::vector<std::vector<Rational>> constraint_rows;
  for (const auto& m : monomials) {
    std::vector<Rational> row(n, Rational(0));
    for (const std::string& v : m) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) row[i] = Rational(1);
      }
    }
    constraint_rows.push_back(std::move(row));
  }
  // alpha = max over objective monomials of the LP value with that monomial
  // as the objective; keep the exponents of the winner.  Degenerate LPs have
  // a face of optima (e.g. a_i + a_j = 1 with only the joint constraint
  // binding); an epsilon penalty on the largest exponent steers the simplex
  // to the balanced optimum, which is the one the downstream geometric
  // program needs as an interior starting structure.  alpha itself is
  // recomputed exactly from the returned vertex, so the perturbation never
  // contaminates the exponent.
  ChiForm form;
  form.alpha = Rational(-1);
  const Rational eps(1, 4096);
  for (const ObjectiveMonomial& om : problem.effective_objective()) {
    LinearProgram lp;
    // Variables: a_0..a_{n-1}, m (the max-exponent bound).
    lp.objective.assign(n + 1, Rational(0));
    for (const auto& [v, d] : om.degrees) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) lp.objective[i] = Rational(d);
      }
    }
    lp.objective[n] = -eps;
    for (const auto& row : constraint_rows) {
      std::vector<Rational> r = row;
      r.emplace_back(0);
      lp.constraints.push_back(std::move(r));
      lp.rhs.emplace_back(1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<Rational> r(n + 1, Rational(0));
      r[i] = 1;
      r[n] = -1;
      lp.constraints.push_back(std::move(r));
      lp.rhs.emplace_back(0);
    }
    auto sol = solve_lp(lp);
    if (!sol) return std::nullopt;
    Rational alpha_exact = 0;
    for (const auto& [v, d] : om.degrees) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) alpha_exact += Rational(d) * sol->x[i];
      }
    }
    // Guard against the epsilon perturbation trading real objective for
    // balance: re-solve without it and keep whichever attains more.
    {
      LinearProgram pure;
      pure.objective.assign(n, Rational(0));
      for (const auto& [v, d] : om.degrees) {
        for (std::size_t i = 0; i < n; ++i) {
          if (problem.vars[i] == v) pure.objective[i] = Rational(d);
        }
      }
      pure.constraints = constraint_rows;
      pure.rhs.assign(constraint_rows.size(), Rational(1));
      auto pure_sol = solve_lp(pure);
      if (!pure_sol) return std::nullopt;
      if (pure_sol->objective_value > alpha_exact) {
        alpha_exact = pure_sol->objective_value;
        sol->x = pure_sol->x;
        sol->x.resize(n + 1);
      }
    }
    if (alpha_exact > form.alpha) {
      form.alpha = alpha_exact;
      form.exponents.clear();
      for (std::size_t i = 0; i < n; ++i) {
        form.exponents[problem.vars[i]] = sol->x[i];
      }
    }
  }
  if (form.alpha < Rational(0)) return std::nullopt;

  // --- numeric constant fit (seeded at the LP exponents) ---
  const double x_lo = 1e9, x_hi = 1e12;
  auto lp_seed = [&](double X) {
    std::vector<double> seed(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed[i] = form.exponents.at(problem.vars[i]).to_double() * std::log(X);
    }
    return seed;
  };
  NumericOptimum lo = solve_at(problem, x_lo, {lp_seed(x_lo)}, &guard);
  NumericOptimum hi = solve_at(problem, x_hi, {lp_seed(x_hi)}, &guard);
  if (!std::isfinite(lo.chi) || !std::isfinite(hi.chi) || lo.chi <= 0.0 ||
      hi.chi <= 0.0) {
    // The LP promised a bounded exponent but the numeric fit found no
    // finite positive chi: surface it as a structured failure instead of
    // letting NaNs flow into the symbolic bound.
    throw support::AnalysisError(
        support::StatusCode::kOptimizerNoConverge,
        "numeric optimizer produced no finite chi constant");
  }
  double alpha_lp = form.alpha.to_double();
  double alpha_fit =
      (std::log(hi.chi) - std::log(lo.chi)) / (std::log(x_hi) - std::log(x_lo));
  form.fit_residual = std::fabs(alpha_fit - alpha_lp);
  double c_num = hi.chi / std::pow(x_hi, alpha_lp);
  form.coefficient_num = c_num;
  for (const auto& [v, xv] : hi.tiles) {
    double av = form.exponents.at(v).to_double();
    form.tile_coeffs[v] = xv / std::pow(x_hi, av);
  }

  // --- asymptotic GP refinement: machine-precision constant when the
  // problem has the pure-monomial structure ---
  double c_best = c_num;
  double snap_tol = 1e-4;
  std::map<std::string, double> kappa;
  std::optional<double> c_gp =
      asymptotic_constant(problem, form.exponents, form.alpha, &kappa,
                          &guard);
  if (c_gp && std::fabs(*c_gp - c_num) <= 1e-2 * std::max(*c_gp, c_num)) {
    c_best = *c_gp;
    snap_tol = 1e-8;
    for (const auto& [v, kv] : kappa) form.tile_coeffs[v] = kv;
  } else if (c_gp) {
    // Disagreement: keep the larger (a larger chi only loosens the bound,
    // staying sound) and leave the constant numeric.
    c_best = std::max(*c_gp, c_num);
  }
  form.coefficient_num = c_best;

  // --- snap to an exact value: rationalize c^q with the smallest-denominator
  // convergent so a noisy fit cannot masquerade as an exotic rational ---
  long long q = static_cast<long long>(form.alpha.den());
  double cq = std::pow(c_best, static_cast<double>(q));
  Rational snapped;
  if (rationalize_within(cq, snap_tol, 1000000, &snapped) &&
      snapped.is_positive()) {
    form.coefficient = sym::pow(sym::Expr(snapped), Rational(1, q));
    form.coefficient_exact = true;
  } else {
    form.coefficient = sym::Expr(rationalize(c_best, 1000000));
    form.coefficient_exact = false;
  }
  return form;
}

}  // namespace soap::bounds
