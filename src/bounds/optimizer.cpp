#include "bounds/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "bounds/opt/backend.hpp"
#include "linalg/simplex.hpp"
#include "support/cancel.hpp"

namespace soap::bounds {

namespace {

// One solve at budget X through the selected backend.  The backend boundary
// is exception-free (a StopCriteria trip comes back as kStopReached with the
// AnalysisError stashed); this layer rethrows it so maximize_subcomputation
// and derive_chi keep the PR 8 degradation contract — callers see the same
// AnalysisError at the same evaluation they always did.
opt::SolveResult solve_through(const opt::OptimizerBackend& be,
                               const OptimizationProblem& problem, double X,
                               std::vector<std::vector<double>> seeds,
                               opt::EvalGuard* guard) {
  opt::SolveRequest request;
  request.X = X;
  request.seeds = std::move(seeds);
  request.guard = guard;
  opt::SolveResult result = be.solve(problem, request);
  if (result.code == opt::ResultCode::kStopReached && result.stop_error) {
    throw *result.stop_error;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Exponent LP
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> all_monomials(
    const OptimizationProblem& p) {
  std::vector<std::vector<std::string>> out;
  for (const AccessTerm& t : p.sum_terms) {
    auto ms = t.lp_monomials();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  for (const AccessTerm& t : p.single_terms) {
    auto ms = t.lp_monomials();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Asymptotic geometric program for the exact constant
// ---------------------------------------------------------------------------

// Substituting x_v = kappa_v * X^{a_v} with the exact LP exponents a_v turns
// the dominator budget into X * h(kappa) with h a posynomial over the
// LP-degree-1 constraint monomials, and the objective into X^alpha * F(kappa)
// over the LP-degree-alpha objective monomials.  max F s.t. h = 1 is solved
// to machine precision by multiplicative KKT equalization with analytic
// gradients.  Returns nullopt when the structure is outside this form; the
// caller then keeps the generic numeric fit.  Backend-independent: whichever
// backend fit the constant, the GP refinement (and hence the snapped exact
// value) is the same — the differential harness leans on this.
std::optional<double> asymptotic_constant(
    const OptimizationProblem& problem,
    const std::map<std::string, Rational>& a, const Rational& alpha,
    std::map<std::string, double>* kappa_out,
    opt::EvalGuard* guard = nullptr) {
  const std::size_t n = problem.vars.size();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[problem.vars[i]] = i;

  struct Mono {
    std::vector<std::pair<std::size_t, int>> degs;
    double coeff;
  };
  std::vector<Mono> constraint_monos;
  for (const AccessTerm& t : problem.sum_terms) {
    if (t.has_max_dims()) return std::nullopt;
    for (const auto& sm : t.signed_monomials()) {
      Rational lp_degree = 0;
      for (const auto& [v, d] : sm.degrees) {
        auto it = a.find(v);
        if (it == a.end()) return std::nullopt;
        lp_degree += it->second * Rational(d);
      }
      if (lp_degree != Rational(1)) {
        if (lp_degree > Rational(1)) return std::nullopt;
        continue;
      }
      if (!sm.coeff.is_positive()) return std::nullopt;
      Mono m;
      m.coeff = sm.coeff.to_double();
      for (const auto& [v, d] : sm.degrees) m.degs.emplace_back(index[v], d);
      constraint_monos.push_back(std::move(m));
    }
  }
  if (constraint_monos.empty()) return std::nullopt;
  for (const AccessTerm& t : problem.single_terms) {
    if (t.has_max_dims()) return std::nullopt;
    for (const auto& m : t.lp_monomials()) {
      Rational deg = 0;
      for (const std::string& v : m) deg += a.at(v);
      if (deg == Rational(1)) return std::nullopt;  // potentially active
    }
  }
  std::vector<Mono> objective_monos;
  for (const ObjectiveMonomial& om : problem.effective_objective()) {
    Rational deg = 0;
    for (const auto& [v, d] : om.degrees) deg += a.at(v) * Rational(d);
    if (deg > alpha) return std::nullopt;
    if (deg != alpha) continue;
    if (!om.coeff.is_positive()) return std::nullopt;
    Mono m;
    m.coeff = om.coeff.to_double();
    for (const auto& [v, d] : om.degrees) m.degs.emplace_back(index[v], d);
    objective_monos.push_back(std::move(m));
  }
  if (objective_monos.empty()) return std::nullopt;

  // Variables appearing nowhere relevant must have zero exponent (their
  // kappa is clamped to 1; nonzero-exponent uncovered vars are a failure).
  std::vector<bool> relevant(n, false);
  for (const Mono& m : constraint_monos) {
    for (const auto& [i, _] : m.degs) relevant[i] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!relevant[i] && !a.at(problem.vars[i]).is_zero()) return std::nullopt;
  }

  std::vector<double> u(n, 0.0);
  std::vector<bool> clamped(n);
  for (std::size_t i = 0; i < n; ++i) {
    clamped[i] = a.at(problem.vars[i]).is_zero();
  }
  auto eval_monos = [&](const std::vector<Mono>& monos,
                        const std::vector<double>& uu,
                        std::vector<double>* grad) {
    double total = 0.0;
    if (grad) grad->assign(n, 0.0);
    for (const Mono& m : monos) {
      double val = m.coeff;
      for (const auto& [i, d] : m.degs) val *= std::exp(d * uu[i]);
      total += val;
      if (grad) {
        for (const auto& [i, d] : m.degs) (*grad)[i] += val * d;
      }
    }
    return total;
  };
  auto project = [&](std::vector<double>* uu) {
    double lo = -80.0, hi = 80.0;
    for (int it = 0; it < 200; ++it) {
      double mid = 0.5 * (lo + hi);
      std::vector<double> shifted = *uu;
      for (std::size_t i = 0; i < n; ++i) {
        shifted[i] += mid;
        if (clamped[i]) shifted[i] = std::max(0.0, shifted[i]);
      }
      (eval_monos(constraint_monos, shifted, nullptr) <= 1.0 ? lo : hi) = mid;
    }
    for (std::size_t i = 0; i < n; ++i) {
      (*uu)[i] += lo;
      if (clamped[i]) (*uu)[i] = std::max(0.0, (*uu)[i]);
    }
  };
  project(&u);
  for (int iter = 0; iter < 8000; ++iter) {
    if (guard != nullptr) guard->tick();
    std::vector<double> gh, gf;
    eval_monos(constraint_monos, u, &gh);
    double f = eval_monos(objective_monos, u, &gf);
    double mean_log = 0.0;
    int active = 0;
    std::vector<double> r(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!relevant[i]) continue;
      if (gh[i] <= 0) continue;
      // r_i = (dF/du_i / F) / (dh/du_i); equal across free vars at optimum.
      r[i] = (gf[i] / std::max(1e-300, f)) / gh[i];
      if (r[i] <= 0) continue;
      if (clamped[i] && u[i] <= 1e-15) continue;
      mean_log += std::log(r[i]);
      ++active;
    }
    if (active == 0) break;
    mean_log /= active;
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!relevant[i] || r[i] <= 0) continue;
      double delta = 0.4 * (std::log(r[i]) - mean_log);
      if (clamped[i] && u[i] <= 1e-15 && delta < 0) continue;
      u[i] += delta;
      if (clamped[i]) u[i] = std::max(0.0, u[i]);
      worst = std::max(worst, std::fabs(delta));
    }
    project(&u);
    if (worst < 1e-15) break;
  }
  double c = eval_monos(objective_monos, u, nullptr);
  if (kappa_out) {
    for (std::size_t i = 0; i < n; ++i) {
      (*kappa_out)[problem.vars[i]] = std::exp(u[i]);
    }
  }
  return c;
}

}  // namespace

NumericOptimum maximize_subcomputation(const OptimizationProblem& problem,
                                       double X,
                                       const support::StopCriteria& stop,
                                       opt::BackendKind backend) {
  opt::EvalGuard guard;
  guard.stop = stop.unlimited() ? nullptr : &stop;
  return solve_through(opt::backend(backend), problem, X, {}, &guard).optimum;
}

std::optional<ChiForm> derive_chi(const OptimizationProblem& problem,
                                  const support::StopCriteria& stop,
                                  opt::BackendKind backend) {
  opt::EvalGuard guard;
  guard.stop = stop.unlimited() ? nullptr : &stop;
  if (guard.stop != nullptr) stop.enforce("chi derivation");
  const std::size_t n = problem.vars.size();
  if (n == 0) return std::nullopt;
  const opt::OptimizerBackend& be = opt::backend(backend);

  // --- exact exponent LP ---
  auto monomials = all_monomials(problem);
  {
    std::set<std::string> covered;
    for (const auto& m : monomials) covered.insert(m.begin(), m.end());
    for (const std::string& v : problem.vars) {
      if (!covered.count(v)) return std::nullopt;  // unbounded reuse
    }
  }
  std::vector<std::vector<Rational>> constraint_rows;
  for (const auto& m : monomials) {
    std::vector<Rational> row(n, Rational(0));
    for (const std::string& v : m) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) row[i] = Rational(1);
      }
    }
    constraint_rows.push_back(std::move(row));
  }
  // alpha = max over objective monomials of the LP value with that monomial
  // as the objective; keep the exponents of the winner.  Degenerate LPs have
  // a face of optima (e.g. a_i + a_j = 1 with only the joint constraint
  // binding); an epsilon penalty on the largest exponent steers the simplex
  // to the balanced optimum, which is the one the downstream geometric
  // program needs as an interior starting structure.  alpha itself is
  // recomputed exactly from the returned vertex, so the perturbation never
  // contaminates the exponent.
  ChiForm form;
  form.alpha = Rational(-1);
  const Rational eps(1, 4096);
  for (const ObjectiveMonomial& om : problem.effective_objective()) {
    LinearProgram lp;
    // Variables: a_0..a_{n-1}, m (the max-exponent bound).
    lp.objective.assign(n + 1, Rational(0));
    for (const auto& [v, d] : om.degrees) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) lp.objective[i] = Rational(d);
      }
    }
    lp.objective[n] = -eps;
    for (const auto& row : constraint_rows) {
      std::vector<Rational> r = row;
      r.emplace_back(0);
      lp.constraints.push_back(std::move(r));
      lp.rhs.emplace_back(1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<Rational> r(n + 1, Rational(0));
      r[i] = 1;
      r[n] = -1;
      lp.constraints.push_back(std::move(r));
      lp.rhs.emplace_back(0);
    }
    auto sol = solve_lp(lp);
    if (!sol) return std::nullopt;
    Rational alpha_exact = 0;
    for (const auto& [v, d] : om.degrees) {
      for (std::size_t i = 0; i < n; ++i) {
        if (problem.vars[i] == v) alpha_exact += Rational(d) * sol->x[i];
      }
    }
    // Guard against the epsilon perturbation trading real objective for
    // balance: re-solve without it and keep whichever attains more.
    {
      LinearProgram pure;
      pure.objective.assign(n, Rational(0));
      for (const auto& [v, d] : om.degrees) {
        for (std::size_t i = 0; i < n; ++i) {
          if (problem.vars[i] == v) pure.objective[i] = Rational(d);
        }
      }
      pure.constraints = constraint_rows;
      pure.rhs.assign(constraint_rows.size(), Rational(1));
      auto pure_sol = solve_lp(pure);
      if (!pure_sol) return std::nullopt;
      if (pure_sol->objective_value > alpha_exact) {
        alpha_exact = pure_sol->objective_value;
        sol->x = pure_sol->x;
        sol->x.resize(n + 1);
      }
    }
    if (alpha_exact > form.alpha) {
      form.alpha = alpha_exact;
      form.exponents.clear();
      for (std::size_t i = 0; i < n; ++i) {
        form.exponents[problem.vars[i]] = sol->x[i];
      }
    }
  }
  if (form.alpha < Rational(0)) return std::nullopt;

  // --- numeric constant fit (seeded at the LP exponents) ---
  const double x_lo = 1e9, x_hi = 1e12;
  auto lp_seed = [&](double X) {
    std::vector<double> seed(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed[i] = form.exponents.at(problem.vars[i]).to_double() * std::log(X);
    }
    return seed;
  };
  opt::SolveResult lo_result =
      solve_through(be, problem, x_lo, {lp_seed(x_lo)}, &guard);
  opt::SolveResult hi_result =
      solve_through(be, problem, x_hi, {lp_seed(x_hi)}, &guard);
  form.solve_code = opt::worst(lo_result.code, hi_result.code);
  const NumericOptimum& lo = lo_result.optimum;
  const NumericOptimum& hi = hi_result.optimum;
  if (!std::isfinite(lo.chi) || !std::isfinite(hi.chi) || lo.chi <= 0.0 ||
      hi.chi <= 0.0) {
    // The LP promised a bounded exponent but the numeric fit found no
    // finite positive chi: surface it as a structured failure instead of
    // letting NaNs flow into the symbolic bound.
    throw support::AnalysisError(
        support::StatusCode::kOptimizerNoConverge,
        "numeric optimizer produced no finite chi constant (backend=" +
            std::string(be.name()) +
            ", code=" + opt::result_code_name(form.solve_code) + ")");
  }
  double alpha_lp = form.alpha.to_double();
  double alpha_fit =
      (std::log(hi.chi) - std::log(lo.chi)) / (std::log(x_hi) - std::log(x_lo));
  form.fit_residual = std::fabs(alpha_fit - alpha_lp);
  double c_num = hi.chi / std::pow(x_hi, alpha_lp);
  form.coefficient_num = c_num;
  for (const auto& [v, xv] : hi.tiles) {
    double av = form.exponents.at(v).to_double();
    form.tile_coeffs[v] = xv / std::pow(x_hi, av);
  }

  // --- asymptotic GP refinement: machine-precision constant when the
  // problem has the pure-monomial structure ---
  double c_best = c_num;
  double snap_tol = 1e-4;
  std::map<std::string, double> kappa;
  std::optional<double> c_gp =
      asymptotic_constant(problem, form.exponents, form.alpha, &kappa,
                          &guard);
  if (c_gp && std::fabs(*c_gp - c_num) <= 1e-2 * std::max(*c_gp, c_num)) {
    c_best = *c_gp;
    snap_tol = 1e-8;
    for (const auto& [v, kv] : kappa) form.tile_coeffs[v] = kv;
  } else if (c_gp) {
    // Disagreement: keep the larger (a larger chi only loosens the bound,
    // staying sound) and leave the constant numeric.
    c_best = std::max(*c_gp, c_num);
  }
  form.coefficient_num = c_best;

  // --- snap to an exact value: rationalize c^q with the smallest-denominator
  // convergent so a noisy fit cannot masquerade as an exotic rational ---
  long long q = static_cast<long long>(form.alpha.den());
  double cq = std::pow(c_best, static_cast<double>(q));
  Rational snapped;
  if (rationalize_within(cq, snap_tol, 1000000, &snapped) &&
      snapped.is_positive()) {
    form.coefficient = sym::pow(sym::Expr(snapped), Rational(1, q));
    form.coefficient_exact = true;
  } else {
    form.coefficient = sym::Expr(rationalize(c_best, 1000000));
    form.coefficient_exact = false;
  }
  return form;
}

}  // namespace soap::bounds
