// Access-set size bounds for rectangular subcomputations: Lemma 3 (simple
// overlap accesses), Corollary 1 (input-output overlap) and the Section 5
// projections (version dimensions, maximal non-injective overlap).
//
// The analysis of a statement produces one `AccessTerm` per (pseudo-)array;
// the term knows the symbolic size of its access set |A_j| as a function of
// the tile sizes |D_t|, the monomials it contributes to the exponent LP, and
// how to evaluate itself numerically inside the optimizer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soap/statement.hpp"
#include "support/sym_map.hpp"
#include "symbolic/expr.hpp"

namespace soap::bounds {

/// Extent of one array dimension during a rectangular subcomputation, as a
/// function of the tile sizes of the iteration variables indexing it.
struct DimSpec {
  enum class Mode {
    kProduct,  ///< injective: extent = prod of the variables' tile sizes
    kMax       ///< Section 5.3 maximal overlap: extent = max of tile sizes
  };
  Mode mode = Mode::kProduct;
  std::vector<std::string> vars;  ///< iteration variables; empty => extent 1
  long long offsets = 0;          ///< |t-hat^i|, distinct non-zero offsets
};

/// How the access set size is counted.
enum class TermKind {
  kPlain,        ///< Lemma 3: 2*prod(e_i) - prod(e_i - c_i); reduces to
                 ///< prod(e_i) when all c_i = 0 (single access component)
  kInputOutput,  ///< Corollary 1: prod(e_i) - prod(e_i - c_i)
  kVersioned,    ///< Section 5.2 projection of an update A[phi] op= ...:
                 ///< counts prod(e_i) (the version dimension cancels)
  kOutput        ///< pure output (minimum-set constraint, not a load term)
};

struct AccessTerm {
  std::string array;
  TermKind kind = TermKind::kPlain;
  std::vector<DimSpec> dims;

  /// |A_j| as a symbolic expression in the tile-size symbols (one symbol per
  /// iteration variable, named exactly like the variable).
  [[nodiscard]] sym::Expr size_expr() const;

  /// Numeric evaluation of |A_j| for concrete tile sizes.
  [[nodiscard]] double eval(const std::map<std::string, double>& tiles) const;

  /// Variable sets of the dominant monomials this term contributes to the
  /// exponent LP (each monomial M yields the constraint
  /// sum_{v in M} a_v <= 1).
  [[nodiscard]] std::vector<std::vector<std::string>> lp_monomials() const;

  /// Full signed monomial expansion of |A_j| (inclusion-exclusion of the
  /// prod(e) - prod(e-c) structure).  Only valid for terms without kMax
  /// dimensions (has_max_dims() false).
  struct SignedMonomial {
    std::map<std::string, int> degrees;
    Rational coeff;
  };
  [[nodiscard]] std::vector<SignedMonomial> signed_monomials() const;
  [[nodiscard]] bool has_max_dims() const;

  [[nodiscard]] std::string str() const;
};

/// Combines per-dimension extents e[0..n) and offset counts c[0..n) into |A|
/// for the given counting rule, using the cancellation-safe
/// inclusion-exclusion expansion of prod(e) - prod(e - c).  Shared by
/// AccessTerm::eval and the optimizer's index-compiled terms so the numerics
/// cannot drift apart.  Requires n <= 20 (throws std::logic_error).
double combine_access_extents(TermKind kind, const double* e, const double* c,
                              std::size_t n);

/// The bounds-engine view of a single SOAP statement.
struct StatementAnalysis {
  std::vector<std::string> tile_vars;   ///< iteration variables (loop order)
  std::vector<AccessTerm> input_terms;  ///< load terms (sum <= X)
  std::vector<AccessTerm> output_terms; ///< minimum-set terms (each <= X)
  sym::Expr domain_size;                ///< exact |D|
  sym::Expr domain_size_leading;        ///< leading term of |D|
};

/// Derives the access terms of a statement, applying the Section 5
/// projections: disjoint-access splitting must already have been applied
/// (soap::split_disjoint_accesses); version dimensions and non-injective
/// overlap modes are applied here.
StatementAnalysis analyze_statement(const Statement& st);

}  // namespace soap::bounds
