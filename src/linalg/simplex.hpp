// Exact linear programming over the rationals (dense tableau simplex with
// Bland's rule, so no cycling and no floating-point error).
//
// SOAP analysis uses this for the "exponent LP": relaxing each access-set
// size to its dominant product prod_{i in Psi_j} x_i and writing x_i = X^{a_i}
// turns problem (8) of the paper into
//     maximize sum_i a_i   s.t.  forall j: sum_{i in Psi_j} a_i <= 1, a >= 0,
// whose exact rational optimum gives the asymptotic exponent alpha of
// chi(X) = Theta(X^alpha).  This is the discrete HBL dual that also underlies
// the related projection-based methods the paper compares against.
#pragma once

#include <optional>
#include <vector>

#include "support/rational.hpp"

namespace soap {

struct LinearProgram {
  // maximize objective . x   subject to  constraints[k] . x <= rhs[k], x >= 0.
  std::vector<Rational> objective;
  std::vector<std::vector<Rational>> constraints;
  std::vector<Rational> rhs;
};

struct LpSolution {
  Rational objective_value;
  std::vector<Rational> x;
};

/// Solves the LP exactly.  Returns std::nullopt if unbounded.
/// (All-zero is always feasible for the x >= 0, Ax <= b with b >= 0 form used
/// here; infeasible general inputs throw std::invalid_argument.)
std::optional<LpSolution> solve_lp(const LinearProgram& lp);

}  // namespace soap
