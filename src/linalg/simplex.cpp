#include "linalg/simplex.hpp"

#include <stdexcept>

namespace soap {

std::optional<LpSolution> solve_lp(const LinearProgram& lp) {
  const std::size_t n = lp.objective.size();
  const std::size_t m = lp.constraints.size();
  if (lp.rhs.size() != m)
    throw std::invalid_argument("solve_lp: rhs/constraints size mismatch");
  for (const auto& row : lp.constraints) {
    if (row.size() != n)
      throw std::invalid_argument("solve_lp: constraint arity mismatch");
  }
  for (const Rational& b : lp.rhs) {
    if (b.is_negative())
      throw std::invalid_argument("solve_lp: negative rhs unsupported");
  }

  // Tableau: m rows of [A | I | b], objective row [-c | 0 | 0].
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<Rational>> t(m + 1,
                                       std::vector<Rational>(cols, Rational(0)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = lp.constraints[i][j];
    t[i][n + i] = 1;
    t[i][cols - 1] = lp.rhs[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -lp.objective[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  for (int iter = 0; iter < 10000; ++iter) {
    // Bland's rule: entering variable = lowest index with negative reduced
    // cost.
    std::size_t enter = cols;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j].is_negative()) {
        enter = j;
        break;
      }
    }
    if (enter == cols) break;  // optimal

    // Ratio test (Bland ties: lowest basis index).
    std::size_t leave = m + 1;
    Rational best_ratio = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (!t[i][enter].is_positive()) continue;
      Rational ratio = t[i][cols - 1] / t[i][enter];
      if (leave == m + 1 || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[leave])) {
        leave = i;
        best_ratio = ratio;
      }
    }
    if (leave == m + 1) return std::nullopt;  // unbounded

    // Pivot.
    Rational piv = t[leave][enter];
    for (std::size_t j = 0; j < cols; ++j) t[leave][j] /= piv;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave || t[i][enter].is_zero()) continue;
      Rational f = t[i][enter];
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= f * t[leave][j];
      }
    }
    basis[leave] = enter;
  }

  LpSolution sol;
  sol.x.assign(n, Rational(0));
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][cols - 1];
  }
  sol.objective_value = t[m][cols - 1];
  return sol;
}

}  // namespace soap
