#include "schedule/tiling.hpp"

#include <algorithm>
#include <cmath>

namespace soap::schedule {

std::map<std::string, long long> concrete_tiles(
    const Statement& st, const bounds::IoLowerBound& bound, long long S,
    const std::map<std::string, long long>& params) {
  std::map<std::string, Rational> env;
  for (const auto& [k, v] : params) env[k] = Rational(v);
  std::map<std::string, long long> out;
  for (const Loop& loop : st.domain.loops()) {
    long long extent = 1;
    {
      // Worst-case extent: evaluate upper - lower at the parameter values
      // with inner variables at their lower bounds (loop bounds in the
      // corpus only shrink inward, so this is an upper bound on the extent).
      std::map<std::string, Rational> probe = env;
      for (const Loop& outer : st.domain.loops()) {
        if (outer.var == loop.var) break;
        probe[outer.var] = outer.lower.eval(probe);
      }
      Rational lo = loop.lower.eval(probe);
      Rational hi = loop.upper.eval(probe);
      extent = std::max<long long>(
          1, static_cast<long long>((hi - lo).floor()));
    }
    auto it = bound.tiles.find(loop.var);
    if (it == bound.tiles.end()) {
      out[loop.var] = extent;
      continue;
    }
    double tile = it->second.coefficient *
                  std::pow(static_cast<double>(S),
                           it->second.exponent.to_double());
    long long t = static_cast<long long>(std::llround(tile));
    out[loop.var] = std::clamp<long long>(t, 1, extent);
  }
  return out;
}

}  // namespace soap::schedule
