#include "schedule/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace soap::schedule {

namespace {

/// Worst-case (maximal) extent of loop `depth`: upper - lower is affine in
/// the outer iteration variables, so its maximum over the outer iteration
/// box is attained at a vertex.  Enumerate the 2^depth vertices
/// outermost-first (an outer bound may itself depend on further-outer
/// variables, so each endpoint is evaluated under the choices made so
/// far).  The old probe pinned every outer variable at its lower bound,
/// which computes the *minimum* extent — a triangular loop
/// `for j in range(i)` degenerated to extent 1 and its tile clamped to 1
/// for every S.
long long max_extent(const std::vector<Loop>& loops, std::size_t depth,
                     const std::map<std::string, Rational>& params) {
  long long best = 1;
  std::map<std::string, Rational> env = params;
  std::function<void(std::size_t)> walk = [&](std::size_t d) {
    if (d == depth) {
      Rational lo = loops[depth].lower.eval(env);
      Rational hi = loops[depth].upper.eval(env);
      best = std::max(best, static_cast<long long>((hi - lo).floor()));
      return;
    }
    Rational lo = loops[d].lower.eval(env);
    Rational hi = loops[d].upper.eval(env);
    // Probe both endpoints of the outer variable's range (hi - 1 can fall
    // below lo for degenerate ranges; the extent below clamps at 1).
    for (const Rational& v : {lo, hi - Rational(1)}) {
      env[loops[d].var] = v;
      walk(d + 1);
    }
    env.erase(loops[d].var);
  };
  walk(0);
  return best;
}

}  // namespace

std::map<std::string, long long> concrete_tiles(
    const Statement& st, const bounds::IoLowerBound& bound, long long S,
    const std::map<std::string, long long>& params) {
  std::map<std::string, Rational> env;
  for (const auto& [k, v] : params) env[k] = Rational(v);
  std::map<std::string, long long> out;
  const std::vector<Loop>& loops = st.domain.loops();
  for (std::size_t d = 0; d < loops.size(); ++d) {
    const Loop& loop = loops[d];
    long long extent = max_extent(loops, d, env);
    auto it = bound.tiles.find(loop.var);
    if (it == bound.tiles.end()) {
      out[loop.var] = extent;
      continue;
    }
    double tile = it->second.coefficient *
                  std::pow(static_cast<double>(S),
                           it->second.exponent.to_double());
    long long t = static_cast<long long>(std::llround(tile));
    out[loop.var] = std::clamp<long long>(t, 1, extent);
  }
  return out;
}

}  // namespace soap::schedule
