#include "schedule/codegen.hpp"

#include <sstream>

namespace soap::schedule {

namespace {

std::string subscript(const ArrayAccess& acc, std::size_t component) {
  std::string out = acc.array;
  for (const Affine& idx : acc.components[component].index) {
    out += "[" + idx.str() + "]";
  }
  return out;
}

std::string statement_body(const Statement& st) {
  std::ostringstream os;
  os << subscript(st.output, 0) << " = f(";
  bool first = true;
  for (const ArrayAccess& in : st.inputs) {
    for (std::size_t c = 0; c < in.components.size(); ++c) {
      if (!first) os << ", ";
      os << subscript(in, c);
      first = false;
    }
  }
  os << ");";
  return os.str();
}

}  // namespace

std::string emit_c(const Statement& st) {
  std::ostringstream os;
  std::string indent;
  for (const Loop& l : st.domain.loops()) {
    os << indent << "for (int " << l.var << " = " << l.lower.str() << "; "
       << l.var << " < " << l.upper.str() << "; ++" << l.var << ")\n";
    indent += "  ";
  }
  os << indent << statement_body(st) << "\n";
  return os.str();
}

std::string emit_tiled_c(const Statement& st,
                         const std::map<std::string, long long>& tiles) {
  std::ostringstream os;
  std::string indent;
  const auto& loops = st.domain.loops();
  for (const Loop& l : loops) {
    long long t = 1;
    auto it = tiles.find(l.var);
    if (it != tiles.end()) t = it->second;
    os << indent << "for (int " << l.var << "t = " << l.lower.str() << "; "
       << l.var << "t < " << l.upper.str() << "; " << l.var << "t += " << t
       << ")\n";
    indent += "  ";
  }
  for (const Loop& l : loops) {
    long long t = 1;
    auto it = tiles.find(l.var);
    if (it != tiles.end()) t = it->second;
    os << indent << "for (int " << l.var << " = max(" << l.lower.str() << ", "
       << l.var << "t); " << l.var << " < min(" << l.upper.str() << ", "
       << l.var << "t + " << t << "); ++" << l.var << ")\n";
    indent += "  ";
  }
  os << indent << statement_body(st) << "\n";
  return os.str();
}

}  // namespace soap::schedule
