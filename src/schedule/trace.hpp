// Memory-access trace generation for (tiled) SOAP loop nests, feeding the
// cache simulator.  This stands in for running the generated code on real
// hardware: the paper's claim that the derived tilings are I/O optimal is
// demonstrated by simulated misses approaching the analytic lower bound.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "soap/statement.hpp"
#include "support/sym_map.hpp"

namespace soap::schedule {

struct Access {
  std::uint64_t address;  ///< unique id of (array, element)
  bool write = false;
};

class TraceBuilder {
 public:
  /// Appends the accesses of executing `st` over its full domain in the
  /// natural loop order.
  void append_natural(const Statement& st,
                      const std::map<std::string, long long>& params);

  /// Appends the accesses of a tiled execution: loops are split into
  /// tile/point loops; tile loops iterate outermost (same nesting order).
  void append_tiled(const Statement& st,
                    const std::map<std::string, long long>& params,
                    const std::map<std::string, long long>& tiles);

  [[nodiscard]] const std::vector<Access>& trace() const { return trace_; }
  [[nodiscard]] std::size_t distinct_addresses() const {
    return address_of_.size();
  }

 private:
  std::uint64_t address(const std::string& array,
                        const std::vector<long long>& idx);
  void execute(const Statement& st, const SymMap<Rational>& env);
  std::map<std::pair<std::string, std::vector<long long>>, std::uint64_t>
      address_of_;
  std::vector<Access> trace_;
};

}  // namespace soap::schedule
