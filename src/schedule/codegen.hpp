// Tiled-loop code generation: renders the paper's "compiler guideline"
// output — the tiled C loop nest induced by the optimal tile sizes.
#pragma once

#include <map>
#include <string>

#include "soap/statement.hpp"

namespace soap::schedule {

/// Emits a C-style tiled loop nest for the statement with the given tile
/// sizes (tile loops outermost, point loops clipped to the tile).
std::string emit_tiled_c(const Statement& st,
                         const std::map<std::string, long long>& tiles);

/// Emits the untiled reference loop nest.
std::string emit_c(const Statement& st);

}  // namespace soap::schedule
