#include "schedule/trace.hpp"

#include <functional>
#include <stdexcept>

namespace soap::schedule {

std::uint64_t TraceBuilder::address(const std::string& array,
                                    const std::vector<long long>& idx) {
  auto [it, inserted] = address_of_.try_emplace(
      {array, idx}, static_cast<std::uint64_t>(address_of_.size()));
  return it->second;
}

void TraceBuilder::execute(const Statement& st, const SymMap<Rational>& env) {
  auto eval_component = [&](const AccessComponent& comp) {
    std::vector<long long> idx;
    idx.reserve(comp.index.size());
    for (const Affine& a : comp.index) {
      idx.push_back(static_cast<long long>(a.eval(env).floor()));
    }
    return idx;
  };
  for (const ArrayAccess& in : st.inputs) {
    for (const AccessComponent& comp : in.components) {
      trace_.push_back({address(in.array, eval_component(comp)), false});
    }
  }
  trace_.push_back(
      {address(st.output.array, eval_component(st.output.components[0])),
       true});
}

void TraceBuilder::append_natural(
    const Statement& st, const std::map<std::string, long long>& params) {
  SymMap<Rational> env;
  for (const auto& [k, v] : params) env.set(intern_symbol(k), Rational(v));
  std::vector<SymId> loop_ids;
  loop_ids.reserve(st.domain.loops().size());
  for (const Loop& loop : st.domain.loops()) {
    loop_ids.push_back(intern_symbol(loop.var));
  }
  std::function<void(std::size_t)> nest = [&](std::size_t depth) {
    if (depth == st.domain.loops().size()) {
      execute(st, env);
      return;
    }
    const Loop& loop = st.domain.loops()[depth];
    long long lo = static_cast<long long>(loop.lower.eval(env).floor());
    long long hi = static_cast<long long>(loop.upper.eval(env).floor());
    for (long long v = lo; v < hi; ++v) {
      env[loop_ids[depth]] = Rational(v);
      nest(depth + 1);
    }
    env.erase(loop_ids[depth]);
  };
  nest(0);
}

void TraceBuilder::append_tiled(const Statement& st,
                                const std::map<std::string, long long>& params,
                                const std::map<std::string, long long>& tiles) {
  SymMap<Rational> env;
  for (const auto& [k, v] : params) env.set(intern_symbol(k), Rational(v));
  const auto& loops = st.domain.loops();
  const std::size_t depth = loops.size();
  std::vector<SymId> loop_ids;
  loop_ids.reserve(depth);
  for (const Loop& loop : loops) loop_ids.push_back(intern_symbol(loop.var));
  // Tile origins per level, then points within the tile.  Bounds may depend
  // on outer iteration variables, so origins are enumerated against the
  // loosest bound and empty tiles simply produce no executions.
  std::vector<long long> tile_size(depth, 1);
  for (std::size_t i = 0; i < depth; ++i) {
    auto it = tiles.find(loops[i].var);
    tile_size[i] = it == tiles.end() ? 1 : std::max<long long>(1, it->second);
  }
  std::vector<long long> origin(depth, 0);

  std::function<void(std::size_t)> point_nest = [&](std::size_t d) {
    if (d == depth) {
      execute(st, env);
      return;
    }
    long long lo = static_cast<long long>(loops[d].lower.eval(env).floor());
    long long hi = static_cast<long long>(loops[d].upper.eval(env).floor());
    long long from = std::max(lo, origin[d]);
    long long to = std::min(hi, origin[d] + tile_size[d]);
    for (long long v = from; v < to; ++v) {
      env[loop_ids[d]] = Rational(v);
      point_nest(d + 1);
    }
    env.erase(loop_ids[d]);
  };

  // Global bounds for origins: evaluate with outer variables unset is not
  // possible for dependent bounds, so origins span the parameter-level hull:
  // lower bound with all variables at 0 and upper with all at 0 as well
  // (affine bounds in the corpus only reference parameters and outer loop
  // variables; the point loops re-clip exactly).
  std::function<void(std::size_t)> tile_nest = [&](std::size_t d) {
    if (d == depth) {
      point_nest(0);
      return;
    }
    SymMap<Rational> hull = env;
    for (std::size_t i = 0; i < d; ++i) {
      // Outer tile origins are fixed; use the last point of the tile so
      // upward-dependent bounds (range(0, i)) are not truncated.
      hull[loop_ids[i]] = Rational(origin[i] + tile_size[i] - 1);
    }
    for (std::size_t i = d; i < depth; ++i) {
      if (!hull.contains(loop_ids[i])) hull[loop_ids[i]] = Rational(0);
    }
    long long lo = static_cast<long long>(loops[d].lower.eval(hull).floor());
    long long hi = static_cast<long long>(loops[d].upper.eval(hull).floor());
    // Dependent bounds can start below the hull lower bound; widen downward
    // to 0 defensively.
    lo = std::min<long long>(lo, 0);
    for (long long o = lo; o < hi; o += tile_size[d]) {
      origin[d] = o;
      tile_nest(d + 1);
    }
  };
  tile_nest(0);
}

}  // namespace soap::schedule
