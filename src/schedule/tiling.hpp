// Concrete tile sizes from the analytic optimum (Section 4.5: substituting
// X0 back into |D_t|(X) yields the optimal loop tiling).
#pragma once

#include <map>
#include <string>

#include "bounds/result.hpp"
#include "soap/statement.hpp"

namespace soap::schedule {

/// tile_v = clamp(round(kappa_v * S^{a_v}), 1, extent_v) for every loop
/// variable of the statement, with extents evaluated at `params`.
std::map<std::string, long long> concrete_tiles(
    const Statement& st, const bounds::IoLowerBound& bound, long long S,
    const std::map<std::string, long long>& params);

}  // namespace soap::schedule
