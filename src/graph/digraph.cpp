#include "graph/digraph.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace soap::graph {

void Digraph::add_edge(std::size_t u, std::size_t v) {
  if (u >= size() || v >= size())
    throw std::out_of_range("Digraph::add_edge: bad vertex");
  out_[u].push_back(v);
  in_[v].push_back(u);
}

bool Digraph::has_edge(std::size_t u, std::size_t v) const {
  return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
}

std::vector<std::size_t> Digraph::topological_order() const {
  std::vector<std::size_t> indeg(size(), 0);
  for (std::size_t v = 0; v < size(); ++v) indeg[v] = in_[v].size();
  std::vector<std::size_t> queue;
  for (std::size_t v = 0; v < size(); ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::vector<std::size_t> order;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    std::size_t v = queue[head];
    order.push_back(v);
    for (std::size_t c : out_[v]) {
      if (--indeg[c] == 0) queue.push_back(c);
    }
  }
  if (order.size() != size()) {
    throw std::logic_error("Digraph::topological_order: graph has a cycle");
  }
  return order;
}

std::vector<bool> Digraph::reachable_from(
    const std::vector<std::size_t>& sources) const {
  std::vector<bool> seen(size(), false);
  std::vector<std::size_t> stack = sources;
  for (std::size_t s : stack) seen[s] = true;
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t c : out_[v]) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return seen;
}

bool Digraph::blocks_have_cycle(const std::vector<int>& block_of) const {
  // Build the condensation over non-negative blocks and look for a cycle.
  int max_block = -1;
  for (int b : block_of) max_block = std::max(max_block, b);
  if (max_block < 0) return false;
  std::set<std::pair<int, int>> edges;
  for (std::size_t u = 0; u < size(); ++u) {
    if (block_of[u] < 0) continue;
    for (std::size_t v : out_[u]) {
      if (block_of[v] < 0 || block_of[u] == block_of[v]) continue;
      edges.insert({block_of[u], block_of[v]});
    }
  }
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(max_block) + 1);
  std::vector<int> indeg(static_cast<std::size_t>(max_block) + 1, 0);
  for (const auto& [u, v] : edges) {
    adj[static_cast<std::size_t>(u)].push_back(v);
    ++indeg[static_cast<std::size_t>(v)];
  }
  std::vector<int> queue;
  for (std::size_t b = 0; b <= static_cast<std::size_t>(max_block); ++b) {
    if (indeg[b] == 0) queue.push_back(static_cast<int>(b));
  }
  std::size_t seen = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    ++seen;
    for (int c : adj[static_cast<std::size_t>(queue[head])]) {
      if (--indeg[static_cast<std::size_t>(c)] == 0) queue.push_back(c);
    }
  }
  return seen != static_cast<std::size_t>(max_block) + 1;
}

}  // namespace soap::graph
