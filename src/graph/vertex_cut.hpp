// Minimum vertex cuts via vertex splitting: the size of a minimum dominator
// set Dom_min(H) (Section 2.2) equals the minimum number of vertices whose
// removal disconnects the CDAG inputs from H, computed as a unit-capacity
// max-flow on the split graph.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace soap::graph {

/// Size of the smallest vertex set intersecting every path from `sources`
/// to `targets` (vertices in sources/targets may themselves be chosen:
/// standard closed vertex cut, matching the paper's dominator definition
/// where Dom(H) may include vertices of H or inputs).
long long min_vertex_cut(const Digraph& g,
                         const std::vector<std::size_t>& sources,
                         const std::vector<std::size_t>& targets);

/// One minimum dominator set (vertex indices), not just its size.
std::vector<std::size_t> min_vertex_cut_set(
    const Digraph& g, const std::vector<std::size_t>& sources,
    const std::vector<std::size_t>& targets);

}  // namespace soap::graph
