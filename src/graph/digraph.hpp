// Small dense-id digraph used by the CDAG machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soap::graph {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n) : out_(n), in_(n) {}

  std::size_t add_vertex() {
    out_.emplace_back();
    in_.emplace_back();
    return out_.size() - 1;
  }
  void add_edge(std::size_t u, std::size_t v);

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& children(std::size_t v) const {
    return out_[v];
  }
  [[nodiscard]] const std::vector<std::size_t>& parents(std::size_t v) const {
    return in_[v];
  }
  [[nodiscard]] bool has_edge(std::size_t u, std::size_t v) const;

  /// Topological order; throws std::logic_error on cycles.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// Vertices reachable from `sources` (following edges forward).
  [[nodiscard]] std::vector<bool> reachable_from(
      const std::vector<std::size_t>& sources) const;

  /// True if there is a cycle among the given blocks when contracting each
  /// block to a super-vertex (used by the X-partition acyclicity check).
  [[nodiscard]] bool blocks_have_cycle(
      const std::vector<int>& block_of) const;

 private:
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
};

}  // namespace soap::graph
