#include "graph/vertex_cut.hpp"

#include "graph/maxflow.hpp"

namespace soap::graph {

namespace {

constexpr long long kInf = 1LL << 60;

// Split graph layout: vertex v -> v_in = 2v, v_out = 2v + 1; super source
// s = 2n, super sink t = 2n + 1.
MaxFlow build_split(const Digraph& g, const std::vector<std::size_t>& sources,
                    const std::vector<std::size_t>& targets) {
  const std::size_t n = g.size();
  MaxFlow mf(2 * n + 2);
  for (std::size_t v = 0; v < n; ++v) {
    mf.add_edge(2 * v, 2 * v + 1, 1);  // unit vertex capacity
    for (std::size_t c : g.children(v)) {
      mf.add_edge(2 * v + 1, 2 * c, kInf);
    }
  }
  for (std::size_t s : sources) mf.add_edge(2 * n, 2 * s, kInf);
  for (std::size_t t : targets) mf.add_edge(2 * t + 1, 2 * n + 1, kInf);
  return mf;
}

}  // namespace

long long min_vertex_cut(const Digraph& g,
                         const std::vector<std::size_t>& sources,
                         const std::vector<std::size_t>& targets) {
  MaxFlow mf = build_split(g, sources, targets);
  return mf.solve(2 * g.size(), 2 * g.size() + 1);
}

std::vector<std::size_t> min_vertex_cut_set(
    const Digraph& g, const std::vector<std::size_t>& sources,
    const std::vector<std::size_t>& targets) {
  MaxFlow mf = build_split(g, sources, targets);
  mf.solve(2 * g.size(), 2 * g.size() + 1);
  std::vector<bool> side = mf.min_cut_side(2 * g.size());
  std::vector<std::size_t> cut;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (side[2 * v] && !side[2 * v + 1]) cut.push_back(v);
  }
  return cut;
}

}  // namespace soap::graph
