#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace soap::graph {

void MaxFlow::add_edge(std::size_t u, std::size_t v, long long capacity) {
  edges_.push_back({v, capacity, head_[u]});
  head_[u] = static_cast<int>(edges_.size()) - 1;
  edges_.push_back({u, 0, head_[v]});
  head_[v] = static_cast<int>(edges_.size()) - 1;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  level_.assign(head_.size(), -1);
  std::queue<std::size_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    std::size_t v = q.front();
    q.pop();
    for (int e = head_[v]; e != -1; e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (ed.cap > 0 && level_[ed.to] < 0) {
        level_[ed.to] = level_[v] + 1;
        q.push(ed.to);
      }
    }
  }
  return level_[t] >= 0;
}

long long MaxFlow::dfs(std::size_t v, std::size_t t, long long pushed) {
  if (v == t) return pushed;
  for (int& e = iter_[v]; e != -1;
       e = edges_[static_cast<std::size_t>(e)].next) {
    Edge& ed = edges_[static_cast<std::size_t>(e)];
    if (ed.cap > 0 && level_[ed.to] == level_[v] + 1) {
      long long got = dfs(ed.to, t, std::min(pushed, ed.cap));
      if (got > 0) {
        ed.cap -= got;
        edges_[static_cast<std::size_t>(e ^ 1)].cap += got;
        return got;
      }
    }
  }
  return 0;
}

long long MaxFlow::solve(std::size_t s, std::size_t t) {
  long long flow = 0;
  while (bfs(s, t)) {
    iter_ = head_;
    while (long long pushed =
               dfs(s, t, std::numeric_limits<long long>::max())) {
      flow += pushed;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::min_cut_side(std::size_t s) const {
  std::vector<bool> seen(head_.size(), false);
  std::vector<std::size_t> stack = {s};
  seen[s] = true;
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (int e = head_[v]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (ed.cap > 0 && !seen[ed.to]) {
        seen[ed.to] = true;
        stack.push_back(ed.to);
      }
    }
  }
  return seen;
}

}  // namespace soap::graph
