// Dinic max-flow on unit/integer capacities; substrate for minimum vertex
// cuts (minimum dominator sets, Section 2.2 of the paper).
#pragma once

#include <cstdint>
#include <vector>

namespace soap::graph {

class MaxFlow {
 public:
  explicit MaxFlow(std::size_t n) : head_(n, -1) {}

  /// Adds a directed edge u -> v with the given capacity.
  void add_edge(std::size_t u, std::size_t v, long long capacity);

  /// Computes the max flow from s to t (Dinic).
  long long solve(std::size_t s, std::size_t t);

  /// After solve(): vertices reachable from s in the residual graph
  /// (the s-side of a minimum cut).
  [[nodiscard]] std::vector<bool> min_cut_side(std::size_t s) const;

 private:
  struct Edge {
    std::size_t to;
    long long cap;
    int next;
  };
  bool bfs(std::size_t s, std::size_t t);
  long long dfs(std::size_t v, std::size_t t, long long pushed);

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace soap::graph
