#include "symbolic/expr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "support/arena.hpp"
#include "support/cancel.hpp"

namespace soap::sym {

namespace {

int kind_rank(Kind k) { return static_cast<int>(k); }

int cmp_rational(const Rational& a, const Rational& b) {
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

std::size_t hash_mix(std::size_t h, std::size_t v) {
  // boost::hash_combine-style mixing.
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

std::size_t rational_hash(const Rational& r) {
  auto fold = [](int128 v) {
    auto u = static_cast<unsigned __int128>(v);
    return static_cast<std::size_t>(u) ^
           static_cast<std::size_t>(u >> 64);
  };
  return hash_mix(fold(r.num()), fold(r.den()));
}

/// Content hash of a node whose operands are already interned (their ids are
/// final).  Stored in Node::hash; this is what std::hash<Expr> returns.
std::size_t content_hash(const Node& n) {
  std::size_t h = hash_mix(0x517cc1b727220a95ULL,
                           static_cast<std::size_t>(n.kind));
  switch (n.kind) {
    case Kind::kConst:
      return hash_mix(h, rational_hash(n.value));
    case Kind::kSymbol:
      return hash_mix(h, static_cast<std::size_t>(n.sym.value));
    case Kind::kPow:
      h = hash_mix(h, static_cast<std::size_t>(n.operands[0].id()));
      return hash_mix(h, rational_hash(n.exponent));
    default:
      for (const Expr& o : n.operands) {
        h = hash_mix(h, static_cast<std::size_t>(o.id()));
      }
      return h;
  }
}

/// Structural equality of two nodes given interned (pointer-comparable)
/// operands.  This is the intern table's collision check.
bool content_equal(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kConst:
      return a.value == b.value;
    case Kind::kSymbol:
      return a.sym == b.sym;
    case Kind::kPow:
      return a.exponent == b.exponent &&
             &a.operands[0].node() == &b.operands[0].node();
    default: {
      if (a.operands.size() != b.operands.size()) return false;
      for (std::size_t i = 0; i < a.operands.size(); ++i) {
        if (&a.operands[i].node() != &b.operands[i].node()) return false;
      }
      return true;
    }
  }
}

/// The hash-consing table, sharded by the content hash: each shard owns a
/// reader/writer lock, its slice of the weak bucket map, and an arena that
/// pools the node storage *and* the shared_ptr control blocks.  Read-mostly
/// lookups (re-interning an existing canonical form) take the shared lock;
/// only first-time insertions and evictions take the exclusive lock, so
/// concurrent make_* calls from different threads stop serializing on one
/// global mutex.
///
/// Entries are weak: a node is evicted by its deleter when the last Expr
/// referencing it dies, so each shard never grows beyond the live working
/// set (the arenas recycle the freed slots).  Buckets are keyed by the
/// content hash and hold (raw pointer, weak_ptr) pairs; the raw pointer lets
/// the deleter erase exactly its own entry even if an equal-content node was
/// re-interned while this one was dying.
struct InternShard {
  std::shared_mutex mu;
  std::unordered_map<std::size_t,
                     std::vector<std::pair<const Node*,
                                           std::weak_ptr<const Node>>>>
      buckets;
  // Leaf lock discipline: the arena's internal mutex may be taken while
  // holding `mu` (control-block allocation during insertion) but never the
  // other way around, and node destruction runs with no locks held.
  support::Arena arena;
};

constexpr std::size_t kShardBits = 6;
constexpr std::size_t kNumShards = 1u << kShardBits;  // 64

struct ExprInternTable {
  std::atomic<std::uint64_t> next_id{1};
  InternShard shards[kNumShards];
};

// Leaked on purpose: Exprs held in static storage (test fixtures, golden
// rows) may be destroyed after any static table would be, and their deleters
// must still find the table.  The pointer stays reachable, so LeakSanitizer
// does not flag it (the shard arenas leak with it, equally reachable).
ExprInternTable& expr_table() {
  static auto* t = new ExprInternTable();
  return *t;
}

/// Shard selection uses the high hash bits; the per-shard bucket map
/// consumes the low bits, so the two layers of hashing stay independent.
InternShard& shard_for(std::size_t hash) {
  return expr_table().shards[hash >> (8 * sizeof(std::size_t) - kShardBits)];
}

/// Set by intern_node around the owning shared_ptr's construction, which
/// runs under the shard's exclusive lock.  If control-block allocation
/// throws, the shared_ptr constructor is required to invoke the deleter on
/// the brand-new node — a node that was never published to any bucket and
/// whose shard lock is still held by this thread.  The deleter detects that
/// exact node here and parks it (intern_node finishes the teardown outside
/// the lock) instead of deadlocking on the shard mutex or destroying
/// operands under it.
thread_local const Node* t_interning = nullptr;

struct NodeDeleter {
  void operator()(const Node* n) const {
    if (n == t_interning) {
      t_interning = nullptr;
      return;
    }
    const std::size_t hash = n->hash;  // survives ~Node below
    InternShard& sh = shard_for(hash);
    {
      std::unique_lock<std::shared_mutex> lock(sh.mu);
      auto it = sh.buckets.find(hash);
      if (it != sh.buckets.end()) {
        auto& vec = it->second;
        for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
          if (vit->first == n) {
            vec.erase(vit);
            break;
          }
        }
        if (vec.empty()) sh.buckets.erase(it);
      }
    }
    // Outside the lock: destroying operands may recursively run deleters
    // (each taking its own shard lock, never nested under ours).
    auto* m = const_cast<Node*>(n);
    m->~Node();
    sh.arena.deallocate(m, sizeof(Node), alignof(Node));
  }
};

/// Fills the per-node symbol-set cache (sorted distinct SymIds + bloom mask)
/// from the node's own symbol / its operands' caches.
void fill_symbol_cache(Node* n) {
  if (n->kind == Kind::kSymbol) {
    n->symbol_ids = {n->sym};
    n->sym_mask = 1ULL << (n->sym.value & 63u);
    return;
  }
  if (n->operands.empty()) return;  // constants
  std::uint64_t size = 1;
  for (const Expr& o : n->operands) size += o.node().tree_size;
  n->tree_size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(size, 0xffffffffu));
  if (n->operands.size() == 1) {
    const Node& o = n->operands[0].node();
    n->symbol_ids = o.symbol_ids;
    n->sym_mask = o.sym_mask;
    return;
  }
  support::SmallVec<SymId, 32> merged;  // inline: SOAP kernels stay tiny
  for (const Expr& o : n->operands) {
    for (SymId id : o.symbol_ids()) merged.push_back(id);
    n->sym_mask |= o.node().sym_mask;
  }
  std::sort(merged.begin(), merged.end());
  auto last = std::unique(merged.begin(), merged.end());
  n->symbol_ids.assign(merged.begin(), last);
}

/// Memoization pays for itself only when an expression actually shares
/// subtrees; below this (tree-node) size the per-call hash-map costs more
/// than the walk it saves, so the rewriters run unmemoized.
constexpr std::uint32_t kMemoThreshold = 64;

NodePtr intern_node(Node&& n) {
  n.hash = content_hash(n);
  InternShard& sh = shard_for(n.hash);
  // Wide composites are almost always freshly canonicalized intermediates
  // (each step of an incremental sum/product fold makes a new one), so the
  // read-locked probe would miss and the work would repeat under the
  // exclusive lock.  Skip straight to the exclusive probe-and-insert for
  // them; the read-mostly hit traffic — constants, symbols, powers, small
  // composites — keeps the concurrent shared-lock fast path.
  const bool likely_fresh = n.operands.size() > 4;
  if (!likely_fresh) {
    // Read-mostly fast path: re-interning an existing canonical form only
    // takes the shared lock.
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    auto it = sh.buckets.find(n.hash);
    if (it != sh.buckets.end()) {
      for (const auto& [raw, weak] : it->second) {
        if (content_equal(*raw, n)) {
          if (NodePtr sp = weak.lock()) return sp;
          // Expired: the equal node is mid-destruction; insert a fresh copy
          // below (its deleter erases by pointer, so the entries can't mix).
        }
      }
    }
  }
  // Probe missed: this node will (almost certainly) be interned, so build
  // its symbol cache now, outside any lock.  Hit-path interns — the common
  // case in steady-state analysis — never pay for it.
  fill_symbol_cache(&n);
  std::unique_lock<std::shared_mutex> lock(sh.mu);
  auto& vec = sh.buckets[n.hash];
  // Re-scan under the exclusive lock: another thread may have inserted the
  // same canonical form between the two lock scopes.
  for (const auto& [raw, weak] : vec) {
    if (content_equal(*raw, n)) {
      if (NodePtr sp = weak.lock()) return sp;
    }
  }
  n.id = expr_table().next_id.fetch_add(1, std::memory_order_relaxed);
  void* slot = nullptr;
  try {
    // Reserving the bucket slot up front makes the publish step below
    // nofail: once the shared_ptr owns the node, nothing on this path can
    // throw while we still hold the lock its deleter would need.
    vec.reserve(vec.size() + 1);
    slot = sh.arena.allocate(sizeof(Node), alignof(Node));
  } catch (...) {
    if (vec.empty()) sh.buckets.erase(n.hash);
    throw;  // out of memory before the node existed; table unchanged
  }
  const Node* p = new (slot) Node(std::move(n));
  NodePtr sp;
  t_interning = p;
  try {
    // The control block is pooled in the same shard arena (leaf lock, see
    // InternShard); the custom deleter runs the eviction protocol above.
    sp = NodePtr(p, NodeDeleter{},
                 support::ArenaAllocator<const Node>(&sh.arena));
  } catch (...) {
    // Control-block allocation failed.  The shared_ptr constructor already
    // invoked the deleter, which parked the never-published node (see
    // t_interning above); finish its teardown outside the lock, where
    // operand destruction may recurse into other shards.
    t_interning = nullptr;
    if (vec.empty()) sh.buckets.erase(n.hash);
    lock.unlock();
    auto* m = const_cast<Node*>(p);
    m->~Node();
    sh.arena.deallocate(m, sizeof(Node), alignof(Node));
    throw;
  }
  t_interning = nullptr;
  vec.emplace_back(p, std::weak_ptr<const Node>(sp));
  return sp;
}

NodePtr intern_const_slow(const Rational& r) {
  Node n;
  n.kind = Kind::kConst;
  n.value = r;
  return intern_node(std::move(n));
}

NodePtr intern_const(const Rational& r) {
  // The tiny integers dominate constant traffic (every operator- interns -1,
  // every division interns an exponent of -1's base, coefficients start at
  // 1/2); pinning them skips the whole table round-trip.  Function-local
  // statics keep exactly these four nodes alive for the process lifetime.
  if (r.is_integer()) {
    switch (static_cast<int>(r.num() == 0   ? 0
                             : r.num() == 1 ? 1
                             : r.num() == 2 ? 2
                             : r.num() == -1 ? 3
                                             : 4)) {
      case 0: {
        static const NodePtr n = intern_const_slow(Rational(0));
        return n;
      }
      case 1: {
        static const NodePtr n = intern_const_slow(Rational(1));
        return n;
      }
      case 2: {
        static const NodePtr n = intern_const_slow(Rational(2));
        return n;
      }
      case 3: {
        static const NodePtr n = intern_const_slow(Rational(-1));
        return n;
      }
      default:
        break;
    }
  }
  return intern_const_slow(r);
}

NodePtr intern_sym(SymId id) {
  Node n;
  n.kind = Kind::kSymbol;
  n.sym = id;
  n.sym_name = &symbol_name(id);
  return intern_node(std::move(n));
}

NodePtr intern_composite(Kind kind, ExprVec operands,
                         const Rational& exponent = Rational(0)) {
  Node n;
  n.kind = kind;
  n.operands = std::move(operands);
  n.exponent = exponent;
  return intern_node(std::move(n));
}

/// Extracts from |v| the largest factor that is a perfect q-th power:
/// v = root^q * rest.  Trial division; constants arising in SOAP analysis
/// are small (offsets, statement counts).
void extract_qth_power(int128 v, long long q, int128* root, int128* rest) {
  *root = 1;
  *rest = 1;
  for (int128 p = 2; p * p <= v && p < 100000; ++p) {
    int mult = 0;
    while (v % p == 0) {
      v /= p;
      ++mult;
    }
    for (int i = 0; i < mult / q; ++i) *root = mul_checked(*root, p);
    for (int i = 0; i < mult % static_cast<int>(q); ++i)
      *rest = mul_checked(*rest, p);
  }
  *rest = mul_checked(*rest, v);
}

}  // namespace

namespace detail {
/// expr.cpp-internal privilege bridge: lets file-local helpers wrap interned
/// nodes into Exprs without widening the public constructor surface.
class ExprFactory {
 public:
  static Expr wrap(NodePtr n) { return Expr(std::move(n)); }
};
}  // namespace detail

Expr::Expr() {
  static const NodePtr zero = intern_const(Rational(0));
  node_ = zero;
}
Expr::Expr(long long v) : Expr(Rational(v)) {}
Expr::Expr(const Rational& r) : node_(intern_const(r)) {}

Expr Expr::symbol(const std::string& name) {
  return Expr(intern_sym(intern_symbol(name)));
}

Expr Expr::symbol(SymId id) { return Expr(intern_sym(id)); }

const Rational& Expr::value() const {
  if (!is_const()) throw std::logic_error("Expr::value on non-constant");
  return node_->value;
}

const std::string& Expr::name() const {
  if (kind() != Kind::kSymbol) throw std::logic_error("Expr::name on non-symbol");
  return *node_->sym_name;
}

SymId Expr::sym_id() const {
  if (kind() != Kind::kSymbol)
    throw std::logic_error("Expr::sym_id on non-symbol");
  return node_->sym;
}

int Expr::compare(const Expr& a, const Expr& b) {
  // Hash-consing: equality is pointer identity, so distinct nodes always
  // find a structural difference below; shared subtrees short-circuit here.
  if (a.node_ == b.node_) return 0;
  if (a.kind() != b.kind()) return kind_rank(a.kind()) - kind_rank(b.kind());
  switch (a.kind()) {
    case Kind::kConst:
      return cmp_rational(a.value(), b.value());
    case Kind::kSymbol:
      return a.name().compare(b.name());
    case Kind::kPow: {
      int c = compare(a.operands()[0], b.operands()[0]);
      if (c != 0) return c;
      return cmp_rational(a.exponent(), b.exponent());
    }
    default: {
      const auto oa = a.operands();
      const auto ob = b.operands();
      for (std::size_t i = 0; i < std::min(oa.size(), ob.size()); ++i) {
        int c = compare(oa[i], ob[i]);
        if (c != 0) return c;
      }
      return static_cast<int>(oa.size()) - static_cast<int>(ob.size());
    }
  }
}

namespace {

bool expr_less(const Expr& a, const Expr& b) {
  return Expr::compare(a, b) < 0;
}

}  // namespace

std::pair<Rational, Expr> split_coefficient(const Expr& term) {
  if (term.is_const()) return {term.value(), Expr(1)};
  if (term.kind() == Kind::kMul) {
    const auto ops = term.operands();
    if (!ops.empty() && ops[0].is_const()) {
      if (ops.size() == 2) return {ops[0].value(), ops[1]};
      // The factors of a canonical Mul are already canonical and sorted, so
      // the core can be interned directly instead of re-canonicalized
      // through make_mul — this runs for every term of every sum rebuild.
      ExprVec rest(ops.begin() + 1, ops.end());
      return {ops[0].value(),
              Expr(intern_composite(Kind::kMul, std::move(rest)))};
    }
  }
  return {Rational(1), term};
}

namespace {

/// coeff*core in canonical Mul layout without re-canonicalizing through
/// make_mul: cores produced by split_coefficient are const-free with sorted
/// factors, so prepending the constant reproduces make_mul's output exactly.
/// Requires coeff not in {0, 1} and core non-const.
Expr scale_core(const Rational& coeff, const Expr& core) {
  if (core.kind() == Kind::kMul) {
    ExprVec fs;
    fs.reserve(core.operands().size() + 1);
    fs.emplace_back(coeff);
    for (const Expr& f : core.operands()) fs.push_back(f);
    return detail::ExprFactory::wrap(
        intern_composite(Kind::kMul, std::move(fs)));
  }
  return detail::ExprFactory::wrap(
      intern_composite(Kind::kMul, {Expr(coeff), core}));
}

/// True when canonical summand `t` (non-Add, non-Const) has core `core`,
/// i.e. split_coefficient(t).second == core.  Pointer comparisons only.
bool term_has_core(const Expr& t, const Expr& core) {
  if (t == core) return true;  // coefficient 1
  if (t.kind() != Kind::kMul) return false;
  const auto ops = t.operands();
  if (!ops[0].is_const()) return false;
  if (core.kind() == Kind::kMul) {
    const auto cops = core.operands();
    if (ops.size() != cops.size() + 1) return false;
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (ops[i + 1] != cops[i]) return false;
    }
    return true;
  }
  return ops.size() == 2 && ops[1] == core;
}

/// Fast path for the hot incremental pattern (canonical sum) + (one term):
/// merges into the existing sorted operand list — pointer-equality like-term
/// search, one sorted insert — instead of rebuilding the like-term map over
/// all summands (which made repeated `sum = sum + term` quadratic in
/// allocations and hashing).
Expr add_one_term(const Expr& sum, const Expr& t) {
  const auto sops = sum.operands();
  ExprVec out(sops.begin(), sops.end());
  if (t.is_const()) {
    if (!t.value().is_zero()) {
      if (out[0].is_const()) {
        Rational c = out[0].value() + t.value();
        if (c.is_zero()) {
          out.erase(out.begin());
        } else {
          out[0] = Expr(c);
        }
      } else {
        out.insert(out.begin(), t);
      }
    }
  } else {
    auto [coeff, core] = split_coefficient(t);
    std::size_t like = out.size();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (term_has_core(out[i], core)) {
        like = i;
        break;
      }
    }
    if (like < out.size()) {
      Rational c = out[like] == core ? Rational(1)
                                     : out[like].operands()[0].value();
      c += coeff;
      out.erase(out.begin() + like);
      coeff = c;
    }
    if (!coeff.is_zero()) {
      Expr term = coeff.is_one() ? core : scale_core(coeff, core);
      out.insert(std::lower_bound(out.begin(), out.end(), term, expr_less),
                 term);
    }
  }
  if (out.empty()) return Expr(0);
  if (out.size() == 1) return out[0];
  return detail::ExprFactory::wrap(intern_composite(Kind::kAdd, std::move(out)));
}

}  // namespace

Expr make_add(ExprVec terms) {
  if (terms.size() == 2) {
    // operator+/operator- funnel here; merging one term into an existing
    // canonical sum is the analysis hot path (bound assembly, Faulhaber).
    if (terms[0].kind() == Kind::kAdd && terms[1].kind() != Kind::kAdd) {
      return add_one_term(terms[0], terms[1]);
    }
    if (terms[1].kind() == Kind::kAdd && terms[0].kind() != Kind::kAdd) {
      return add_one_term(terms[1], terms[0]);
    }
  }
  // Flatten, fold constants, combine like terms.  The like-term map is a
  // flat vector probed linearly with pointer equality: real sums have few
  // distinct cores, and the flat layout skips the per-entry heap nodes a
  // hash map would allocate on this hot path.
  Rational const_sum = 0;
  support::SmallVec<std::pair<Expr, Rational>, 8> by_core;
  auto accumulate = [&by_core](const Expr& core, const Rational& coeff) {
    for (auto& [c, acc] : by_core) {
      if (c == core) {
        acc += coeff;
        return;
      }
    }
    by_core.emplace_back(core, coeff);
  };
  ExprVec work = std::move(terms);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Expr t = work[i];  // by value: work may reallocate below
    if (t.kind() == Kind::kAdd) {
      for (const Expr& sub : t.operands()) work.push_back(sub);
      continue;
    }
    if (t.is_const()) {
      const_sum += t.value();
      continue;
    }
    auto [coeff, core] = split_coefficient(t);
    accumulate(core, coeff);
  }
  ExprVec out;
  if (!const_sum.is_zero()) out.emplace_back(const_sum);
  for (const auto& [core, coeff] : by_core) {
    if (coeff.is_zero()) continue;
    out.push_back(coeff.is_one() ? core : scale_core(coeff, core));
  }
  if (out.empty()) return Expr(0);
  if (out.size() == 1) return out[0];
  std::sort(out.begin(), out.end(), expr_less);
  return Expr(intern_composite(Kind::kAdd, std::move(out)));
}

Expr make_mul(ExprVec factors) {
  Rational const_prod = 1;
  // base -> accumulated exponent.  Flat like-factor map, linear pointer-
  // equality probes: products have a handful of distinct bases and the flat
  // layout avoids hash-map node allocations on this hot path.
  support::SmallVec<std::pair<Expr, Rational>, 8> by_base;
  auto accumulate = [&by_base](const Expr& base, const Rational& e) {
    for (auto& [b, acc] : by_base) {
      if (b == base) {
        acc += e;
        return;
      }
    }
    by_base.emplace_back(base, e);
  };
  ExprVec work = std::move(factors);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Expr f = work[i];  // by value: work may reallocate below
    if (f.kind() == Kind::kMul) {
      for (const Expr& sub : f.operands()) work.push_back(sub);
      continue;
    }
    if (f.is_const()) {
      const_prod *= f.value();
      continue;
    }
    if (f.kind() == Kind::kPow) {
      accumulate(f.operands()[0], f.exponent());
    } else {
      accumulate(f, Rational(1));
    }
  }
  if (const_prod.is_zero()) return Expr(0);
  // Combine constant radicals with equal fractional exponents:
  // sqrt(2)*sqrt(3) -> sqrt(6).  Group Const bases by exponent and multiply
  // the radicands.
  {
    std::map<Rational, Rational, decltype([](const Rational& a,
                                             const Rational& b) {
               return a < b;
             })>
        radicals;
    for (std::size_t i = 0; i < by_base.size();) {
      if (by_base[i].first.is_const() && !by_base[i].second.is_integer()) {
        Rational& acc = radicals.try_emplace(by_base[i].second, Rational(1))
                            .first->second;
        acc *= by_base[i].first.value();
        by_base.erase(by_base.begin() + i);
      } else {
        ++i;
      }
    }
    for (const auto& [e, radicand] : radicals) {
      accumulate(Expr(radicand), e);
    }
  }
  ExprVec out;
  for (const auto& [base, e] : by_base) {
    if (e.is_zero()) continue;
    Expr p = pow(base, e);  // may fold (e.g. const bases, nested pows)
    if (p.is_const()) {
      const_prod *= p.value();
    } else if (p.kind() == Kind::kMul) {
      // pow() of a constant can return c * radical; splice its factors in.
      for (const Expr& sub : p.operands()) {
        if (sub.is_const()) {
          const_prod *= sub.value();
        } else {
          out.push_back(sub);
        }
      }
    } else {
      out.push_back(p);
    }
  }
  if (out.empty()) return Expr(const_prod);
  std::sort(out.begin(), out.end(), expr_less);
  if (!const_prod.is_one()) {
    out.insert(out.begin(), Expr(const_prod));
  }
  if (out.size() == 1) return out[0];
  return Expr(intern_composite(Kind::kMul, std::move(out)));
}

Expr pow(const Expr& base, const Rational& e) {
  if (e.is_zero()) return Expr(1);
  if (e.is_one()) return base;
  if (base.is_one()) return Expr(1);
  if (base.is_zero()) {
    if (e.is_negative()) throw std::domain_error("pow: 0^negative");
    return Expr(0);
  }
  if (base.is_const()) {
    const Rational& v = base.value();
    if (e.is_integer()) return Expr(v.pow(e.to_int()));
    // v^(p/q): fold the integer power, then pull out perfect q-th roots.
    long long p = static_cast<long long>(e.num());
    long long q = static_cast<long long>(e.den());
    if (v.is_negative()) throw std::domain_error("pow: fractional power of negative constant");
    Rational c = v.pow(p);
    Rational exact;
    if (c.nth_root(q, &exact)) return Expr(exact);
    // Rationalize the denominator: (a/b)^(1/q) = (a * b^(q-1))^(1/q) / b,
    // so the radicand is an integer and sqrt(3/2) renders as sqrt(6)/2.
    int128 radicand =
        mul_checked(c.num(), Rational(c.den(), 1).pow(q - 1).num());
    int128 rn, sn;
    extract_qth_power(radicand, q, &rn, &sn);
    Rational outer = Rational(rn, c.den());
    Rational rest(sn, 1);
    Expr radical(intern_composite(Kind::kPow, {Expr(rest)}, Rational(1, q)));
    if (outer.is_one()) return radical;
    return make_mul({Expr(outer), radical});
  }
  if (base.kind() == Kind::kPow) {
    return pow(base.operands()[0], base.exponent() * e);
  }
  if (base.kind() == Kind::kMul) {
    ExprVec factors;
    factors.reserve(base.operands().size());
    for (const Expr& f : base.operands()) factors.push_back(pow(f, e));
    return make_mul(std::move(factors));
  }
  return Expr(intern_composite(Kind::kPow, {base}, e));
}

namespace {

/// Shared flatten/fold/dedup for min and max: returns the canonical operand
/// list.  `pick` keeps the winning constant.  Deduplication is sort + unique:
/// with hash-consing, equal operands are the same node, so compare()==0 iff
/// pointer-equal.
template <class PickConst>
ExprVec fold_minmax(Kind kind, ExprVec args, PickConst pick) {
  ExprVec out;
  bool have_const = false;
  Rational best = 0;
  ExprVec work = std::move(args);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Expr a = work[i];  // by value: work may reallocate below
    if (a.kind() == kind) {
      for (const Expr& sub : a.operands()) work.push_back(sub);
      continue;
    }
    if (a.is_const()) {
      if (!have_const || pick(a.value(), best)) best = a.value();
      have_const = true;
    } else {
      out.push_back(a);
    }
  }
  if (have_const) out.emplace_back(best);
  std::sort(out.begin(), out.end(), expr_less);
  auto last = std::unique(out.begin(), out.end());
  while (out.end() != last) out.pop_back();
  return out;
}

}  // namespace

Expr min(ExprVec args) {
  if (args.empty()) throw std::invalid_argument("min: no arguments");
  ExprVec out = fold_minmax(
      Kind::kMin, std::move(args),
      [](const Rational& a, const Rational& b) { return a < b; });
  if (out.size() == 1) return out[0];
  return Expr(intern_composite(Kind::kMin, std::move(out)));
}

Expr max(ExprVec args) {
  if (args.empty()) throw std::invalid_argument("max: no arguments");
  ExprVec out = fold_minmax(
      Kind::kMax, std::move(args),
      [](const Rational& a, const Rational& b) { return a > b; });
  if (out.size() == 1) return out[0];
  return Expr(intern_composite(Kind::kMax, std::move(out)));
}

Expr operator+(const Expr& a, const Expr& b) { return make_add({a, b}); }
Expr operator-(const Expr& a, const Expr& b) {
  return make_add({a, make_mul({Expr(-1), b})});
}
Expr operator-(const Expr& a) { return make_mul({Expr(-1), a}); }
Expr operator*(const Expr& a, const Expr& b) { return make_mul({a, b}); }
Expr operator/(const Expr& a, const Expr& b) {
  return make_mul({a, pow(b, Rational(-1))});
}

namespace {

double eval_impl(const Expr& e, const SymMap<double>& env,
                 std::unordered_map<const Node*, double>* memo) {
  switch (e.kind()) {
    case Kind::kConst:
      return e.value().to_double();
    case Kind::kSymbol: {
      const double* v = env.find(e.sym_id());
      if (v == nullptr)
        throw std::out_of_range("Expr::eval: unbound symbol " + e.name());
      return *v;
    }
    default:
      break;
  }
  if (memo != nullptr) {
    auto it = memo->find(&e.node());
    if (it != memo->end()) return it->second;
  }
  double result = 0;
  switch (e.kind()) {
    case Kind::kAdd: {
      double s = 0;
      for (const Expr& t : e.operands()) s += eval_impl(t, env, memo);
      result = s;
      break;
    }
    case Kind::kMul: {
      double p = 1;
      for (const Expr& f : e.operands()) p *= eval_impl(f, env, memo);
      result = p;
      break;
    }
    case Kind::kPow:
      result = std::pow(eval_impl(e.operands()[0], env, memo),
                        e.exponent().to_double());
      break;
    case Kind::kMin: {
      double m = eval_impl(e.operands()[0], env, memo);
      for (std::size_t i = 1; i < e.operands().size(); ++i)
        m = std::min(m, eval_impl(e.operands()[i], env, memo));
      result = m;
      break;
    }
    case Kind::kMax: {
      double m = eval_impl(e.operands()[0], env, memo);
      for (std::size_t i = 1; i < e.operands().size(); ++i)
        m = std::max(m, eval_impl(e.operands()[i], env, memo));
      result = m;
      break;
    }
    default:
      throw std::logic_error("Expr::eval: bad kind");
  }
  if (memo != nullptr) memo->emplace(&e.node(), result);
  return result;
}

}  // namespace

double Expr::eval(const SymMap<double>& env) const {
  if (node_->tree_size < kMemoThreshold) return eval_impl(*this, env, nullptr);
  std::unordered_map<const Node*, double> memo;
  return eval_impl(*this, env, &memo);
}

double Expr::eval(const std::map<std::string, double>& env) const {
  SymMap<double> ids;
  for (const auto& [name, v] : env) ids.set(intern_symbol(name), v);
  return eval(ids);
}

namespace {

/// True when the node's cached symbol set intersects the env's key set
/// (bloom mask first, then a two-pointer merge over the sorted vectors).
bool mentions_any(const Node& n, const SymMap<Expr>& env,
                  std::uint64_t env_mask) {
  if ((n.sym_mask & env_mask) == 0) return false;
  auto it = env.begin();
  for (SymId id : n.symbol_ids) {
    while (it != env.end() && it->first < id) ++it;
    if (it == env.end()) return false;
    if (it->first == id) return true;
  }
  return false;
}

Expr subs_impl(const Expr& e, const SymMap<Expr>& env, std::uint64_t env_mask,
               std::unordered_map<const Node*, Expr>* memo) {
  if (!mentions_any(e.node(), env, env_mask)) return e;
  if (e.kind() == Kind::kSymbol) {
    const Expr* r = env.find(e.sym_id());
    return r == nullptr ? e : *r;
  }
  if (memo != nullptr) {
    auto it = memo->find(&e.node());
    if (it != memo->end()) return it->second;
  }
  Expr result;
  switch (e.kind()) {
    case Kind::kAdd: {
      ExprVec ts;
      ts.reserve(e.operands().size());
      for (const Expr& t : e.operands())
        ts.push_back(subs_impl(t, env, env_mask, memo));
      result = make_add(std::move(ts));
      break;
    }
    case Kind::kMul: {
      ExprVec fs;
      fs.reserve(e.operands().size());
      for (const Expr& f : e.operands())
        fs.push_back(subs_impl(f, env, env_mask, memo));
      result = make_mul(std::move(fs));
      break;
    }
    case Kind::kPow:
      result = pow(subs_impl(e.operands()[0], env, env_mask, memo),
                   e.exponent());
      break;
    case Kind::kMin: {
      ExprVec as;
      as.reserve(e.operands().size());
      for (const Expr& a : e.operands())
        as.push_back(subs_impl(a, env, env_mask, memo));
      result = min(std::move(as));
      break;
    }
    case Kind::kMax: {
      ExprVec as;
      as.reserve(e.operands().size());
      for (const Expr& a : e.operands())
        as.push_back(subs_impl(a, env, env_mask, memo));
      result = max(std::move(as));
      break;
    }
    default:
      throw std::logic_error("Expr::subs: bad kind");
  }
  if (memo != nullptr) memo->emplace(&e.node(), result);
  return result;
}

}  // namespace

Expr Expr::subs(const SymMap<Expr>& env) const {
  std::uint64_t env_mask = 0;
  for (const auto& kv : env) env_mask |= 1ULL << (kv.first.value & 63u);
  if (node_->tree_size < kMemoThreshold) {
    return subs_impl(*this, env, env_mask, nullptr);
  }
  std::unordered_map<const Node*, Expr> memo;
  return subs_impl(*this, env, env_mask, &memo);
}

Expr Expr::subs(const std::map<std::string, Expr>& env) const {
  SymMap<Expr> ids;
  for (const auto& [name, e] : env) ids.set(intern_symbol(name), e);
  return subs(ids);
}

namespace {

Expr diff_impl(const Expr& e, SymId var,
               std::unordered_map<const Node*, Expr>* memo) {
  // Cached symbol sets: subtrees free of `var` differentiate to 0 in O(1).
  if (!e.contains(var)) return Expr(0);
  switch (e.kind()) {
    case Kind::kSymbol:
      return Expr(1);  // contains(var) held, so this is var itself
    default:
      break;
  }
  if (memo != nullptr) {
    auto it = memo->find(&e.node());
    if (it != memo->end()) return it->second;
  }
  Expr result;
  switch (e.kind()) {
    case Kind::kAdd: {
      ExprVec ts;
      for (const Expr& t : e.operands()) ts.push_back(diff_impl(t, var, memo));
      result = make_add(std::move(ts));
      break;
    }
    case Kind::kMul: {
      // Product rule: sum_i f_i' * prod_{j != i} f_j.
      ExprVec terms;
      const auto ops = e.operands();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        Expr d = diff_impl(ops[i], var, memo);
        if (d.is_zero()) continue;
        ExprVec fs = {d};
        for (std::size_t j = 0; j < ops.size(); ++j)
          if (j != i) fs.push_back(ops[j]);
        terms.push_back(make_mul(std::move(fs)));
      }
      result = make_add(std::move(terms));
      break;
    }
    case Kind::kPow: {
      const Expr& b = e.operands()[0];
      Expr d = diff_impl(b, var, memo);
      result = make_mul(
          {Expr(e.exponent()), pow(b, e.exponent() - Rational(1)), d});
      break;
    }
    case Kind::kMin:
    case Kind::kMax:
      throw std::domain_error("Expr::diff: min/max not differentiable");
    default:
      throw std::logic_error("Expr::diff: bad kind");
  }
  if (memo != nullptr) memo->emplace(&e.node(), result);
  return result;
}

}  // namespace

Expr Expr::diff(SymId var) const {
  if (node_->tree_size < kMemoThreshold) {
    return diff_impl(*this, var, nullptr);
  }
  std::unordered_map<const Node*, Expr> memo;
  return diff_impl(*this, var, &memo);
}

Expr Expr::diff(const std::string& var) const {
  return diff(intern_symbol(var));
}

std::vector<std::string> Expr::symbols() const {
  std::vector<std::string> out;
  out.reserve(node_->symbol_ids.size());
  for (SymId id : node_->symbol_ids) out.push_back(symbol_name(id));
  std::sort(out.begin(), out.end());
  return out;
}

bool Expr::contains(SymId var) const {
  const Node& n = *node_;
  if ((n.sym_mask & (1ULL << (var.value & 63u))) == 0) return false;
  return std::binary_search(n.symbol_ids.begin(), n.symbol_ids.end(), var);
}

bool Expr::contains(const std::string& var) const {
  return contains(intern_symbol(var));
}

namespace {

/// Cross-multiplies an accumulated addend list with the addends of one more
/// factor, term by term through make_mul.  Shared by the Mul and integer-Pow
/// branches of expand(): distributing through operator* instead would
/// re-canonicalize b*b into the very Pow being expanded and recurse forever,
/// which is why both call sites must use this one helper.
ExprVec distribute_terms(const ExprVec& acc, std::span<const Expr> addends) {
  ExprVec next;
  next.reserve(acc.size() * addends.size());
  for (const Expr& p : acc) {
    for (const Expr& t : addends) next.push_back(make_mul({p, t}));
  }
  return next;
}

std::span<const Expr> addends_of(const Expr& e, Expr* single) {
  if (e.kind() == Kind::kAdd) return e.operands();
  *single = e;
  return {single, 1};
}

Expr expand_impl(const Expr& e,
                 std::unordered_map<const Node*, Expr>* memo) {
  switch (e.kind()) {
    case Kind::kConst:
    case Kind::kSymbol:
      return e;
    default:
      break;
  }
  if (memo != nullptr) {
    auto it = memo->find(&e.node());
    if (it != memo->end()) return it->second;
  }
  Expr result;
  switch (e.kind()) {
    case Kind::kAdd: {
      ExprVec ts;
      ts.reserve(e.operands().size());
      for (const Expr& t : e.operands()) ts.push_back(expand_impl(t, memo));
      result = make_add(std::move(ts));
      break;
    }
    case Kind::kMul: {
      // Expand factors, then distribute over sums left to right.
      ExprVec partial = {Expr(1)};
      for (const Expr& f0 : e.operands()) {
        Expr f = expand_impl(f0, memo);
        Expr single;
        partial = distribute_terms(partial, addends_of(f, &single));
      }
      result = make_add(std::move(partial));
      break;
    }
    case Kind::kPow: {
      Expr b = expand_impl(e.operands()[0], memo);
      const Rational& ex = e.exponent();
      if (b.kind() == Kind::kAdd && ex.is_integer() && ex > Rational(1) &&
          ex <= Rational(8)) {
        const std::span<const Expr> bt = b.operands();
        ExprVec acc = {Expr(1)};
        for (long long i = 0; i < ex.to_int(); ++i) {
          acc = distribute_terms(acc, bt);
        }
        result = make_add(std::move(acc));
      } else {
        result = pow(b, ex);
      }
      break;
    }
    case Kind::kMin: {
      ExprVec as;
      as.reserve(e.operands().size());
      for (const Expr& a : e.operands()) as.push_back(expand_impl(a, memo));
      result = min(std::move(as));
      break;
    }
    case Kind::kMax: {
      ExprVec as;
      as.reserve(e.operands().size());
      for (const Expr& a : e.operands()) as.push_back(expand_impl(a, memo));
      result = max(std::move(as));
      break;
    }
    default:
      throw std::logic_error("expand: bad kind");
  }
  if (memo != nullptr) memo->emplace(&e.node(), result);
  return result;
}

}  // namespace

Expr expand(const Expr& e) {
  if (e.node().tree_size < kMemoThreshold) return expand_impl(e, nullptr);
  std::unordered_map<const Node*, Expr> memo;
  return expand_impl(e, &memo);
}

namespace {

bool needs_parens_in_product(const Expr& e) { return e.kind() == Kind::kAdd; }

std::string render(const Expr& e);

std::string render_pow(const Expr& base, const Rational& ex) {
  std::string b = render(base);
  if (needs_parens_in_product(base) || base.kind() == Kind::kMul ||
      base.kind() == Kind::kPow) {
    b = "(" + b + ")";
  }
  if (ex.is_one()) return b;
  if (ex == Rational(1, 2)) return "sqrt(" + render(base) + ")";
  if (ex == Rational(1, 3)) return "cbrt(" + render(base) + ")";
  if (ex.is_integer()) return b + "^" + ex.str();
  return b + "^(" + ex.str() + ")";
}

std::string render(const Expr& e) {
  switch (e.kind()) {
    case Kind::kConst:
      return e.value().str();
    case Kind::kSymbol:
      return e.name();
    case Kind::kPow:
      if (e.exponent().is_negative()) {
        return "1/" + render_pow(e.operands()[0], -e.exponent());
      }
      return render_pow(e.operands()[0], e.exponent());
    case Kind::kMin:
    case Kind::kMax: {
      std::string out = e.kind() == Kind::kMin ? "min(" : "max(";
      for (std::size_t i = 0; i < e.operands().size(); ++i) {
        if (i) out += ", ";
        out += render(e.operands()[i]);
      }
      return out + ")";
    }
    case Kind::kMul: {
      // Split into numerator and denominator by exponent sign.
      std::vector<std::string> nums, dens;
      Rational coeff = 1;
      for (const Expr& f : e.operands()) {
        if (f.is_const()) {
          coeff = f.value();
          continue;
        }
        if (f.kind() == Kind::kPow && f.exponent().is_negative()) {
          dens.push_back(render_pow(f.operands()[0], -f.exponent()));
        } else {
          std::string s = render(f);
          if (needs_parens_in_product(f)) s = "(" + s + ")";
          nums.push_back(s);
        }
      }
      std::string num_str;
      bool neg = coeff.is_negative();
      Rational ac = coeff.abs();
      if (!Rational(ac.num()).is_one() || nums.empty()) {
        num_str = int128_str(ac.num() < 0 ? -ac.num() : ac.num());
      }
      for (const auto& s : nums) {
        if (!num_str.empty()) num_str += "*";
        num_str += s;
      }
      if (num_str.empty()) num_str = "1";
      if (!ac.is_integer()) dens.insert(dens.begin(), int128_str(ac.den()));
      std::string out = num_str;
      if (!dens.empty()) {
        std::string den_str;
        for (const auto& s : dens) {
          if (!den_str.empty()) den_str += "*";
          den_str += s;
        }
        if (dens.size() > 1) den_str = "(" + den_str + ")";
        out += "/" + den_str;
      }
      return neg ? "-" + out : out;
    }
    case Kind::kAdd: {
      std::string out;
      for (std::size_t i = 0; i < e.operands().size(); ++i) {
        std::string s = render(e.operands()[i]);
        if (i == 0) {
          out = s;
        } else if (!s.empty() && s[0] == '-') {
          out += " - " + s.substr(1);
        } else {
          out += " + " + s;
        }
      }
      return out;
    }
  }
  throw std::logic_error("render: bad kind");
}

}  // namespace

std::string Expr::str() const { return render(*this); }

std::ostream& operator<<(std::ostream& os, const Expr& e) {
  return os << e.str();
}

bool numerically_equal(const Expr& a, const Expr& b,
                       const NumericEqualityOptions& options) {
  // Union of the two cached symbol sets, ordered by *name* so the sample
  // assignments reproduce the historical string-based implementation bit for
  // bit (and stay stable across runs regardless of intern order).
  const auto a_ids = a.symbol_ids();
  const auto b_ids = b.symbol_ids();
  std::vector<SymId> ids(a_ids.begin(), a_ids.end());
  ids.insert(ids.end(), b_ids.begin(), b_ids.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<std::pair<std::string, SymId>> by_name;
  by_name.reserve(ids.size());
  for (SymId id : ids) by_name.emplace_back(symbol_name(id), id);
  std::sort(by_name.begin(), by_name.end());
  // Deterministic quasi-random positive sample points (xorshift64); a
  // (seed, trials) pair pins the exact run for reproduction.
  std::uint64_t state = options.seed;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return 1.5 + static_cast<double>(state % 1000) / 37.0;
  };
  SymMap<double> env;
  for (SymId id : ids) env.set(id, 0.0);
  for (int trial = 0; trial < options.trials; ++trial) {
    for (const auto& [name, id] : by_name) *env.find(id) = next();
    double va = a.eval(env);
    double vb = b.eval(env);
    double scale = std::max({1.0, std::fabs(va), std::fabs(vb)});
    if (std::fabs(va - vb) > options.tol * scale) return false;
  }
  return true;
}

bool numerically_equal(const Expr& a, const Expr& b, double tol) {
  NumericEqualityOptions options;
  options.tol = tol;
  return numerically_equal(a, b, options);
}

InternStats expr_intern_stats() {
  ExprInternTable& t = expr_table();
  InternStats stats;
  stats.shards = kNumShards;
  for (InternShard& sh : t.shards) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    for (const auto& [hash, vec] : sh.buckets) stats.live_nodes += vec.size();
    support::Arena::Stats as = sh.arena.stats();
    stats.arena_blocks += as.blocks;
    stats.arena_bytes += as.bytes_reserved;
  }
  stats.total_interned =
      t.next_id.load(std::memory_order_relaxed) - 1;
  return stats;
}

namespace {
// Wires support/cancel's node budget to the intern table's live count at
// static-init time (support cannot depend on symbolic, so the gauge flows
// the other way).  Any binary linking this layer gets the gauge; without it
// live_node_count() reads 0 and the budget never trips.
[[maybe_unused]] const bool g_node_gauge_registered = [] {
  support::register_live_node_gauge(
      +[]() -> std::size_t { return expr_intern_stats().live_nodes; });
  return true;
}();
}  // namespace

}  // namespace soap::sym
