#include "symbolic/expr.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace soap::sym {

namespace {

NodePtr make_node(Node n) { return std::make_shared<const Node>(std::move(n)); }

int kind_rank(Kind k) { return static_cast<int>(k); }

int cmp_rational(const Rational& a, const Rational& b) {
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

/// Extracts from |v| the largest factor that is a perfect q-th power:
/// v = root^q * rest.  Trial division; constants arising in SOAP analysis
/// are small (offsets, statement counts).
void extract_qth_power(int128 v, long long q, int128* root, int128* rest) {
  *root = 1;
  *rest = 1;
  for (int128 p = 2; p * p <= v && p < 100000; ++p) {
    int mult = 0;
    while (v % p == 0) {
      v /= p;
      ++mult;
    }
    for (int i = 0; i < mult / q; ++i) *root = mul_checked(*root, p);
    for (int i = 0; i < mult % static_cast<int>(q); ++i)
      *rest = mul_checked(*rest, p);
  }
  *rest = mul_checked(*rest, v);
}

}  // namespace

Expr make_add(std::vector<Expr> terms);
Expr make_mul(std::vector<Expr> factors);

Expr::Expr() : Expr(Rational(0)) {}
Expr::Expr(long long v) : Expr(Rational(v)) {}
Expr::Expr(const Rational& r)
    : node_(make_node(Node{Kind::kConst, r, {}, {}, Rational(0)})) {}

Expr Expr::symbol(const std::string& name) {
  return Expr(make_node(Node{Kind::kSymbol, Rational(0), name, {}, Rational(0)}));
}

const Rational& Expr::value() const {
  if (!is_const()) throw std::logic_error("Expr::value on non-constant");
  return node_->value;
}

const std::string& Expr::name() const {
  if (kind() != Kind::kSymbol) throw std::logic_error("Expr::name on non-symbol");
  return node_->name;
}

int Expr::compare(const Expr& a, const Expr& b) {
  if (a.node_ == b.node_) return 0;
  if (a.kind() != b.kind()) return kind_rank(a.kind()) - kind_rank(b.kind());
  switch (a.kind()) {
    case Kind::kConst:
      return cmp_rational(a.value(), b.value());
    case Kind::kSymbol:
      return a.name().compare(b.name());
    case Kind::kPow: {
      int c = compare(a.operands()[0], b.operands()[0]);
      if (c != 0) return c;
      return cmp_rational(a.exponent(), b.exponent());
    }
    default: {
      const auto& oa = a.operands();
      const auto& ob = b.operands();
      for (std::size_t i = 0; i < std::min(oa.size(), ob.size()); ++i) {
        int c = compare(oa[i], ob[i]);
        if (c != 0) return c;
      }
      return static_cast<int>(oa.size()) - static_cast<int>(ob.size());
    }
  }
}

namespace {

struct ExprLess {
  bool operator()(const Expr& a, const Expr& b) const {
    return Expr::compare(a, b) < 0;
  }
};

}  // namespace

std::pair<Rational, Expr> split_coefficient(const Expr& term) {
  if (term.is_const()) return {term.value(), Expr(1)};
  if (term.kind() == Kind::kMul) {
    const auto& ops = term.operands();
    if (!ops.empty() && ops[0].is_const()) {
      std::vector<Expr> rest(ops.begin() + 1, ops.end());
      return {ops[0].value(), make_mul(std::move(rest))};
    }
  }
  return {Rational(1), term};
}

Expr make_add(std::vector<Expr> terms) {
  // Flatten, fold constants, combine like terms.
  Rational const_sum = 0;
  std::map<Expr, Rational, ExprLess> by_core;
  std::vector<Expr> work = std::move(terms);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Expr& t = work[i];
    if (t.kind() == Kind::kAdd) {
      for (const Expr& sub : t.operands()) work.push_back(sub);
      continue;
    }
    if (t.is_const()) {
      const_sum += t.value();
      continue;
    }
    auto [coeff, core] = split_coefficient(t);
    by_core[core] += coeff;
  }
  std::vector<Expr> out;
  if (!const_sum.is_zero()) out.emplace_back(const_sum);
  for (const auto& [core, coeff] : by_core) {
    if (coeff.is_zero()) continue;
    if (coeff.is_one()) {
      out.push_back(core);
    } else {
      out.push_back(make_mul({Expr(coeff), core}));
    }
  }
  if (out.empty()) return Expr(0);
  if (out.size() == 1) return out[0];
  std::sort(out.begin(), out.end(),
            [](const Expr& a, const Expr& b) { return Expr::compare(a, b) < 0; });
  return Expr(make_node(
      Node{Kind::kAdd, Rational(0), {}, std::move(out), Rational(0)}));
}

Expr make_mul(std::vector<Expr> factors) {
  Rational const_prod = 1;
  // base -> accumulated exponent.
  std::map<Expr, Rational, ExprLess> by_base;
  std::vector<Expr> work = std::move(factors);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Expr& f = work[i];
    if (f.kind() == Kind::kMul) {
      for (const Expr& sub : f.operands()) work.push_back(sub);
      continue;
    }
    if (f.is_const()) {
      const_prod *= f.value();
      continue;
    }
    if (f.kind() == Kind::kPow) {
      by_base[f.operands()[0]] += f.exponent();
    } else {
      by_base[f] += Rational(1);
    }
  }
  if (const_prod.is_zero()) return Expr(0);
  // Combine constant radicals with equal fractional exponents:
  // sqrt(2)*sqrt(3) -> sqrt(6).  Group Const bases by exponent and multiply
  // the radicands.
  {
    std::map<Rational, Rational, decltype([](const Rational& a,
                                             const Rational& b) {
               return a < b;
             })>
        radicals;
    for (auto it = by_base.begin(); it != by_base.end();) {
      if (it->first.is_const() && !it->second.is_integer()) {
        Rational& acc = radicals.try_emplace(it->second, Rational(1))
                            .first->second;
        acc *= it->first.value();
        it = by_base.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [e, radicand] : radicals) {
      by_base[Expr(radicand)] += e;
    }
  }
  std::vector<Expr> out;
  for (const auto& [base, e] : by_base) {
    if (e.is_zero()) continue;
    Expr p = pow(base, e);  // may fold (e.g. const bases, nested pows)
    if (p.is_const()) {
      const_prod *= p.value();
    } else if (p.kind() == Kind::kMul) {
      // pow() of a constant can return c * radical; splice its factors in.
      for (const Expr& sub : p.operands()) {
        if (sub.is_const()) {
          const_prod *= sub.value();
        } else {
          out.push_back(sub);
        }
      }
    } else {
      out.push_back(p);
    }
  }
  if (out.empty()) return Expr(const_prod);
  std::sort(out.begin(), out.end(),
            [](const Expr& a, const Expr& b) { return Expr::compare(a, b) < 0; });
  if (!const_prod.is_one()) {
    out.insert(out.begin(), Expr(const_prod));
  }
  if (out.size() == 1) return out[0];
  return Expr(make_node(
      Node{Kind::kMul, Rational(0), {}, std::move(out), Rational(0)}));
}

Expr pow(const Expr& base, const Rational& e) {
  if (e.is_zero()) return Expr(1);
  if (e.is_one()) return base;
  if (base.is_one()) return Expr(1);
  if (base.is_zero()) {
    if (e.is_negative()) throw std::domain_error("pow: 0^negative");
    return Expr(0);
  }
  if (base.is_const()) {
    const Rational& v = base.value();
    if (e.is_integer()) return Expr(v.pow(e.to_int()));
    // v^(p/q): fold the integer power, then pull out perfect q-th roots.
    long long p = static_cast<long long>(e.num());
    long long q = static_cast<long long>(e.den());
    if (v.is_negative()) throw std::domain_error("pow: fractional power of negative constant");
    Rational c = v.pow(p);
    Rational exact;
    if (c.nth_root(q, &exact)) return Expr(exact);
    // Rationalize the denominator: (a/b)^(1/q) = (a * b^(q-1))^(1/q) / b,
    // so the radicand is an integer and sqrt(3/2) renders as sqrt(6)/2.
    int128 radicand =
        mul_checked(c.num(), Rational(c.den(), 1).pow(q - 1).num());
    int128 rn, sn;
    extract_qth_power(radicand, q, &rn, &sn);
    Rational outer = Rational(rn, c.den());
    Rational rest(sn, 1);
    Expr radical(make_node(Node{Kind::kPow, Rational(0), {},
                                {Expr(rest)}, Rational(1, q)}));
    if (outer.is_one()) return radical;
    return make_mul({Expr(outer), radical});
  }
  if (base.kind() == Kind::kPow) {
    return pow(base.operands()[0], base.exponent() * e);
  }
  if (base.kind() == Kind::kMul) {
    std::vector<Expr> factors;
    factors.reserve(base.operands().size());
    for (const Expr& f : base.operands()) factors.push_back(pow(f, e));
    return make_mul(std::move(factors));
  }
  return Expr(make_node(Node{Kind::kPow, Rational(0), {}, {base}, e}));
}

Expr min(std::vector<Expr> args) {
  if (args.empty()) throw std::invalid_argument("min: no arguments");
  // Flatten and fold constants (keep the smallest).
  std::vector<Expr> out;
  bool have_const = false;
  Rational best = 0;
  for (const Expr& a : args) {
    if (a.kind() == Kind::kMin) {
      for (const Expr& sub : a.operands()) args.push_back(sub);
      continue;
    }
    if (a.is_const()) {
      if (!have_const || a.value() < best) best = a.value();
      have_const = true;
    } else {
      out.push_back(a);
    }
  }
  if (have_const) out.emplace_back(best);
  std::sort(out.begin(), out.end(),
            [](const Expr& a, const Expr& b) { return Expr::compare(a, b) < 0; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() == 1) return out[0];
  return Expr(make_node(Node{Kind::kMin, Rational(0), {}, std::move(out), Rational(0)}));
}

Expr max(std::vector<Expr> args) {
  if (args.empty()) throw std::invalid_argument("max: no arguments");
  std::vector<Expr> out;
  bool have_const = false;
  Rational best = 0;
  for (const Expr& a : args) {
    if (a.kind() == Kind::kMax) {
      for (const Expr& sub : a.operands()) args.push_back(sub);
      continue;
    }
    if (a.is_const()) {
      if (!have_const || a.value() > best) best = a.value();
      have_const = true;
    } else {
      out.push_back(a);
    }
  }
  if (have_const) out.emplace_back(best);
  std::sort(out.begin(), out.end(),
            [](const Expr& a, const Expr& b) { return Expr::compare(a, b) < 0; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() == 1) return out[0];
  return Expr(make_node(Node{Kind::kMax, Rational(0), {}, std::move(out), Rational(0)}));
}

Expr operator+(const Expr& a, const Expr& b) { return make_add({a, b}); }
Expr operator-(const Expr& a, const Expr& b) {
  return make_add({a, make_mul({Expr(-1), b})});
}
Expr operator-(const Expr& a) { return make_mul({Expr(-1), a}); }
Expr operator*(const Expr& a, const Expr& b) { return make_mul({a, b}); }
Expr operator/(const Expr& a, const Expr& b) {
  return make_mul({a, pow(b, Rational(-1))});
}

double Expr::eval(const std::map<std::string, double>& env) const {
  switch (kind()) {
    case Kind::kConst:
      return value().to_double();
    case Kind::kSymbol: {
      auto it = env.find(name());
      if (it == env.end())
        throw std::out_of_range("Expr::eval: unbound symbol " + name());
      return it->second;
    }
    case Kind::kAdd: {
      double s = 0;
      for (const Expr& t : operands()) s += t.eval(env);
      return s;
    }
    case Kind::kMul: {
      double p = 1;
      for (const Expr& f : operands()) p *= f.eval(env);
      return p;
    }
    case Kind::kPow:
      return std::pow(operands()[0].eval(env), exponent().to_double());
    case Kind::kMin: {
      double m = operands()[0].eval(env);
      for (std::size_t i = 1; i < operands().size(); ++i)
        m = std::min(m, operands()[i].eval(env));
      return m;
    }
    case Kind::kMax: {
      double m = operands()[0].eval(env);
      for (std::size_t i = 1; i < operands().size(); ++i)
        m = std::max(m, operands()[i].eval(env));
      return m;
    }
  }
  throw std::logic_error("Expr::eval: bad kind");
}

Expr Expr::subs(const std::map<std::string, Expr>& env) const {
  switch (kind()) {
    case Kind::kConst:
      return *this;
    case Kind::kSymbol: {
      auto it = env.find(name());
      return it == env.end() ? *this : it->second;
    }
    case Kind::kAdd: {
      std::vector<Expr> ts;
      ts.reserve(operands().size());
      for (const Expr& t : operands()) ts.push_back(t.subs(env));
      return make_add(std::move(ts));
    }
    case Kind::kMul: {
      std::vector<Expr> fs;
      fs.reserve(operands().size());
      for (const Expr& f : operands()) fs.push_back(f.subs(env));
      return make_mul(std::move(fs));
    }
    case Kind::kPow:
      return pow(operands()[0].subs(env), exponent());
    case Kind::kMin: {
      std::vector<Expr> as;
      for (const Expr& a : operands()) as.push_back(a.subs(env));
      return min(std::move(as));
    }
    case Kind::kMax: {
      std::vector<Expr> as;
      for (const Expr& a : operands()) as.push_back(a.subs(env));
      return max(std::move(as));
    }
  }
  throw std::logic_error("Expr::subs: bad kind");
}

Expr Expr::diff(const std::string& var) const {
  switch (kind()) {
    case Kind::kConst:
      return Expr(0);
    case Kind::kSymbol:
      return name() == var ? Expr(1) : Expr(0);
    case Kind::kAdd: {
      std::vector<Expr> ts;
      for (const Expr& t : operands()) ts.push_back(t.diff(var));
      return make_add(std::move(ts));
    }
    case Kind::kMul: {
      // Product rule: sum_i f_i' * prod_{j != i} f_j.
      std::vector<Expr> terms;
      const auto& ops = operands();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        Expr d = ops[i].diff(var);
        if (d.is_zero()) continue;
        std::vector<Expr> fs = {d};
        for (std::size_t j = 0; j < ops.size(); ++j)
          if (j != i) fs.push_back(ops[j]);
        terms.push_back(make_mul(std::move(fs)));
      }
      return make_add(std::move(terms));
    }
    case Kind::kPow: {
      const Expr& b = operands()[0];
      Expr d = b.diff(var);
      if (d.is_zero()) return Expr(0);
      return make_mul({Expr(exponent()), pow(b, exponent() - Rational(1)), d});
    }
    case Kind::kMin:
    case Kind::kMax:
      throw std::domain_error("Expr::diff: min/max not differentiable");
  }
  throw std::logic_error("Expr::diff: bad kind");
}

namespace {

void collect_symbols(const Expr& e, std::vector<std::string>* out) {
  if (e.kind() == Kind::kSymbol) {
    out->push_back(e.name());
    return;
  }
  for (const Expr& o : e.operands()) collect_symbols(o, out);
}

}  // namespace

std::vector<std::string> Expr::symbols() const {
  std::vector<std::string> out;
  collect_symbols(*this, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Expr::contains(const std::string& var) const {
  if (kind() == Kind::kSymbol) return name() == var;
  for (const Expr& o : operands())
    if (o.contains(var)) return true;
  return false;
}

Expr expand(const Expr& e) {
  switch (e.kind()) {
    case Kind::kConst:
    case Kind::kSymbol:
      return e;
    case Kind::kAdd: {
      std::vector<Expr> ts;
      for (const Expr& t : e.operands()) ts.push_back(expand(t));
      return make_add(std::move(ts));
    }
    case Kind::kMul: {
      // Expand factors, then distribute over sums left to right.
      std::vector<Expr> partial = {Expr(1)};
      for (const Expr& f0 : e.operands()) {
        Expr f = expand(f0);
        std::vector<Expr> next;
        const std::vector<Expr> addends =
            f.kind() == Kind::kAdd ? f.operands() : std::vector<Expr>{f};
        for (const Expr& p : partial)
          for (const Expr& a : addends) next.push_back(make_mul({p, a}));
        partial = std::move(next);
      }
      return make_add(std::move(partial));
    }
    case Kind::kPow: {
      Expr b = expand(e.operands()[0]);
      const Rational& ex = e.exponent();
      if (b.kind() == Kind::kAdd && ex.is_integer() && ex > Rational(1) &&
          ex <= Rational(8)) {
        // Distribute manually: going through operator* would re-canonicalize
        // b*b into this very Pow and recurse forever.
        const std::vector<Expr>& bt = b.operands();
        std::vector<Expr> acc = {Expr(1)};
        for (long long i = 0; i < ex.to_int(); ++i) {
          std::vector<Expr> next;
          next.reserve(acc.size() * bt.size());
          for (const Expr& p : acc) {
            for (const Expr& t : bt) next.push_back(make_mul({p, t}));
          }
          acc = std::move(next);
        }
        return make_add(std::move(acc));
      }
      return pow(b, ex);
    }
    case Kind::kMin: {
      std::vector<Expr> as;
      for (const Expr& a : e.operands()) as.push_back(expand(a));
      return min(std::move(as));
    }
    case Kind::kMax: {
      std::vector<Expr> as;
      for (const Expr& a : e.operands()) as.push_back(expand(a));
      return max(std::move(as));
    }
  }
  throw std::logic_error("expand: bad kind");
}

namespace {

bool needs_parens_in_product(const Expr& e) { return e.kind() == Kind::kAdd; }

std::string render(const Expr& e);

std::string render_pow(const Expr& base, const Rational& ex) {
  std::string b = render(base);
  if (needs_parens_in_product(base) || base.kind() == Kind::kMul ||
      base.kind() == Kind::kPow) {
    b = "(" + b + ")";
  }
  if (ex.is_one()) return b;
  if (ex == Rational(1, 2)) return "sqrt(" + render(base) + ")";
  if (ex == Rational(1, 3)) return "cbrt(" + render(base) + ")";
  if (ex.is_integer()) return b + "^" + ex.str();
  return b + "^(" + ex.str() + ")";
}

std::string render(const Expr& e) {
  switch (e.kind()) {
    case Kind::kConst:
      return e.value().str();
    case Kind::kSymbol:
      return e.name();
    case Kind::kPow:
      if (e.exponent().is_negative()) {
        return "1/" + render_pow(e.operands()[0], -e.exponent());
      }
      return render_pow(e.operands()[0], e.exponent());
    case Kind::kMin:
    case Kind::kMax: {
      std::string out = e.kind() == Kind::kMin ? "min(" : "max(";
      for (std::size_t i = 0; i < e.operands().size(); ++i) {
        if (i) out += ", ";
        out += render(e.operands()[i]);
      }
      return out + ")";
    }
    case Kind::kMul: {
      // Split into numerator and denominator by exponent sign.
      std::vector<std::string> nums, dens;
      Rational coeff = 1;
      for (const Expr& f : e.operands()) {
        if (f.is_const()) {
          coeff = f.value();
          continue;
        }
        if (f.kind() == Kind::kPow && f.exponent().is_negative()) {
          dens.push_back(render_pow(f.operands()[0], -f.exponent()));
        } else {
          std::string s = render(f);
          if (needs_parens_in_product(f)) s = "(" + s + ")";
          nums.push_back(s);
        }
      }
      std::string num_str;
      bool neg = coeff.is_negative();
      Rational ac = coeff.abs();
      if (!Rational(ac.num()).is_one() || nums.empty()) {
        num_str = int128_str(ac.num() < 0 ? -ac.num() : ac.num());
      }
      for (const auto& s : nums) {
        if (!num_str.empty()) num_str += "*";
        num_str += s;
      }
      if (num_str.empty()) num_str = "1";
      if (!ac.is_integer()) dens.insert(dens.begin(), int128_str(ac.den()));
      std::string out = num_str;
      if (!dens.empty()) {
        std::string den_str;
        for (const auto& s : dens) {
          if (!den_str.empty()) den_str += "*";
          den_str += s;
        }
        if (dens.size() > 1) den_str = "(" + den_str + ")";
        out += "/" + den_str;
      }
      return neg ? "-" + out : out;
    }
    case Kind::kAdd: {
      std::string out;
      for (std::size_t i = 0; i < e.operands().size(); ++i) {
        std::string s = render(e.operands()[i]);
        if (i == 0) {
          out = s;
        } else if (!s.empty() && s[0] == '-') {
          out += " - " + s.substr(1);
        } else {
          out += " + " + s;
        }
      }
      return out;
    }
  }
  throw std::logic_error("render: bad kind");
}

}  // namespace

std::string Expr::str() const { return render(*this); }

std::ostream& operator<<(std::ostream& os, const Expr& e) {
  return os << e.str();
}

bool numerically_equal(const Expr& a, const Expr& b, double tol) {
  std::vector<std::string> syms = a.symbols();
  for (const std::string& s : b.symbols()) syms.push_back(s);
  std::sort(syms.begin(), syms.end());
  syms.erase(std::unique(syms.begin(), syms.end()), syms.end());
  // Deterministic quasi-random positive sample points.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return 1.5 + static_cast<double>(state % 1000) / 37.0;
  };
  for (int trial = 0; trial < 6; ++trial) {
    std::map<std::string, double> env;
    for (const std::string& s : syms) env[s] = next();
    double va = a.eval(env);
    double vb = b.eval(env);
    double scale = std::max({1.0, std::fabs(va), std::fabs(vb)});
    if (std::fabs(va - vb) > tol * scale) return false;
  }
  return true;
}

}  // namespace soap::sym
