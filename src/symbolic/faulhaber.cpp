#include "symbolic/faulhaber.hpp"

#include <stdexcept>
#include <vector>

namespace soap::sym {

namespace {

Rational binomial(int n, int k) {
  Rational r = 1;
  for (int i = 0; i < k; ++i) {
    r *= Rational(n - i);
    r /= Rational(i + 1);
  }
  return r;
}

}  // namespace

Polynomial power_sum(int k, SymId n) {
  if (k < 0) throw std::invalid_argument("power_sum: negative exponent");
  // Recurrence from telescoping (n+1)^{k+1} - 1 = sum_{j<=k} C(k+1,j) S_j(n):
  //   S_k(n) = [ (n+1)^{k+1} - 1 - sum_{j<k} C(k+1,j) S_j(n) ] / (k+1).
  std::vector<Polynomial> s(static_cast<std::size_t>(k) + 1);
  Polynomial nv = Polynomial::variable(n);
  for (int m = 0; m <= k; ++m) {
    Polynomial np1 = nv + Polynomial(1);
    Polynomial lead = 1;
    for (int i = 0; i <= m; ++i) lead *= np1;  // (n+1)^{m+1}
    Polynomial acc = lead - Polynomial(1);
    for (int j = 0; j < m; ++j) {
      acc -= Polynomial(binomial(m + 1, j)) * s[static_cast<std::size_t>(j)];
    }
    s[static_cast<std::size_t>(m)] =
        Polynomial(Rational(1, m + 1)) * acc;
  }
  return s[static_cast<std::size_t>(k)];
}

Polynomial power_sum(int k, const std::string& n) {
  return power_sum(k, intern_symbol(n));
}

Polynomial sum_over(const Polynomial& p, SymId var, const Polynomial& lo,
                    const Polynomial& hi) {
  static const SymId aux = intern_symbol("__faulhaber_n");
  std::vector<Polynomial> coeffs = p.coefficients_of(var);
  Polynomial lo_minus_1 = lo - Polynomial(1);
  Polynomial out;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k].is_zero()) continue;
    Polynomial sk = power_sum(static_cast<int>(k), aux);
    SymMap<Polynomial> at_hi_env{{aux, hi}};
    SymMap<Polynomial> at_lo_env{{aux, lo_minus_1}};
    Polynomial at_hi = sk.subs(at_hi_env);
    Polynomial at_lo = sk.subs(at_lo_env);
    out += coeffs[k] * (at_hi - at_lo);
  }
  return out;
}

Polynomial sum_over(const Polynomial& p, const std::string& var,
                    const Polynomial& lo, const Polynomial& hi) {
  return sum_over(p, intern_symbol(var), lo, hi);
}

}  // namespace soap::sym
