#include "symbolic/leading.hpp"

#include <algorithm>
#include <stdexcept>

namespace soap::sym {

Rational term_degree(const Expr& term, const std::vector<std::string>& syms) {
  auto in = [&syms](const std::string& s) {
    return std::find(syms.begin(), syms.end(), s) != syms.end();
  };
  switch (term.kind()) {
    case Kind::kConst:
      return Rational(0);
    case Kind::kSymbol:
      return in(term.name()) ? Rational(1) : Rational(0);
    case Kind::kPow: {
      const Expr& base = term.operands()[0];
      if (base.kind() == Kind::kSymbol) {
        return in(base.name()) ? term.exponent() : Rational(0);
      }
      // Degree of a power of a compound base: degree of the base times the
      // exponent (valid for the product-of-powers terms we produce).
      return term_degree(base, syms) * term.exponent();
    }
    case Kind::kMul: {
      Rational d = 0;
      for (const Expr& f : term.operands()) d += term_degree(f, syms);
      return d;
    }
    case Kind::kAdd: {
      Rational d = term_degree(term.operands()[0], syms);
      for (const Expr& t : term.operands())
        d = std::max(d, term_degree(t, syms));
      return d;
    }
    case Kind::kMin:
    case Kind::kMax: {
      Rational d = term_degree(term.operands()[0], syms);
      for (const Expr& t : term.operands())
        d = std::max(d, term_degree(t, syms));
      return d;
    }
  }
  throw std::logic_error("term_degree: bad kind");
}

Expr leading_term(const Expr& e, const std::vector<std::string>& syms) {
  Expr x = expand(e);
  if (x.kind() != Kind::kAdd) return x;
  Rational best(-1000000);
  for (const Expr& t : x.operands()) best = std::max(best, term_degree(t, syms));
  std::vector<Expr> keep;
  for (const Expr& t : x.operands()) {
    if (term_degree(t, syms) == best) keep.push_back(t);
  }
  Expr out(0);
  for (const Expr& t : keep) out = out + t;
  return out;
}

Expr leading_term_except(const Expr& e,
                         const std::vector<std::string>& small) {
  std::vector<std::string> syms;
  for (const std::string& s : e.symbols()) {
    if (std::find(small.begin(), small.end(), s) == small.end())
      syms.push_back(s);
  }
  return leading_term(e, syms);
}

}  // namespace soap::sym
