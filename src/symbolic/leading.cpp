#include "symbolic/leading.hpp"

#include <algorithm>
#include <stdexcept>

namespace soap::sym {

Rational term_degree(const Expr& term, const SymIdSet& syms) {
  // Per-node symbol caches: a subtree whose symbol set misses `syms`
  // entirely has degree 0 without any walk.
  if ((term.node().sym_mask & syms.mask()) == 0) return Rational(0);
  switch (term.kind()) {
    case Kind::kConst:
      return Rational(0);
    case Kind::kSymbol:
      return syms.contains(term.sym_id()) ? Rational(1) : Rational(0);
    case Kind::kPow: {
      const Expr& base = term.operands()[0];
      if (base.kind() == Kind::kSymbol) {
        return syms.contains(base.sym_id()) ? term.exponent() : Rational(0);
      }
      // Degree of a power of a compound base: degree of the base times the
      // exponent (valid for the product-of-powers terms we produce).
      return term_degree(base, syms) * term.exponent();
    }
    case Kind::kMul: {
      Rational d = 0;
      for (const Expr& f : term.operands()) d += term_degree(f, syms);
      return d;
    }
    case Kind::kAdd:
    case Kind::kMin:
    case Kind::kMax: {
      Rational d = term_degree(term.operands()[0], syms);
      for (const Expr& t : term.operands())
        d = std::max(d, term_degree(t, syms));
      return d;
    }
  }
  throw std::logic_error("term_degree: bad kind");
}

Rational term_degree(const Expr& term, const std::vector<std::string>& syms) {
  std::vector<SymId> ids;
  ids.reserve(syms.size());
  for (const std::string& s : syms) ids.push_back(intern_symbol(s));
  return term_degree(term, SymIdSet::from_unsorted(std::move(ids)));
}

Expr leading_term(const Expr& e, const SymIdSet& syms) {
  Expr x = expand(e);
  if (x.kind() != Kind::kAdd) return x;
  Rational best(-1000000);
  for (const Expr& t : x.operands()) best = std::max(best, term_degree(t, syms));
  ExprVec keep;
  for (const Expr& t : x.operands()) {
    if (term_degree(t, syms) == best) keep.push_back(t);
  }
  return make_add(std::move(keep));
}

Expr leading_term(const Expr& e, const std::vector<std::string>& syms) {
  std::vector<SymId> ids;
  ids.reserve(syms.size());
  for (const std::string& s : syms) ids.push_back(intern_symbol(s));
  return leading_term(e, SymIdSet::from_unsorted(std::move(ids)));
}

Expr leading_term_except(const Expr& e, const SymIdSet& small) {
  std::vector<SymId> ids;
  for (SymId id : e.symbol_ids()) {
    if (!small.contains(id)) ids.push_back(id);
  }
  return leading_term(e, SymIdSet(std::move(ids)));  // already sorted
}

Expr leading_term_except(const Expr& e,
                         const std::vector<std::string>& small) {
  std::vector<SymId> ids;
  ids.reserve(small.size());
  for (const std::string& s : small) ids.push_back(intern_symbol(s));
  return leading_term_except(e, SymIdSet::from_unsorted(std::move(ids)));
}

}  // namespace soap::sym
