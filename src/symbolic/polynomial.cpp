#include "symbolic/polynomial.hpp"

#include <algorithm>
#include <stdexcept>

namespace soap::sym {

namespace {

Monomial mono_mul(const Monomial& a, const Monomial& b) {
  Monomial out;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  return out;
}

int mono_total_degree(const Monomial& m) {
  int d = 0;
  for (const auto& [_, e] : m) d += e;
  return d;
}

}  // namespace

Polynomial::Polynomial(const Rational& c) {
  if (!c.is_zero()) terms_[{}] = c;
}

Polynomial Polynomial::variable(SymId id) {
  Polynomial p;
  p.terms_[{{id, 1}}] = Rational(1);
  return p;
}

Polynomial Polynomial::variable(const std::string& name) {
  return variable(intern_symbol(name));
}

bool Polynomial::is_constant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rational Polynomial::constant_value() const {
  if (terms_.empty()) return Rational(0);
  if (!is_constant())
    throw std::logic_error("Polynomial::constant_value on non-constant");
  return terms_.begin()->second;
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  for (const auto& [m, c] : terms_) out.terms_[m] = -c;
  return out;
}

Polynomial operator+(const Polynomial& a, const Polynomial& b) {
  Polynomial out = a;
  for (const auto& [m, c] : b.terms_) {
    Rational& slot = out.terms_[m];
    slot += c;
    if (slot.is_zero()) out.terms_.erase(m);
  }
  return out;
}

Polynomial operator-(const Polynomial& a, const Polynomial& b) {
  return a + (-b);
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  Polynomial out;
  for (const auto& [ma, ca] : a.terms_) {
    for (const auto& [mb, cb] : b.terms_) {
      Monomial m = mono_mul(ma, mb);
      Rational& slot = out.terms_[m];
      slot += ca * cb;
      if (slot.is_zero()) out.terms_.erase(m);
    }
  }
  return out;
}

int Polynomial::degree(SymId var) const {
  int d = 0;
  for (const auto& [m, _] : terms_) {
    for (const auto& [v, e] : m) {
      if (v == var) d = std::max(d, e);
    }
  }
  return d;
}

int Polynomial::degree(const std::string& var) const {
  return degree(intern_symbol(var));
}

int Polynomial::total_degree() const {
  if (terms_.empty()) return -1;
  int d = 0;
  for (const auto& [m, _] : terms_) d = std::max(d, mono_total_degree(m));
  return d;
}

Polynomial Polynomial::subs(const SymMap<Polynomial>& env) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    Polynomial term(c);
    for (const auto& [v, e] : m) {
      const Polynomial* bound = env.find(v);
      Polynomial base = bound != nullptr ? *bound : variable(v);
      for (int i = 0; i < e; ++i) term *= base;
    }
    out += term;
  }
  return out;
}

Polynomial Polynomial::subs(
    const std::map<std::string, Polynomial>& env) const {
  SymMap<Polynomial> ids;
  for (const auto& [name, p] : env) ids.set(intern_symbol(name), p);
  return subs(ids);
}

std::vector<Polynomial> Polynomial::coefficients_of(SymId var) const {
  std::vector<Polynomial> out(static_cast<std::size_t>(degree(var)) + 1);
  for (const auto& [m, c] : terms_) {
    int k = 0;
    Monomial rest;
    for (const auto& [v, e] : m) {
      if (v == var) {
        k = e;
      } else {
        rest.emplace_back(v, e);
      }
    }
    Polynomial piece;
    piece.terms_[rest] = c;
    out[static_cast<std::size_t>(k)] += piece;
  }
  return out;
}

std::vector<Polynomial> Polynomial::coefficients_of(
    const std::string& var) const {
  return coefficients_of(intern_symbol(var));
}

Polynomial Polynomial::leading_terms() const {
  int d = total_degree();
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    if (mono_total_degree(m) == d) out.terms_[m] = c;
  }
  return out;
}

Expr Polynomial::to_expr() const {
  // Batch canonicalization: one make_mul per monomial and one make_add over
  // all terms replace the quadratic operator*/operator+ folding chains.  The
  // canonical result node is identical (same term multiset), so eval() keeps
  // its floating-point ordering.
  ExprVec terms;
  for (const auto& [m, c] : terms_) {
    ExprVec factors;
    factors.reserve(m.size() + 1);
    factors.emplace_back(c);
    for (const auto& [v, e] : m) {
      factors.push_back(pow(Expr::symbol(v), Rational(e)));
    }
    terms.push_back(make_mul(std::move(factors)));
  }
  return make_add(std::move(terms));
}

double Polynomial::eval(const std::map<std::string, double>& env) const {
  // Via the canonical Expr, like the pre-SymId implementation: keeps the
  // floating-point evaluation order (and thus rounding) bit-identical for
  // the string-based callers, which the golden tests pin with DOUBLE_EQ.
  return to_expr().eval(env);
}

}  // namespace soap::sym
