// Multivariate polynomials with exact rational coefficients.
//
// Used to compute exact symbolic cardinalities of SOAP iteration domains:
// a loop nest with affine bounds (`for k in range(N)`, `for i in range(k+1,N)`)
// induces |D| = sum over the nest of 1, which is a polynomial in the program
// parameters.  Summation over one variable with polynomial bounds is done via
// Faulhaber's formula (src/symbolic/faulhaber.*).
//
// Variables are interned SymIds (support/interner.hpp): monomial comparison
// is integer-lexicographic, and the string-based API is a thin convenience
// layer over the SymId core.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/interner.hpp"
#include "support/rational.hpp"
#include "support/sym_map.hpp"
#include "symbolic/expr.hpp"

namespace soap::sym {

/// A monomial: sorted (variable, positive exponent) pairs. Empty == 1.
using Monomial = std::vector<std::pair<SymId, int>>;

/// Multivariate polynomial over Q.
class Polynomial {
 public:
  Polynomial() = default;
  Polynomial(const Rational& c);  // NOLINT(implicit)
  Polynomial(long long c) : Polynomial(Rational(c)) {}  // NOLINT(implicit)
  static Polynomial variable(SymId id);
  static Polynomial variable(const std::string& name);

  [[nodiscard]] bool is_zero() const { return terms_.empty(); }
  [[nodiscard]] bool is_constant() const;
  /// Requires is_constant().
  [[nodiscard]] Rational constant_value() const;

  Polynomial operator-() const;
  friend Polynomial operator+(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator-(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }
  Polynomial& operator*=(const Polynomial& o) { return *this = *this * o; }
  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.terms_ == b.terms_;
  }

  /// Degree in a single variable.
  [[nodiscard]] int degree(SymId var) const;
  [[nodiscard]] int degree(const std::string& var) const;
  /// Total degree across all variables (0 for constants; -1 for zero).
  [[nodiscard]] int total_degree() const;

  /// Simultaneous substitution of variables by polynomials.
  [[nodiscard]] Polynomial subs(const SymMap<Polynomial>& env) const;
  [[nodiscard]] Polynomial subs(
      const std::map<std::string, Polynomial>& env) const;

  /// Coefficients of powers of `var`: result[k] is the coefficient polynomial
  /// of var^k (in the remaining variables). result.size() == degree(var)+1.
  [[nodiscard]] std::vector<Polynomial> coefficients_of(SymId var) const;
  [[nodiscard]] std::vector<Polynomial> coefficients_of(
      const std::string& var) const;

  /// Keep only the terms of maximal total degree (the leading-order part in
  /// the "all parameters large" regime used by Table 2).
  [[nodiscard]] Polynomial leading_terms() const;

  /// Convert to a symbolic expression.
  [[nodiscard]] Expr to_expr() const;

  [[nodiscard]] double eval(const std::map<std::string, double>& env) const;

  [[nodiscard]] const std::map<Monomial, Rational>& terms() const {
    return terms_;
  }

  [[nodiscard]] std::string str() const { return to_expr().str(); }

 private:
  // Invariant: no zero coefficients stored.
  std::map<Monomial, Rational> terms_;
};

}  // namespace soap::sym
