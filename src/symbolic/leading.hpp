// Leading-order-term extraction: Table 2 of the paper reports the
// "simplified leading order term" of each bound, i.e. the summand of maximal
// total degree in the program-size parameters (N, M, T, ...) with the fast
// memory size S treated as a fixed parameter.
//
// The SymIdSet overloads are the hot path (per-node symbol caches + bloom
// masks make degree queries cheap); the string overloads are convenience
// wrappers for the frontend and tests.
#pragma once

#include <string>
#include <vector>

#include "support/sym_map.hpp"
#include "symbolic/expr.hpp"

namespace soap::sym {

/// Total degree of a (canonical, non-Add) term in the given symbols.
/// E.g. degree of 2*N^3/sqrt(S) in {N} is 3; in {N, S} it is 5/2.
Rational term_degree(const Expr& term, const SymIdSet& syms);
Rational term_degree(const Expr& term, const std::vector<std::string>& syms);

/// Expands `e` and keeps only the summands of maximal total degree in `syms`
/// (ties are summed).  Symbols not listed (typically S) count as degree 0.
Expr leading_term(const Expr& e, const SymIdSet& syms);
Expr leading_term(const Expr& e, const std::vector<std::string>& syms);

/// Convenience: leading term w.r.t. every symbol except those in `small`.
Expr leading_term_except(const Expr& e, const SymIdSet& small);
Expr leading_term_except(const Expr& e, const std::vector<std::string>& small);

}  // namespace soap::sym
