// Exact closed-form summation of polynomials over integer ranges
// (Faulhaber's formula), used to compute symbolic iteration-domain sizes
// |D| for loop nests with affine bounds.
#pragma once

#include <string>

#include "support/interner.hpp"
#include "symbolic/polynomial.hpp"

namespace soap::sym {

/// power_sum(k): S_k(n) = sum_{i=1}^{n} i^k as a univariate polynomial in the
/// variable `n`.  Exact (Bernoulli-free recurrence).
Polynomial power_sum(int k, SymId n);
Polynomial power_sum(int k, const std::string& n);

/// sum_{var = lo}^{hi} p(var, ...) as a polynomial in the remaining variables
/// (and whatever appears in lo/hi).  The identity used is
/// sum_{v=lo}^{hi} v^k = S_k(hi) - S_k(lo - 1); the result is exact whenever
/// hi >= lo - 1 pointwise (the usual non-empty-or-empty loop convention).
Polynomial sum_over(const Polynomial& p, SymId var, const Polynomial& lo,
                    const Polynomial& hi);
Polynomial sum_over(const Polynomial& p, const std::string& var,
                    const Polynomial& lo, const Polynomial& hi);

}  // namespace soap::sym
