// A small computer-algebra system: immutable symbolic expressions with
// canonical simplification.
//
// This replaces the MATLAB Symbolic Toolbox used by the paper.  The expression
// language is exactly what SOAP analysis needs:
//
//   * rational constants (exact, via soap::Rational),
//   * positive symbols (array extents N, M, ..., fast memory size S,
//     partition parameter X, tile sizes D1..Dl),
//   * n-ary sums and products with like-term/likefactor combination,
//   * powers with *rational constant* exponents (sqrt(S) = S^(1/2),
//     cbrt(S) = S^(1/3), radical constants such as sqrt(3)),
//   * min / max (conditional bounds, Section 5.3 of the paper).
//
// Design notes:
//   * Every symbol is assumed to denote a *positive* quantity.  This is true
//     for all SOAP parameters and licenses simplifications such as
//     (x*y)^(1/2) == x^(1/2) * y^(1/2).
//   * Expressions are values wrapping shared immutable nodes; all rewriting
//     happens at construction time, so two structurally equal results of
//     different derivations compare equal (used heavily by the golden tests
//     against Table 2).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace soap::sym {

enum class Kind : std::uint8_t { kConst, kSymbol, kAdd, kMul, kPow, kMin, kMax };

class Expr;
struct Node;
using NodePtr = std::shared_ptr<const Node>;

struct Node {
  Kind kind;
  Rational value;               // kConst
  std::string name;             // kSymbol
  std::vector<Expr> operands;   // kAdd / kMul / kMin / kMax; kPow: {base}
  Rational exponent;            // kPow
};

/// Immutable symbolic expression (value semantics, structurally canonical).
class Expr {
 public:
  /// Default-constructs the constant 0.
  Expr();
  /// Implicit conversions from numbers for ergonomic arithmetic.
  Expr(long long v);            // NOLINT(implicit)
  Expr(int v) : Expr(static_cast<long long>(v)) {}  // NOLINT(implicit)
  Expr(const Rational& r);      // NOLINT(implicit)

  static Expr symbol(const std::string& name);
  static Expr constant(const Rational& r) { return Expr(r); }

  [[nodiscard]] Kind kind() const { return node_->kind; }
  [[nodiscard]] bool is_const() const { return kind() == Kind::kConst; }
  [[nodiscard]] bool is_zero() const {
    return is_const() && node_->value.is_zero();
  }
  [[nodiscard]] bool is_one() const {
    return is_const() && node_->value.is_one();
  }
  /// Requires is_const().
  [[nodiscard]] const Rational& value() const;
  /// Requires kind() == kSymbol.
  [[nodiscard]] const std::string& name() const;
  /// Operands of Add/Mul/Min/Max; {base} for Pow.
  [[nodiscard]] const std::vector<Expr>& operands() const {
    return node_->operands;
  }
  /// Requires kind() == kPow.
  [[nodiscard]] const Rational& exponent() const { return node_->exponent; }

  /// Total structural comparison (canonical order). Returns <0, 0, >0.
  static int compare(const Expr& a, const Expr& b);
  friend bool operator==(const Expr& a, const Expr& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const Expr& a, const Expr& b) { return !(a == b); }

  /// Numeric evaluation. Missing symbols throw std::out_of_range.
  [[nodiscard]] double eval(const std::map<std::string, double>& env) const;

  /// Substitute symbols by expressions (simultaneous).
  [[nodiscard]] Expr subs(const std::map<std::string, Expr>& env) const;

  /// Derivative with respect to `var`. Min/Max throw std::domain_error.
  [[nodiscard]] Expr diff(const std::string& var) const;

  /// All symbol names appearing in the expression.
  [[nodiscard]] std::vector<std::string> symbols() const;
  [[nodiscard]] bool contains(const std::string& var) const;

  /// Human-readable rendering, e.g. "2*N^3/sqrt(S)".
  [[nodiscard]] std::string str() const;

  const Node& node() const { return *node_; }

 private:
  friend Expr make_add(std::vector<Expr> terms);
  friend Expr make_mul(std::vector<Expr> factors);
  friend Expr pow(const Expr& base, const Rational& e);
  friend Expr min(std::vector<Expr> args);
  friend Expr max(std::vector<Expr> args);
  explicit Expr(NodePtr n) : node_(std::move(n)) {}

  NodePtr node_;
};

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);

/// base^e with rational constant exponent (canonicalizing).
Expr pow(const Expr& base, const Rational& e);
inline Expr sqrt(const Expr& e) { return pow(e, Rational(1, 2)); }
inline Expr cbrt(const Expr& e) { return pow(e, Rational(1, 3)); }

Expr min(std::vector<Expr> args);
Expr max(std::vector<Expr> args);

/// Distribute products/integer powers over sums.
Expr expand(const Expr& e);

std::ostream& operator<<(std::ostream& os, const Expr& e);

/// Splits a canonical term into (rational coefficient, remaining factor).
/// E.g. 3*N^2*sqrt(S) -> (3, N^2*sqrt(S)); 5 -> (5, 1).
std::pair<Rational, Expr> split_coefficient(const Expr& term);

/// True if |a - b| evaluates to ~0 on several random positive assignments.
/// A pragmatic semantic-equality check used by tests (structural canonical
/// equality already catches most cases).
bool numerically_equal(const Expr& a, const Expr& b, double tol = 1e-7);

}  // namespace soap::sym
