// A small computer-algebra system: immutable symbolic expressions with
// canonical simplification and hash-consing.
//
// This replaces the MATLAB Symbolic Toolbox used by the paper.  The expression
// language is exactly what SOAP analysis needs:
//
//   * rational constants (exact, via soap::Rational),
//   * positive symbols (array extents N, M, ..., fast memory size S,
//     partition parameter X, tile sizes D1..Dl),
//   * n-ary sums and products with like-term/likefactor combination,
//   * powers with *rational constant* exponents (sqrt(S) = S^(1/2),
//     cbrt(S) = S^(1/3), radical constants such as sqrt(3)),
//   * min / max (conditional bounds, Section 5.3 of the paper).
//
// Design notes:
//   * Every symbol is assumed to denote a *positive* quantity.  This is true
//     for all SOAP parameters and licenses simplifications such as
//     (x*y)^(1/2) == x^(1/2) * y^(1/2).
//   * Expressions are values wrapping shared immutable nodes; all rewriting
//     happens at construction time, so two structurally equal results of
//     different derivations compare equal (used heavily by the golden tests
//     against Table 2).
//   * Nodes are *hash-consed*: a sharded, thread-safe intern table (64
//     buckets of the cached node hash, each with its own reader/writer lock
//     and arena-backed node pool — see expr.cpp and docs/ARCHITECTURE.md)
//     guarantees that structurally equal nodes are the same Node object.
//     operator== is therefore pointer identity, hash() is an O(1) cached
//     value, and every node carries a cached set of the symbols occurring
//     beneath it, so contains()/symbols() never walk the tree.  Symbol names
//     live in the soap::SymId interner (support/interner.hpp).
//   * Operand lists are stored inline for the common small arities
//     (support::SmallVec, inline capacity 4) and exposed as read-only spans;
//     `make_add`/`make_mul` are the batch canonicalization entry points —
//     callers assembling a large sum/product should build one ExprVec and
//     canonicalize it in a single pass instead of folding with operator+.
//   * The recursive rewriters (subs, expand, diff, eval) memoize on node
//     identity per top-level call; heavily shared (DAG-shaped) expressions
//     are rewritten in time proportional to the number of *distinct* nodes.
//   * Thread-safety contract: constructing, copying, comparing, and rewriting
//     expressions is safe from multiple threads (the intern shards are
//     individually locked — concurrent make_* calls on different shards do
//     not contend at all; nodes are immutable after interning).  Individual
//     Expr values are not synchronized — don't mutate one Expr variable from
//     two threads.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/interner.hpp"
#include "support/rational.hpp"
#include "support/small_vec.hpp"
#include "support/sym_map.hpp"

namespace soap::sym {

enum class Kind : std::uint8_t { kConst, kSymbol, kAdd, kMul, kPow, kMin, kMax };

class Expr;
struct Node;
using NodePtr = std::shared_ptr<const Node>;

/// Operand/term list with inline storage for the common small arities.
/// This is the operand type of every composite node and the parameter type
/// of the batch canonicalizers (make_add, make_mul, min, max).
using ExprVec = support::SmallVec<Expr, 4>;

namespace detail {
class ExprFactory;  // expr.cpp-internal: wraps interned nodes into Exprs
}

/// Immutable symbolic expression (value semantics, structurally canonical,
/// hash-consed: equal canonical forms share one node).
class Expr {
 public:
  /// Default-constructs the constant 0.
  Expr();
  /// Implicit conversions from numbers for ergonomic arithmetic.
  Expr(long long v);            // NOLINT(implicit)
  Expr(int v) : Expr(static_cast<long long>(v)) {}  // NOLINT(implicit)
  Expr(const Rational& r);      // NOLINT(implicit)

  static Expr symbol(const std::string& name);
  static Expr symbol(SymId id);
  static Expr constant(const Rational& r) { return Expr(r); }

  [[nodiscard]] Kind kind() const;
  [[nodiscard]] bool is_const() const { return kind() == Kind::kConst; }
  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] bool is_one() const;
  /// Requires is_const().
  [[nodiscard]] const Rational& value() const;
  /// Requires kind() == kSymbol.
  [[nodiscard]] const std::string& name() const;
  /// Requires kind() == kSymbol.
  [[nodiscard]] SymId sym_id() const;
  /// Operands of Add/Mul/Min/Max; {base} for Pow.  A read-only view into the
  /// node's inline operand storage — valid as long as any Expr referencing
  /// the node is alive; copy into an ExprVec to mutate.
  [[nodiscard]] std::span<const Expr> operands() const;
  /// Requires kind() == kPow.
  [[nodiscard]] const Rational& exponent() const;

  /// O(1): cached content hash of the canonical form.
  [[nodiscard]] std::size_t hash() const;
  /// O(1): global intern id.  A cheap total order (creation order) for
  /// containers whose iteration order never reaches user-visible output;
  /// rendering and canonical operand order use the structural compare().
  [[nodiscard]] std::uint64_t id() const;

  /// Total structural comparison (canonical display order).
  /// Returns <0, 0, >0; 0 iff same node (hash-consing).
  static int compare(const Expr& a, const Expr& b);
  /// O(1): hash-consing makes structural equality pointer identity.
  friend bool operator==(const Expr& a, const Expr& b) {
    return a.node_ == b.node_;
  }
  friend bool operator!=(const Expr& a, const Expr& b) { return !(a == b); }

  /// Numeric evaluation, memoized on shared subtrees.
  /// Missing symbols throw std::out_of_range.
  [[nodiscard]] double eval(const SymMap<double>& env) const;
  [[nodiscard]] double eval(const std::map<std::string, double>& env) const;

  /// Substitute symbols by expressions (simultaneous), memoized on shared
  /// subtrees; subtrees not mentioning any bound symbol are returned as-is.
  [[nodiscard]] Expr subs(const SymMap<Expr>& env) const;
  [[nodiscard]] Expr subs(const std::map<std::string, Expr>& env) const;

  /// Derivative with respect to `var`.  Min/Max subtrees containing `var`
  /// throw std::domain_error; subtrees free of `var` (min/max included)
  /// differentiate to 0 via the cached symbol sets.
  [[nodiscard]] Expr diff(SymId var) const;
  [[nodiscard]] Expr diff(const std::string& var) const;

  /// Sorted distinct SymIds occurring in the expression (cached per node;
  /// O(1) view, sorted by SymId — *not* by name).
  [[nodiscard]] std::span<const SymId> symbol_ids() const;
  /// All symbol names appearing in the expression, sorted by name.
  [[nodiscard]] std::vector<std::string> symbols() const;
  /// O(log #symbols) via the per-node symbol cache.
  [[nodiscard]] bool contains(SymId var) const;
  [[nodiscard]] bool contains(const std::string& var) const;

  /// Human-readable rendering, e.g. "2*N^3/sqrt(S)".
  [[nodiscard]] std::string str() const;

  const Node& node() const { return *node_; }

 private:
  friend Expr make_add(ExprVec terms);
  friend Expr make_mul(ExprVec factors);
  friend Expr pow(const Expr& base, const Rational& e);
  friend Expr min(ExprVec args);
  friend Expr max(ExprVec args);
  friend std::pair<Rational, Expr> split_coefficient(const Expr& term);
  friend class detail::ExprFactory;
  explicit Expr(NodePtr n) : node_(std::move(n)) {}

  NodePtr node_;
};

struct Node {
  Kind kind;
  Rational value;               // kConst
  SymId sym;                    // kSymbol
  const std::string* sym_name = nullptr;  // kSymbol: interned name storage
  ExprVec operands;             // kAdd / kMul / kMin / kMax; kPow: {base}
  Rational exponent;            // kPow
  // Hash-consing metadata, filled exactly once when the node is interned.
  std::size_t hash = 0;         // content hash (cached, O(1) to read)
  std::uint64_t id = 0;         // global intern id (cheap total order)
  std::uint64_t sym_mask = 0;   // bloom mask over symbol_ids
  std::uint32_t tree_size = 1;  // saturating subtree node count (incl. repeats)
  support::SmallVec<SymId, 8> symbol_ids;  // sorted distinct subtree symbols
};

inline Kind Expr::kind() const { return node_->kind; }
inline bool Expr::is_zero() const {
  return is_const() && node_->value.is_zero();
}
inline bool Expr::is_one() const { return is_const() && node_->value.is_one(); }
inline std::span<const Expr> Expr::operands() const {
  return {node_->operands.data(), node_->operands.size()};
}
inline const Rational& Expr::exponent() const { return node_->exponent; }
inline std::size_t Expr::hash() const { return node_->hash; }
inline std::uint64_t Expr::id() const { return node_->id; }
inline std::span<const SymId> Expr::symbol_ids() const {
  return {node_->symbol_ids.data(), node_->symbol_ids.size()};
}

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);

/// Batch canonicalization entry points: flatten, fold constants, combine
/// like terms/factors, and intern the canonical node in one table pass.
/// `make_add({a, b})` is exactly `a + b`; for a large term list, one batch
/// call replaces the quadratic `sum = sum + term` folding chain and is the
/// preferred spelling on hot paths (bound assembly, polynomial conversion).
Expr make_add(ExprVec terms);
Expr make_mul(ExprVec factors);

/// base^e with rational constant exponent (canonicalizing).
Expr pow(const Expr& base, const Rational& e);
inline Expr sqrt(const Expr& e) { return pow(e, Rational(1, 2)); }
inline Expr cbrt(const Expr& e) { return pow(e, Rational(1, 3)); }

Expr min(ExprVec args);
Expr max(ExprVec args);

/// Distribute products/integer powers over sums (memoized per call).
Expr expand(const Expr& e);

std::ostream& operator<<(std::ostream& os, const Expr& e);

/// Splits a canonical term into (rational coefficient, remaining factor).
/// E.g. 3*N^2*sqrt(S) -> (3, N^2*sqrt(S)); 5 -> (5, 1).
std::pair<Rational, Expr> split_coefficient(const Expr& term);

/// Controls for the sampling-based semantic equality check.  The defaults
/// reproduce the historical behavior bit for bit; raising `trials` or varying
/// `seed` gives independent re-checks, and a failing fuzz/CI run can log the
/// (seed, trials) pair to reproduce exactly.
struct NumericEqualityOptions {
  int trials = 6;
  double tol = 1e-7;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  // xorshift64 state seed
};

/// True if |a - b| evaluates to ~0 on deterministic quasi-random positive
/// assignments (xorshift64 stream from options.seed; symbols are assigned in
/// name order, so results are reproducible across runs and platforms).
/// A pragmatic semantic-equality check used by tests (structural canonical
/// equality already catches most cases).
bool numerically_equal(const Expr& a, const Expr& b,
                       const NumericEqualityOptions& options);
bool numerically_equal(const Expr& a, const Expr& b, double tol = 1e-7);

/// Diagnostics for the hash-consing intern table (tests, leak checks).
struct InternStats {
  std::size_t live_nodes = 0;   ///< nodes currently interned (all shards)
  std::uint64_t total_interned = 0;  ///< ids handed out since process start
  std::size_t shards = 0;       ///< intern-table shard count
  std::size_t arena_blocks = 0;      ///< bump blocks owned by shard arenas
  std::size_t arena_bytes = 0;  ///< bytes reserved in those blocks
};
InternStats expr_intern_stats();

}  // namespace soap::sym

/// Hash support so analysis layers can key unordered containers by Expr
/// (O(1): reads the cached node hash).
template <>
struct std::hash<soap::sym::Expr> {
  std::size_t operator()(const soap::sym::Expr& e) const noexcept {
    return e.hash();
  }
};
