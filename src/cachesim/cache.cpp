#include "cachesim/cache.hpp"

#include <algorithm>
#include <limits>
#include <list>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>

namespace soap::cachesim {

namespace {

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

}  // namespace

SimResult simulate_lru(const std::vector<schedule::Access>& trace,
                       std::size_t S) {
  // A zero-capacity cache is modeled as capacity 1 (the paper's machine
  // model needs at least one resident word to compute); S = 0 would
  // otherwise evict from an empty LRU list on the first access.
  S = std::max<std::size_t>(S, 1);
  SimResult r;
  // LRU list: front = most recent.  Map address -> (list iterator, dirty).
  std::list<std::uint64_t> order;
  struct Line {
    std::list<std::uint64_t>::iterator pos;
    bool dirty;
  };
  std::unordered_map<std::uint64_t, Line> lines;
  lines.reserve(2 * S);

  for (const schedule::Access& a : trace) {
    auto it = lines.find(a.address);
    if (it != lines.end()) {
      order.erase(it->second.pos);
      order.push_front(a.address);
      it->second.pos = order.begin();
      it->second.dirty |= a.write;
      continue;
    }
    // Miss.  A write to a line not present allocates without a load
    // (the statement fully overwrites the element).
    if (!a.write) ++r.loads;
    if (lines.size() >= S) {
      std::uint64_t victim = order.back();
      order.pop_back();
      auto vit = lines.find(victim);
      if (vit->second.dirty) ++r.stores;
      lines.erase(vit);
    }
    order.push_front(a.address);
    lines[a.address] = {order.begin(), a.write};
  }
  for (const auto& [addr, line] : lines) {
    if (line.dirty) ++r.stores;
  }
  return r;
}

SimResult simulate_belady(const std::vector<schedule::Access>& trace,
                          std::size_t S) {
  S = std::max<std::size_t>(S, 1);  // same capacity-1 floor as LRU
  SimResult r;
  // Next-use chains.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> uses;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    uses[trace[i].address].push_back(i);
  }
  std::unordered_map<std::uint64_t, std::size_t> use_idx;
  auto next_use = [&](std::uint64_t addr, std::size_t now) {
    auto& positions = uses[addr];
    std::size_t& idx = use_idx[addr];
    while (idx < positions.size() && positions[idx] <= now) ++idx;
    return idx < positions.size() ? positions[idx] : kNever;
  };

  // Cached lines ordered by next use (max-heap by next use).
  struct Line {
    bool present = false;
    bool dirty = false;
  };
  std::unordered_map<std::uint64_t, Line> lines;
  // Lazy priority queue of (next_use, addr).
  std::priority_queue<std::pair<std::size_t, std::uint64_t>> pq;
  std::size_t cached = 0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const schedule::Access& a = trace[i];
    Line& line = lines[a.address];
    std::size_t nu = next_use(a.address, i);
    if (line.present) {
      line.dirty |= a.write;
      pq.push({nu == kNever ? kNever : nu, a.address});
      continue;
    }
    if (!a.write) ++r.loads;
    if (cached >= S) {
      // Evict the line with the furthest (lazily validated) next use.
      while (true) {
        auto [when, victim] = pq.top();
        pq.pop();
        auto vit = lines.find(victim);
        if (vit == lines.end() || !vit->second.present) continue;
        std::size_t actual = next_use(victim, i - 1);
        if (actual != when && !(actual == kNever && when == kNever)) {
          pq.push({actual, victim});  // stale entry, reinsert
          continue;
        }
        if (vit->second.dirty) ++r.stores;
        vit->second.present = false;
        vit->second.dirty = false;
        --cached;
        break;
      }
    }
    line.present = true;
    line.dirty = a.write;
    ++cached;
    pq.push({nu, a.address});
  }
  for (const auto& [addr, line] : lines) {
    if (line.present && line.dirty) ++r.stores;
  }
  return r;
}

}  // namespace soap::cachesim
