#include "cachesim/sim.hpp"

namespace soap::cachesim {

Measurement measure_statement(const Statement& st,
                              const std::map<std::string, long long>& params,
                              const std::map<std::string, long long>& tiles,
                              std::size_t S) {
  schedule::TraceBuilder builder;
  if (tiles.empty()) {
    builder.append_natural(st, params);
  } else {
    builder.append_tiled(st, params, tiles);
  }
  Measurement m;
  m.trace_length = builder.trace().size();
  m.footprint = builder.distinct_addresses();
  m.lru = simulate_lru(builder.trace(), S);
  m.belady = simulate_belady(builder.trace(), S);
  return m;
}

}  // namespace soap::cachesim
