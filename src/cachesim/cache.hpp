// Fully-associative cache simulators (LRU and Belady/offline-optimal) used
// to measure the actual I/O of generated schedules against the analytic
// lower bounds.  The cache models the paper's fast memory: S words, loads on
// read misses, write-backs of dirty lines on eviction and at the end.
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/trace.hpp"

namespace soap::cachesim {

struct SimResult {
  long long loads = 0;       ///< read misses + write-allocate misses
  long long stores = 0;      ///< dirty write-backs (incl. final flush)
  [[nodiscard]] long long io() const { return loads + stores; }
};

/// LRU simulation of a trace with capacity S words.
SimResult simulate_lru(const std::vector<schedule::Access>& trace,
                       std::size_t S);

/// Belady (furthest-next-use) simulation: offline-optimal replacement.
SimResult simulate_belady(const std::vector<schedule::Access>& trace,
                          std::size_t S);

}  // namespace soap::cachesim
