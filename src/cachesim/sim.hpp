// Convenience harness: statement + (optional) tiling -> trace -> simulated
// I/O, next to the analytic lower bound.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "cachesim/cache.hpp"
#include "soap/statement.hpp"

namespace soap::cachesim {

struct Measurement {
  SimResult lru;
  SimResult belady;
  std::size_t trace_length = 0;
  std::size_t footprint = 0;  ///< distinct addresses
};

/// Simulates the statement's execution with capacity S; `tiles` empty means
/// the natural (untiled) loop order.
Measurement measure_statement(const Statement& st,
                              const std::map<std::string, long long>& params,
                              const std::map<std::string, long long>& tiles,
                              std::size_t S);

}  // namespace soap::cachesim
