#include "analysis/attainment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "schedule/tiling.hpp"
#include "sdg/multi_statement.hpp"
#include "support/parallel.hpp"

namespace soap::analysis {

namespace {

/// Parameter symbols of a program: everything a loop bound references that
/// is not an iteration variable of its own statement.
std::set<std::string> parameter_symbols(const Program& program) {
  std::set<std::string> out;
  for (const Statement& st : program.statements) {
    std::set<std::string> vars;
    for (const Loop& loop : st.domain.loops()) vars.insert(loop.var);
    for (const Loop& loop : st.domain.loops()) {
      for (const Affine* bound : {&loop.lower, &loop.upper}) {
        for (const std::string& v : bound->variables()) {
          if (!vars.count(v)) out.insert(v);
        }
      }
    }
  }
  return out;
}

/// Largest per-dimension extent e with e^depth <= budget, clamped to
/// [4, 32]: deep nests (conv: 7 loops) get tiny extents, shallow streaming
/// kernels get larger ones, and every kernel's trace stays simulable.
long long default_extent(std::size_t depth, std::size_t budget) {
  if (depth == 0) depth = 1;
  double e = std::pow(static_cast<double>(budget),
                      1.0 / static_cast<double>(depth));
  return std::clamp<long long>(static_cast<long long>(e), 4, 32);
}

}  // namespace

bool AttainmentRow::sound() const {
  return static_cast<double>(Q_sim_belady) + 1e-9 >= std::floor(Q_lb);
}

std::map<std::string, long long> default_params(
    const kernels::KernelEntry& entry, const AttainmentOptions& options) {
  Program program = entry.build();
  std::set<std::string> symbols = parameter_symbols(program);
  for (const std::string& s : entry.problem_sizes) symbols.insert(s);
  symbols.erase("S");
  std::size_t depth = 1;
  for (const Statement& st : program.statements) {
    depth = std::max(depth, st.domain.depth());
  }
  const long long extent = default_extent(depth, options.iteration_budget);
  std::map<std::string, long long> out;
  for (const std::string& s : symbols) {
    auto it = options.params.find(s);
    out[s] = it != options.params.end() ? it->second : extent;
  }
  return out;
}

AttainmentRow measure_kernel(const kernels::KernelEntry& entry, long long S,
                             const AttainmentOptions& options) {
  Program program = entry.build();
  AttainmentRow row;
  row.kernel = entry.name;
  row.family = entry.family;
  row.S = S;
  row.statements = program.statements.size();
  row.fused = row.statements > 1;
  row.params = default_params(entry, options);

  // The corpus bound: the kernel's recorded analysis (fused subgraphs, cold
  // bound, ... per its SdgOptions), evaluated at the concrete sizes.  Run
  // serially: the caller already shards (kernel x cache-size) items, and a
  // bound is derived in milliseconds next to the trace replay below.
  sdg::SdgOptions bound_options = entry.options;
  bound_options.threads = 1;
  bound_options.executor = support::ExecutorRef::serial();
  bound_options.stop = options.stop;
  auto bound = sdg::multi_statement_bound(program, bound_options);
  if (!bound) {
    throw std::runtime_error("attainment: no bound for " + entry.name);
  }
  row.degraded = bound->degraded;
  std::map<std::string, double> env;
  env["S"] = static_cast<double>(S);
  for (const auto& [k, v] : row.params) env[k] = static_cast<double>(v);
  row.Q_lb = bound->Q_leading.eval(env);

  // The simulated side: per statement, tile with the optimizer's X0
  // (Section 4.5) where a single-statement bound exists — statements with
  // unbounded single-statement intensity (pure streaming passes) replay in
  // natural order — and measure the tiled trace under LRU and Belady.
  for (const Statement& st : program.statements) {
    std::map<std::string, long long> tiles;
    if (auto sb = bounds::single_statement_bound(st)) {
      tiles = schedule::concrete_tiles(st, *sb, S, row.params);
    }
    cachesim::Measurement m = cachesim::measure_statement(
        st, row.params, tiles, static_cast<std::size_t>(S));
    row.Q_sim_lru += m.lru.io();
    row.Q_sim_belady += m.belady.io();
    row.trace_length += m.trace_length;
    row.footprint += m.footprint;
  }
  return row;
}

std::vector<AttainmentRow> attainment_table(
    const std::vector<const kernels::KernelEntry*>& kernels,
    const AttainmentOptions& options) {
  const std::size_t sweeps = options.cache_sizes.size();
  support::ParallelOptions par;
  par.threads = options.threads;
  par.executor = options.executor;
  // (kernel x cache-size) work items, kernel-major.  Each row is a pure
  // function of (kernel, S, options) collected into its own slot, so the
  // table is bit-identical for every thread count and executor.
  return support::parallel_map<AttainmentRow>(
      kernels.size() * sweeps, par, [&](std::size_t item) {
        const kernels::KernelEntry& entry = *kernels[item / sweeps];
        long long S = options.cache_sizes[item % sweeps];
        return measure_kernel(entry, S, options);
      });
}

std::vector<AttainmentRow> attainment_table(const AttainmentOptions& options) {
  std::vector<const kernels::KernelEntry*> all;
  for (const kernels::KernelEntry& k :
       kernels::Registry::instance().kernels()) {
    all.push_back(&k);
  }
  return attainment_table(all, options);
}

std::string format_attainment_table(const std::vector<AttainmentRow>& rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-16s %-22s %6s %12s %12s %12s %8s %10s %9s  %s\n", "family",
                "kernel", "S", "Q_lb", "Q_sim_lru", "Q_sim_bel", "ratio",
                "bound/sim", "trace", "sizes");
  out += line;
  out += std::string(140, '-') + "\n";
  for (const AttainmentRow& r : rows) {
    std::string sizes;
    for (const auto& [k, v] : r.params) {
      if (!sizes.empty()) sizes += ",";
      sizes += k + "=" + std::to_string(v);
    }
    std::snprintf(line, sizeof(line),
                  "%-16s %-22s %6lld %12.0f %12lld %12lld %8.2f %10s %9zu  %s%s\n",
                  r.family.c_str(), r.kernel.c_str(), r.S, r.Q_lb, r.Q_sim_lru,
                  r.Q_sim_belady, r.ratio(),
                  r.fused ? "fused/stmt" : "stmt/stmt", r.trace_length,
                  sizes.c_str(), r.sound() ? "" : "  [UNSOUND]");
    out += line;
    if (r.degraded) {
      out.insert(out.size() - 1, "  [degraded]");
    }
  }
  std::snprintf(line, sizeof(line),
                "%zu rows, %zu soundness violations (Q_sim_belady < Q_lb)\n",
                rows.size(), count_unsound(rows));
  out += line;
  return out;
}

std::size_t count_unsound(const std::vector<AttainmentRow>& rows) {
  std::size_t n = 0;
  for (const AttainmentRow& r : rows) {
    if (!r.sound()) ++n;
  }
  return n;
}

}  // namespace soap::analysis
