// Close-the-loop attainment analysis: bounds -> schedules -> simulated I/O.
//
// The paper's headline claim is not only that the I/O lower bounds exist but
// that they are *attainable*: substituting the optimizer's X0 back into the
// tile shapes (Section 4.5) yields a schedule whose measured I/O approaches
// Q_lb.  This subsystem wires the pieces the repo already carries —
// schedule::concrete_tiles, schedule::TraceBuilder, cachesim::simulate_* —
// into one reproducible mode over the kernel registry: for every corpus
// kernel, derive the bound, tile with the optimizer's X0, replay the tiled
// schedule through the LRU and Belady cache simulators, and report the
// attained-I/O / lower-bound ratio.
//
// Soundness orientation.  Belady (offline-optimal) replacement of a concrete
// execution is a valid red-blue pebbling, so its I/O upper-bounds the
// optimum the analytic bound lower-bounds:  Q_sim_belady >= Q_lb must hold
// for every kernel, cache size, and tiling.  A violation is a bug — in the
// bound derivation, the tiling, the trace, or the simulator — which makes
// this table the strongest machine-checked invariant the project has (the
// CI soundness gate; see tests/test_attainment.cpp and docs/ATTAINMENT.md).
//
// Multi-statement kernels.  The corpus bound is the *fused* multi-statement
// bound (Theorem 1 / cold bound, per the kernel's recorded SdgOptions), but
// the simulator replays each statement separately with a cold cache — a
// valid (if pessimistic) schedule, so the soundness direction still holds,
// while fusion- or recomputation-based bounds (flash_attention,
// stencil_sweep) show ratios well above 1 until a fused schedule generator
// exists.  Rows carry an explicit bound/sim scope marker ("fused/stmt") so
// this comparison is visible rather than silently wrong.
//
// Determinism.  Rows are pure functions of (kernel, S, options): the
// (kernel x cache-size) work items shard over the PR-4 ExecutorRef seam
// with slot-per-item collection, so the table is bit-identical for every
// thread count, executor, and schedule (enforced by test_attainment.cpp).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "kernels/registry.hpp"
#include "support/cancel.hpp"
#include "support/executor.hpp"

namespace soap::analysis {

struct AttainmentOptions {
  /// Fast-memory sizes S (words) swept per kernel, in reporting order.
  std::vector<long long> cache_sizes = {96, 384};
  /// Concrete values for problem-size symbols; symbols not listed get a
  /// depth-scaled default (see default_params).
  std::map<std::string, long long> params;
  /// Target iteration count per statement used to derive the default
  /// extents: deeper nests get smaller per-dimension extents so every
  /// kernel's trace stays simulable.
  std::size_t iteration_budget = 20000;
  /// Worker budget for the (kernel x cache-size) batch, SdgOptions::threads
  /// semantics (1 = serial, 0 = hardware); the table is bit-identical for
  /// every value.
  std::size_t threads = 1;
  /// Where helper workers run (default: the process-global pool).
  support::ExecutorRef executor;
  /// Termination criteria for the bound derivation inside each row
  /// (deadline/budget trips degrade the row to the per-statement bound and
  /// set AttainmentRow::degraded; cancellation raises
  /// AnalysisError{kCancelled}).  Default: unlimited — the 86 golden rows
  /// stay bit-identical.
  support::StopCriteria stop;
};

/// One (kernel, S) attainment measurement.
struct AttainmentRow {
  std::string kernel;
  std::string family;
  long long S = 0;
  /// Statements in the kernel's program; > 1 means the bound is fused but
  /// the simulation is per-statement (see `fused`).
  std::size_t statements = 0;
  /// True when the bound accounts for cross-statement fusion/recomputation
  /// but the simulated schedule replays statements separately — the ratio
  /// then over-states the gap (it is an upper bound on attainable I/O).
  bool fused = false;
  /// True when a deadline/budget trip degraded the bound derivation to the
  /// per-statement fallback (SdgOptions::degrade_on_budget).  The row is
  /// still sound — the per-statement bound is exactly the baseline the
  /// `sound()` invariant validates against — but Q_lb may be weaker than
  /// the fused bound.
  bool degraded = false;
  /// Concrete problem-size values the trace was generated with.
  std::map<std::string, long long> params;
  /// The kernel's corpus bound (Q_leading of its recorded analysis)
  /// evaluated at (params, S).
  double Q_lb = 0.0;
  /// Simulated I/O (loads + stores) of the tiled schedule, summed over
  /// statements: LRU and Belady (offline-optimal) replacement.
  long long Q_sim_lru = 0;
  long long Q_sim_belady = 0;
  /// Total accesses replayed and the sum of per-statement distinct
  /// addresses (shared arrays counted once per statement).
  std::size_t trace_length = 0;
  std::size_t footprint = 0;

  /// Attainment ratio Q_sim_belady / Q_lb (0 when the bound is 0).
  [[nodiscard]] double ratio() const {
    return Q_lb > 0.0 ? static_cast<double>(Q_sim_belady) / Q_lb : 0.0;
  }
  /// The soundness invariant: simulated offline-optimal I/O never beats
  /// the bound (floor() absorbs the bound's fractional part — I/O counts
  /// are integers).
  [[nodiscard]] bool sound() const;
};

/// Concrete problem sizes for a kernel: every parameter symbol of its
/// program (loop bounds plus recorded problem_sizes) mapped to a default
/// extent scaled by the deepest loop nest so the trace stays within
/// `options.iteration_budget` per statement; `options.params` overrides
/// individual symbols.
std::map<std::string, long long> default_params(
    const kernels::KernelEntry& entry, const AttainmentOptions& options = {});

/// Measures one kernel at one cache size: derive the corpus bound with the
/// kernel's recorded SdgOptions, tile each statement with
/// schedule::concrete_tiles from its single-statement bound, replay the
/// tiled trace through the LRU and Belady simulators.  Pure function of
/// (entry, S, options).
AttainmentRow measure_kernel(const kernels::KernelEntry& entry, long long S,
                             const AttainmentOptions& options = {});

/// The attainment table for an explicit kernel subset: one row per
/// (kernel, cache size), kernel-major in the given order.  Work items
/// shard across `options.threads` workers on `options.executor` with
/// slot-per-item determinism — bit-identical output for every thread
/// count and executor.
std::vector<AttainmentRow> attainment_table(
    const std::vector<const kernels::KernelEntry*>& kernels,
    const AttainmentOptions& options = {});

/// The full-registry attainment table (every family, registry order).
std::vector<AttainmentRow> attainment_table(
    const AttainmentOptions& options = {});

/// Renders rows as the corpus-wide text table (header + one line per row +
/// a soundness summary line "N rows, M violations").
std::string format_attainment_table(const std::vector<AttainmentRow>& rows);

/// Rows violating the soundness invariant (0 on a healthy build).
std::size_t count_unsound(const std::vector<AttainmentRow>& rows);

}  // namespace soap::analysis
