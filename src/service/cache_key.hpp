// Content-addressed cache keys for derived bounds (docs/SERVING.md).
//
// Every bound this repo derives is a pure function of (canonical lowered
// Program, bound-relevant SdgOptions fields).  This module computes a
// process-restart-safe digest of that pair: expressions are digested
// bottom-up over the hash-consed DAG with per-node memoization (shared
// subtrees are digested once), symbols by *name* (SymIds are handed out in
// process-local intern order), affine forms with coefficients sorted by
// variable name, and composite operands in their stored canonical order —
// which the structural compare() makes process-independent.
//
// What the key deliberately excludes: threads, executor, schedule, stop
// criteria, and degrade_on_budget.  The determinism contract guarantees
// those never change the derived bound — they only change who computes it
// and whether a *budget trip* degrades it — and the cache never stores
// degraded results, so excluding them is what makes the cache useful
// across differently-configured clients while staying bit-identical.
#pragma once

#include "sdg/multi_statement.hpp"
#include "soap/statement.hpp"
#include "support/digest.hpp"
#include "symbolic/expr.hpp"

#include <unordered_map>

namespace soap::service {

/// Per-call memo for expression digests, keyed on node identity (Expr's
/// O(1) cached hash + pointer equality).  Reuse one across many
/// expr_digest calls to share work between expressions of one program.
using ExprDigestMemo = std::unordered_map<sym::Expr, support::Digest>;

/// Stable content digest of a canonical expression (bottom-up over the
/// DAG, memoized per node).  Equal canonical forms digest equally in every
/// process; alpha-inequivalent forms (different symbol names, coefficients,
/// structure) digest differently.
support::Digest expr_digest(const sym::Expr& e, ExprDigestMemo& memo);
support::Digest expr_digest(const sym::Expr& e);

/// Stable content digest of a lowered SOAP program: statements in order
/// (name, loop nest, output access, input accesses, max-overlap hints)
/// plus the array-size hints sorted by array name.
support::Digest program_digest(const Program& program);

/// The bound cache key: program digest x bound-relevant options
/// (max_subgraph_size, max_subgraphs, use_cold_bound, optimizer) x digest
/// format version.  The numeric backend is part of the key because
/// backends may legitimately derive different (equally sound) constants —
/// bounds computed under different backends must never alias.  See the
/// header comment for what is excluded and why.
struct CacheKey {
  support::Digest digest;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.digest == b.digest;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) {
    return !(a == b);
  }
};

CacheKey make_cache_key(const Program& program,
                        const sdg::SdgOptions& options);

}  // namespace soap::service

template <>
struct std::hash<soap::service::CacheKey> {
  std::size_t operator()(const soap::service::CacheKey& k) const noexcept {
    return std::hash<soap::support::Digest>{}(k.digest);
  }
};
