// Cache-routed analysis entry points (docs/SERVING.md).
//
// These mirror the kernels-layer entry points exactly — same outcomes,
// same messages, same slot-per-kernel determinism — with every derivation
// routed through a BoundCache.  The miss path runs the identical
// derivation the uncached path would, and a hit returns the interned
// result of that derivation, so cache-on vs cache-off output is
// byte-identical (enforced by tests/test_bound_cache.cpp).
#pragma once

#include <optional>

#include "kernels/table2.hpp"
#include "service/bound_cache.hpp"

namespace soap::service {

/// Cached program analysis: the serving primitive behind the `analyzed`
/// protocol and `analyze_tool --cache`.  `bound` is nullopt when the
/// program has no non-trivial bound (never cached — it carries no
/// MultiStatementBound to store).
struct ProgramAnalysis {
  CacheKey key;
  std::optional<sdg::MultiStatementBound> bound;
  CacheOutcome outcome = CacheOutcome::kMiss;
};

/// Analyzes `program` under `options` through `cache`.  Exceptions from
/// the derivation (cancellation, invalid input, non-degradable budget
/// trips) propagate exactly as from sdg::multi_statement_bound.
ProgramAnalysis analyze_program_cached(BoundCache& cache,
                                       const Program& program,
                                       const sdg::SdgOptions& options);

/// analyze_kernel_checked with the derivation routed through `cache`;
/// outcome fields (status, message, degraded, bound) are identical to the
/// uncached call.  `cache_outcome`, when non-null, reports how the cache
/// satisfied the request.
kernels::KernelOutcome analyze_kernel_cached(
    BoundCache& cache, const kernels::KernelEntry& entry,
    std::size_t threads = 1, support::ExecutorRef executor = {},
    const support::StopCriteria& stop = {},
    CacheOutcome* cache_outcome = nullptr,
    std::optional<bounds::opt::BackendKind> optimizer = std::nullopt);

/// analyze_corpus_resilient with every kernel routed through `cache`:
/// same slot-per-kernel determinism, same report.
kernels::CorpusReport analyze_corpus_cached(
    BoundCache& cache, const std::vector<const kernels::KernelEntry*>& kernels,
    const kernels::CorpusOptions& options = {});

}  // namespace soap::service
