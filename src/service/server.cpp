#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "service/analyze.hpp"
#include "service/json.hpp"
#include "support/cancel.hpp"
#include "support/parse.hpp"

namespace soap::service {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string token;
  while (ss >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Per-request option bag parsed from the `k=v` tokens after the command.
struct RequestOpts {
  std::string id;
  std::size_t timeout_ms = 0;
  std::size_t node_budget = 0;
  std::optional<std::size_t> max_subgraph_size;
  std::optional<std::size_t> max_subgraphs;
  std::optional<bounds::opt::BackendKind> optimizer;
  std::string error;  ///< non-empty = malformed request

  [[nodiscard]] bool ok() const { return error.empty(); }
};

RequestOpts parse_opts(const std::vector<std::string>& tokens,
                       std::size_t first, std::size_t default_timeout_ms,
                       std::size_t default_node_budget, bool program_mode) {
  RequestOpts opts;
  opts.timeout_ms = default_timeout_ms;
  opts.node_budget = default_node_budget;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      opts.error = "malformed option '" + token + "' (want k=v)";
      return opts;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      opts.id = value;
      continue;
    }
    if (key == "optimizer") {
      std::string reason;
      opts.optimizer = bounds::opt::parse_backend_name(value, &reason);
      if (!opts.optimizer) {
        opts.error = reason;
        return opts;
      }
      continue;
    }
    const std::optional<std::size_t> n = support::parse_size_t(value);
    if (!n) {
      opts.error = "invalid value for " + key + ": '" + value + "'";
      return opts;
    }
    if (key == "timeout-ms") {
      opts.timeout_ms = *n;
    } else if (key == "node-budget") {
      opts.node_budget = *n;
    } else if (program_mode && key == "max-subgraph-size") {
      opts.max_subgraph_size = *n;
    } else if (program_mode && key == "max-subgraphs") {
      opts.max_subgraphs = *n;
    } else {
      opts.error = "unknown option '" + key + "'";
      return opts;
    }
  }
  return opts;
}

std::uint64_t percentile_us(std::vector<std::uint64_t> sorted, int p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(sorted.size()) * static_cast<std::size_t>(p) /
          100);
  return sorted[idx];
}

}  // namespace

struct Server::Impl {
  std::mutex mutex;  ///< guards everything below
  std::condition_variable cv;
  std::size_t inflight = 0;
  std::uint64_t next_id = 0;
  std::unordered_map<std::string, support::CancellationSource> active;
  std::vector<std::uint64_t> latencies_us;  ///< completed analyze/kernel
  std::mutex out_mutex;                     ///< whole-line reply writes
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_unique<BoundCache>(options_.cache)),
      impl_(std::make_unique<Impl>()) {}

Server::~Server() = default;

int Server::serve(std::istream& in, std::ostream& out) {
  Impl& impl = *impl_;

  const auto write_reply = [&impl, &out](const std::string& reply) {
    std::lock_guard<std::mutex> lock(impl.out_mutex);
    out << reply << '\n';
    out.flush();
  };
  const auto drain = [&impl] {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.cv.wait(lock, [&impl] { return impl.inflight == 0; });
  };
  const auto error_reply = [](const std::string& id, const char* status,
                              const std::string& message) {
    return "{\"id\":" + json_string(id) + ",\"status\":" +
           json_string(status) + ",\"error\":" + json_string(message) + '}';
  };

  // The body of one analyze/kernel request; runs on a dispatch thread (or
  // inline when request_threads <= 1).  `body` is empty for kernel mode.
  const auto run_request = [this, &impl, &write_reply, &error_reply](
                               RequestOpts opts, std::string kernel_name,
                               std::string body,
                               support::CancellationToken cancel) {
    const auto start = std::chrono::steady_clock::now();
    support::StopCriteria stop;
    stop.cancel = std::move(cancel);
    if (opts.timeout_ms != 0) {
      stop.deadline = support::Deadline::after_ms(opts.timeout_ms);
    }
    stop.budget.max_live_nodes = opts.node_budget;

    std::string reply;
    try {
      if (kernel_name.empty()) {
        Program program = frontend::parse_program(body);
        sdg::SdgOptions options;
        options.threads = options_.analysis_threads;
        options.executor = options_.executor;
        options.stop = stop;
        if (opts.max_subgraph_size) {
          options.max_subgraph_size = *opts.max_subgraph_size;
        }
        if (opts.max_subgraphs) options.max_subgraphs = *opts.max_subgraphs;
        if (const auto backend =
                opts.optimizer ? opts.optimizer : options_.optimizer) {
          options.optimizer = *backend;
        }
        const ProgramAnalysis analysis =
            analyze_program_cached(*cache_, program, options);
        reply = "{\"id\":" + json_string(opts.id);
        reply += ",\"digest\":" + json_string(analysis.key.digest.hex());
        reply +=
            ",\"cache\":" + json_string(cache_outcome_name(analysis.outcome));
        if (!analysis.bound) {
          reply +=
              ",\"status\":\"ok\",\"bound\":null,"
              "\"note\":\"no non-trivial bound (unlimited reuse)\"";
        } else {
          const char* status =
              analysis.bound->degraded
                  ? support::status_code_name(analysis.bound->degraded_reason)
                  : "ok";
          reply += ",\"status\":" + json_string(status) + ',' +
                   bound_json_fields(*analysis.bound);
        }
        reply += '}';
      } else {
        const kernels::KernelEntry* entry = nullptr;
        try {
          entry = &kernels::kernel_by_name(kernel_name);
        } catch (const std::out_of_range&) {
          reply = error_reply(opts.id, "invalid_input",
                              "unknown kernel '" + kernel_name + "'");
        }
        if (entry != nullptr) {
          CacheOutcome cache_outcome = CacheOutcome::kMiss;
          const kernels::KernelOutcome outcome = analyze_kernel_cached(
              *cache_, *entry, options_.analysis_threads, options_.executor,
              stop, &cache_outcome,
              opts.optimizer ? opts.optimizer : options_.optimizer);
          reply = "{\"id\":" + json_string(opts.id) + ",\"cache\":" +
                  json_string(cache_outcome_name(cache_outcome)) + ',' +
                  outcome_json(outcome).substr(1);
        }
      }
    } catch (const support::AnalysisError& e) {
      reply = error_reply(opts.id, support::status_code_name(e.code()),
                          e.what());
    } catch (const std::exception& e) {
      reply = error_reply(opts.id, "internal_error", e.what());
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start);
    const std::uint64_t elapsed_us =
        static_cast<std::uint64_t>(elapsed.count());
    // Splice the latency into the reply object (it always ends in '}').
    reply.insert(reply.size() - 1,
                 ",\"elapsed_us\":" + std::to_string(elapsed_us));
    write_reply(reply);
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      impl.active.erase(opts.id);
      impl.latencies_us.push_back(elapsed_us);
      --impl.inflight;
    }
    impl.cv.notify_all();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];

    if (cmd == "quit") break;

    if (cmd == "cancel") {
      if (tokens.size() != 2) {
        write_reply(error_reply("", "invalid_input", "usage: cancel ID"));
        continue;
      }
      bool delivered = false;
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        auto it = impl.active.find(tokens[1]);
        if (it != impl.active.end()) {
          it->second.request_cancel();
          delivered = true;
        }
      }
      write_reply("{\"cancel\":" + json_string(tokens[1]) +
                  ",\"delivered\":" + (delivered ? "true" : "false") + '}');
      continue;
    }

    if (cmd == "stats") {
      RequestOpts opts =
          parse_opts(tokens, 1, 0, 0, /*program_mode=*/false);
      if (!opts.ok()) {
        write_reply(error_reply(opts.id, "invalid_input", opts.error));
        continue;
      }
      drain();  // the reported counters/latencies cover every prior request
      const BoundCacheStats s = cache_->stats();
      std::vector<std::uint64_t> latencies;
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        latencies = impl.latencies_us;
      }
      std::string reply = "{\"id\":" + json_string(opts.id);
      reply += ",\"requests\":" + std::to_string(s.requests());
      reply += ",\"hits\":" + std::to_string(s.hits);
      reply += ",\"misses\":" + std::to_string(s.misses);
      reply += ",\"coalesced\":" + std::to_string(s.coalesced);
      reply += ",\"evicted\":" + std::to_string(s.evicted);
      reply += ",\"entries\":" + std::to_string(s.entries);
      reply += ",\"persisted_loaded\":" + std::to_string(s.persisted_loaded);
      reply += ",\"hit_rate\":" + json_double(s.hit_rate());
      reply += ",\"p50_us\":" + std::to_string(percentile_us(latencies, 50));
      reply += ",\"p99_us\":" + std::to_string(percentile_us(latencies, 99));
      reply += '}';
      write_reply(reply);
      continue;
    }

    const bool is_analyze = cmd == "analyze";
    const bool is_kernel = cmd == "kernel";
    if (!is_analyze && !is_kernel) {
      write_reply(error_reply("", "invalid_input",
                              "unknown command '" + cmd + "'"));
      continue;
    }
    if (is_kernel && tokens.size() < 2) {
      write_reply(error_reply("", "invalid_input",
                              "usage: kernel NAME [k=v ...]"));
      continue;
    }
    RequestOpts opts = parse_opts(
        tokens, is_kernel ? 2 : 1, options_.default_timeout_ms,
        options_.default_node_budget, /*program_mode=*/is_analyze);
    std::string kernel_name = is_kernel ? tokens[1] : std::string();

    std::string body;
    if (is_analyze) {
      // Body lines up to the `end` terminator.  EOF mid-body is a client
      // error: reply and shut down (the stream is gone).
      bool terminated = false;
      std::string body_line;
      while (std::getline(in, body_line)) {
        if (!body_line.empty() && body_line.back() == '\r') {
          body_line.pop_back();
        }
        if (body_line == "end") {
          terminated = true;
          break;
        }
        body += body_line;
        body += '\n';
      }
      if (!terminated) {
        write_reply(error_reply(opts.id, "invalid_input",
                                "EOF before `end` terminator"));
        break;
      }
    }
    if (!opts.ok()) {
      write_reply(error_reply(opts.id, "invalid_input", opts.error));
      continue;
    }

    // Admission: assign an id, register the cancellation source, and wait
    // for a request slot.  Duplicate in-flight ids are rejected (cancel
    // would be ambiguous).
    support::CancellationToken cancel;
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      if (opts.id.empty()) opts.id = "r" + std::to_string(++impl.next_id);
      if (impl.active.count(opts.id) != 0) {
        const std::string id = opts.id;
        lock.unlock();
        write_reply(error_reply(id, "invalid_input",
                                "duplicate in-flight id '" + id + "'"));
        continue;
      }
      const std::size_t slots =
          options_.request_threads == 0 ? 1 : options_.request_threads;
      impl.cv.wait(lock, [&impl, slots] { return impl.inflight < slots; });
      support::CancellationSource source;
      cancel = source.token();
      impl.active.emplace(opts.id, std::move(source));
      ++impl.inflight;
    }
    if (options_.request_threads <= 1) {
      run_request(std::move(opts), std::move(kernel_name), std::move(body),
                  std::move(cancel));
    } else {
      options_.executor.submit(
          [run_request, opts = std::move(opts),
           kernel_name = std::move(kernel_name), body = std::move(body),
           cancel = std::move(cancel)]() mutable {
            run_request(std::move(opts), std::move(kernel_name),
                        std::move(body), std::move(cancel));
          });
    }
  }
  drain();
  return 0;
}

}  // namespace soap::service
