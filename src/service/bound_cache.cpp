#include "service/bound_cache.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <list>
#include <unordered_map>
#include <utility>

#include "service/serialize.hpp"
#include "support/cancel.hpp"

namespace soap::service {

namespace {

// First line of every persistence file; a file with any other first line is
// treated as a stale format and ignored wholesale (the cache then starts
// cold and rewrites nothing — append-only files are never truncated here).
constexpr const char* kPersistHeader = "soap-bound-cache v1";

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* cache_outcome_name(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

/// One in-flight derivation: the leader publishes result-or-error and
/// notifies; followers wait.  Lives on the heap via shared_ptr so a
/// follower that outlives the shard's flight-map entry still sees the
/// publication.
struct BoundCache::Flight {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::optional<sdg::MultiStatementBound> result;
  std::exception_ptr error;
};

struct BoundCache::Shard {
  struct Entry {
    CacheKey key;
    sdg::MultiStatementBound bound;
  };

  mutable std::mutex mutex;
  /// front = most recently used.
  std::list<Entry> lru;
  std::unordered_map<CacheKey, std::list<Entry>::iterator> index;
  std::unordered_map<CacheKey, std::shared_ptr<Flight>> flights;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> evicted{0};
};

BoundCache::BoundCache(BoundCacheOptions options)
    : options_(std::move(options)) {
  const std::size_t nshards =
      round_up_pow2(options_.shards == 0 ? 1 : options_.shards);
  shard_mask_ = nshards - 1;
  per_shard_capacity_ =
      std::max<std::size_t>(1, (options_.max_entries + nshards - 1) / nshards);
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!options_.persist_path.empty()) {
    load_persisted();
    // Open for append after loading; write the header iff the file is new
    // or empty so restarts keep appending to the same warm file.
    std::ifstream probe(options_.persist_path);
    const bool empty = !probe || probe.peek() == std::ifstream::traits_type::eof();
    probe.close();
    persist_out_ = std::make_unique<std::ofstream>(
        options_.persist_path, std::ios::app);
    if (empty && *persist_out_) {
      *persist_out_ << kPersistHeader << '\n';
      persist_out_->flush();
    }
  }
}

BoundCache::~BoundCache() = default;

BoundCache::Shard& BoundCache::shard_of(const CacheKey& key) const {
  return *shards_[static_cast<std::size_t>(key.digest.hi) & shard_mask_];
}

CachedBound BoundCache::get_or_derive(
    const CacheKey& key,
    const std::function<sdg::MultiStatementBound()>& derive) {
  Shard& shard = shard_of(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.index.find(key); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return {it->second->bound, CacheOutcome::kHit};
    }
    if (auto it = shard.flights.find(key); it != shard.flights.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      shard.flights.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&flight] { return flight->done; });
    shard.coalesced.fetch_add(1, std::memory_order_relaxed);
    if (flight->error) std::rethrow_exception(flight->error);
    return {*flight->result, CacheOutcome::kCoalesced};
  }

  // Leader: derive outside every lock so distinct keys never serialize.
  std::optional<sdg::MultiStatementBound> bound;
  std::exception_ptr error;
  try {
    bound = derive();
  } catch (...) {
    error = std::current_exception();
  }
  // Store before retiring the flight: a request landing in between sees
  // the index entry (hit) rather than becoming a redundant leader.  A
  // degraded bound depends on wall-clock/budget state the key excludes,
  // so it is served to the coalesced waiters but never stored.
  if (!error && !bound->degraded) store(key, *bound, /*persist=*/true);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.flights.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = bound;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  if (error) std::rethrow_exception(error);
  return {*std::move(bound), CacheOutcome::kMiss};
}

std::optional<sdg::MultiStatementBound> BoundCache::lookup(
    const CacheKey& key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->bound;
}

void BoundCache::put(const CacheKey& key,
                     const sdg::MultiStatementBound& bound) {
  if (bound.degraded) return;
  store(key, bound, /*persist=*/true);
}

void BoundCache::store(const CacheKey& key,
                       const sdg::MultiStatementBound& bound, bool persist) {
  Shard& shard = shard_of(key);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.index.find(key); it != shard.index.end()) {
      // First store wins — a duplicate is necessarily the identical bound
      // (the key is a pure function of what derives it).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Shard::Entry{key, bound});
      shard.index.emplace(key, shard.lru.begin());
      inserted = true;
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        shard.evicted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Live-node budget (PR 8 gauge): dropping LRU entries releases their
  // Expr references, letting the weakly-held intern table reclaim nodes.
  // Bounded by this shard's size, so a budget below the process floor
  // degenerates to "cache nothing", never to a spin.
  if (options_.max_live_nodes != 0 &&
      support::live_node_count() > options_.max_live_nodes) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    while (!shard.lru.empty() &&
           support::live_node_count() > options_.max_live_nodes) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      shard.evicted.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (inserted && persist && persist_out_ != nullptr) {
    append_persisted(key, bound);
  }
}

void BoundCache::load_persisted() {
  std::ifstream in(options_.persist_path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line) || line != kPersistHeader) return;
  while (std::getline(in, line)) {
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;  // torn/garbage line
    const std::optional<support::Digest> digest =
        support::Digest::from_hex(std::string_view(line).substr(0, tab));
    if (!digest) continue;
    const std::optional<sdg::MultiStatementBound> bound =
        deserialize_bound(std::string_view(line).substr(tab + 1));
    if (!bound) continue;
    store(CacheKey{*digest}, *bound, /*persist=*/false);
    ++persisted_loaded_;
  }
}

void BoundCache::append_persisted(const CacheKey& key,
                                  const sdg::MultiStatementBound& bound) {
  const std::string record = serialize_bound(bound);
  std::lock_guard<std::mutex> lock(persist_mutex_);
  if (!*persist_out_) return;  // disk trouble: serve from memory only
  *persist_out_ << key.digest.hex() << '\t' << record << '\n';
  persist_out_->flush();
}

BoundCacheStats BoundCache::stats() const {
  BoundCacheStats s;
  s.persisted_loaded = persisted_loaded_;
  for (const auto& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.coalesced += shard->coalesced.load(std::memory_order_relaxed);
    s.evicted += shard->evicted.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.entries += shard->lru.size();
  }
  return s;
}

std::size_t BoundCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace soap::service
