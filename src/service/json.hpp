// Minimal JSON rendering for the serving surfaces (docs/SERVING.md).
//
// One line per reply/row, stable field order, no dependencies: the server
// protocol, `analyze_tool --json`, and the latency bench all emit through
// these helpers so the machine-readable shapes stay identical.  Doubles
// render with %.17g (round-trippable); the *text* output of every tool is
// untouched — JSON is strictly an additional surface.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/attainment.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"

namespace soap::service {

/// `"..."` with the JSON escapes (quote, backslash, control characters).
std::string json_string(std::string_view s);
/// Shortest round-trippable rendering of a double (%.17g; nan/inf render
/// as null, which JSON lacks).
std::string json_double(double v);

/// The bound fields shared by program replies and kernel rows, as an
/// object-body fragment (no braces):
///   "bound":"...","q_sdg":"...","q_cold":"...","degraded":false,
///   "subgraphs":12,"per_array":[{"array":"A","cdag_size":"...",
///   "rho":"...","rho_value":1.5},...]
std::string bound_json_fields(const sdg::MultiStatementBound& bound);

/// One corpus row: {"family":"...","kernel":"...","status":"ok",
/// "degraded":false,"bound":"..."} — failed kernels carry "bound":null and
/// an "error" field.
std::string outcome_json(const kernels::KernelOutcome& outcome);

/// Whole resilient corpus report: {"kernels":[...],"analyzed":N,
/// "failed":F,"degraded":D,"status":"..."} (status = worst per-kernel
/// class, "ok" when clean).
std::string corpus_json(const kernels::CorpusReport& report);

/// One attainment row (docs/ATTAINMENT.md) with the table's columns.
std::string attainment_row_json(const analysis::AttainmentRow& row);

/// Whole attainment table: {"rows":[...],"violations":V}.
std::string attainment_json(const std::vector<analysis::AttainmentRow>& rows);

}  // namespace soap::service
