#include "service/serialize.hpp"

#include <cctype>
#include <cstdint>
#include <cstring>
#include <vector>

namespace soap::service {

namespace {

using sym::Expr;
using sym::ExprVec;
using sym::Kind;

// --- int128 decimal (Rational::str renders "n/d"; we keep the halves
// separate so the parser never needs to split on '/'-in-name edge cases).

void append_i128(std::string& out, int128 v) {
  if (v == 0) {
    out += '0';
    return;
  }
  unsigned __int128 mag;
  if (v < 0) {
    out += '-';
    mag = static_cast<unsigned __int128>(-(v + 1)) + 1;  // avoid -INT128_MIN
  } else {
    mag = static_cast<unsigned __int128>(v);
  }
  char buf[48];
  int n = 0;
  while (mag != 0) {
    buf[n++] = static_cast<char>('0' + static_cast<int>(mag % 10));
    mag /= 10;
  }
  while (n > 0) out += buf[--n];
}

bool parse_i128(std::string_view s, int128& out) {
  if (s.empty()) return false;
  bool negative = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  if (s.size() - i > 39) return false;  // beyond int128 magnitude
  unsigned __int128 mag = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    mag = mag * 10 + static_cast<unsigned>(s[i] - '0');
  }
  constexpr unsigned __int128 kMax =
      (static_cast<unsigned __int128>(1) << 127);  // |INT128_MIN|
  if (negative ? mag > kMax : mag >= kMax) return false;
  if (negative) {
    out = static_cast<int128>(~mag + 1);  // two's-complement negate
  } else {
    out = static_cast<int128>(mag);
  }
  return true;
}

void append_rational(std::string& out, const Rational& r) {
  append_i128(out, r.num());
  if (!r.is_integer()) {
    out += '/';
    append_i128(out, r.den());
  }
}

bool parse_rational(std::string_view s, Rational& out) {
  const std::size_t slash = s.find('/');
  int128 num = 0;
  int128 den = 1;
  if (slash == std::string_view::npos) {
    if (!parse_i128(s, num)) return false;
  } else {
    if (!parse_i128(s.substr(0, slash), num)) return false;
    if (!parse_i128(s.substr(slash + 1), den)) return false;
    if (den == 0) return false;
  }
  out = Rational(num, den);
  return true;
}

// --- token cursor: '(' / ')' are single-character tokens, everything else
// splits on whitespace.

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  /// Next token, or empty view at end of input.
  std::string_view next() {
    skip_ws();
    if (pos_ >= text_.size()) return {};
    if (text_[pos_] == '(' || text_[pos_] == ')') {
      return text_.substr(pos_++, 1);
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_expr(std::string& out, const Expr& e) {
  switch (e.kind()) {
    case Kind::kConst:
      out += "(c ";
      append_rational(out, e.value());
      out += ')';
      return;
    case Kind::kSymbol:
      out += "(s ";
      out += e.name();
      out += ')';
      return;
    case Kind::kPow:
      out += "(^ ";
      write_expr(out, e.operands()[0]);
      out += ' ';
      append_rational(out, e.exponent());
      out += ')';
      return;
    case Kind::kAdd:
    case Kind::kMul:
    case Kind::kMin:
    case Kind::kMax: {
      out += '(';
      out += e.kind() == Kind::kAdd   ? "+"
             : e.kind() == Kind::kMul ? "*"
             : e.kind() == Kind::kMin ? "min"
                                      : "max";
      for (const Expr& op : e.operands()) {
        out += ' ';
        write_expr(out, op);
      }
      out += ')';
      return;
    }
  }
}

std::optional<Expr> read_expr(Cursor& cursor) {
  if (cursor.next() != "(") return std::nullopt;
  const std::string_view head = cursor.next();
  if (head == "c") {
    Rational r;
    if (!parse_rational(cursor.next(), r)) return std::nullopt;
    if (cursor.next() != ")") return std::nullopt;
    return Expr::constant(r);
  }
  if (head == "s") {
    const std::string_view name = cursor.next();
    if (name.empty() || name == ")" || name == "(") return std::nullopt;
    if (cursor.next() != ")") return std::nullopt;
    return Expr::symbol(std::string(name));
  }
  if (head == "^") {
    std::optional<Expr> base = read_expr(cursor);
    if (!base) return std::nullopt;
    Rational e;
    if (!parse_rational(cursor.next(), e)) return std::nullopt;
    if (cursor.next() != ")") return std::nullopt;
    return sym::pow(*base, e);
  }
  if (head == "+" || head == "*" || head == "min" || head == "max") {
    // Peek-free loop: read sub-expressions until the closing paren.  We
    // need one token of lookahead, so re-tokenize via a tiny buffer.
    ExprVec operands;
    while (true) {
      // Every operand starts with '('; a ')' closes this node.  Copy the
      // cursor to peek without a dedicated pushback mechanism.
      Cursor peek = cursor;
      const std::string_view tok = peek.next();
      if (tok == ")") {
        cursor = peek;
        break;
      }
      if (tok != "(") return std::nullopt;
      std::optional<Expr> op = read_expr(cursor);
      if (!op) return std::nullopt;
      operands.push_back(*op);
    }
    if (operands.empty()) return std::nullopt;
    if (head == "+") return sym::make_add(std::move(operands));
    if (head == "*") return sym::make_mul(std::move(operands));
    if (head == "min") return sym::min(std::move(operands));
    return sym::max(std::move(operands));
  }
  return std::nullopt;
}

void append_double_bits(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out += buf;
}

bool parse_double_bits(std::string_view s, double& out) {
  if (s.size() != 16) return false;
  std::uint64_t bits = 0;
  for (const char c : s) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(v);
  }
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

std::string serialize_expr(const Expr& e) {
  std::string out;
  write_expr(out, e);
  return out;
}

std::optional<Expr> deserialize_expr(std::string_view text) {
  Cursor cursor(text);
  std::optional<Expr> e = read_expr(cursor);
  if (!e || !cursor.at_end()) return std::nullopt;
  return e;
}

std::string serialize_bound(const sdg::MultiStatementBound& bound) {
  std::string out = "b1 ";
  write_expr(out, bound.Q_leading);
  out += ' ';
  write_expr(out, bound.Q_sdg);
  out += ' ';
  write_expr(out, bound.Q_cold);
  out += ' ';
  out += std::to_string(bound.subgraphs_evaluated);
  out += ' ';
  out += std::to_string(bound.per_array.size());
  for (const sdg::ArrayBound& a : bound.per_array) {
    out += ' ';
    out += a.array;
    out += ' ';
    write_expr(out, a.cdag_size);
    out += ' ';
    write_expr(out, a.rho);
    out += ' ';
    append_double_bits(out, a.rho_value);
    out += ' ';
    out += std::to_string(a.best_subgraph.size());
    for (const std::string& s : a.best_subgraph) {
      out += ' ';
      out += s;
    }
  }
  return out;
}

std::optional<sdg::MultiStatementBound> deserialize_bound(
    std::string_view text) {
  Cursor cursor(text);
  if (cursor.next() != "b1") return std::nullopt;
  sdg::MultiStatementBound bound;
  std::optional<Expr> e;
  if (!(e = read_expr(cursor))) return std::nullopt;
  bound.Q_leading = *e;
  if (!(e = read_expr(cursor))) return std::nullopt;
  bound.Q_sdg = *e;
  if (!(e = read_expr(cursor))) return std::nullopt;
  bound.Q_cold = *e;
  std::uint64_t subgraphs = 0;
  std::uint64_t narrays = 0;
  if (!parse_u64(cursor.next(), subgraphs)) return std::nullopt;
  if (!parse_u64(cursor.next(), narrays)) return std::nullopt;
  if (narrays > 100000) return std::nullopt;  // sanity bound on torn input
  bound.subgraphs_evaluated = static_cast<std::size_t>(subgraphs);
  bound.per_array.reserve(static_cast<std::size_t>(narrays));
  for (std::uint64_t i = 0; i < narrays; ++i) {
    sdg::ArrayBound a;
    const std::string_view name = cursor.next();
    if (name.empty() || name == "(" || name == ")") return std::nullopt;
    a.array = std::string(name);
    if (!(e = read_expr(cursor))) return std::nullopt;
    a.cdag_size = *e;
    if (!(e = read_expr(cursor))) return std::nullopt;
    a.rho = *e;
    if (!parse_double_bits(cursor.next(), a.rho_value)) return std::nullopt;
    std::uint64_t nbest = 0;
    if (!parse_u64(cursor.next(), nbest)) return std::nullopt;
    if (nbest > 100000) return std::nullopt;
    a.best_subgraph.reserve(static_cast<std::size_t>(nbest));
    for (std::uint64_t j = 0; j < nbest; ++j) {
      const std::string_view stmt = cursor.next();
      if (stmt.empty() || stmt == "(" || stmt == ")") return std::nullopt;
      a.best_subgraph.emplace_back(stmt);
    }
    bound.per_array.push_back(std::move(a));
  }
  if (!cursor.at_end()) return std::nullopt;
  return bound;
}

}  // namespace soap::service
