#include "service/cache_key.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "support/interner.hpp"

namespace soap::service {

namespace {

using support::Digest;
using support::DigestWriter;

// Record tags.  Part of the persisted digest format — extend, never renumber
// (bump support::kDigestFormatVersion instead).
enum Tag : std::uint8_t {
  kConst = 1,
  kSymbol = 2,
  kAdd = 3,
  kMul = 4,
  kPow = 5,
  kMin = 6,
  kMax = 7,
  kAffine = 8,
  kAccess = 9,
  kLoop = 10,
  kStatement = 11,
  kProgram = 12,
  kOptions = 13,
};

void mix_rational(DigestWriter& w, const Rational& r) {
  // int128 halves, low word first; the sign rides in the high word's
  // two's complement.
  const auto mix_i128 = [&w](int128 v) {
    w.mix_u64(static_cast<std::uint64_t>(static_cast<unsigned __int128>(v)));
    w.mix_u64(
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(v) >> 64));
  };
  mix_i128(r.num());
  mix_i128(r.den());
}

Digest expr_digest_impl(const sym::Expr& e, ExprDigestMemo& memo) {
  if (auto it = memo.find(e); it != memo.end()) return it->second;
  DigestWriter w;
  switch (e.kind()) {
    case sym::Kind::kConst:
      w.mix_tag(kConst);
      mix_rational(w, e.value());
      break;
    case sym::Kind::kSymbol:
      // By name, never SymId: ids are handed out in process-local intern
      // order and would alias across runs.
      w.mix_tag(kSymbol);
      w.mix_string(e.name());
      break;
    case sym::Kind::kPow:
      w.mix_tag(kPow);
      w.mix_digest(expr_digest_impl(e.operands()[0], memo));
      mix_rational(w, e.exponent());
      break;
    case sym::Kind::kAdd:
    case sym::Kind::kMul:
    case sym::Kind::kMin:
    case sym::Kind::kMax: {
      const std::uint8_t tag = e.kind() == sym::Kind::kAdd   ? kAdd
                               : e.kind() == sym::Kind::kMul ? kMul
                               : e.kind() == sym::Kind::kMin ? kMin
                                                             : kMax;
      w.mix_tag(tag);
      w.mix_u64(e.operands().size());
      // Stored operand order is the canonical structural order (Expr's
      // compare()), which is content-determined — safe to digest as-is.
      for (const sym::Expr& op : e.operands()) {
        w.mix_digest(expr_digest_impl(op, memo));
      }
      break;
    }
  }
  Digest d = w.finish();
  memo.emplace(e, d);
  return d;
}

void mix_affine(DigestWriter& w, const Affine& a) {
  w.mix_tag(kAffine);
  mix_rational(w, a.constant());
  // SymMap iterates in SymId (intern) order — process-local; sort the
  // coefficient list by variable name for a stable stream.
  std::vector<std::pair<std::string, Rational>> coeffs;
  coeffs.reserve(a.coeffs().size());
  for (const auto& [id, c] : a.coeffs()) {
    coeffs.emplace_back(symbol_name(id), c);
  }
  std::sort(coeffs.begin(), coeffs.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  w.mix_u64(coeffs.size());
  for (const auto& [name, c] : coeffs) {
    w.mix_string(name);
    mix_rational(w, c);
  }
}

void mix_access(DigestWriter& w, const ArrayAccess& access) {
  w.mix_tag(kAccess);
  w.mix_string(access.array);
  w.mix_u64(access.components.size());
  for (const AccessComponent& component : access.components) {
    w.mix_u64(component.index.size());
    for (const Affine& a : component.index) mix_affine(w, a);
  }
}

void mix_statement(DigestWriter& w, const Statement& s) {
  w.mix_tag(kStatement);
  w.mix_string(s.name);
  w.mix_u64(s.domain.loops().size());
  for (const Loop& loop : s.domain.loops()) {
    w.mix_tag(kLoop);
    w.mix_string(loop.var);
    mix_affine(w, loop.lower);
    mix_affine(w, loop.upper);
  }
  mix_access(w, s.output);
  w.mix_u64(s.inputs.size());
  for (const ArrayAccess& input : s.inputs) mix_access(w, input);
  // std::map: already sorted by array name.
  w.mix_u64(s.max_overlap_dims.size());
  for (const auto& [array, dims] : s.max_overlap_dims) {
    w.mix_string(array);
    w.mix_u64(dims.size());
    for (const int d : dims) w.mix_i64(d);
  }
}

}  // namespace

Digest expr_digest(const sym::Expr& e, ExprDigestMemo& memo) {
  return expr_digest_impl(e, memo);
}

Digest expr_digest(const sym::Expr& e) {
  ExprDigestMemo memo;
  return expr_digest_impl(e, memo);
}

Digest program_digest(const Program& program) {
  DigestWriter w;
  ExprDigestMemo memo;
  w.mix_tag(kProgram);
  w.mix_u64(program.statements.size());
  for (const Statement& s : program.statements) mix_statement(w, s);
  // std::map: already sorted by array name.
  w.mix_u64(program.array_size_hint.size());
  for (const auto& [array, size] : program.array_size_hint) {
    w.mix_string(array);
    w.mix_digest(expr_digest_impl(size, memo));
  }
  return w.finish();
}

CacheKey make_cache_key(const Program& program,
                        const sdg::SdgOptions& options) {
  DigestWriter w;
  w.mix_u64(support::kDigestFormatVersion);
  w.mix_digest(program_digest(program));
  // Only the fields that change *what* is derived; see the header comment
  // for the exclusion rationale.
  w.mix_tag(kOptions);
  w.mix_u64(options.max_subgraph_size);
  w.mix_u64(options.max_subgraphs);
  w.mix_bool(options.use_cold_bound);
  // Backends may legitimately land on different (equally valid) numeric
  // constants, so a cached bound is only reusable under the backend that
  // derived it.
  w.mix_u64(static_cast<std::uint64_t>(options.optimizer));
  return CacheKey{w.finish()};
}

}  // namespace soap::service
