// The `analyzed` request loop (docs/SERVING.md): DSL programs in,
// cache-served bounds out, over any istream/ostream pair (stdin/stdout in
// the tool's default mode, a connected socket under --listen).
//
// Protocol — newline-delimited requests, one single-line JSON reply each,
// tagged with the request id (client-chosen via id=..., else assigned
// sequentially):
//
//   analyze [k=v ...]        analyze the DSL program on the following
//   <program lines>          lines; body ends at a line reading `end`.
//   end                      keys: id, timeout-ms, node-budget,
//                            max-subgraph-size, max-subgraphs, optimizer
//   kernel NAME [k=v ...]    analyze a registered kernel with its recorded
//                            configuration (keys: id, timeout-ms,
//                            node-budget, optimizer)
//   stats [k=v ...]          drain in-flight requests, then report cache
//                            counters, hit rate, and service p50/p99
//                            latency (keys: id)
//   cancel ID                request cancellation of in-flight request ID
//   quit                     drain and exit cleanly (EOF does the same)
//
// Requests run concurrently (up to ServerOptions::request_threads in
// flight) over the configured executor; replies are serialized onto the
// output stream whole-line-at-a-time in completion order.  Every
// derivation routes through the shared BoundCache, so identical programs
// — across requests, clients, and (with persistence) restarts — are
// served at cache speed, and concurrent duplicates coalesce onto one
// derivation.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>

#include "bounds/opt/types.hpp"
#include "service/bound_cache.hpp"
#include "support/executor.hpp"

namespace soap::service {

struct ServerOptions {
  BoundCacheOptions cache;
  /// Max requests in flight at once (1 = serve serially in the reader
  /// thread; the protocol stays valid either way).
  std::size_t request_threads = 4;
  /// Subgraph-shard threads per analysis (SdgOptions::threads).
  std::size_t analysis_threads = 1;
  /// Executor for both request dispatch and the analyses' inner shards.
  support::ExecutorRef executor;
  /// Default per-request wall-clock deadline in ms (0 = unlimited);
  /// overridable per request with timeout-ms=N.
  std::size_t default_timeout_ms = 0;
  /// Default per-request live-node budget (0 = unlimited); overridable per
  /// request with node-budget=N.
  std::size_t default_node_budget = 0;
  /// Default numeric-optimizer backend (docs/OPTIMIZER.md); nullopt keeps
  /// each request's recorded/default configuration.  Overridable per
  /// request with optimizer=NAME.  Part of the cache key, so replies under
  /// different backends never alias.
  std::optional<bounds::opt::BackendKind> optimizer;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Reads requests from `in` until `quit` or EOF, writing one JSON reply
  /// line per request to `out`.  Returns the process exit code (0 on a
  /// clean quit/EOF).  One serve loop at a time per Server; the cache
  /// persists across serve calls.
  int serve(std::istream& in, std::ostream& out);

  [[nodiscard]] BoundCache& cache() { return *cache_; }

 private:
  struct Impl;

  ServerOptions options_;
  std::unique_ptr<BoundCache> cache_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace soap::service
