// The memoized bound cache behind `analyzed` and `analyze_tool --cache`
// (docs/SERVING.md).
//
// A sharded in-memory LRU keyed on service::CacheKey (stable content
// digests, cache_key.hpp) holding complete MultiStatementBound results.
// Three properties carry the serving story:
//
//   * Single-flight coalescing.  Concurrent requests for the same key
//     block on ONE derivation instead of duplicating it: the first caller
//     becomes the leader and derives outside every lock; followers wait on
//     the flight's condition variable and wake to the leader's result (or
//     its rethrown exception).  The stress suite asserts a key is never
//     derived twice concurrently.
//
//   * Bit-identical results.  A hit returns the stored bound, whose Exprs
//     are the very interned nodes the derivation produced (hash-consing
//     makes structural equality pointer identity), so cache-on vs
//     cache-off output is byte-identical.  Degraded bounds (deadline or
//     budget trips, docs/ROBUSTNESS.md) are *never stored* — they depend
//     on wall-clock/budget state the key deliberately excludes.
//
//   * Bounded footprint.  Per-shard LRU eviction enforces max_entries, and
//     an optional max_live_nodes budget is polled against the PR 8
//     live-node gauge (support::live_node_count — the sharded intern
//     table's live count): after an insertion pushes the gauge past the
//     budget, least-recently-used entries are dropped so their Expr
//     references release interned nodes back to the weakly-held table.
//
// Optional persistence: an append-only file of `digest<TAB>record` lines
// (service/serialize.hpp) written on every store and loaded at
// construction, so a restarted server starts warm.  Torn or stale lines
// are skipped, never fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sdg/multi_statement.hpp"
#include "service/cache_key.hpp"

namespace soap::service {

struct BoundCacheOptions {
  /// Total cached-entry capacity across all shards (rounded up to a
  /// per-shard slice); at least one entry per shard.
  std::size_t max_entries = 4096;
  /// Live interned-node budget (0 = unlimited): after a store pushes
  /// support::live_node_count() past this, LRU entries are evicted until
  /// the gauge drops back or the cache is empty.
  std::size_t max_live_nodes = 0;
  /// Lock shards (rounded up to a power of two, at least 1).
  std::size_t shards = 8;
  /// Append-only persistence file ("" = in-memory only): loaded at
  /// construction, appended on every fresh store.
  std::string persist_path;
};

/// How a get_or_derive call was satisfied.
enum class CacheOutcome : std::uint8_t {
  kHit,        ///< already cached
  kMiss,       ///< this caller derived it
  kCoalesced,  ///< waited on a concurrent derivation of the same key
};

[[nodiscard]] const char* cache_outcome_name(CacheOutcome outcome) noexcept;

struct BoundCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t evicted = 0;
  std::uint64_t persisted_loaded = 0;  ///< entries loaded at construction
  std::size_t entries = 0;             ///< currently cached

  [[nodiscard]] std::uint64_t requests() const {
    return hits + misses + coalesced;
  }
  /// Served-without-deriving fraction of all requests (hits + coalesced).
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t r = requests();
    return r == 0 ? 0.0 : static_cast<double>(hits + coalesced) /
                              static_cast<double>(r);
  }
};

struct CachedBound {
  sdg::MultiStatementBound bound;
  CacheOutcome outcome = CacheOutcome::kMiss;
};

class BoundCache {
 public:
  explicit BoundCache(BoundCacheOptions options = {});
  ~BoundCache();

  BoundCache(const BoundCache&) = delete;
  BoundCache& operator=(const BoundCache&) = delete;

  /// The serving entry point.  Returns the cached bound for `key`, or runs
  /// `derive` (at most once across all concurrent callers of this key) and
  /// caches its result.  `derive` runs outside every cache lock, so
  /// derivations of different keys proceed fully in parallel; its
  /// exceptions propagate to every caller of the in-flight key.  Degraded
  /// results are returned but not stored.
  CachedBound get_or_derive(
      const CacheKey& key,
      const std::function<sdg::MultiStatementBound()>& derive);

  /// Read-only probe (counts a hit on success, nothing on absence).
  std::optional<sdg::MultiStatementBound> lookup(const CacheKey& key);

  /// Unconditional store (used by the persistence loader and tests);
  /// degraded bounds are ignored.
  void put(const CacheKey& key, const sdg::MultiStatementBound& bound);

  [[nodiscard]] BoundCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Shard;
  struct Flight;

  Shard& shard_of(const CacheKey& key) const;
  /// Store into the shard (LRU front), run evictions, optionally persist.
  void store(const CacheKey& key, const sdg::MultiStatementBound& bound,
             bool persist);
  void load_persisted();
  void append_persisted(const CacheKey& key,
                        const sdg::MultiStatementBound& bound);

  BoundCacheOptions options_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex persist_mutex_;
  std::unique_ptr<std::ofstream> persist_out_;
  std::uint64_t persisted_loaded_ = 0;
};

}  // namespace soap::service
