#include "service/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/cancel.hpp"

namespace soap::service {

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string bound_json_fields(const sdg::MultiStatementBound& bound) {
  std::string out = "\"bound\":" + json_string(bound.Q_leading.str());
  out += ",\"q_sdg\":" + json_string(bound.Q_sdg.str());
  out += ",\"q_cold\":" + json_string(bound.Q_cold.str());
  out += ",\"degraded\":";
  out += bound.degraded ? "true" : "false";
  if (bound.degraded) {
    out += ",\"degraded_reason\":";
    out += json_string(support::status_code_name(bound.degraded_reason));
  }
  out += ",\"subgraphs\":" + std::to_string(bound.subgraphs_evaluated);
  out += ",\"per_array\":[";
  bool first = true;
  for (const sdg::ArrayBound& a : bound.per_array) {
    if (!first) out += ',';
    first = false;
    out += "{\"array\":" + json_string(a.array);
    out += ",\"cdag_size\":" + json_string(a.cdag_size.str());
    out += ",\"rho\":" + json_string(a.rho.str());
    out += ",\"rho_value\":" + json_double(a.rho_value);
    out += '}';
  }
  out += ']';
  return out;
}

std::string outcome_json(const kernels::KernelOutcome& outcome) {
  std::string out = "{\"family\":" + json_string(outcome.family);
  out += ",\"kernel\":" + json_string(outcome.kernel);
  out += ",\"status\":";
  out += json_string(support::status_code_name(outcome.status));
  out += ",\"degraded\":";
  out += outcome.degraded ? "true" : "false";
  out += ",\"bound\":";
  out += outcome.ok() ? json_string(outcome.bound->str()) : "null";
  if (!outcome.message.empty()) {
    out += ",\"error\":" + json_string(outcome.message);
  }
  out += '}';
  return out;
}

std::string corpus_json(const kernels::CorpusReport& report) {
  std::string out = "{\"kernels\":[";
  bool first = true;
  for (const kernels::KernelOutcome& k : report.kernels) {
    if (!first) out += ',';
    first = false;
    out += outcome_json(k);
  }
  out += "],\"analyzed\":" + std::to_string(report.kernels.size());
  out += ",\"failed\":" + std::to_string(report.failed());
  out += ",\"degraded\":" + std::to_string(report.degraded_count());
  out += ",\"status\":";
  out += json_string(support::status_code_name(report.worst_status()));
  out += '}';
  return out;
}

std::string attainment_row_json(const analysis::AttainmentRow& row) {
  std::string out = "{\"family\":" + json_string(row.family);
  out += ",\"kernel\":" + json_string(row.kernel);
  out += ",\"S\":" + std::to_string(row.S);
  out += ",\"statements\":" + std::to_string(row.statements);
  out += ",\"fused\":";
  out += row.fused ? "true" : "false";
  out += ",\"degraded\":";
  out += row.degraded ? "true" : "false";
  out += ",\"params\":{";
  bool first = true;
  for (const auto& [name, value] : row.params) {
    if (!first) out += ',';
    first = false;
    out += json_string(name) + ":" + std::to_string(value);
  }
  out += "},\"q_lb\":" + json_double(row.Q_lb);
  out += ",\"q_sim_lru\":" + std::to_string(row.Q_sim_lru);
  out += ",\"q_sim_belady\":" + std::to_string(row.Q_sim_belady);
  out += ",\"ratio\":" + json_double(row.ratio());
  out += ",\"trace_length\":" + std::to_string(row.trace_length);
  out += ",\"footprint\":" + std::to_string(row.footprint);
  out += ",\"sound\":";
  out += row.sound() ? "true" : "false";
  out += '}';
  return out;
}

std::string attainment_json(
    const std::vector<analysis::AttainmentRow>& rows) {
  std::string out = "{\"rows\":[";
  bool first = true;
  for (const analysis::AttainmentRow& row : rows) {
    if (!first) out += ',';
    first = false;
    out += attainment_row_json(row);
  }
  out += "],\"violations\":" + std::to_string(analysis::count_unsound(rows));
  out += '}';
  return out;
}

}  // namespace soap::service
