#include "service/analyze.hpp"

#include <utility>

#include "support/parallel.hpp"

namespace soap::service {

namespace {

/// Internal sentinel for "multi_statement_bound returned nullopt" — the
/// derive callback must produce a bound or throw, and a program with
/// unlimited reuse produces neither a bound nor an error.  Caught (and for
/// coalesced waiters, re-caught) inside this translation unit only.
struct NoNontrivialBound {};

}  // namespace

ProgramAnalysis analyze_program_cached(BoundCache& cache,
                                       const Program& program,
                                       const sdg::SdgOptions& options) {
  ProgramAnalysis out;
  out.key = make_cache_key(program, options);
  try {
    CachedBound cached = cache.get_or_derive(out.key, [&program, &options] {
      std::optional<sdg::MultiStatementBound> bound =
          sdg::multi_statement_bound(program, options);
      if (!bound) throw NoNontrivialBound{};
      return *std::move(bound);
    });
    out.bound = std::move(cached.bound);
    out.outcome = cached.outcome;
  } catch (const NoNontrivialBound&) {
    // Not cached (there is no bound to store): every request for such a
    // program re-derives, exactly like the uncached path.
    out.bound = std::nullopt;
    out.outcome = CacheOutcome::kMiss;
  }
  return out;
}

kernels::KernelOutcome analyze_kernel_cached(
    BoundCache& cache, const kernels::KernelEntry& entry, std::size_t threads,
    support::ExecutorRef executor, const support::StopCriteria& stop,
    CacheOutcome* cache_outcome,
    std::optional<bounds::opt::BackendKind> optimizer) {
  kernels::KernelOutcome out;
  out.kernel = entry.name;
  out.family = entry.family;
  try {
    Program program = entry.build();
    sdg::SdgOptions options = entry.options;
    options.threads = threads;
    options.executor = executor;
    options.stop = stop;
    if (optimizer) options.optimizer = *optimizer;
    ProgramAnalysis analysis = analyze_program_cached(cache, program, options);
    if (cache_outcome != nullptr) *cache_outcome = analysis.outcome;
    if (!analysis.bound) {
      out.status = support::StatusCode::kInvalidInput;
      out.message = "no non-trivial bound (unlimited reuse)";
      return out;
    }
    out.bound = analysis.bound->Q_leading;
    out.degraded = analysis.bound->degraded;
    out.status = analysis.bound->degraded ? analysis.bound->degraded_reason
                                          : support::StatusCode::kOk;
  } catch (const support::AnalysisError& error) {
    out.status = error.code();
    out.message = error.what();
  } catch (const std::exception& error) {
    out.status = support::StatusCode::kInternalError;
    out.message = error.what();
  }
  return out;
}

kernels::CorpusReport analyze_corpus_cached(
    BoundCache& cache, const std::vector<const kernels::KernelEntry*>& kernels,
    const kernels::CorpusOptions& options) {
  support::ParallelOptions par;
  par.threads = options.threads;
  par.executor = options.executor;
  // Same shape as analyze_corpus_resilient: no par.cancel (each kernel
  // observes the token itself, keeping partial results), slot-per-kernel
  // determinism.  Identical kernels in the input coalesce onto one
  // derivation instead of racing.
  kernels::CorpusReport report;
  report.kernels = support::parallel_map<kernels::KernelOutcome>(
      kernels.size(), par, [&cache, &kernels, &options](std::size_t i) {
        return analyze_kernel_cached(cache, *kernels[i], options.threads,
                                     options.executor, options.stop, nullptr,
                                     options.optimizer);
      });
  return report;
}

}  // namespace soap::service
