// Textual round-trip serialization for persisted cache values
// (docs/SERVING.md, "Persistence format").
//
// Expressions serialize as single-line s-expressions over the canonical
// node structure — `(+ (c 2) (* (s N) (^ (s S) -1/2)))` — with constants
// as exact rationals, symbols by name, and operands in stored canonical
// order.  Deserialization rebuilds through the public canonicalizing
// constructors (make_add/make_mul/pow/min/max), and because the serialized
// operand lists are already canonical, the rebuilt node is *the same
// interned node* the original Expr pointed at: the round trip is not just
// bit-identical but pointer-identical within a process, and bit-identical
// across processes.
//
// A MultiStatementBound serializes as one whitespace-separated token line
// ("b1 <Q_leading> <Q_sdg> <Q_cold> <subgraphs> <#arrays> ...");
// rho_value doubles are stored as their IEEE-754 bit pattern in hex so the
// round trip is exact.  Degraded bounds are never serialized (the cache
// never stores them).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sdg/multi_statement.hpp"
#include "symbolic/expr.hpp"

namespace soap::service {

/// Single-line canonical s-expression of `e`.
std::string serialize_expr(const sym::Expr& e);
/// Parses serialize_expr output; nullopt on malformed input (never throws
/// on garbage — persisted files may carry a torn final line).
std::optional<sym::Expr> deserialize_expr(std::string_view text);

/// Single-line record of a (non-degraded) bound.
std::string serialize_bound(const sdg::MultiStatementBound& bound);
/// Parses serialize_bound output; nullopt on malformed input.
std::optional<sdg::MultiStatementBound> deserialize_bound(
    std::string_view text);

}  // namespace soap::service
