#include "pebbles/heuristic.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

namespace soap::pebbles {

namespace {

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

}  // namespace

ScheduleResult scheduled_pebbling(const Cdag& cdag, std::size_t S,
                                  const std::vector<std::size_t>& compute_order,
                                  Replacement policy) {
  const std::size_t n = cdag.size();
  ScheduleResult r;

  // Uses of each vertex: the steps at which it is a parent of the computed
  // vertex.  use_lists power both Belady and liveness.
  std::vector<std::vector<std::size_t>> uses(n);
  for (std::size_t step = 0; step < compute_order.size(); ++step) {
    for (std::size_t p : cdag.graph().parents(compute_order[step])) {
      uses[p].push_back(step);
    }
  }
  std::vector<bool> is_output(n, false);
  for (std::size_t v : cdag.outputs()) is_output[v] = true;

  std::vector<bool> red(n, false);
  std::vector<bool> blue(n, false);
  std::vector<bool> computed(n, false);
  for (std::size_t v : cdag.inputs()) blue[v] = true;
  std::vector<std::size_t> next_use_idx(n, 0);
  std::vector<std::size_t> last_touch(n, 0);
  std::set<std::size_t> in_cache;
  std::size_t clock = 0;

  auto next_use = [&](std::size_t v, std::size_t now) {
    std::size_t& idx = next_use_idx[v];
    while (idx < uses[v].size() && uses[v][idx] < now) ++idx;
    return idx < uses[v].size() ? uses[v][idx] : kNever;
  };

  auto evict_one = [&](const std::set<std::size_t>& pinned, std::size_t now) {
    std::size_t victim = kNever;
    if (policy == Replacement::kBelady) {
      std::size_t worst = 0;
      for (std::size_t v : in_cache) {
        if (pinned.count(v)) continue;
        std::size_t nu = next_use(v, now);
        if (victim == kNever || nu > worst ||
            (nu == worst && last_touch[v] < last_touch[victim])) {
          victim = v;
          worst = nu;
        }
        if (nu == kNever) break;  // cannot do better
      }
    } else {
      std::size_t oldest = kNever;
      for (std::size_t v : in_cache) {
        if (pinned.count(v)) continue;
        if (victim == kNever || last_touch[v] < oldest) {
          victim = v;
          oldest = last_touch[v];
        }
      }
    }
    if (victim == kNever) {
      throw std::runtime_error(
          "scheduled_pebbling: S too small for a statement's working set");
    }
    bool live = is_output[victim] || next_use(victim, now) != kNever;
    if (live && computed[victim] && !blue[victim]) {
      r.moves.push_back({MoveType::kStore, victim});
      blue[victim] = true;
      ++r.stores;
    }
    r.moves.push_back({MoveType::kDiscardRed, victim});
    red[victim] = false;
    in_cache.erase(victim);
  };

  auto ensure_room = [&](const std::set<std::size_t>& pinned,
                         std::size_t now) {
    while (in_cache.size() >= S) evict_one(pinned, now);
  };

  for (std::size_t step = 0; step < compute_order.size(); ++step) {
    std::size_t v = compute_order[step];
    std::set<std::size_t> pinned = {v};
    for (std::size_t p : cdag.graph().parents(v)) pinned.insert(p);
    if (pinned.size() > S) {
      throw std::runtime_error(
          "scheduled_pebbling: statement needs more than S operands");
    }
    for (std::size_t p : cdag.graph().parents(v)) {
      if (red[p]) {
        last_touch[p] = ++clock;
        continue;
      }
      if (!blue[p]) {
        throw std::logic_error(
            "scheduled_pebbling: operand neither cached nor in slow memory "
            "(order not topological?)");
      }
      ensure_room(pinned, step);
      r.moves.push_back({MoveType::kLoad, p});
      red[p] = true;
      in_cache.insert(p);
      last_touch[p] = ++clock;
      ++r.loads;
    }
    ensure_room(pinned, step);
    r.moves.push_back({MoveType::kCompute, v});
    red[v] = true;
    computed[v] = true;
    in_cache.insert(v);
    last_touch[v] = ++clock;
  }
  // Flush outputs.
  for (std::size_t v : cdag.outputs()) {
    if (!blue[v]) {
      if (!red[v]) {
        throw std::logic_error("scheduled_pebbling: output lost");
      }
      r.moves.push_back({MoveType::kStore, v});
      blue[v] = true;
      ++r.stores;
    }
  }
  r.io_cost = r.loads + r.stores;
  return r;
}

ScheduleResult natural_order_pebbling(const Cdag& cdag, std::size_t S,
                                      Replacement policy) {
  std::vector<std::size_t> order;
  for (std::size_t v : cdag.graph().topological_order()) {
    if (!cdag.graph().parents(v).empty()) order.push_back(v);
  }
  return scheduled_pebbling(cdag, S, order, policy);
}

}  // namespace soap::pebbles
