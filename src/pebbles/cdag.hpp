// Concrete Computational DAGs: vertices are data (inputs or results of
// computations), edges are data dependencies (Section 2.1 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace soap::pebbles {

class Cdag {
 public:
  /// Adds a vertex; `label` is a human-readable name like "A[2,3]@1".
  std::size_t add_vertex(std::string label);
  void add_edge(std::size_t from, std::size_t to) {
    graph_.add_edge(from, to);
  }
  void mark_output(std::size_t v);

  [[nodiscard]] std::size_t size() const { return graph_.size(); }
  [[nodiscard]] const graph::Digraph& graph() const { return graph_; }
  [[nodiscard]] const std::string& label(std::size_t v) const {
    return labels_[v];
  }
  /// Vertices with in-degree 0 (program inputs, start with blue pebbles).
  [[nodiscard]] std::vector<std::size_t> inputs() const;
  /// Marked output vertices (must end with blue pebbles); falls back to all
  /// sinks when none were marked.
  [[nodiscard]] std::vector<std::size_t> outputs() const;

  [[nodiscard]] std::string dot() const;

 private:
  graph::Digraph graph_;
  std::vector<std::string> labels_;
  std::vector<std::size_t> marked_outputs_;
};

}  // namespace soap::pebbles
