// Sharded pebble-game validation: batch entry points that fan the
// machine-checking path of Section 2 — CDAG instantiation, scheduled-pebbling
// generation, move-sequence replay (game.cpp), and the exhaustive optimal
// oracle — across an injectable executor with deterministic, slot-per-job
// merging.  Every function here is a pure per-job map: sharding decides only
// who runs a job, never what it computes or which slot the result lands in,
// so the output vector is bit-identical for every thread count and executor.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pebbles/game.hpp"
#include "pebbles/heuristic.hpp"
#include "pebbles/instantiate.hpp"
#include "pebbles/optimal.hpp"
#include "support/executor.hpp"

namespace soap::pebbles {

/// Worker budget + executor for the sharded validation entry points.
struct ShardOptions {
  /// Counting the calling thread: 1 = serial (default), 0 = hardware, N =
  /// up to N.
  std::size_t threads = 1;
  /// Where helper workers run; default = the process-global pool.
  support::ExecutorRef executor;
};

/// One CDAG instantiation job: a program at concrete parameter values.
struct InstantiationJob {
  const Program* program = nullptr;
  std::map<std::string, long long> params;
};

/// instantiate(jobs[i]) for every i, sharded; slot i holds job i's CDAG.
std::vector<Cdag> instantiate_batch(const std::vector<InstantiationJob>& jobs,
                                    const InstantiateOptions& options = {},
                                    const ShardOptions& shard = {});

/// One schedule-replay job: validate `moves` on `cdag` under red budget S.
struct ReplayJob {
  const Cdag* cdag = nullptr;
  std::size_t S = 0;
  const std::vector<Move>* moves = nullptr;
};

/// run_pebbling(jobs[i]) for every i, sharded; slot i holds job i's result.
std::vector<GameResult> run_pebblings(const std::vector<ReplayJob>& jobs,
                                      const ShardOptions& shard = {});

/// A (CDAG, S) validation case for the end-to-end entry points below.
struct PebbleCase {
  const Cdag* cdag = nullptr;
  std::size_t S = 0;
};

/// End-to-end check of one case: generate the natural-order scheduled
/// pebbling and machine-check it by replaying the move sequence through the
/// game rules.
struct ScheduleValidation {
  bool scheduled = false;  ///< schedule generation succeeded
  std::string error;       ///< why not, when !scheduled
  ScheduleResult schedule;
  GameResult replay;
  /// The replay is rule-valid and reproduces the schedule's claimed cost.
  [[nodiscard]] bool consistent() const {
    return scheduled && replay.valid && replay.io_cost == schedule.io_cost;
  }
};

/// Scheduled pebbling + replay for every case, sharded; slot i.  A case
/// whose schedule generation throws (e.g. S below the CDAG's minimum red
/// requirement) is reported in its slot with scheduled = false rather than
/// failing the batch.
std::vector<ScheduleValidation> validate_schedules(
    const std::vector<PebbleCase>& cases, Replacement policy,
    const ShardOptions& shard = {});

/// optimal_pebbling for every case, sharded; slot i (nullopt = search
/// capped, exactly as the serial oracle reports it).
std::vector<std::optional<OptimalResult>> optimal_pebblings(
    const std::vector<PebbleCase>& cases, const OptimalOptions& options = {},
    const ShardOptions& shard = {});

}  // namespace soap::pebbles
