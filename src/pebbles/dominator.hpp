// Dominator and minimum sets of concrete subcomputations (Section 2.2).
#pragma once

#include <vector>

#include "pebbles/cdag.hpp"

namespace soap::pebbles {

/// |Dom_min(H)|: size of a minimum vertex set intersecting every path from a
/// CDAG input to a vertex of H (computed exactly as a min vertex cut).
long long min_dominator_size(const Cdag& cdag,
                             const std::vector<std::size_t>& H);

/// A minimum dominator set itself.
std::vector<std::size_t> min_dominator_set(const Cdag& cdag,
                                           const std::vector<std::size_t>& H);

/// Min(H): vertices of H with no child inside H.
std::vector<std::size_t> minimum_set(const Cdag& cdag,
                                     const std::vector<std::size_t>& H);

}  // namespace soap::pebbles
