#include "pebbles/xpartition.hpp"

#include <algorithm>
#include <map>

#include "pebbles/dominator.hpp"

namespace soap::pebbles {

XPartitionCheck check_x_partition(const Cdag& cdag,
                                  const std::vector<int>& part_of,
                                  long long X) {
  XPartitionCheck out;
  if (part_of.size() != cdag.size()) {
    out.reason = "part_of size mismatch";
    return out;
  }
  // All non-input vertices assigned.
  for (std::size_t v = 0; v < cdag.size(); ++v) {
    bool is_input = cdag.graph().parents(v).empty();
    if (!is_input && part_of[v] < 0) {
      out.reason = "computed vertex " + cdag.label(v) + " unassigned";
      return out;
    }
  }
  // Acyclicity between parts.
  if (cdag.graph().blocks_have_cycle(part_of)) {
    out.reason = "cyclic dependency between subcomputations";
    return out;
  }
  // Per-part dominator / minimum set budgets.
  std::map<int, std::vector<std::size_t>> parts;
  for (std::size_t v = 0; v < cdag.size(); ++v) {
    if (part_of[v] >= 0) parts[part_of[v]].push_back(v);
  }
  out.parts = parts.size();
  for (const auto& [id, vertices] : parts) {
    long long dom = min_dominator_size(cdag, vertices);
    std::size_t mins = minimum_set(cdag, vertices).size();
    out.max_dominator = std::max(out.max_dominator, dom);
    out.max_minimum_set = std::max(out.max_minimum_set, mins);
    if (dom > X) {
      out.reason = "part " + std::to_string(id) + " dominator " +
                   std::to_string(dom) + " exceeds X";
      return out;
    }
    if (static_cast<long long>(mins) > X) {
      out.reason = "part " + std::to_string(id) + " minimum set " +
                   std::to_string(mins) + " exceeds X";
      return out;
    }
  }
  out.valid = true;
  return out;
}

}  // namespace soap::pebbles
