// Exhaustive optimal pebbling for small CDAGs: 0-1 BFS over game
// configurations.  Finding the optimum is PSPACE-complete in general
// (Demaine & Liu), so this is strictly a validation oracle for toy sizes —
// it machine-checks that the analytic lower bounds of the paper never exceed
// the true optimal I/O cost.
#pragma once

#include <optional>

#include "pebbles/cdag.hpp"
#include "pebbles/game.hpp"

namespace soap::pebbles {

struct OptimalOptions {
  /// Aborts (returns nullopt) past this many explored configurations.
  std::size_t max_states = 4000000;
};

struct OptimalResult {
  long long cost = 0;
  std::size_t states_explored = 0;
};

/// Minimum I/O cost over all valid pebblings with S red pebbles.
/// Requires cdag.size() <= 64.  Recomputation is allowed; blue pebbles are
/// never discarded (discarding blue cannot reduce the I/O cost since blue
/// pebbles are unlimited and capacity-free).
std::optional<OptimalResult> optimal_pebbling(const Cdag& cdag, std::size_t S,
                                              const OptimalOptions& options = {});

}  // namespace soap::pebbles
