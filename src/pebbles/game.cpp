#include "pebbles/game.hpp"

#include <algorithm>

namespace soap::pebbles {

GameResult run_pebbling(const Cdag& cdag, std::size_t S,
                        const std::vector<Move>& moves) {
  GameResult r;
  std::vector<bool> red(cdag.size(), false);
  std::vector<bool> blue(cdag.size(), false);
  for (std::size_t v : cdag.inputs()) blue[v] = true;
  std::size_t red_count = 0;

  auto fail = [&](const std::string& why, const Move& m) {
    r.valid = false;
    r.error = why + " (" + move_str(cdag, m) + ")";
    return r;
  };

  for (const Move& m : moves) {
    if (m.vertex >= cdag.size()) return fail("bad vertex", m);
    switch (m.type) {
      case MoveType::kLoad:
        if (!blue[m.vertex]) return fail("load without blue pebble", m);
        if (red[m.vertex]) return fail("load onto existing red", m);
        if (red_count + 1 > S) return fail("red budget exceeded", m);
        red[m.vertex] = true;
        ++red_count;
        ++r.loads;
        break;
      case MoveType::kStore:
        if (!red[m.vertex]) return fail("store without red pebble", m);
        if (!blue[m.vertex]) ++r.stores;
        blue[m.vertex] = true;
        break;
      case MoveType::kCompute: {
        if (red[m.vertex]) return fail("compute onto existing red", m);
        if (cdag.graph().parents(m.vertex).empty()) {
          return fail("compute on an input vertex", m);
        }
        for (std::size_t p : cdag.graph().parents(m.vertex)) {
          if (!red[p]) return fail("compute with non-red parent", m);
        }
        if (red_count + 1 > S) return fail("red budget exceeded", m);
        red[m.vertex] = true;
        ++red_count;
        break;
      }
      case MoveType::kDiscardRed:
        if (!red[m.vertex]) return fail("discard of absent red", m);
        red[m.vertex] = false;
        --red_count;
        break;
      case MoveType::kDiscardBlue:
        if (!blue[m.vertex]) return fail("discard of absent blue", m);
        blue[m.vertex] = false;
        break;
    }
    r.max_red = std::max(r.max_red, red_count);
  }
  for (std::size_t v : cdag.outputs()) {
    if (!blue[v]) {
      r.valid = false;
      r.error = "output " + cdag.label(v) + " not in slow memory at the end";
      r.io_cost = r.loads + r.stores;
      return r;
    }
  }
  r.valid = true;
  r.io_cost = r.loads + r.stores;
  return r;
}

std::string move_str(const Cdag& cdag, const Move& move) {
  const char* names[] = {"load", "store", "compute", "discard-red",
                         "discard-blue"};
  return std::string(names[static_cast<int>(move.type)]) + " " +
         cdag.label(move.vertex);
}

}  // namespace soap::pebbles
