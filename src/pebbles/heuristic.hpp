// Scheduled pebbler: turns a compute order (e.g. a tiled loop order from the
// schedule module) plus a replacement policy into a *valid* pebbling whose
// I/O cost upper-bounds the optimum.  Together with the analytic lower bound
// this sandwiches the true I/O cost, which is how the benchmark harness
// demonstrates tightness of the derived bounds.
#pragma once

#include <vector>

#include "pebbles/cdag.hpp"
#include "pebbles/game.hpp"

namespace soap::pebbles {

enum class Replacement {
  kLru,
  kBelady  ///< offline-optimal: evict the vertex with the furthest next use
};

struct ScheduleResult {
  long long io_cost = 0;
  long long loads = 0;
  long long stores = 0;
  std::vector<Move> moves;  ///< replayable via run_pebbling
};

/// Executes `compute_order` (a permutation of the non-input vertices, or any
/// topological-order-compatible subsequence covering all outputs) with S red
/// pebbles and the given replacement policy.  Evicted vertices that are still
/// live (have an unfinished child or are outputs) are written back first.
ScheduleResult scheduled_pebbling(const Cdag& cdag, std::size_t S,
                                  const std::vector<std::size_t>& compute_order,
                                  Replacement policy);

/// Convenience: natural topological order.
ScheduleResult natural_order_pebbling(const Cdag& cdag, std::size_t S,
                                      Replacement policy);

}  // namespace soap::pebbles
