// X-partition validation (Section 2.2): disjoint subcomputations covering
// the computed vertices, no cyclic dependencies between subcomputations,
// |Dom_min(H_i)| <= X and |Min(H_i)| <= X for every part.
#pragma once

#include <string>
#include <vector>

#include "pebbles/cdag.hpp"

namespace soap::pebbles {

struct XPartitionCheck {
  bool valid = false;
  std::string reason;
  long long max_dominator = 0;
  std::size_t max_minimum_set = 0;
  std::size_t parts = 0;
};

/// `part_of[v]` is the part index of vertex v, or -1 for vertices outside
/// the partition (inputs).  All computed (non-input) vertices must be
/// assigned.
XPartitionCheck check_x_partition(const Cdag& cdag,
                                  const std::vector<int>& part_of,
                                  long long X);

}  // namespace soap::pebbles
