// The red-blue pebble game of Hong & Kung (Section 2.1): S red pebbles
// (fast memory), unlimited blue pebbles (slow memory), moves load / store /
// compute / discard; the I/O cost of a pebbling is its number of loads and
// stores.
#pragma once

#include <string>
#include <vector>

#include "pebbles/cdag.hpp"

namespace soap::pebbles {

enum class MoveType : std::uint8_t {
  kLoad,        ///< red on a vertex holding blue
  kStore,       ///< blue on a vertex holding red
  kCompute,     ///< red on a vertex whose parents all hold red
  kDiscardRed,  ///< remove a red pebble
  kDiscardBlue  ///< remove a blue pebble
};

struct Move {
  MoveType type;
  std::size_t vertex;
};

struct GameResult {
  bool valid = false;
  std::string error;
  long long io_cost = 0;      ///< loads + stores
  std::size_t max_red = 0;    ///< peak red-pebble usage
  long long loads = 0;
  long long stores = 0;
};

/// Replays a move sequence from the initial configuration (blue pebbles on
/// all inputs) and validates every move against the rules and the red-pebble
/// budget S.  `valid` additionally requires all outputs to hold blue pebbles
/// at the end.
GameResult run_pebbling(const Cdag& cdag, std::size_t S,
                        const std::vector<Move>& moves);

std::string move_str(const Cdag& cdag, const Move& move);

}  // namespace soap::pebbles
