#include "pebbles/cdag.hpp"

#include <algorithm>
#include <sstream>

namespace soap::pebbles {

std::size_t Cdag::add_vertex(std::string label) {
  labels_.push_back(std::move(label));
  return graph_.add_vertex();
}

void Cdag::mark_output(std::size_t v) {
  if (std::find(marked_outputs_.begin(), marked_outputs_.end(), v) ==
      marked_outputs_.end()) {
    marked_outputs_.push_back(v);
  }
}

std::vector<std::size_t> Cdag::inputs() const {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < size(); ++v) {
    if (graph_.parents(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> Cdag::outputs() const {
  if (!marked_outputs_.empty()) return marked_outputs_;
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < size(); ++v) {
    if (graph_.children(v).empty()) out.push_back(v);
  }
  return out;
}

std::string Cdag::dot() const {
  std::ostringstream os;
  os << "digraph cdag {\n";
  for (std::size_t v = 0; v < size(); ++v) {
    os << "  v" << v << " [label=\"" << labels_[v] << "\"];\n";
  }
  for (std::size_t v = 0; v < size(); ++v) {
    for (std::size_t c : graph_.children(v)) {
      os << "  v" << v << " -> v" << c << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace soap::pebbles
