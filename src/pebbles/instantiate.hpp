// Explicit CDAG instantiation of a SOAP program for concrete parameter
// values.  Every statement execution creates one vertex (a new version of the
// written element); reads draw edges from the current versions of the read
// elements.  This is the machine-checkable ground truth against which the
// symbolic analysis is validated (Lemma 3 counting, pebbling lower bounds).
#pragma once

#include <map>
#include <string>

#include "pebbles/cdag.hpp"
#include "soap/statement.hpp"

namespace soap::pebbles {

struct InstantiateOptions {
  /// Safety valve: instantiation aborts (throws std::length_error) past this
  /// many vertices.
  std::size_t max_vertices = 200000;
};

/// Builds the concrete CDAG of `program` with the given parameter values.
/// Program outputs = final versions of the terminal arrays.
Cdag instantiate(const Program& program,
                 const std::map<std::string, long long>& params,
                 const InstantiateOptions& options = {});

/// The vertex ids created for executions of statement `stmt_index`, in
/// execution order (useful to build subcomputations for partition tests).
struct InstantiationDetail {
  Cdag cdag;
  std::vector<std::vector<std::size_t>> statement_vertices;
  /// vertex -> iteration vector (only for computed vertices).
  std::map<std::size_t, std::vector<long long>> iteration_of;
};

InstantiationDetail instantiate_detailed(
    const Program& program, const std::map<std::string, long long>& params,
    const InstantiateOptions& options = {});

}  // namespace soap::pebbles
