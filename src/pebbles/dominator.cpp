#include "pebbles/dominator.hpp"

#include <algorithm>

#include "graph/vertex_cut.hpp"

namespace soap::pebbles {

long long min_dominator_size(const Cdag& cdag,
                             const std::vector<std::size_t>& H) {
  return graph::min_vertex_cut(cdag.graph(), cdag.inputs(), H);
}

std::vector<std::size_t> min_dominator_set(const Cdag& cdag,
                                           const std::vector<std::size_t>& H) {
  return graph::min_vertex_cut_set(cdag.graph(), cdag.inputs(), H);
}

std::vector<std::size_t> minimum_set(const Cdag& cdag,
                                     const std::vector<std::size_t>& H) {
  std::vector<bool> in_h(cdag.size(), false);
  for (std::size_t v : H) in_h[v] = true;
  std::vector<std::size_t> out;
  for (std::size_t v : H) {
    bool has_child_in_h = false;
    for (std::size_t c : cdag.graph().children(v)) has_child_in_h |= in_h[c];
    if (!has_child_in_h) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace soap::pebbles
