#include "pebbles/optimal.hpp"

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace soap::pebbles {

namespace {

struct State {
  std::uint64_t red;
  std::uint64_t blue;
  friend bool operator==(const State& a, const State& b) {
    return a.red == b.red && a.blue == b.blue;
  }
};

struct StateHash {
  std::size_t operator()(const State& s) const {
    std::uint64_t h = s.red * 0x9e3779b97f4a7c15ULL;
    h ^= s.blue + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

int popcount(std::uint64_t v) { return __builtin_popcountll(v); }

}  // namespace

std::optional<OptimalResult> optimal_pebbling(const Cdag& cdag, std::size_t S,
                                              const OptimalOptions& options) {
  const std::size_t n = cdag.size();
  if (n > 64) throw std::invalid_argument("optimal_pebbling: CDAG too large");

  std::uint64_t initial_blue = 0;
  for (std::size_t v : cdag.inputs()) initial_blue |= 1ULL << v;
  std::uint64_t goal = 0;
  for (std::size_t v : cdag.outputs()) goal |= 1ULL << v;

  // Parent masks; inputs marked separately (not computable).
  std::vector<std::uint64_t> parent_mask(n, 0);
  std::vector<bool> is_input(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    const auto& ps = cdag.graph().parents(v);
    if (ps.empty()) {
      is_input[v] = true;
      continue;
    }
    for (std::size_t p : ps) parent_mask[v] |= 1ULL << p;
  }

  // 0-1 BFS: deque with (state, cost); visited map stores best known cost.
  std::unordered_map<State, long long, StateHash> best;
  std::deque<std::pair<State, long long>> dq;
  State start{0, initial_blue};
  best[start] = 0;
  dq.emplace_back(start, 0);
  std::size_t explored = 0;

  auto push = [&](const State& s, long long cost, bool unit) {
    auto it = best.find(s);
    if (it != best.end() && it->second <= cost) return;
    best[s] = cost;
    if (unit) {
      dq.emplace_back(s, cost);
    } else {
      dq.emplace_front(s, cost);
    }
  };

  while (!dq.empty()) {
    auto [s, cost] = dq.front();
    dq.pop_front();
    auto it = best.find(s);
    if (it == best.end() || it->second < cost) continue;  // stale entry
    if ((s.blue & goal) == goal) {
      return OptimalResult{cost, explored};
    }
    if (++explored > options.max_states) return std::nullopt;

    int reds = popcount(s.red);
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t bit = 1ULL << v;
      // Compute.
      if (!(s.red & bit) && !is_input[v] &&
          (s.red & parent_mask[v]) == parent_mask[v] &&
          reds + 1 <= static_cast<int>(S)) {
        push({s.red | bit, s.blue}, cost, false);
      }
      // Load.
      if ((s.blue & bit) && !(s.red & bit) && reds + 1 <= static_cast<int>(S)) {
        push({s.red | bit, s.blue}, cost + 1, true);
      }
      // Store.
      if ((s.red & bit) && !(s.blue & bit)) {
        push({s.red, s.blue | bit}, cost + 1, true);
      }
      // Discard red.
      if (s.red & bit) {
        push({s.red & ~bit, s.blue}, cost, false);
      }
    }
  }
  return std::nullopt;  // unreachable goal (malformed CDAG)
}

}  // namespace soap::pebbles
