#include "pebbles/validate.hpp"

#include <exception>
#include <utility>

#include "support/parallel.hpp"

namespace soap::pebbles {

namespace {

support::ParallelOptions to_parallel(const ShardOptions& shard) {
  support::ParallelOptions par;
  par.threads = shard.threads;
  par.executor = shard.executor;
  return par;
}

}  // namespace

std::vector<Cdag> instantiate_batch(const std::vector<InstantiationJob>& jobs,
                                    const InstantiateOptions& options,
                                    const ShardOptions& shard) {
  return support::parallel_map<Cdag>(
      jobs.size(), to_parallel(shard), [&](std::size_t i) {
        return instantiate(*jobs[i].program, jobs[i].params, options);
      });
}

std::vector<GameResult> run_pebblings(const std::vector<ReplayJob>& jobs,
                                      const ShardOptions& shard) {
  return support::parallel_map<GameResult>(
      jobs.size(), to_parallel(shard), [&](std::size_t i) {
        return run_pebbling(*jobs[i].cdag, jobs[i].S, *jobs[i].moves);
      });
}

std::vector<ScheduleValidation> validate_schedules(
    const std::vector<PebbleCase>& cases, Replacement policy,
    const ShardOptions& shard) {
  return support::parallel_map<ScheduleValidation>(
      cases.size(), to_parallel(shard), [&](std::size_t i) {
        ScheduleValidation v;
        try {
          v.schedule = natural_order_pebbling(*cases[i].cdag, cases[i].S,
                                              policy);
          v.scheduled = true;
        } catch (const std::exception& e) {
          v.error = e.what();
          return v;
        }
        v.replay = run_pebbling(*cases[i].cdag, cases[i].S, v.schedule.moves);
        return v;
      });
}

std::vector<std::optional<OptimalResult>> optimal_pebblings(
    const std::vector<PebbleCase>& cases, const OptimalOptions& options,
    const ShardOptions& shard) {
  return support::parallel_map<std::optional<OptimalResult>>(
      cases.size(), to_parallel(shard), [&](std::size_t i) {
        return optimal_pebbling(*cases[i].cdag, cases[i].S, options);
      });
}

}  // namespace soap::pebbles
