#include "pebbles/instantiate.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace soap::pebbles {

namespace {

using ElementKey = std::pair<std::string, std::vector<long long>>;

std::string element_label(const ElementKey& key, int version) {
  std::ostringstream os;
  os << key.first << "[";
  for (std::size_t i = 0; i < key.second.size(); ++i) {
    if (i) os << ",";
    os << key.second[i];
  }
  os << "]";
  if (version > 0) os << "@" << version;
  return os.str();
}

struct Builder {
  const Program& program;
  const InstantiateOptions& options;
  InstantiationDetail detail;
  std::map<ElementKey, std::size_t> current_version;
  std::map<ElementKey, int> version_count;

  std::size_t vertex_for_read(const ElementKey& key) {
    auto it = current_version.find(key);
    if (it != current_version.end()) return it->second;
    // First touch of a never-written element: a program input.
    check_budget();
    std::size_t v = detail.cdag.add_vertex(element_label(key, 0));
    current_version[key] = v;
    return v;
  }

  void check_budget() const {
    if (detail.cdag.size() >= options.max_vertices) {
      throw std::length_error("instantiate: CDAG vertex budget exceeded");
    }
  }

  std::vector<long long> eval_component(const AccessComponent& comp,
                                        const SymMap<Rational>& env) const {
    std::vector<long long> idx;
    idx.reserve(comp.index.size());
    for (const Affine& a : comp.index) {
      Rational r = a.eval(env);
      if (!r.is_integer()) {
        throw std::domain_error("instantiate: non-integer subscript");
      }
      idx.push_back(r.to_int());
    }
    return idx;
  }

  void execute(std::size_t stmt_index, const Statement& st,
               const SymMap<Rational>& env,
               std::vector<long long> iteration) {
    // Gather parents (dedup).
    std::vector<std::size_t> parents;
    for (const ArrayAccess& in : st.inputs) {
      for (const AccessComponent& comp : in.components) {
        std::size_t v = vertex_for_read({in.array, eval_component(comp, env)});
        bool seen = false;
        for (std::size_t p : parents) seen |= p == v;
        if (!seen) parents.push_back(v);
      }
    }
    check_budget();
    ElementKey out_key{st.output.array,
                       eval_component(st.output.components[0], env)};
    int version = ++version_count[out_key];
    std::size_t v = detail.cdag.add_vertex(element_label(out_key, version));
    for (std::size_t p : parents) detail.cdag.add_edge(p, v);
    current_version[out_key] = v;
    detail.statement_vertices[stmt_index].push_back(v);
    detail.iteration_of[v] = std::move(iteration);
  }

  void run_statement(std::size_t stmt_index, const Statement& st,
                     const std::map<std::string, long long>& params) {
    SymMap<Rational> env;
    for (const auto& [k, v] : params) env.set(intern_symbol(k), Rational(v));
    // Loop variables interned once up front; the nest then only touches the
    // flat SymId-keyed environment.
    std::vector<SymId> loop_ids;
    loop_ids.reserve(st.domain.loops().size());
    for (const Loop& loop : st.domain.loops()) {
      loop_ids.push_back(intern_symbol(loop.var));
    }
    std::function<void(std::size_t, std::vector<long long>&)> nest =
        [&](std::size_t depth, std::vector<long long>& iter) {
          if (depth == st.domain.loops().size()) {
            execute(stmt_index, st, env, iter);
            return;
          }
          const Loop& loop = st.domain.loops()[depth];
          Rational lo = loop.lower.eval(env);
          Rational hi = loop.upper.eval(env);
          for (long long v = static_cast<long long>(lo.floor());
               v < static_cast<long long>(hi.floor()); ++v) {
            env[loop_ids[depth]] = Rational(v);
            iter.push_back(v);
            nest(depth + 1, iter);
            iter.pop_back();
          }
          env.erase(loop_ids[depth]);
        };
    std::vector<long long> iter;
    nest(0, iter);
  }
};

}  // namespace

InstantiationDetail instantiate_detailed(
    const Program& program, const std::map<std::string, long long>& params,
    const InstantiateOptions& options) {
  Builder b{program, options, {}, {}, {}};
  b.detail.statement_vertices.resize(program.statements.size());
  for (std::size_t i = 0; i < program.statements.size(); ++i) {
    b.run_statement(i, program.statements[i], params);
  }
  // Outputs: final versions of the terminal arrays.
  for (const std::string& arr : program.terminal_arrays()) {
    for (const auto& [key, v] : b.current_version) {
      if (key.first == arr) b.detail.cdag.mark_output(v);
    }
  }
  return std::move(b.detail);
}

Cdag instantiate(const Program& program,
                 const std::map<std::string, long long>& params,
                 const InstantiateOptions& options) {
  return instantiate_detailed(program, params, options).cdag;
}

}  // namespace soap::pebbles
