// Deep learning bounds: the first I/O lower bounds for entire networks
// (Section 7.1): per-operator and network-level results.
#include <cstdio>

#include "kernels/table2.hpp"

int main() {
  using namespace soap;
  std::printf("I/O lower bounds for deep learning workloads:\n\n");
  for (const char* name :
       {"conv", "softmax", "mlp", "lenet5", "bert_encoder"}) {
    const auto& k = kernels::kernel_by_name(name);
    sym::Expr bound = kernels::analyze_kernel(k);
    std::printf("%-14s Q >= %s\n", name, bound.str().c_str());
    if (!k.notes.empty()) std::printf("%-14s (%s)\n", "", k.notes.c_str());
  }
  // Concrete numbers for a BERT-base layer: L=512, H=12, P=64, E=768, B=8.
  const auto& bert = kernels::kernel_by_name("bert_encoder");
  sym::Expr q = kernels::analyze_kernel(bert);
  double words = q.eval({{"B", 8}, {"L", 512}, {"H", 12}, {"P", 64},
                         {"E", 768}, {"S", 1 << 20}});
  std::printf("\nBERT-base encoder layer (B=8, L=512, S=2^20 words):\n"
              "  at least %.3g words moved between cache and memory\n",
              words);
  return 0;
}
