// The Figure 2 walk-through: SDG construction, subgraph statements,
// merged-subgraph intensities and the Theorem 1 bound.
#include <cstdio>

#include "bounds/intensity.hpp"
#include "frontend/lower.hpp"
#include "sdg/merge.hpp"
#include "sdg/multi_statement.hpp"
#include "sdg/subgraph.hpp"

int main() {
  using namespace soap;
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(M):
    C[i,j] = (A[i] + A[i+1]) * (B[j] + B[j+1])
for i in range(N):
  for j in range(K):
    for k in range(M):
      E[i,j] += C[i,k] * D[k,j]
)");
  sdg::Sdg g = sdg::Sdg::build(p);
  std::printf("SDG (Graphviz):\n%s\n", g.dot().c_str());

  for (const auto& H : sdg::enumerate_subgraphs(g, 4)) {
    sdg::MergedSubgraph m = sdg::merge_subgraph(g, H);
    std::printf("subgraph %s\n", m.str().c_str());
    auto chi = bounds::derive_chi(m.problem);
    if (chi) {
      auto in = bounds::minimize_intensity(*chi);
      std::printf("  alpha = %s, chi constant = %s, rho = %s\n",
                  chi->alpha.str().c_str(), chi->coefficient.str().c_str(),
                  in.rho.str().c_str());
    } else {
      std::printf("  unbounded intensity\n");
    }
  }
  auto b = sdg::multi_statement_bound(p);
  if (b) std::printf("\nTheorem 1 bound: Q >= %s\n", b->Q_leading.str().c_str());
  return 0;
}
