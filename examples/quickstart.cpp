// Quickstart: derive a symbolic I/O lower bound and the optimal tiling for a
// matrix multiplication given as plain source text.
#include <cstdio>

#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"
#include "schedule/codegen.hpp"
#include "schedule/tiling.hpp"

int main() {
  using namespace soap;

  // 1. Parse the kernel (Python-style or C-style loop nests both work).
  Program program = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");

  // 2. Derive the bound (Section 4 of the paper).
  auto bound = bounds::single_statement_bound(program.statements[0]);
  if (!bound) {
    std::puts("no non-trivial bound");
    return 1;
  }
  std::printf("I/O lower bound:        Q >= %s\n",
              bound->Q_leading.str().c_str());
  std::printf("computational intensity: rho = %s at X0 = %s\n",
              bound->rho.str().c_str(), bound->X0.str().c_str());

  // 3. The bound is constructive: optimal tile sizes fall out of it.
  auto tiles = schedule::concrete_tiles(program.statements[0], *bound,
                                        /*S=*/768, {{"N", 4096}});
  std::printf("\noptimal tiles for S = 768 words:\n");
  for (const auto& [var, size] : tiles) {
    std::printf("  %s : %lld\n", var.c_str(), size);
  }
  std::printf("\nI/O-optimal tiled schedule:\n%s",
              schedule::emit_tiled_c(program.statements[0], tiles).c_str());
  return 0;
}
