// The open-source tool of the paper's abstract: derives I/O lower bounds
// directly from provided C (or Python-style) code.
//
//   soap_analyze [file]            # reads the program from a file or stdin
//   soap_analyze --sdg [file]      # also dump the SDG in Graphviz format
//   soap_analyze --threads N ...   # shard the subgraph analysis across N
//                                  # workers (0 = all hardware threads);
//                                  # the derived bound is identical for
//                                  # every thread count
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "frontend/lower.hpp"
#include "sdg/multi_statement.hpp"
#include "sdg/sdg.hpp"
#include "soap/program.hpp"
#include "support/parse.hpp"

int main(int argc, char** argv) {
  using namespace soap;
  bool dump_sdg = false;
  std::string path;
  sdg::SdgOptions options;
  // Strict parse (support::parse_size_t): a typo must not dial the tool up
  // to hardware_concurrency, so unlike the bench drivers' silent serial
  // fallback, a bad value here is a hard error.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--sdg") {
      dump_sdg = true;
      continue;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        return 1;
      }
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(10);
    } else {
      path = arg;
      continue;
    }
    std::optional<std::size_t> threads = support::parse_size_t(value);
    if (!threads) {
      std::fprintf(stderr, "invalid --threads value '%s'\n", value.c_str());
      return 1;
    }
    options.threads = *threads;
  }
  std::string source;
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }
  try {
    Program program = frontend::parse_program(source);
    std::printf("parsed %zu statement(s):\n%s\n", program.statements.size(),
                program.str().c_str());
    for (const auto& v : check_soap(program)) {
      std::printf("note [%s/%s]: %s\n", v.statement.c_str(), v.array.c_str(),
                  v.reason.c_str());
    }
    if (dump_sdg) {
      std::printf("\n%s\n", sdg::Sdg::build(program).dot().c_str());
    }
    auto bound = sdg::multi_statement_bound(program, options);
    if (!bound) {
      std::puts("no non-trivial bound (unbounded reuse)");
      return 0;
    }
    std::printf("I/O lower bound:  Q >= %s\n", bound->Q_leading.str().c_str());
    std::printf("per-array accounting (Theorem 1):\n");
    for (const auto& a : bound->per_array) {
      std::printf("  %-12s |A| = %-18s best rho = %s\n", a.array.c_str(),
                  a.cdag_size.str().c_str(), a.rho.str().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
