// The open-source tool of the paper's abstract: derives I/O lower bounds
// directly from provided C (or Python-style) code, and enumerates the
// registered kernel corpus.
//
//   soap_analyze [file]                  # reads the program from a file or
//                                        # stdin
//   soap_analyze --sdg [file]            # also dump the SDG in Graphviz
//                                        # format
//   soap_analyze --threads N ...         # shard the subgraph analysis
//                                        # pipeline across N workers (0 =
//                                        # all hardware threads); the
//                                        # derived bound is identical for
//                                        # every thread count
//   soap_analyze --max-subgraph-size N   # largest subgraph cardinality
//                                        # enumerated (1 disables fusion
//                                        # analysis)
//   soap_analyze --max-subgraphs N       # cap on the number of enumerated
//                                        # subgraphs
//   soap_analyze --list-kernels          # list the registered corpus
//                                        # (family, name, problem sizes)
//   soap_analyze --corpus                # analyze every registered kernel
//                                        # with its recorded configuration
//   soap_analyze --family NAME           # restrict --corpus/--attainment
//                                        # to one family (alone it implies
//                                        # --corpus)
//   soap_analyze --attainment            # close the loop over the corpus:
//                                        # bound -> optimal tiles -> tiled
//                                        # trace -> simulated I/O (LRU +
//                                        # Belady) per kernel and cache
//                                        # size; exits non-zero if any
//                                        # kernel's simulated I/O beats
//                                        # its bound (soundness gate)
//   soap_analyze --cache-sizes N,N,...   # fast-memory sizes swept by
//                                        # --attainment (default 96,384)
//   soap_analyze --kernel NAME           # analyze one registered kernel
//                                        # with its recorded configuration
//   soap_analyze --timeout-ms N          # wall-clock deadline on the
//                                        # analysis (0 = unlimited); a trip
//                                        # degrades to the per-statement
//                                        # bound and exits 4
//   soap_analyze --node-budget N         # cap on live interned symbolic
//                                        # nodes (0 = unlimited); a trip
//                                        # degrades and exits 5
//   soap_analyze --json                  # machine-readable output: one
//                                        # JSON object per run (program,
//                                        # --kernel, --corpus, and
//                                        # --attainment modes); the text
//                                        # format is untouched
//   soap_analyze --cache                 # route derivations through the
//                                        # in-memory bound cache (program,
//                                        # --kernel, --corpus modes);
//                                        # results are bit-identical
//   soap_analyze --cache-file PATH       # persistent cache (implies
//                                        # --cache): loaded at startup,
//                                        # appended on every store
//   soap_analyze --optimizer NAME        # numeric backend for the chi
//                                        # constant fits (nelder_mead,
//                                        # multistart, subplex; see
//                                        # docs/OPTIMIZER.md); applies to
//                                        # program, --kernel, and --corpus
//                                        # modes, overriding the recorded
//                                        # configuration
//
// Exit codes follow support::StatusCode (docs/ROBUSTNESS.md): 0 ok,
// 1 internal error, 2 invalid input/usage, 3 optimizer no-converge,
// 4 deadline exceeded, 5 budget exceeded, 6 cancelled.  A degraded run
// still prints its (per-statement) bound before exiting with the trip
// code, so callers get the partial result and the reason.
//
// Any malformed flag value or unknown option prints the usage message and
// exits non-zero.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/attainment.hpp"
#include "bounds/opt/types.hpp"
#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "sdg/sdg.hpp"
#include "service/analyze.hpp"
#include "service/bound_cache.hpp"
#include "service/cache_key.hpp"
#include "service/json.hpp"
#include "soap/program.hpp"
#include "support/cancel.hpp"
#include "support/parse.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sdg] [--threads N] [--max-subgraph-size N] "
               "[--max-subgraphs N] [file]\n"
               "       %s --list-kernels | --corpus | --family NAME | "
               "--kernel NAME [--threads N]\n"
               "       %s --attainment [--family NAME] "
               "[--cache-sizes N,N,...] [--threads N]\n"
               "  any mode also accepts --timeout-ms N and --node-budget N;\n"
               "  analysis modes accept --optimizer "
               "{nelder_mead|multistart|subplex}\n"
               "  reads the program from [file], or stdin when omitted\n",
               argv0, argv0, argv0);
  return soap::support::status_exit_code(
      soap::support::StatusCode::kInvalidInput);
}

// Strict parse of a `--cache-sizes` CSV: non-empty, positive sizes only.
bool parse_cache_sizes(const std::string& csv, std::vector<long long>& out) {
  out.clear();
  std::string token;
  std::istringstream ss(csv);
  while (std::getline(ss, token, ',')) {
    std::optional<std::size_t> v = soap::support::parse_size_t(token);
    if (!v || *v == 0) return false;
    out.push_back(static_cast<long long>(*v));
  }
  return !out.empty();
}

// --attainment: the close-the-loop table (docs/ATTAINMENT.md): per
// (kernel, cache size), the corpus bound next to the simulated I/O of the
// derived tiling, with the soundness invariant enforced via the exit code.
int run_attainment(const std::string& family, std::size_t threads,
                   const std::vector<long long>& cache_sizes,
                   const soap::support::StopCriteria& stop, bool json) {
  using namespace soap;
  analysis::AttainmentOptions options;
  options.threads = threads;
  options.stop = stop;
  if (!cache_sizes.empty()) options.cache_sizes = cache_sizes;
  std::vector<analysis::AttainmentRow> rows;
  if (family.empty()) {
    rows = analysis::attainment_table(options);
  } else {
    std::vector<const kernels::KernelEntry*> subset =
        kernels::Registry::instance().family(family);
    if (subset.empty()) {
      std::fprintf(stderr, "unknown kernel family '%s'\n", family.c_str());
      return 1;
    }
    rows = analysis::attainment_table(subset, options);
  }
  if (json) {
    std::printf("%s\n", service::attainment_json(rows).c_str());
  } else {
    std::fputs(analysis::format_attainment_table(rows).c_str(), stdout);
  }
  return analysis::count_unsound(rows) == 0 ? 0 : 1;
}

// --list-kernels: the registered corpus, one kernel per line, grouped by
// family in registry order.  The format is line-oriented on purpose so CI
// can grep it (see .github/workflows/ci.yml).
int list_kernels() {
  using namespace soap;
  const kernels::Registry& registry = kernels::Registry::instance();
  for (const std::string& family : registry.families()) {
    for (const kernels::KernelEntry* k : registry.family(family)) {
      std::string sizes;
      for (const std::string& s : k->problem_sizes) {
        if (!sizes.empty()) sizes += ",";
        sizes += s;
      }
      std::printf("%-16s %-22s %s\n", family.c_str(), k->name.c_str(),
                  sizes.c_str());
    }
  }
  std::printf("%zu kernels in %zu families\n", registry.size(),
              registry.families().size());
  return 0;
}

// --corpus / --family: analyze registered kernels with their recorded
// engine configuration (batched across `threads` workers; the bounds are
// bit-identical for every thread count) and report each derived bound
// next to its reference.  The run is resilient: a kernel that fails or
// degrades reports its status in its own row instead of aborting the
// batch, the failure summary goes to stderr, and the exit code is the
// class of the first non-ok kernel.
int run_corpus(const std::string& family, std::size_t threads,
               const soap::support::StopCriteria& stop, bool json,
               soap::service::BoundCache* cache,
               std::optional<soap::bounds::opt::BackendKind> optimizer) {
  using namespace soap;
  const kernels::Registry& registry = kernels::Registry::instance();
  std::vector<const kernels::KernelEntry*> rows;
  if (family.empty()) {
    for (const kernels::KernelEntry& k : registry.kernels()) {
      rows.push_back(&k);
    }
  } else {
    rows = registry.family(family);
    if (rows.empty()) {
      std::fprintf(stderr, "unknown kernel family '%s'\n", family.c_str());
      return 1;
    }
  }
  kernels::CorpusOptions options;
  options.threads = threads;
  options.stop = stop;
  options.optimizer = optimizer;
  kernels::CorpusReport report =
      cache != nullptr ? service::analyze_corpus_cached(*cache, rows, options)
                       : kernels::analyze_corpus_resilient(rows, options);
  if (json) {
    std::printf("%s\n", service::corpus_json(report).c_str());
    const std::string summary = report.failure_summary();
    if (!summary.empty()) std::fputs(summary.c_str(), stderr);
    return support::status_exit_code(report.worst_status());
  }
  for (const kernels::KernelOutcome& out : report.kernels) {
    if (out.ok()) {
      std::printf("%-16s %-22s Q >= %s%s\n", out.family.c_str(),
                  out.kernel.c_str(), out.bound->str().c_str(),
                  out.degraded ? "  [degraded]" : "");
    } else {
      std::printf("%-16s %-22s FAILED [%s]%s%s\n", out.family.c_str(),
                  out.kernel.c_str(), support::status_code_name(out.status),
                  out.message.empty() ? "" : ": ",
                  out.message.c_str());
    }
  }
  std::printf("%zu kernels analyzed\n", report.kernels.size());
  const std::string summary = report.failure_summary();
  if (!summary.empty()) std::fputs(summary.c_str(), stderr);
  return support::status_exit_code(report.worst_status());
}

// --kernel NAME: one registered kernel with its recorded configuration,
// under the given stop criteria.  A degraded run still prints its
// (per-statement fallback) bound — the partial result — before exiting
// with the trip code.
int run_kernel(const std::string& name, std::size_t threads,
               const soap::support::StopCriteria& stop, bool json,
               soap::service::BoundCache* cache,
               std::optional<soap::bounds::opt::BackendKind> optimizer) {
  using namespace soap;
  const kernels::KernelEntry* entry = nullptr;
  try {
    entry = &kernels::kernel_by_name(name);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown kernel '%s' (see --list-kernels)\n",
                 name.c_str());
    return support::status_exit_code(support::StatusCode::kInvalidInput);
  }
  kernels::KernelOutcome out =
      cache != nullptr
          ? service::analyze_kernel_cached(*cache, *entry, threads, {}, stop,
                                           nullptr, optimizer)
          : kernels::analyze_kernel_checked(*entry, threads, {}, stop,
                                            optimizer);
  if (json) {
    std::printf("%s\n", service::outcome_json(out).c_str());
    return support::status_exit_code(out.status);
  }
  if (out.ok()) {
    std::printf("%-16s %-22s Q >= %s\n", out.family.c_str(),
                out.kernel.c_str(), out.bound->str().c_str());
    if (out.degraded) {
      std::printf("degraded [%s]: a budget criterion tripped "
                  "mid-derivation; the bound above is the sound "
                  "per-statement fallback (partial result)\n",
                  support::status_code_name(out.status));
    }
  } else {
    std::fprintf(stderr, "error [%s]: %s\n",
                 support::status_code_name(out.status), out.message.c_str());
  }
  return support::status_exit_code(out.status);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soap;
  bool dump_sdg = false;
  bool list = false;
  bool corpus = false;
  bool attainment = false;
  bool json = false;
  bool use_cache = false;
  std::string cache_file;
  std::string family;
  std::string kernel;
  std::string cache_sizes_csv;
  std::vector<long long> cache_sizes;
  std::string optimizer_name;
  std::optional<bounds::opt::BackendKind> optimizer;
  std::string path;
  std::size_t timeout_ms = 0;
  std::size_t node_budget = 0;
  sdg::SdgOptions options;
  // Strict parse (support::consume_size_flag): a typo must not dial the
  // tool up to hardware_concurrency or silently change the enumeration
  // caps, so unlike the bench drivers' silent serial fallback, a bad value
  // here is a usage error.
  struct SizeFlag {
    const char* name;
    std::size_t* out;
  };
  const SizeFlag size_flags[] = {
      {"threads", &options.threads},
      {"max-subgraph-size", &options.max_subgraph_size},
      {"max-subgraphs", &options.max_subgraphs},
      {"timeout-ms", &timeout_ms},
      {"node-budget", &node_budget},
  };
  std::string flag_error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sdg") {
      dump_sdg = true;
      continue;
    }
    if (arg == "--list-kernels") {
      list = true;
      continue;
    }
    if (arg == "--corpus") {
      corpus = true;
      continue;
    }
    if (arg == "--attainment") {
      attainment = true;
      continue;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--cache") {
      use_cache = true;
      continue;
    }
    switch (support::consume_string_flag(argc, argv, i, "cache-file",
                                         cache_file, &flag_error)) {
      case support::FlagParse::kOk:
        use_cache = true;
        continue;
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --cache-file: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    switch (support::consume_string_flag(argc, argv, i, "cache-sizes",
                                         cache_sizes_csv, &flag_error)) {
      case support::FlagParse::kOk:
        if (!parse_cache_sizes(cache_sizes_csv, cache_sizes)) {
          std::fprintf(stderr,
                       "invalid --cache-sizes '%s' (comma-separated "
                       "positive sizes)\n",
                       cache_sizes_csv.c_str());
          return usage(argv[0]);
        }
        continue;
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --cache-sizes: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    switch (support::consume_string_flag(argc, argv, i, "optimizer",
                                         optimizer_name, &flag_error)) {
      case support::FlagParse::kOk: {
        std::string reason;
        optimizer = bounds::opt::parse_backend_name(optimizer_name, &reason);
        if (!optimizer) {
          std::fprintf(stderr, "invalid value for --optimizer: %s\n",
                       reason.c_str());
          return usage(argv[0]);
        }
        continue;
      }
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --optimizer: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    switch (support::consume_string_flag(argc, argv, i, "family", family,
                                         &flag_error)) {
      case support::FlagParse::kOk:
        continue;
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --family: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    switch (support::consume_string_flag(argc, argv, i, "kernel", kernel,
                                         &flag_error)) {
      case support::FlagParse::kOk:
        continue;
      case support::FlagParse::kBadValue:
        std::fprintf(stderr, "invalid value for --kernel: %s\n",
                     flag_error.c_str());
        return usage(argv[0]);
      case support::FlagParse::kNoMatch:
        break;
    }
    bool matched = false;
    for (const SizeFlag& flag : size_flags) {
      switch (support::consume_size_flag(argc, argv, i, flag.name, *flag.out,
                                         &flag_error)) {
        case support::FlagParse::kOk:
          matched = true;
          break;
        case support::FlagParse::kBadValue:
          std::fprintf(stderr, "invalid value for --%s: %s\n", flag.name,
                       flag_error.c_str());
          return usage(argv[0]);
        case support::FlagParse::kNoMatch:
          break;
      }
      if (matched) break;
    }
    if (matched) continue;
    if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
    if (!path.empty()) {
      std::fprintf(stderr, "more than one input file ('%s' and '%s')\n",
                   path.c_str(), arg.c_str());
      return usage(argv[0]);
    }
    path = arg;
  }
  // `--family NAME` on its own is a corpus filter; with --attainment it
  // filters the attainment sweep instead.
  if (!family.empty() && !attainment) corpus = true;
  const bool registry_mode = list || corpus || attainment || !kernel.empty();
  if (registry_mode && !path.empty()) {
    std::fprintf(stderr,
                 "--list-kernels/--corpus/--attainment/--kernel take no "
                 "input file\n");
    return usage(argv[0]);
  }
  // The corpus modes analyze each kernel with its *recorded* engine
  // configuration (that is what the golden bounds are pinned against), so
  // the per-program knobs cannot apply there; accepting and ignoring them
  // would break this tool's strict-flag contract.
  const sdg::SdgOptions defaults;
  if (registry_mode &&
      (dump_sdg ||
       options.max_subgraph_size != defaults.max_subgraph_size ||
       options.max_subgraphs != defaults.max_subgraphs)) {
    std::fprintf(stderr,
                 "--sdg/--max-subgraph-size/--max-subgraphs do not apply to "
                 "--list-kernels/--corpus/--attainment/--kernel (kernels "
                 "use their recorded configuration; only --threads, "
                 "--timeout-ms, and --node-budget apply)\n");
    return usage(argv[0]);
  }
  if (!cache_sizes.empty() && !attainment) {
    std::fprintf(stderr, "--cache-sizes only applies to --attainment\n");
    return usage(argv[0]);
  }
  // Attainment pins its tiles to the default backend's derivation and
  // --list-kernels derives nothing; accepting --optimizer there would
  // silently do nothing, breaking the strict-flag contract.
  if (optimizer && (list || attainment)) {
    std::fprintf(stderr,
                 "--optimizer does not apply to "
                 "--list-kernels/--attainment\n");
    return usage(argv[0]);
  }
  if (attainment && (list || corpus)) {
    std::fprintf(stderr,
                 "--attainment conflicts with --list-kernels/--corpus\n");
    return usage(argv[0]);
  }
  if (!kernel.empty() && (list || corpus || attainment)) {
    std::fprintf(stderr,
                 "--kernel conflicts with "
                 "--list-kernels/--corpus/--family/--attainment\n");
    return usage(argv[0]);
  }
  if (json && (list || dump_sdg)) {
    std::fprintf(stderr, "--json does not apply to --list-kernels or --sdg\n");
    return usage(argv[0]);
  }
  // Attainment derives tiles and runs simulations beyond the cached bound
  // surface, and --list-kernels derives nothing; accepting --cache there
  // would silently do nothing, breaking this tool's strict-flag contract.
  if (use_cache && (list || attainment)) {
    std::fprintf(stderr,
                 "--cache/--cache-file do not apply to "
                 "--list-kernels/--attainment\n");
    return usage(argv[0]);
  }
  // Termination criteria apply uniformly to every analysis mode; the
  // deadline clock starts here, after flag parsing.
  support::StopCriteria stop;
  if (timeout_ms != 0) stop.deadline = support::Deadline::after_ms(timeout_ms);
  stop.budget.max_live_nodes = node_budget;
  options.stop = stop;
  if (optimizer) options.optimizer = *optimizer;
  std::unique_ptr<service::BoundCache> cache;
  if (use_cache) {
    service::BoundCacheOptions cache_options;
    cache_options.persist_path = cache_file;
    cache = std::make_unique<service::BoundCache>(cache_options);
  }
  if (list) return list_kernels();
  if (attainment) {
    return run_attainment(family, options.threads, cache_sizes, stop, json);
  }
  if (corpus) {
    return run_corpus(family, options.threads, stop, json, cache.get(),
                      optimizer);
  }
  if (!kernel.empty()) {
    return run_kernel(kernel, options.threads, stop, json, cache.get(),
                      optimizer);
  }
  std::string source;
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }
  try {
    Program program = frontend::parse_program(source);
    if (!json) {
      std::printf("parsed %zu statement(s):\n%s\n", program.statements.size(),
                  program.str().c_str());
      for (const auto& v : check_soap(program)) {
        std::printf("note [%s/%s]: %s\n", v.statement.c_str(),
                    v.array.c_str(), v.reason.c_str());
      }
      if (dump_sdg) {
        std::printf("\n%s\n", sdg::Sdg::build(program).dot().c_str());
      }
    }
    std::optional<sdg::MultiStatementBound> bound;
    const char* cache_outcome = "off";
    if (cache != nullptr) {
      service::ProgramAnalysis analysis =
          service::analyze_program_cached(*cache, program, options);
      bound = std::move(analysis.bound);
      cache_outcome = service::cache_outcome_name(analysis.outcome);
    } else {
      bound = sdg::multi_statement_bound(program, options);
    }
    if (json) {
      const service::CacheKey key = service::make_cache_key(program, options);
      std::string reply =
          "{\"digest\":" + service::json_string(key.digest.hex());
      reply += ",\"cache\":" + service::json_string(cache_outcome);
      if (!bound) {
        reply +=
            ",\"status\":\"ok\",\"bound\":null,"
            "\"note\":\"no non-trivial bound (unlimited reuse)\"";
      } else {
        const char* status =
            bound->degraded ? support::status_code_name(bound->degraded_reason)
                            : "ok";
        reply += ",\"status\":" + service::json_string(status) + ',' +
                 service::bound_json_fields(*bound);
      }
      reply += '}';
      std::printf("%s\n", reply.c_str());
      if (bound && bound->degraded) {
        return support::status_exit_code(bound->degraded_reason);
      }
      return 0;
    }
    if (!bound) {
      std::puts("no non-trivial bound (unbounded reuse)");
      return 0;
    }
    std::printf("I/O lower bound:  Q >= %s\n", bound->Q_leading.str().c_str());
    if (bound->degraded) {
      std::printf("degraded [%s]: a budget criterion tripped "
                  "mid-derivation; the bound above is the sound "
                  "per-statement fallback (partial result)\n",
                  support::status_code_name(bound->degraded_reason));
    }
    std::printf("per-array accounting (Theorem 1):\n");
    for (const auto& a : bound->per_array) {
      std::printf("  %-12s |A| = %-18s best rho = %s\n", a.array.c_str(),
                  a.cdag_size.str().c_str(), a.rho.str().c_str());
    }
    if (bound->degraded) {
      return support::status_exit_code(bound->degraded_reason);
    }
  } catch (const support::AnalysisError& e) {
    std::fprintf(stderr, "error [%s]: %s\n",
                 support::status_code_name(e.code()), e.what());
    return support::status_exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
