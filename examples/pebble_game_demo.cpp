// Red-blue pebble game on an explicit CDAG: optimal pebbling, a scheduled
// pebbling, dominator sets and an X-partition check.
#include <cstdio>

#include "frontend/lower.hpp"
#include "pebbles/dominator.hpp"
#include "pebbles/heuristic.hpp"
#include "pebbles/instantiate.hpp"
#include "pebbles/optimal.hpp"
#include "pebbles/xpartition.hpp"

int main() {
  using namespace soap;
  Program p = frontend::parse_program(R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)");
  auto detail = pebbles::instantiate_detailed(p, {{"N", 5}, {"T", 2}});
  const pebbles::Cdag& cdag = detail.cdag;
  std::printf("jacobi1d N=5 T=2: %zu vertices, %zu inputs, %zu outputs\n",
              cdag.size(), cdag.inputs().size(), cdag.outputs().size());

  for (std::size_t S : {4, 5, 6}) {
    auto opt = pebbles::optimal_pebbling(cdag, S);
    auto heur =
        pebbles::natural_order_pebbling(cdag, S, pebbles::Replacement::kLru);
    auto replay = pebbles::run_pebbling(cdag, S, heur.moves);
    std::printf("  S=%zu: optimal I/O = %s, LRU schedule = %lld (%s)\n", S,
                opt ? std::to_string(opt->cost).c_str() : "?", heur.io_cost,
                replay.valid ? "valid" : replay.error.c_str());
  }

  // Dominator set of the first time step.
  std::vector<std::size_t> first_step;
  for (const auto& [v, iter] : detail.iteration_of) {
    if (iter[0] == 0) first_step.push_back(v);
  }
  std::printf("dominator of the t=0 slab: %lld vertices\n",
              pebbles::min_dominator_size(cdag, first_step));

  // X-partition by time step.
  std::vector<int> part(cdag.size(), -1);
  for (const auto& [v, iter] : detail.iteration_of) {
    part[v] = static_cast<int>(iter[0]);
  }
  auto check = pebbles::check_x_partition(cdag, part, 8);
  std::printf("time-step partition valid for X=8: %s (max dom %lld, "
              "max min-set %zu)\n",
              check.valid ? "yes" : check.reason.c_str(), check.max_dominator,
              check.max_minimum_set);
  return 0;
}
