// Stencil analysis: time-tiled bounds for jacobi2d / heat3d, with a cache-
// simulator comparison of the derived tiling against the untiled sweep.
#include <cstdio>

#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "frontend/lower.hpp"
#include "schedule/tiling.hpp"

int main() {
  using namespace soap;
  struct Case {
    const char* name;
    const char* src;
    std::map<std::string, long long> params;
    long long S;
  };
  Case cases[] = {
      {"jacobi2d",
       R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i,j,t] + A[i-1,j,t] + A[i+1,j,t] + A[i,j-1,t] + A[i,j+1,t]
)",
       {{"N", 34}, {"T", 16}},
       256},
      {"heat3d",
       R"(
for t in range(T):
  for i in range(1, N-1):
    for j in range(1, N-1):
      for k in range(1, N-1):
        A[i,j,k,t+1] = A[i,j,k,t] + A[i-1,j,k,t] + A[i+1,j,k,t] + A[i,j-1,k,t] + A[i,j+1,k,t] + A[i,j,k-1,t] + A[i,j,k+1,t]
)",
       {{"N", 14}, {"T", 6}},
       512},
  };
  for (const Case& c : cases) {
    Program p = frontend::parse_program(c.src);
    auto b = bounds::single_statement_bound(p.statements[0]);
    if (!b) continue;
    std::printf("%s:\n  Q >= %s   (rho = %s, X0 = %s)\n", c.name,
                b->Q_leading.str().c_str(), b->rho.str().c_str(),
                b->X0.str().c_str());
    std::printf("  tile exponents:");
    for (const auto& [v, t] : b->tiles) {
      std::printf("  %s ~ %.2f*S^%s", v.c_str(), t.coefficient,
                  t.exponent.str().c_str());
    }
    auto tiles = schedule::concrete_tiles(p.statements[0], *b, c.S, c.params);
    auto untiled = cachesim::measure_statement(
        p.statements[0], c.params, {}, static_cast<std::size_t>(c.S));
    auto tiled = cachesim::measure_statement(
        p.statements[0], c.params, tiles, static_cast<std::size_t>(c.S));
    std::printf("\n  simulated I/O at S = %lld: untiled LRU %lld -> "
                "time-tiled LRU %lld (Belady %lld)\n\n",
                c.S, untiled.lru.io(), tiled.lru.io(), tiled.belady.io());
  }
  return 0;
}
