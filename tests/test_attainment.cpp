// The attainment soundness suite (docs/ATTAINMENT.md): across the kernel
// registry, the simulated I/O of the derived tiled schedule under Belady
// (offline-optimal) replacement must never beat the analytic lower bound —
// a valid pebbling upper-bounds what the bound lower-bounds.  Also pins the
// golden attainment ratios for a corpus subset, the determinism of the
// sharded table across thread counts and executors, and the clamp /
// degenerate-tile regressions flushed out while building the subsystem.
// Labeled `attainment` for the TSan CI job and the release soundness gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/attainment.hpp"
#include "attainment_golden.hpp"
#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "frontend/lower.hpp"
#include "kernels/registry.hpp"
#include "schedule/tiling.hpp"
#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace soap::analysis {
namespace {

// Sanitizer builds simulate and analyze ~5-15x slower; sweep a
// representative subset there (same pattern as test_sdg_determinism.cpp).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::vector<const kernels::KernelEntry*> corpus_subset() {
  const kernels::Registry& registry = kernels::Registry::instance();
  std::vector<const kernels::KernelEntry*> rows;
  if (kSanitized) {
    // One single-statement and one fused kernel per family.
    for (const char* name :
         {"gemm", "cholesky", "gemver", "lenet5", "softmax", "lulesh",
          "attention", "spmv_csr", "stencil_sweep"}) {
      rows.push_back(&registry.at(name));
    }
    return rows;
  }
  for (const kernels::KernelEntry& k : registry.kernels()) rows.push_back(&k);
  return rows;
}

// --- The soundness invariant over the corpus -------------------------------

TEST(AttainmentSoundness, BeladyNeverBeatsTheBoundAcrossTheCorpus) {
  AttainmentOptions options;
  if (kSanitized) options.cache_sizes = {96};
  options.threads = 0;  // shard across hardware; table is deterministic
  std::vector<AttainmentRow> rows =
      attainment_table(corpus_subset(), options);
  ASSERT_EQ(rows.size(),
            corpus_subset().size() * options.cache_sizes.size());
  for (const AttainmentRow& row : rows) {
    // Q_sim_belady >= floor(Q_lb): offline-optimal replacement of a valid
    // schedule can never need less I/O than the lower bound.
    EXPECT_GE(static_cast<double>(row.Q_sim_belady) + 1e-9,
              std::floor(row.Q_lb))
        << row.kernel << " at S=" << row.S << ": simulated "
        << row.Q_sim_belady << " beats bound " << row.Q_lb;
    EXPECT_TRUE(row.sound()) << row.kernel << " at S=" << row.S;
    // Belady is offline-optimal: LRU can only be worse or equal.
    EXPECT_GE(row.Q_sim_lru, row.Q_sim_belady)
        << row.kernel << " at S=" << row.S;
    EXPECT_GT(row.trace_length, 0u) << row.kernel;
    EXPECT_GT(row.footprint, 0u) << row.kernel;
    EXPECT_EQ(row.fused, row.statements > 1) << row.kernel;
  }
  EXPECT_EQ(count_unsound(rows), 0u);
}

// --- Golden rows -----------------------------------------------------------

TEST(AttainmentGolden, RecordedRatiosStillHold) {
  const kernels::Registry& registry = kernels::Registry::instance();
  for (const soap::testing::AttainmentGoldenRow& golden :
       soap::testing::attainment_golden_rows()) {
    AttainmentRow row =
        measure_kernel(registry.at(golden.name), golden.S, {});
    EXPECT_NEAR(row.Q_lb, golden.q_lb, 1.0) << golden.name;
    EXPECT_GE(row.ratio(), golden.ratio_lo) << golden.name;
    EXPECT_LE(row.ratio(), golden.ratio_hi) << golden.name;
    EXPECT_TRUE(row.sound()) << golden.name;
  }
}

// --- Determinism across thread counts and executors ------------------------

TEST(AttainmentDeterminism, TableIsBitIdenticalAcrossThreadsAndExecutors) {
  std::vector<const kernels::KernelEntry*> subset;
  const kernels::Registry& registry = kernels::Registry::instance();
  for (const char* name : {"gemm", "cholesky", "gemver", "attention",
                           "spmv_csr", "stencil_sweep"}) {
    subset.push_back(&registry.at(name));
    if (kSanitized && subset.size() == 3) break;
  }
  AttainmentOptions base;
  if (kSanitized) base.cache_sizes = {96};
  const std::vector<AttainmentRow> reference = attainment_table(subset, base);

  auto expect_identical = [&](const std::vector<AttainmentRow>& got,
                              const std::string& label) {
    ASSERT_EQ(got.size(), reference.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const AttainmentRow& a = reference[i];
      const AttainmentRow& b = got[i];
      EXPECT_EQ(a.kernel, b.kernel) << label;
      EXPECT_EQ(a.family, b.family) << label;
      EXPECT_EQ(a.S, b.S) << label;
      EXPECT_EQ(a.statements, b.statements) << label;
      EXPECT_EQ(a.fused, b.fused) << label;
      EXPECT_EQ(a.params, b.params) << label;
      // Raw double equality on purpose: the bound evaluation must be the
      // same arithmetic regardless of which worker ran the row.
      EXPECT_EQ(a.Q_lb, b.Q_lb) << label << " " << a.kernel;
      EXPECT_EQ(a.Q_sim_lru, b.Q_sim_lru) << label << " " << a.kernel;
      EXPECT_EQ(a.Q_sim_belady, b.Q_sim_belady) << label << " " << a.kernel;
      EXPECT_EQ(a.trace_length, b.trace_length) << label << " " << a.kernel;
      EXPECT_EQ(a.footprint, b.footprint) << label << " " << a.kernel;
    }
    EXPECT_EQ(format_attainment_table(got),
              format_attainment_table(reference))
        << label;
  };

  for (std::size_t threads : {std::size_t{2}, std::size_t{8},
                              std::size_t{0}}) {
    AttainmentOptions options = base;
    options.threads = threads;
    expect_identical(attainment_table(subset, options),
                     "threads=" + std::to_string(threads));
  }
  // Injected executors: the explicit serial bypass and a private pool.
  AttainmentOptions serial = base;
  serial.threads = 8;
  serial.executor = support::ExecutorRef::serial();
  expect_identical(attainment_table(subset, serial), "serial executor");
  support::ThreadPool pool(3);
  AttainmentOptions pooled = base;
  pooled.threads = 3;
  pooled.executor = support::ExecutorRef(pool);
  expect_identical(attainment_table(subset, pooled), "private pool");
}

// --- Clamp / degenerate-tile regressions -----------------------------------

constexpr const char* kGemmSource =
    "for i in range(N):\n"
    "  for j in range(N):\n"
    "    for k in range(N):\n"
    "      C[i,j] += A[i,k] * B[k,j]\n";

// S larger than the whole footprint: every tile clamps to the full extent
// and the simulation degenerates to the cold (compulsory-miss) bound.
TEST(AttainmentClamp, CacheLargerThanFootprintHitsColdBound) {
  Program p = frontend::parse_program(kGemmSource);
  const std::map<std::string, long long> params = {{"N", 8}};
  auto bound = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(bound.has_value());
  const long long huge = 1 << 20;
  auto tiles = schedule::concrete_tiles(p.statements[0], *bound, huge, params);
  for (const auto& [var, tile] : tiles) {
    EXPECT_EQ(tile, 8) << var << " should clamp to the full extent";
  }
  auto m = cachesim::measure_statement(p.statements[0], params, tiles,
                                       static_cast<std::size_t>(huge));
  // All three arrays are read (C via +=), so every distinct address loads
  // exactly once and the dirty C tile flushes once: the cold bound.
  EXPECT_EQ(m.footprint, 3u * 64u);
  EXPECT_EQ(m.belady.loads, 3 * 64);
  EXPECT_EQ(m.belady.io(), 3 * 64 + 64);
  EXPECT_EQ(m.lru.io(), m.belady.io());
}

// S below one tile row: every tile clamps to 1 (never 0), the trace still
// covers the full domain, and the soundness direction holds.
TEST(AttainmentClamp, TinyCacheClampsTilesToOne) {
  Program p = frontend::parse_program(kGemmSource);
  const std::map<std::string, long long> params = {{"N", 8}};
  auto bound = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(bound.has_value());
  auto tiles = schedule::concrete_tiles(p.statements[0], *bound, 1, params);
  for (const auto& [var, tile] : tiles) {
    EXPECT_GE(tile, 1) << var;
    EXPECT_LE(tile, 8) << var;
  }
  auto m = cachesim::measure_statement(p.statements[0], params, tiles, 1);
  EXPECT_EQ(m.trace_length, 4u * 8 * 8 * 8);  // tiling must not drop points
  std::map<std::string, double> env = {{"S", 1.0}, {"N", 8.0}};
  EXPECT_LE(bound->Q.eval(env), static_cast<double>(m.belady.io()) + 1e-6);
}

// S = 0 must not crash the simulators (regression: LRU evicted from an
// empty recency list); it is modeled as capacity 1.
TEST(AttainmentClamp, ZeroCapacityBehavesAsCapacityOne) {
  Program p = frontend::parse_program(kGemmSource);
  const std::map<std::string, long long> params = {{"N", 4}};
  auto m0 = cachesim::measure_statement(p.statements[0], params, {}, 0);
  auto m1 = cachesim::measure_statement(p.statements[0], params, {}, 1);
  EXPECT_EQ(m0.lru.io(), m1.lru.io());
  EXPECT_EQ(m0.belady.io(), m1.belady.io());
  EXPECT_GT(m0.lru.io(), 0);
}

// Triangular nests (regression: the extent probe used to pin outer
// variables at their lower bounds, so `for j in range(i)` computed extent
// 1 and clamped every tile to 1 regardless of S).  The extent of the inner
// loop is its worst case N-1, so a crafted sqrt(S) tile lands at 10.
TEST(AttainmentClamp, TriangularLoopTilesUseWorstCaseExtent) {
  Program p = frontend::parse_program(
      "for i in range(N):\n"
      "  for j in range(i):\n"
      "    B[i] += A[i,j] * A[j,i]\n");
  bounds::IoLowerBound bound;
  bound.tiles["j"] = bounds::TileSize{Rational(1, 2), 1.0};
  auto tiles = schedule::concrete_tiles(p.statements[0], bound, 100,
                                        {{"N", 32}});
  EXPECT_EQ(tiles.at("j"), 10);  // round(1.0 * 100^(1/2)), not clamped to 1
  EXPECT_EQ(tiles.at("i"), 32);  // no tile guideline -> full extent
}

}  // namespace
}  // namespace soap::analysis
