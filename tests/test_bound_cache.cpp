// BoundCache semantics (docs/SERVING.md): hit/miss/coalesce accounting,
// single-flight coalescing under thread stress (run under TSan via the
// `parallel` label), LRU and node-budget eviction, persistence round-trips,
// and the headline determinism contract — cached and uncached analysis are
// bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bounds/opt/types.hpp"
#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "service/analyze.hpp"
#include "service/cache_key.hpp"
#include "service/bound_cache.hpp"
#include "service/serialize.hpp"
#include "support/cancel.hpp"
#include "symbolic/expr.hpp"

namespace soap {
namespace {

using service::BoundCache;
using service::BoundCacheOptions;
using service::BoundCacheStats;
using service::CachedBound;
using service::CacheKey;
using service::CacheOutcome;
using support::Digest;

CacheKey key_of(std::uint64_t i) {
  return CacheKey{Digest{i * 0x9e3779b97f4a7c15ULL + 0x1234, i + 1}};
}

sdg::MultiStatementBound make_bound(std::uint64_t i) {
  const sym::Expr n = sym::Expr::symbol("N");
  const sym::Expr s = sym::Expr::symbol("S");
  sdg::MultiStatementBound bound;
  bound.Q_leading = sym::Expr::constant(Rational(static_cast<long long>(
                        i + 1))) *
                    n * n * sym::pow(s, Rational(-1, 2));
  bound.Q_sdg = bound.Q_leading;
  bound.Q_cold = n;
  bound.subgraphs_evaluated = i;
  sdg::ArrayBound a;
  a.array = "C" + std::to_string(i);
  a.cdag_size = n * n;
  a.rho = sym::sqrt(s);
  a.rho_value = 0.5 + static_cast<double>(i);
  a.best_subgraph = {"St1"};
  bound.per_array.push_back(a);
  return bound;
}

// --- Serialization ----------------------------------------------------------

TEST(Serialize, ExprRoundTripIsPointerIdentical) {
  const sym::Expr n = sym::Expr::symbol("N");
  const sym::Expr s = sym::Expr::symbol("S");
  const sym::Expr exprs[] = {
      sym::Expr::constant(Rational(-7, 3)),
      n,
      sym::Expr::constant(2) * n * n * n * sym::pow(s, Rational(-1, 2)),
      sym::min({n * n, s + n}),
      sym::max({n, sym::sqrt(s)}) + sym::Expr::constant(1),
  };
  for (const sym::Expr& e : exprs) {
    const std::string text = service::serialize_expr(e);
    const auto back = service::deserialize_expr(text);
    ASSERT_TRUE(back.has_value()) << text;
    // Hash-consing makes equality pointer identity: the round trip rebuilds
    // the very node it started from.
    EXPECT_EQ(*back, e) << text;
  }
}

TEST(Serialize, RejectsGarbage) {
  for (const char* text :
       {"", "(", ")", "(c)", "(c x)", "(s)", "(q 1)", "(^ (s N))",
        "(+ (c 1)", "b1", "b1 nonsense", "(c 1/0)"}) {
    EXPECT_FALSE(service::deserialize_expr(text).has_value()) << text;
  }
  EXPECT_FALSE(service::deserialize_bound("b1 trailing junk").has_value());
  EXPECT_FALSE(service::deserialize_bound("b2 (c 1) (c 1) (c 1) 0 0")
                   .has_value());
}

TEST(Serialize, BoundRoundTripIsExact) {
  const sdg::MultiStatementBound bound = make_bound(3);
  const std::string record = service::serialize_bound(bound);
  EXPECT_EQ(record.find('\n'), std::string::npos);
  const auto back = service::deserialize_bound(record);
  ASSERT_TRUE(back.has_value()) << record;
  EXPECT_EQ(back->Q_leading, bound.Q_leading);
  EXPECT_EQ(back->Q_sdg, bound.Q_sdg);
  EXPECT_EQ(back->Q_cold, bound.Q_cold);
  EXPECT_EQ(back->subgraphs_evaluated, bound.subgraphs_evaluated);
  EXPECT_FALSE(back->degraded);
  ASSERT_EQ(back->per_array.size(), bound.per_array.size());
  EXPECT_EQ(back->per_array[0].array, bound.per_array[0].array);
  EXPECT_EQ(back->per_array[0].cdag_size, bound.per_array[0].cdag_size);
  EXPECT_EQ(back->per_array[0].rho, bound.per_array[0].rho);
  // Bit-exact double round trip (IEEE-754 bits in hex).
  EXPECT_EQ(back->per_array[0].rho_value, bound.per_array[0].rho_value);
  EXPECT_EQ(back->per_array[0].best_subgraph, bound.per_array[0].best_subgraph);
}

// --- Cache semantics --------------------------------------------------------

TEST(BoundCacheTest, HitMissAccounting) {
  BoundCache cache;
  std::size_t derived = 0;
  const auto derive = [&derived] { return make_bound(derived++); };
  const CachedBound first = cache.get_or_derive(key_of(1), derive);
  EXPECT_EQ(first.outcome, CacheOutcome::kMiss);
  const CachedBound second = cache.get_or_derive(key_of(1), derive);
  EXPECT_EQ(second.outcome, CacheOutcome::kHit);
  EXPECT_EQ(derived, 1u);
  EXPECT_EQ(second.bound.Q_leading, first.bound.Q_leading);
  const BoundCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.requests(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(BoundCacheTest, DegradedBoundsAreServedButNeverStored) {
  BoundCache cache;
  sdg::MultiStatementBound degraded = make_bound(0);
  degraded.degraded = true;
  degraded.degraded_reason = support::StatusCode::kDeadlineExceeded;
  const CachedBound out =
      cache.get_or_derive(key_of(9), [&degraded] { return degraded; });
  EXPECT_EQ(out.outcome, CacheOutcome::kMiss);
  EXPECT_TRUE(out.bound.degraded);
  EXPECT_EQ(cache.size(), 0u);
  cache.put(key_of(9), degraded);
  EXPECT_EQ(cache.size(), 0u);
  // The next request re-derives (and a clean result then sticks).
  const CachedBound clean =
      cache.get_or_derive(key_of(9), [] { return make_bound(0); });
  EXPECT_EQ(clean.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BoundCacheTest, ErrorsPropagateAndAreNotCached) {
  BoundCache cache;
  const auto fail = []() -> sdg::MultiStatementBound {
    throw support::AnalysisError(support::StatusCode::kCancelled, "stop");
  };
  EXPECT_THROW(cache.get_or_derive(key_of(4), fail), support::AnalysisError);
  EXPECT_EQ(cache.size(), 0u);
  const CachedBound ok =
      cache.get_or_derive(key_of(4), [] { return make_bound(4); });
  EXPECT_EQ(ok.outcome, CacheOutcome::kMiss);
}

TEST(BoundCacheTest, LruEvictionAtCapacity) {
  BoundCacheOptions options;
  options.max_entries = 2;
  options.shards = 1;
  BoundCache cache(options);
  cache.put(key_of(1), make_bound(1));
  cache.put(key_of(2), make_bound(2));
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.put(key_of(3), make_bound(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
}

TEST(BoundCacheTest, NodeBudgetEvictsDownToEmpty) {
  BoundCacheOptions options;
  options.shards = 1;
  // Far below the process floor: every store must immediately evict back
  // down, degenerating to "cache nothing" (never a spin, never a throw).
  options.max_live_nodes = 1;
  BoundCache cache(options);
  cache.put(key_of(1), make_bound(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.stats().evicted, 1u);
}

// --- Single-flight stress (TSan target) -------------------------------------

TEST(BoundCacheStress, SingleFlightNeverDerivesAKeyTwiceConcurrently) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 5;
  constexpr std::size_t kRounds = 40;
  BoundCache cache;
  std::atomic<std::uint64_t> derivations{0};
  std::vector<std::atomic<int>> in_flight(kKeys);
  std::atomic<bool> overlap{false};
  std::atomic<std::uint64_t> requests{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::uint64_t k = (t + round) % kKeys;
        const CachedBound out = cache.get_or_derive(key_of(k), [&, k] {
          if (in_flight[k].fetch_add(1) != 0) overlap = true;
          sdg::MultiStatementBound bound = make_bound(k);
          if (in_flight[k].fetch_sub(1) != 1) overlap = true;
          derivations.fetch_add(1);
          return bound;
        });
        requests.fetch_add(1);
        // Every caller sees the canonical bound for its key, whichever
        // path served it.
        EXPECT_EQ(out.bound.subgraphs_evaluated, k);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(overlap.load()) << "two concurrent derivations of one key";
  // Once a key is stored it is never derived again, so the only possible
  // derivations are the kKeys leaders (no eviction at this scale).
  EXPECT_EQ(derivations.load(), kKeys);
  const BoundCacheStats stats = cache.stats();
  EXPECT_EQ(stats.requests(), requests.load());
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.hits + stats.coalesced, requests.load() - kKeys);
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_EQ(stats.evicted, 0u);
}

// --- Persistence ------------------------------------------------------------

TEST(BoundCachePersist, RoundTripsAcrossInstances) {
  const std::string path = testing::TempDir() + "/bound_cache_persist.txt";
  std::remove(path.c_str());
  BoundCacheOptions options;
  options.persist_path = path;
  const sdg::MultiStatementBound bound = make_bound(7);
  {
    BoundCache cache(options);
    EXPECT_EQ(cache.stats().persisted_loaded, 0u);
    cache.get_or_derive(key_of(7), [&bound] { return bound; });
  }
  {
    BoundCache warm(options);
    EXPECT_EQ(warm.stats().persisted_loaded, 1u);
    const auto hit = warm.lookup(key_of(7));
    ASSERT_TRUE(hit.has_value());
    // The persisted record rebuilds through the canonicalizing
    // constructors, so the reloaded Exprs are the identical interned nodes.
    EXPECT_EQ(hit->Q_leading, bound.Q_leading);
    EXPECT_EQ(hit->per_array[0].rho_value, bound.per_array[0].rho_value);
    // A hit loaded from disk must not be re-appended: a third instance
    // still loads exactly one record.
  }
  {
    BoundCache again(options);
    EXPECT_EQ(again.stats().persisted_loaded, 1u);
  }
  std::remove(path.c_str());
}

TEST(BoundCachePersist, TornAndStaleLinesAreSkipped) {
  const std::string path = testing::TempDir() + "/bound_cache_torn.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("soap-bound-cache v1\n", f);
    const std::string good =
        key_of(1).digest.hex() + "\t" + service::serialize_bound(make_bound(1));
    std::fprintf(f, "%s\n", good.c_str());
    std::fputs("no-tab-line\n", f);
    std::fputs("nothex\tb1 (c 1) (c 1) (c 1) 0 0\n", f);
    const std::string torn =
        key_of(2).digest.hex() + "\tb1 (* (c 2) (^ (s N";  // torn mid-write
    std::fprintf(f, "%s", torn.c_str());
    std::fclose(f);
  }
  BoundCacheOptions options;
  options.persist_path = path;
  BoundCache cache(options);
  EXPECT_EQ(cache.stats().persisted_loaded, 1u);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  std::remove(path.c_str());
}

TEST(BoundCachePersist, StaleHeaderStartsCold) {
  const std::string path = testing::TempDir() + "/bound_cache_stale.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("soap-bound-cache v999\nwhatever\n", f);
    std::fclose(f);
  }
  BoundCacheOptions options;
  options.persist_path = path;
  BoundCache cache(options);
  EXPECT_EQ(cache.stats().persisted_loaded, 0u);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

// --- Cache key sensitivity --------------------------------------------------

TEST(CacheKeyTest, OptimizerBackendIsPartOfTheKey) {
  // Bounds derived under different numeric backends may legitimately
  // differ, so they must never alias in the cache: the backend is keyed,
  // while thread count (excluded by the determinism contract) is not.
  const Program program = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  sdg::SdgOptions nelder;
  nelder.optimizer = bounds::opt::BackendKind::kNelderMead;
  sdg::SdgOptions multistart = nelder;
  multistart.optimizer = bounds::opt::BackendKind::kMultistart;
  sdg::SdgOptions subplex = nelder;
  subplex.optimizer = bounds::opt::BackendKind::kSubplex;
  const CacheKey k_nelder = service::make_cache_key(program, nelder);
  const CacheKey k_multi = service::make_cache_key(program, multistart);
  const CacheKey k_subplex = service::make_cache_key(program, subplex);
  EXPECT_NE(k_nelder, k_multi);
  EXPECT_NE(k_nelder, k_subplex);
  EXPECT_NE(k_multi, k_subplex);
  // Deterministic: the same options rebuild the same key...
  EXPECT_EQ(k_nelder, service::make_cache_key(program, nelder));
  // ...and excluded fields (threads) still do not perturb it.
  sdg::SdgOptions threaded = multistart;
  threaded.threads = 8;
  EXPECT_EQ(k_multi, service::make_cache_key(program, threaded));
}

// --- Cached vs uncached parity (the determinism contract) -------------------

TEST(CachedAnalysis, KernelResultsAreBitIdenticalCacheOnAndOff) {
  BoundCache cache;
  const kernels::KernelEntry& entry = kernels::kernel_by_name("gemm");
  const kernels::KernelOutcome plain =
      kernels::analyze_kernel_checked(entry);
  CacheOutcome outcome = CacheOutcome::kHit;
  const kernels::KernelOutcome cold = service::analyze_kernel_cached(
      cache, entry, 1, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  const kernels::KernelOutcome warm = service::analyze_kernel_cached(
      cache, entry, 1, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  for (const kernels::KernelOutcome* out : {&cold, &warm}) {
    EXPECT_EQ(out->status, plain.status);
    EXPECT_EQ(out->degraded, plain.degraded);
    ASSERT_TRUE(out->bound.has_value());
    // Pointer-identical interned node, not merely equal text.
    EXPECT_EQ(*out->bound, *plain.bound);
  }
}

TEST(CachedAnalysis, NoBoundProgramsMatchUncachedOutcomeAndStayUncached) {
  // The empty program is the canonical no-bound case: there is nothing to
  // account, so multi_statement_bound yields nullopt rather than a bound.
  const Program program;
  ASSERT_FALSE(sdg::multi_statement_bound(program, {}).has_value());
  BoundCache cache;
  for (int round = 0; round < 2; ++round) {
    const service::ProgramAnalysis analysis =
        service::analyze_program_cached(cache, program, {});
    EXPECT_FALSE(analysis.bound.has_value());
    EXPECT_EQ(analysis.outcome, CacheOutcome::kMiss);
    EXPECT_EQ(cache.size(), 0u);
  }
}

TEST(CachedAnalysis, CorpusReportMatchesResilientCorpus) {
  // A small two-family slice keeps this suite fast; the full-corpus parity
  // gate lives in CI (analyze_tool --corpus --json with and without
  // --cache compared byte-for-byte).
  std::vector<const kernels::KernelEntry*> subset;
  for (const char* name : {"gemm", "atax", "mvt", "softmax"}) {
    subset.push_back(&kernels::kernel_by_name(name));
  }
  const kernels::CorpusReport plain =
      kernels::analyze_corpus_resilient(subset, {});
  BoundCache cache;
  const kernels::CorpusReport cold =
      service::analyze_corpus_cached(cache, subset, {});
  // Second pass: everything served from cache, still identical.
  const kernels::CorpusReport warm =
      service::analyze_corpus_cached(cache, subset, {});
  const BoundCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, subset.size());
  for (const kernels::CorpusReport* report : {&cold, &warm}) {
    ASSERT_EQ(report->kernels.size(), plain.kernels.size());
    for (std::size_t i = 0; i < plain.kernels.size(); ++i) {
      EXPECT_EQ(report->kernels[i].status, plain.kernels[i].status);
      ASSERT_EQ(report->kernels[i].bound.has_value(),
                plain.kernels[i].bound.has_value());
      if (plain.kernels[i].bound) {
        EXPECT_EQ(*report->kernels[i].bound, *plain.kernels[i].bound);
      }
    }
  }
}

}  // namespace
}  // namespace soap
