#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "graph/maxflow.hpp"
#include "graph/vertex_cut.hpp"

namespace soap::graph {
namespace {

TEST(Digraph, TopologicalOrder) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
}

TEST(Digraph, CycleDetection) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(Digraph, Reachability) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto seen = g.reachable_from({0});
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(Digraph, BlockCycleCheck) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // Blocks {0,2} and {1,3}: 0->1 crosses A->B, 1->2 crosses B->A: cycle.
  EXPECT_TRUE(g.blocks_have_cycle({0, 1, 0, 1}));
  // Blocks {0,1} and {2,3}: only A->B edges: acyclic.
  EXPECT_FALSE(g.blocks_have_cycle({0, 0, 1, 1}));
}

TEST(MaxFlow, SimpleNetwork) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 3);
  mf.add_edge(0, 2, 2);
  mf.add_edge(1, 3, 2);
  mf.add_edge(2, 3, 3);
  EXPECT_EQ(mf.solve(0, 3), 4);
}

TEST(MaxFlow, BottleneckAndCutSide) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 10);
  mf.add_edge(1, 2, 1);
  mf.add_edge(2, 3, 10);
  EXPECT_EQ(mf.solve(0, 3), 1);
  auto side = mf.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(VertexCut, DiamondNeedsOneVertex) {
  // 0 -> {1,2} -> 3: cutting vertex 0 or 3 suffices.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(min_vertex_cut(g, {0}, {3}), 1);
  auto cut = min_vertex_cut_set(g, {0}, {3});
  ASSERT_EQ(cut.size(), 1u);
}

TEST(VertexCut, ParallelPathsNeedMany) {
  // k disjoint 2-vertex paths from k sources to k sinks.
  const std::size_t k = 5;
  Digraph g(2 * k);
  std::vector<std::size_t> sources, targets;
  for (std::size_t i = 0; i < k; ++i) {
    g.add_edge(i, k + i);
    sources.push_back(i);
    targets.push_back(k + i);
  }
  EXPECT_EQ(min_vertex_cut(g, sources, targets),
            static_cast<long long>(k));
}

TEST(VertexCut, DominatorOfOutputThroughSharedMiddle) {
  // Two inputs funnel through one vertex to two outputs: dominator size 1.
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  EXPECT_EQ(min_vertex_cut(g, {0, 1}, {3, 4}), 1);
}

class GridCut : public ::testing::TestWithParam<int> {};

TEST_P(GridCut, ChainOfWidthKNeedsK) {
  int k = GetParam();
  // Width-k layered DAG of depth 3: min vertex cut = k.
  Digraph g(static_cast<std::size_t>(3 * k));
  std::vector<std::size_t> sources, targets;
  for (int i = 0; i < k; ++i) {
    sources.push_back(static_cast<std::size_t>(i));
    targets.push_back(static_cast<std::size_t>(2 * k + i));
    for (int j = 0; j < k; ++j) {
      g.add_edge(static_cast<std::size_t>(i),
                 static_cast<std::size_t>(k + j));
      g.add_edge(static_cast<std::size_t>(k + i),
                 static_cast<std::size_t>(2 * k + j));
    }
  }
  EXPECT_EQ(min_vertex_cut(g, sources, targets), k);
}

INSTANTIATE_TEST_SUITE_P(Widths, GridCut, ::testing::Values(1, 2, 3, 6));

}  // namespace
}  // namespace soap::graph
