#include <gtest/gtest.h>

#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "frontend/lower.hpp"
#include "schedule/codegen.hpp"
#include "schedule/tiling.hpp"
#include "schedule/trace.hpp"

namespace soap {
namespace {

Program gemm() {
  return frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
}

TEST(Trace, NaturalOrderLengthAndFootprint) {
  schedule::TraceBuilder b;
  b.append_natural(gemm().statements[0], {{"N", 4}});
  // 4 accesses per iteration (C read, A, B, C write), 64 iterations.
  EXPECT_EQ(b.trace().size(), 256u);
  EXPECT_EQ(b.distinct_addresses(), 48u);  // 3 arrays x 16
}

TEST(Trace, TiledCoversSameIterations) {
  schedule::TraceBuilder natural, tiled;
  natural.append_natural(gemm().statements[0], {{"N", 6}});
  tiled.append_tiled(gemm().statements[0], {{"N", 6}},
                     {{"i", 2}, {"j", 3}, {"k", 4}});
  EXPECT_EQ(natural.trace().size(), tiled.trace().size());
  EXPECT_EQ(natural.distinct_addresses(), tiled.distinct_addresses());
}

TEST(Trace, TiledTriangularDomainExact) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(i):
    x[i] += L[i,j] * y[j]
)");
  schedule::TraceBuilder natural, tiled;
  natural.append_natural(p.statements[0], {{"N", 9}});
  tiled.append_tiled(p.statements[0], {{"N", 9}}, {{"i", 4}, {"j", 3}});
  EXPECT_EQ(natural.trace().size(), tiled.trace().size());
}

TEST(CacheSim, ColdMissesOnly) {
  // Sequential scan fits: one miss per address, no write-backs of clean data.
  std::vector<schedule::Access> trace;
  for (std::uint64_t a = 0; a < 10; ++a) trace.push_back({a, false});
  auto r = cachesim::simulate_lru(trace, 16);
  EXPECT_EQ(r.loads, 10);
  EXPECT_EQ(r.stores, 0);
}

TEST(CacheSim, DirtyEvictionWritesBack) {
  std::vector<schedule::Access> trace;
  for (std::uint64_t a = 0; a < 4; ++a) trace.push_back({a, true});
  auto r = cachesim::simulate_lru(trace, 2);
  // Write-allocate without load; 2 evicted dirty + 2 flushed at the end.
  EXPECT_EQ(r.loads, 0);
  EXPECT_EQ(r.stores, 4);
}

TEST(CacheSim, LruThrashesOnCyclicPattern) {
  // Classic LRU pathology: cycling through S+1 addresses misses every time;
  // Belady keeps S-1 of them resident.
  std::vector<schedule::Access> trace;
  const std::uint64_t k = 5;  // S = 4
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t a = 0; a < k; ++a) trace.push_back({a, false});
  }
  auto lru = cachesim::simulate_lru(trace, 4);
  auto belady = cachesim::simulate_belady(trace, 4);
  EXPECT_EQ(lru.loads, 50);       // every access misses
  EXPECT_LT(belady.loads, 25);    // offline-optimal reuses
}

TEST(CacheSim, BeladyNeverWorseThanLru) {
  Program p = gemm();
  for (std::size_t s : {16, 64, 256}) {
    auto m = cachesim::measure_statement(p.statements[0], {{"N", 12}}, {}, s);
    EXPECT_LE(m.belady.io(), m.lru.io()) << "S=" << s;
  }
}

TEST(Tiling, ConcreteTilesFromBound) {
  Program p = gemm();
  auto b = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(b);
  auto tiles = schedule::concrete_tiles(p.statements[0], *b, 768,
                                        {{"N", 1024}});
  // sqrt(S/3) = 16 for S = 768.
  for (const char* v : {"i", "j", "k"}) {
    EXPECT_NEAR(static_cast<double>(tiles.at(v)), 16.0, 1.0) << v;
  }
  // Clamped by the extent for tiny problems.
  auto small = schedule::concrete_tiles(p.statements[0], *b, 1 << 20,
                                        {{"N", 8}});
  EXPECT_EQ(small.at("i"), 8);
}

TEST(Tiling, OptimalTilesBeatUntiledAndApproachBound) {
  // The headline demonstration: the derived tiling's simulated I/O is far
  // below the untiled order and within a small factor of the lower bound.
  Program p = gemm();
  auto b = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(b);
  const long long n = 48;
  const std::size_t S = 768;  // tiles = sqrt(S/3) = 16
  auto tiles =
      schedule::concrete_tiles(p.statements[0], *b, static_cast<long long>(S),
                               {{"N", n}});
  auto untiled =
      cachesim::measure_statement(p.statements[0], {{"N", n}}, {}, S);
  auto tiled =
      cachesim::measure_statement(p.statements[0], {{"N", n}}, tiles, S);
  double lower = b->Q.eval({{"N", static_cast<double>(n)},
                            {"S", static_cast<double>(S)}});
  EXPECT_LT(tiled.lru.io(), untiled.lru.io() / 3);
  EXPECT_GE(tiled.belady.io() + 1e-9, lower);     // soundness
  EXPECT_LE(tiled.belady.io(), 4.0 * lower);      // tightness (small factor)
}

TEST(Codegen, EmitsTiledLoops) {
  Program p = gemm();
  std::string untiled = schedule::emit_c(p.statements[0]);
  EXPECT_NE(untiled.find("for (int i = 0; i < N; ++i)"), std::string::npos);
  std::string tiled = schedule::emit_tiled_c(p.statements[0],
                                             {{"i", 16}, {"j", 16}, {"k", 16}});
  EXPECT_NE(tiled.find("it += 16"), std::string::npos);
  EXPECT_NE(tiled.find("min(N, it + 16)"), std::string::npos);
}

class TilingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TilingSweep, TiledLruWithinConstantOfLowerBound) {
  std::size_t S = GetParam();
  Program p = gemm();
  auto b = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(b);
  const long long n = 36;
  auto tiles = schedule::concrete_tiles(
      p.statements[0], *b, static_cast<long long>(S), {{"N", n}});
  auto tiled = cachesim::measure_statement(p.statements[0], {{"N", n}}, tiles,
                                           S);
  double lower = b->Q.eval({{"N", static_cast<double>(n)},
                            {"S", static_cast<double>(S)}});
  EXPECT_GE(tiled.belady.io() + 1e-9, lower) << "S=" << S;
  EXPECT_LE(tiled.lru.io(), 8.0 * lower) << "S=" << S;
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, TilingSweep,
                         ::testing::Values(48, 108, 192, 300));

}  // namespace
}  // namespace soap
