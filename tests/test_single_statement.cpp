// End-to-end single-statement bounds (Section 4) on classic kernels, checked
#include <cmath>
// against the closed forms derived in the paper.
#include "bounds/single_statement.hpp"

#include <gtest/gtest.h>

#include "frontend/lower.hpp"

namespace soap::bounds {
namespace {

using sym::Expr;

Expr N() { return Expr::symbol("N"); }
Expr T() { return Expr::symbol("T"); }
Expr S() { return Expr::symbol("S"); }

IoLowerBound bound_of(const std::string& source) {
  Program p = frontend::parse_program(source);
  auto b = single_statement_bound(p.statements[0]);
  EXPECT_TRUE(b.has_value());
  return *b;
}

TEST(SingleStatement, Gemm) {
  IoLowerBound b = bound_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  EXPECT_EQ(b.Q_leading, Expr(2) * N() * N() * N() / sym::sqrt(S()));
  EXPECT_EQ(b.rho, sym::sqrt(S()) / Expr(2));
  EXPECT_EQ(b.X0, Expr(3) * S());
  EXPECT_TRUE(b.exact);
}

TEST(SingleStatement, Jacobi1d) {
  IoLowerBound b = bound_of(R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)");
  EXPECT_EQ(b.Q_leading, Expr(2) * N() * T() / S());
  EXPECT_EQ(b.rho, S() / Expr(2));
}

TEST(SingleStatement, Heat3d) {
  IoLowerBound b = bound_of(R"(
for t in range(T):
  for i in range(1, N-1):
    for j in range(1, N-1):
      for k in range(1, N-1):
        A[i,j,k,t+1] = A[i,j,k,t] + A[i-1,j,k,t] + A[i+1,j,k,t] + A[i,j-1,k,t] + A[i,j+1,k,t] + A[i,j,k-1,t] + A[i,j,k+1,t]
)");
  EXPECT_EQ(b.Q_leading, Expr(6) * N() * N() * N() * T() / sym::cbrt(S()));
  EXPECT_EQ(b.rho, sym::cbrt(S()) / Expr(6));
}

TEST(SingleStatement, LuTrailingUpdate) {
  IoLowerBound b = bound_of(R"(
for k in range(N):
  for i in range(k + 1, N):
    for j in range(k + 1, N):
      A[i,j] = A[i,j] - A[i,k] * A[k,j] / A[k,k]
)");
  EXPECT_EQ(b.Q_leading,
            Expr(2) * N() * N() * N() / (Expr(3) * sym::sqrt(S())));
}

TEST(SingleStatement, TriangularDomainScalesBound) {
  // Cholesky trailing update: same intensity as gemm, |D| = N^3/6.
  IoLowerBound b = bound_of(R"(
for i in range(N):
  for j in range(i):
    for k in range(j):
      A[i,j] -= A[i,k] * A[j,k]
)");
  EXPECT_EQ(b.Q_leading, N() * N() * N() / (Expr(3) * sym::sqrt(S())));
}

TEST(SingleStatement, StreamingKernelHasFlatIntensity) {
  IoLowerBound b = bound_of(R"(
for i in range(N):
  y[i] = x[i]
)");
  EXPECT_FALSE(b.finite_X0);
  EXPECT_EQ(b.Q_leading, N());
}

TEST(SingleStatement, TilesMatchClosedForm) {
  IoLowerBound b = bound_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  // x_v = sqrt(X/3), X0 = 3S -> x_v = sqrt(S): exponent 1/2, coefficient ~
  // 1/sqrt(3) in X units.
  for (const char* v : {"i", "j", "k"}) {
    ASSERT_TRUE(b.tiles.count(v));
    EXPECT_EQ(b.tiles.at(v).exponent, Rational(1, 2));
    EXPECT_NEAR(b.tiles.at(v).coefficient, 1.0 / std::sqrt(3.0), 1e-6);
  }
}

TEST(SingleStatement, BoundMonotoneInS) {
  IoLowerBound b = bound_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  double prev = 1e300;
  for (double s : {64.0, 256.0, 1024.0, 4096.0}) {
    double q = b.Q_leading.eval({{"N", 512.0}, {"S", s}});
    EXPECT_LT(q, prev);  // more fast memory => weaker lower bound
    prev = q;
  }
}

TEST(SingleStatement, NonInjectiveMaxOverlapHint) {
  // Convolution-like access with sigma=1: Img dimension indexed by r+w.
  Program p = frontend::parse_program(R"(
for k in range(K):
  for w in range(W):
    for r in range(R):
      Out[k,w] += Img[r + w] * F[k,r]
)");
  Statement st = p.statements[0];
  st.max_overlap_dims["Img"] = {0};
  auto with_hint = single_statement_bound(st);
  ASSERT_TRUE(with_hint);
  auto without = single_statement_bound(p.statements[0]);
  ASSERT_TRUE(without);
  // Maximal overlap cannot make the bound tighter.
  double h = with_hint->Q_leading.eval({{"K", 1e4}, {"W", 1e4}, {"R", 1e4},
                                        {"S", 4096.0}});
  double w = without->Q_leading.eval({{"K", 1e4}, {"W", 1e4}, {"R", 1e4},
                                      {"S", 4096.0}});
  EXPECT_LE(h, w * (1 + 1e-9));
}

}  // namespace
}  // namespace soap::bounds
