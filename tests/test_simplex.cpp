#include "linalg/simplex.hpp"

#include <gtest/gtest.h>

namespace soap {
namespace {

TEST(Simplex, SimpleTwoVariable) {
  // max x + y s.t. x <= 2, y <= 3.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.constraints = {{1, 0}, {0, 1}};
  lp.rhs = {2, 3};
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol);
  EXPECT_EQ(sol->objective_value, Rational(5));
  EXPECT_EQ(sol->x[0], Rational(2));
  EXPECT_EQ(sol->x[1], Rational(3));
}

TEST(Simplex, MatrixMultiplicationExponentLp) {
  // max a_i + a_j + a_k  s.t. pairwise sums <= 1: the HBL dual of MMM.
  LinearProgram lp;
  lp.objective = {1, 1, 1};
  lp.constraints = {{1, 1, 0}, {1, 0, 1}, {0, 1, 1}};
  lp.rhs = {1, 1, 1};
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol);
  EXPECT_EQ(sol->objective_value, Rational(3, 2));
}

TEST(Simplex, UnboundedDetected) {
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.constraints = {{1, 0}};  // y unconstrained
  lp.rhs = {1};
  EXPECT_FALSE(solve_lp(lp));
}

TEST(Simplex, ExactRationalArithmetic) {
  // max x s.t. 3x <= 1: optimum exactly 1/3 (no floating point).
  LinearProgram lp;
  lp.objective = {1};
  lp.constraints = {{3}};
  lp.rhs = {1};
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol);
  EXPECT_EQ(sol->x[0], Rational(1, 3));
}

TEST(Simplex, DegenerateNoCycling) {
  // Classic Beale-style degeneracy; Bland's rule must terminate.
  LinearProgram lp;
  lp.objective = {Rational(3, 4), -150, Rational(1, 50), -6};
  lp.constraints = {{Rational(1, 4), -60, Rational(-1, 25), 9},
                    {Rational(1, 2), -90, Rational(-1, 50), 3},
                    {0, 0, 1, 0}};
  lp.rhs = {0, 0, 1};
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol);
  EXPECT_EQ(sol->objective_value, Rational(1, 20));
}

TEST(Simplex, RejectsMalformedInput) {
  LinearProgram lp;
  lp.objective = {1};
  lp.constraints = {{1, 2}};  // arity mismatch
  lp.rhs = {1};
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);
  lp.constraints = {{1}};
  lp.rhs = {Rational(-1)};
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);
}

class StencilLp : public ::testing::TestWithParam<int> {};

TEST_P(StencilLp, DDimensionalStencilExponent) {
  // d spatial dims + time: constraints a_x_i <= 1 each and the codim-1
  // monomial structure of Corollary 1 yields alpha = (d+1)/d for the
  // canonical d-dimensional time stencil.
  int d = GetParam();
  std::size_t n = static_cast<std::size_t>(d) + 1;  // + time
  LinearProgram lp;
  lp.objective.assign(n, Rational(1));
  // Monomial sets: drop one spatial dim -> {all others}; drop time ->
  // {all spatial}.
  for (std::size_t skip = 0; skip < n; ++skip) {
    std::vector<Rational> row(n, Rational(1));
    row[skip] = 0;
    lp.constraints.push_back(std::move(row));
    lp.rhs.emplace_back(1);
  }
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol);
  EXPECT_EQ(sol->objective_value, Rational(d + 1, d));
}

INSTANTIATE_TEST_SUITE_P(Dims, StencilLp, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace soap
