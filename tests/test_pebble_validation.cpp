// The sharded pebble-game validation entry points (pebbles/validate.*):
// slot-per-job determinism of batch instantiation, schedule replay, the
// end-to-end schedule validation, and the optimal oracle across thread
// counts and executors.  Labeled `parallel` so the TSan CI job covers it.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "frontend/lower.hpp"
#include "pebbles/validate.hpp"
#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace soap::pebbles {
namespace {

Program gemm_program() {
  return frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
}

Program outer_product_program() {
  return frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
}

ShardOptions with_threads(std::size_t threads) {
  ShardOptions shard;
  shard.threads = threads;
  return shard;
}

// CDAGs have no operator==; compare the full observable structure.
void expect_same_cdag(const Cdag& a, const Cdag& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v)) << label << " vertex " << v;
    EXPECT_EQ(a.graph().parents(v), b.graph().parents(v))
        << label << " vertex " << v;
  }
  EXPECT_EQ(a.inputs(), b.inputs()) << label;
  EXPECT_EQ(a.outputs(), b.outputs()) << label;
}

TEST(InstantiateBatch, MatchesSerialInstantiationAcrossThreadCounts) {
  Program gemm = gemm_program();
  Program outer = outer_product_program();
  std::vector<InstantiationJob> jobs = {
      {&gemm, {{"N", 2}}},
      {&gemm, {{"N", 3}}},
      {&outer, {{"N", 4}}},
      {&gemm, {{"N", 4}}},
  };
  std::vector<Cdag> reference;
  reference.reserve(jobs.size());
  for (const InstantiationJob& job : jobs) {
    reference.push_back(instantiate(*job.program, job.params));
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                              std::size_t{0}}) {
    std::vector<Cdag> batch = instantiate_batch(jobs, {},
                                                with_threads(threads));
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_same_cdag(batch[i], reference[i],
                       "job " + std::to_string(i) + " @" +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(RunPebblings, MatchesIndividualReplayAcrossThreadCounts) {
  Cdag cdag = instantiate(gemm_program(), {{"N", 2}});
  std::vector<ScheduleResult> schedules;
  std::vector<ReplayJob> jobs;
  for (std::size_t S = 4; S <= 8; ++S) {
    schedules.push_back(
        natural_order_pebbling(cdag, S, Replacement::kBelady));
  }
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    jobs.push_back({&cdag, 4 + i, &schedules[i].moves});
  }
  std::vector<GameResult> reference;
  reference.reserve(jobs.size());
  for (const ReplayJob& job : jobs) {
    reference.push_back(run_pebbling(*job.cdag, job.S, *job.moves));
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                              std::size_t{0}}) {
    std::vector<GameResult> batch = run_pebblings(jobs, with_threads(threads));
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string label =
          "job " + std::to_string(i) + " @" + std::to_string(threads);
      EXPECT_EQ(batch[i].valid, reference[i].valid) << label;
      EXPECT_EQ(batch[i].io_cost, reference[i].io_cost) << label;
      EXPECT_EQ(batch[i].loads, reference[i].loads) << label;
      EXPECT_EQ(batch[i].stores, reference[i].stores) << label;
      EXPECT_EQ(batch[i].max_red, reference[i].max_red) << label;
      EXPECT_EQ(batch[i].error, reference[i].error) << label;
    }
  }
}

TEST(ValidateSchedules, BeladySchedulesReplayConsistently) {
  Cdag gemm = instantiate(gemm_program(), {{"N", 3}});
  Cdag outer = instantiate(outer_product_program(), {{"N", 3}});
  std::vector<PebbleCase> cases;
  for (std::size_t S = 4; S <= 8; ++S) cases.push_back({&gemm, S});
  for (std::size_t S = 3; S <= 6; ++S) cases.push_back({&outer, S});
  std::vector<ScheduleValidation> serial =
      validate_schedules(cases, Replacement::kBelady, with_threads(1));
  ASSERT_EQ(serial.size(), cases.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].scheduled) << "case " << i << ": "
                                     << serial[i].error;
    EXPECT_TRUE(serial[i].consistent())
        << "case " << i << ": " << serial[i].replay.error;
    EXPECT_EQ(serial[i].replay.io_cost, serial[i].schedule.io_cost)
        << "case " << i;
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    std::vector<ScheduleValidation> parallel =
        validate_schedules(cases, Replacement::kBelady, with_threads(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      const std::string label =
          "case " + std::to_string(i) + " @" + std::to_string(threads);
      EXPECT_EQ(parallel[i].scheduled, serial[i].scheduled) << label;
      EXPECT_EQ(parallel[i].schedule.io_cost, serial[i].schedule.io_cost)
          << label;
      EXPECT_EQ(parallel[i].replay.io_cost, serial[i].replay.io_cost) << label;
      EXPECT_EQ(parallel[i].consistent(), serial[i].consistent()) << label;
    }
  }
}

TEST(ValidateSchedules, ImpossibleBudgetIsReportedPerSlotNotThrown) {
  Cdag gemm = instantiate(gemm_program(), {{"N", 3}});
  // S = 1 cannot pebble a vertex with two parents; the batch must still
  // complete and report the failure in its slot.
  std::vector<PebbleCase> cases = {{&gemm, 1}, {&gemm, 8}};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<ScheduleValidation> out =
        validate_schedules(cases, Replacement::kBelady, with_threads(threads));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FALSE(out[0].scheduled) << out[0].schedule.io_cost;
    EXPECT_FALSE(out[0].error.empty());
    EXPECT_TRUE(out[1].consistent()) << out[1].error;
  }
}

TEST(OptimalPebblings, MatchesSerialOracleAcrossThreadCounts) {
  Cdag outer = instantiate(outer_product_program(), {{"N", 2}});
  std::vector<PebbleCase> cases;
  for (std::size_t S = 3; S <= 6; ++S) cases.push_back({&outer, S});
  std::vector<std::optional<OptimalResult>> reference;
  reference.reserve(cases.size());
  for (const PebbleCase& c : cases) {
    reference.push_back(optimal_pebbling(*c.cdag, c.S));
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::optional<OptimalResult>> batch =
        optimal_pebblings(cases, {}, with_threads(threads));
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string label =
          "case " + std::to_string(i) + " @" + std::to_string(threads);
      ASSERT_EQ(batch[i].has_value(), reference[i].has_value()) << label;
      if (batch[i]) {
        EXPECT_EQ(batch[i]->cost, reference[i]->cost) << label;
      }
    }
  }
}

TEST(ValidateSchedules, SerialExecutorForcesInlineExecution) {
  Cdag gemm = instantiate(gemm_program(), {{"N", 2}});
  std::vector<PebbleCase> cases;
  for (std::size_t S = 4; S <= 8; ++S) cases.push_back({&gemm, S});
  ShardOptions shard;
  shard.threads = 8;
  shard.executor = support::ExecutorRef::serial();
  std::vector<ScheduleValidation> inline_run =
      validate_schedules(cases, Replacement::kBelady, shard);
  std::vector<ScheduleValidation> serial =
      validate_schedules(cases, Replacement::kBelady, with_threads(1));
  ASSERT_EQ(inline_run.size(), serial.size());
  for (std::size_t i = 0; i < inline_run.size(); ++i) {
    EXPECT_EQ(inline_run[i].schedule.io_cost, serial[i].schedule.io_cost);
    EXPECT_EQ(inline_run[i].consistent(), serial[i].consistent());
  }
}

}  // namespace
}  // namespace soap::pebbles
