#include "soap/access.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include "soap/program.hpp"
#include "soap/projection.hpp"

namespace soap {
namespace {

Affine var(const char* v) { return Affine::variable(v); }

TEST(Affine, Arithmetic) {
  Affine a = var("i") + Affine(2);
  Affine b = a - var("i");
  EXPECT_TRUE(b.is_constant());
  EXPECT_EQ(b.constant(), Rational(2));
  Affine scaled = Rational(3) * (var("i") + Affine(1));
  EXPECT_EQ(scaled.coeff("i"), Rational(3));
  EXPECT_EQ(scaled.constant(), Rational(3));
}

TEST(Affine, EvalAndStr) {
  Affine a = var("i") - var("j") + Affine(1);
  EXPECT_EQ(a.eval({{"i", Rational(5)}, {"j", Rational(2)}}), Rational(4));
  EXPECT_THROW(testing::sink(a.eval({{"i", Rational(1)}})), std::out_of_range);
  EXPECT_EQ(a.str(), "i - j + 1");
  EXPECT_EQ(Affine(0).str(), "0");
}

TEST(SimpleOverlap, DetectsConstantTranslations) {
  // Stencil: A[i-1,t], A[i,t], A[i+1,t], A[i,t+1].
  ArrayAccess acc;
  acc.array = "A";
  acc.components = {{{var("i") - Affine(1), var("t")}},
                    {{var("i"), var("t")}},
                    {{var("i") + Affine(1), var("t")}},
                    {{var("i"), var("t") + Affine(1)}}};
  auto trans = simple_overlap_translations(acc);
  ASSERT_TRUE(trans);
  auto counts = access_offset_counts(*trans);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);  // i offsets {1, 2} relative to i-1
  EXPECT_EQ(counts[1], 1);  // t offset {1}
}

TEST(SimpleOverlap, RejectsNonConstantDifferences) {
  // LU-style A[i,k] vs A[k,j]: differences involve iteration variables.
  ArrayAccess acc;
  acc.array = "A";
  acc.components = {{{var("i"), var("k")}}, {{var("k"), var("j")}}};
  EXPECT_FALSE(simple_overlap_translations(acc));
}

TEST(Projection, SplitsDisjointGroups) {
  Statement st;
  st.name = "lu";
  st.domain = Domain({{"k", 0, var("N")},
                      {"i", var("k") + Affine(1), var("N")},
                      {"j", var("k") + Affine(1), var("N")}});
  st.output = {"A", {{{var("i"), var("j")}}}};
  st.inputs = {{"A",
                {{{var("i"), var("j")}},
                 {{var("i"), var("k")}},
                 {{var("k"), var("j")}},
                 {{var("k"), var("k")}}}}};
  Statement split = split_disjoint_accesses(st);
  ASSERT_EQ(split.inputs.size(), 4u);
  // The group matching the output keeps the original array name.
  int named_a = 0;
  for (const auto& in : split.inputs) {
    if (in.array == "A") ++named_a;
  }
  EXPECT_EQ(named_a, 1);
}

TEST(Projection, KeepsSimpleOverlapTogether) {
  Statement st;
  st.name = "stencil";
  st.domain = Domain({{"i", 1, var("N")}});
  st.output = {"B", {{{var("i")}}}};
  st.inputs = {{"A", {{{var("i") - Affine(1)}}, {{var("i") + Affine(1)}}}}};
  Statement split = split_disjoint_accesses(st);
  ASSERT_EQ(split.inputs.size(), 1u);
  EXPECT_EQ(split.inputs[0].components.size(), 2u);
}

TEST(Projection, NeedsVersionDimension) {
  Statement st;
  st.name = "update";
  st.domain = Domain({{"i", 0, var("N")}, {"k", 0, var("N")}});
  st.output = {"A", {{{var("i")}}}};
  st.inputs = {{"A", {{{var("i")}}}}};
  EXPECT_TRUE(needs_version_dimension(st));
  st.inputs = {{"A", {{{var("i") - Affine(1)}}}}};
  EXPECT_FALSE(needs_version_dimension(st));
}

TEST(SoapCheck, FlagsViolationsAndPasses) {
  Program p;
  Statement ok;
  ok.name = "gemm";
  ok.domain = Domain({{"i", 0, var("N")}, {"j", 0, var("N")},
                      {"k", 0, var("N")}});
  ok.output = {"C", {{{var("i"), var("j")}}}};
  ok.inputs = {{"Aa", {{{var("i"), var("k")}}}},
               {"Bb", {{{var("k"), var("j")}}}}};
  p.statements = {ok};
  EXPECT_TRUE(is_soap(p));

  Statement bad = ok;
  bad.inputs.push_back(
      {"Img", {{{var("i") + var("j"), var("k")}}}});  // multi-var dim
  p.statements = {bad};
  auto violations = check_soap(p);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].array, "Img");
}

TEST(Program, ArrayClassification) {
  Program p;
  Statement st;
  st.name = "s";
  st.domain = Domain({{"i", 0, var("N")}});
  st.output = {"y", {{{var("i")}}}};
  st.inputs = {{"x", {{{var("i")}}}}};
  p.statements = {st};
  EXPECT_EQ(p.input_arrays(), std::vector<std::string>{"x"});
  EXPECT_EQ(p.computed_arrays(), std::vector<std::string>{"y"});
  EXPECT_EQ(p.terminal_arrays(), std::vector<std::string>{"y"});
}

}  // namespace
}  // namespace soap
