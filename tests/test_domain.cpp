#include "soap/domain.hpp"
#include <functional>
#include <cmath>

#include <gtest/gtest.h>

namespace soap {
namespace {

Affine var(const char* v) { return Affine::variable(v); }

long long brute_force_count(const Domain& d,
                            const std::map<std::string, Rational>& params) {
  std::map<std::string, Rational> env = params;
  std::function<long long(std::size_t)> rec =
      [&](std::size_t depth) -> long long {
    if (depth == d.loops().size()) return 1;
    const Loop& l = d.loops()[depth];
    long long lo = static_cast<long long>(l.lower.eval(env).floor());
    long long hi = static_cast<long long>(l.upper.eval(env).floor());
    long long total = 0;
    for (long long v = lo; v < hi; ++v) {
      env[l.var] = Rational(v);
      total += rec(depth + 1);
    }
    env.erase(l.var);
    return total;
  };
  return rec(0);
}

TEST(Domain, RectangularCardinality) {
  Domain d({{"i", 0, var("N")}, {"j", 0, var("M")}});
  sym::Polynomial card = d.cardinality();
  EXPECT_DOUBLE_EQ(card.eval({{"N", 7.0}, {"M", 3.0}}), 21.0);
}

struct Shape {
  const char* name;
  Domain domain;
};

class DomainCardinality : public ::testing::TestWithParam<long long> {};

TEST_P(DomainCardinality, MatchesBruteForceEnumeration) {
  long long n = GetParam();
  std::map<std::string, Rational> params = {{"N", Rational(n)}};
  std::vector<Domain> shapes = {
      Domain({{"i", 0, var("N")}}),
      Domain({{"i", 0, var("N")}, {"j", 0, var("i")}}),
      Domain({{"i", 0, var("N")}, {"j", var("i") + Affine(1), var("N")}}),
      Domain({{"k", 0, var("N")},
              {"i", var("k") + Affine(1), var("N")},
              {"j", var("k") + Affine(1), var("N")}}),
      Domain({{"i", 0, var("N")},
              {"j", 0, var("i")},
              {"k", 0, var("j")}}),
  };
  // Faulhaber summation requires hi >= lo - 1 pointwise; the boundary-
  // trimmed stencil shape violates it below N = 2 (empty loop convention).
  if (n >= 2) {
    shapes.push_back(
        Domain({{"i", 1, var("N") - Affine(1)}, {"t", 0, var("N")}}));
  }
  for (const Domain& d : shapes) {
    double symbolic = d.cardinality().eval({{"N", static_cast<double>(n)}});
    long long brute = brute_force_count(d, params);
    EXPECT_NEAR(symbolic, static_cast<double>(brute), 1e-9) << d.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DomainCardinality,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Domain, Variables) {
  Domain d({{"i", 0, var("N")}, {"j", 0, var("M")}});
  EXPECT_EQ(d.variables(), (std::vector<std::string>{"i", "j"}));
  EXPECT_TRUE(d.has_variable("i"));
  EXPECT_FALSE(d.has_variable("N"));
}

TEST(Domain, LeadingVolumeOfTriangularNest) {
  // Cholesky update domain k < j < i < N: exact N(N-1)(N-2)/6.
  Domain d({{"i", 0, var("N")},
            {"j", 0, var("i")},
            {"k", 0, var("j")}});
  sym::Polynomial card = d.cardinality();
  EXPECT_EQ(card.leading_terms(),
            sym::Polynomial(Rational(1, 6)) * sym::Polynomial::variable("N") *
                sym::Polynomial::variable("N") *
                sym::Polynomial::variable("N"));
}

}  // namespace
}  // namespace soap
