// Golden attainment rows: for a hand-picked corpus subset, the bound value
// and the Belady-attainment ratio measured at the default problem sizes and
// S = 96 are written down here, independently of src/analysis.  The ratios
// carry a tolerance band (the tiling heuristic may legitimately drift a
// little as it improves); the soundness floor ratio >= 1 is exact and
// enforced separately by test_attainment.cpp.  A row drifting out of its
// band means the bound, the tiling, the trace, or the simulator changed
// behavior — update the band only after understanding which.
#pragma once

#include <string>
#include <vector>

namespace soap::testing {

struct AttainmentGoldenRow {
  std::string name;   ///< kernel name as registered in the corpus
  long long S;        ///< fast-memory size the row was recorded at
  double q_lb;        ///< corpus bound at the default sizes (tol 1.0)
  double ratio_lo;    ///< inclusive band for Q_sim_belady / Q_lb
  double ratio_hi;
};

/// Recorded at the AttainmentOptions defaults (iteration_budget 20000, no
/// param overrides); spans single-statement, fused, triangular,
/// data-dependent, and recomputation-bound kernels.
const std::vector<AttainmentGoldenRow>& attainment_golden_rows();

}  // namespace soap::testing
