// Small shared test utilities.
#pragma once

#include <utility>

namespace soap::testing {

/// Discards a [[nodiscard]] result.  Use inside EXPECT_THROW, where the
/// value of the throwing expression is irrelevant but silently ignoring it
/// trips -Wunused-result:  EXPECT_THROW(sink(q.eval(env)), std::out_of_range)
template <typename T>
void sink(T&& value) {
  [[maybe_unused]] auto discarded = std::forward<T>(value);
}

}  // namespace soap::testing
