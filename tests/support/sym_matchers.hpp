// Symbolic-equality assertions shared by the test suites.
//
// Structural Expr equality (operator==) requires identical canonical form;
// these matchers instead compare via sym::numerically_equal, which samples
// the symbols numerically, so two derivations of the same bound compare
// equal even when their canonical spellings differ.
#pragma once

#include <gtest/gtest.h>

#include "symbolic/expr.hpp"

namespace soap::testing {

inline ::testing::AssertionResult SymEq(const char* lhs_text,
                                        const char* rhs_text,
                                        const sym::Expr& lhs,
                                        const sym::Expr& rhs) {
  if (sym::numerically_equal(lhs, rhs)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << lhs_text << " and " << rhs_text
         << " are not numerically equal:\n  " << lhs_text << " = "
         << lhs.str() << "\n  " << rhs_text << " = " << rhs.str();
}

inline ::testing::AssertionResult SymNe(const char* lhs_text,
                                        const char* rhs_text,
                                        const sym::Expr& lhs,
                                        const sym::Expr& rhs) {
  if (!sym::numerically_equal(lhs, rhs)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << lhs_text << " and " << rhs_text
         << " are numerically equal (both = " << lhs.str()
         << ") but were expected to differ";
}

}  // namespace soap::testing

#define EXPECT_SYM_EQ(lhs, rhs) \
  EXPECT_PRED_FORMAT2(::soap::testing::SymEq, lhs, rhs)
#define ASSERT_SYM_EQ(lhs, rhs) \
  ASSERT_PRED_FORMAT2(::soap::testing::SymEq, lhs, rhs)
#define EXPECT_SYM_NE(lhs, rhs) \
  EXPECT_PRED_FORMAT2(::soap::testing::SymNe, lhs, rhs)
#define ASSERT_SYM_NE(lhs, rhs) \
  ASSERT_PRED_FORMAT2(::soap::testing::SymNe, lhs, rhs)
