#include "table2_golden.hpp"

namespace soap::testing {

using sym::Expr;

namespace {

Expr sy(const char* s) { return Expr::symbol(s); }

std::vector<GoldenRow> build_rows() {
  Expr S = sy("S");
  std::vector<GoldenRow> rows;
  // Polybench: gemm, 2N^3/sqrt(S).
  rows.push_back(
      {"gemm", Expr(2) * sy("N") * sy("N") * sy("N") / sym::sqrt(S)});
  // Polybench: cholesky, N^3/(3 sqrt(S)).
  rows.push_back({"cholesky", sy("N") * sy("N") * sy("N") /
                                  (Expr(3) * sym::sqrt(S))});
  // Neural: direct convolution (stride >= kernel extent case),
  // 2 B Cin Cout Hout Wout Hker Wker/sqrt(S).
  rows.push_back({"conv", Expr(2) * sy("B") * sy("Cin") * sy("Cout") *
                              sy("Hout") * sy("Wout") * sy("Hker") *
                              sy("Wker") / sym::sqrt(S)});
  // Various: LULESH, 22 numElem — first bound for this application, flat in
  // S at leading order.
  rows.push_back({"lulesh", Expr(22) * sy("numElem")});
  // Attention (post-paper family): single-head softmax attention — the two
  // L x L x D contractions at 2 B L^2 D/sqrt(S) each; the four softmax
  // passes are a polynomial degree below leading order.
  rows.push_back({"attention", Expr(4) * sy("B") * sy("L") * sy("L") *
                                   sy("D") / sym::sqrt(S)});
  // Attention: multi-query attention — H query heads over a shared K/V
  // head keep the per-head contraction term.
  rows.push_back({"mqa", Expr(4) * sy("B") * sy("H") * sy("L") * sy("L") *
                             sy("P") / sym::sqrt(S)});
  // Attention: flash-style fused accounting — softmax intermediates fuse
  // away, the contraction terms survive.
  rows.push_back({"flash_attention", Expr(4) * sy("B") * sy("L") * sy("L") *
                                         sy("D") / sym::sqrt(S)});
  // Sparse/stencil (post-paper family): CSR SpMV in the uniform-row model
  // (M rows, K stored entries per row): the two nnz-sized streams val and
  // colind, with the data-dependent x gather collapsed to the adversarial
  // single-element case.
  rows.push_back({"spmv_csr", Expr(2) * sy("M") * sy("K")});
  // Sparse/stencil: two chained 5-point stars with the intermediate field
  // recomputable inside a fused tile — only input and output are charged.
  rows.push_back({"stencil_sweep", Expr(2) * sy("N") * sy("N")});
  return rows;
}

}  // namespace

const std::vector<GoldenRow>& table2_golden_rows() {
  static const std::vector<GoldenRow> rows = build_rows();
  return rows;
}

}  // namespace soap::testing
