#include "table2_golden.hpp"

namespace soap::testing {

using sym::Expr;

namespace {

Expr sy(const char* s) { return Expr::symbol(s); }

std::vector<GoldenRow> build_rows() {
  Expr S = sy("S");
  std::vector<GoldenRow> rows;
  // Polybench: gemm, 2N^3/sqrt(S).
  rows.push_back(
      {"gemm", Expr(2) * sy("N") * sy("N") * sy("N") / sym::sqrt(S)});
  // Polybench: cholesky, N^3/(3 sqrt(S)).
  rows.push_back({"cholesky", sy("N") * sy("N") * sy("N") /
                                  (Expr(3) * sym::sqrt(S))});
  // Neural: direct convolution (stride >= kernel extent case),
  // 2 B Cin Cout Hout Wout Hker Wker/sqrt(S).
  rows.push_back({"conv", Expr(2) * sy("B") * sy("Cin") * sy("Cout") *
                              sy("Hout") * sy("Wout") * sy("Hker") *
                              sy("Wker") / sym::sqrt(S)});
  // Various: LULESH, 22 numElem — first bound for this application, flat in
  // S at leading order.
  rows.push_back({"lulesh", Expr(22) * sy("numElem")});
  return rows;
}

}  // namespace

const std::vector<GoldenRow>& table2_golden_rows() {
  static const std::vector<GoldenRow> rows = build_rows();
  return rows;
}

}  // namespace soap::testing
