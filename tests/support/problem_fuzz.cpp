#include "problem_fuzz.hpp"

#include <string>
#include <vector>

namespace soap::testing {

namespace {

using bounds::AccessTerm;
using bounds::DimSpec;
using bounds::ObjectiveMonomial;
using bounds::OptimizationProblem;
using bounds::TermKind;

/// Non-empty random subset of the variable indices 0..n-1.
std::vector<int> random_subset(FuzzRng& rng, int n) {
  std::vector<int> subset;
  for (int v = 0; v < n; ++v) {
    if (rng.range(0, 1) == 1) subset.push_back(v);
  }
  if (subset.empty()) subset.push_back(rng.range(0, n - 1));
  return subset;
}

/// A random access term over the given variable indices: each chosen
/// variable lands in its own dimension (kProduct) unless the coin pairs it
/// with the previous one into a shared dimension — exercising both the
/// independent-extent and joint-extent shapes.  Deliberately no kMax
/// dimensions: the max(...) kink makes the log-space surface non-smooth,
/// where a single simplex descent can legitimately stall on a corner the
/// restart backends escape — a real property of local search, not a
/// backend-agreement question.  The corpus sweep covers kMax agreement on
/// the kernels that actually use it (lulesh, stencils, convolutions).
AccessTerm random_term(FuzzRng& rng, const std::vector<std::string>& vars,
                       const std::vector<int>& subset, TermKind kind,
                       int max_offset, int index) {
  AccessTerm t;
  t.array = "A" + std::to_string(index);
  t.kind = kind;
  for (std::size_t s = 0; s < subset.size(); ++s) {
    const std::string& v = vars[static_cast<std::size_t>(subset[s])];
    const bool join = !t.dims.empty() && rng.range(0, 3) == 0;
    if (join) {
      t.dims.back().vars.push_back(v);
    } else {
      DimSpec d;
      d.mode = DimSpec::Mode::kProduct;
      d.vars = {v};
      d.offsets = rng.range(0, max_offset);
      t.dims.push_back(std::move(d));
    }
  }
  return t;
}

}  // namespace

OptimizationProblem random_problem(FuzzRng& rng) {
  OptimizationProblem p;
  const int n = rng.range(1, 3);
  std::vector<int> all;
  for (int v = 0; v < n; ++v) {
    p.vars.push_back("x" + std::to_string(v));
    all.push_back(v);
  }

  // Term 0 is dense over every variable: coverage by construction, so the
  // exponent LP always has a bounded optimum.
  p.sum_terms.push_back(
      random_term(rng, p.vars, all, TermKind::kPlain, /*max_offset=*/2, 0));
  const int extra = rng.range(0, 2);
  for (int i = 0; i < extra; ++i) {
    const TermKind kind =
        rng.range(0, 1) == 0 ? TermKind::kPlain : TermKind::kVersioned;
    p.sum_terms.push_back(random_term(rng, p.vars, random_subset(rng, n),
                                      kind, /*max_offset=*/2, i + 1));
  }
  if (rng.range(0, 2) == 0) {
    p.single_terms.push_back(random_term(rng, p.vars, random_subset(rng, n),
                                         TermKind::kOutput, /*max_offset=*/0,
                                         extra + 1));
  }
  // Explicit single-monomial objective a third of the time; otherwise the
  // single-statement default prod of all vars.  One monomial keeps the
  // log-space objective linear, so the optimum is unique and backend
  // agreement is a well-posed question — a multi-monomial objective (the
  // SDG merge shape) is a convex maximization with genuinely distinct
  // local optima, where multistart finding a better corner than a single
  // start is the design, not a bug.
  if (rng.range(0, 2) == 0) {
    ObjectiveMonomial om;
    for (int v : random_subset(rng, n)) {
      om.degrees[p.vars[static_cast<std::size_t>(v)]] = rng.range(1, 2);
    }
    om.coeff = Rational(rng.range(1, 3));
    p.objective.push_back(std::move(om));
  }
  return p;
}

}  // namespace soap::testing
