#include "attainment_golden.hpp"

namespace soap::testing {

const std::vector<AttainmentGoldenRow>& attainment_golden_rows() {
  // Bands are the measured ratio +/- ~17% (see header).  Kernel selection:
  // gemm (the canonical single-statement row), cholesky (triangular
  // domain), gemver (fused 4-statement BLAS), attention (fused softmax
  // pipeline), spmv_csr (data-dependent gather), stencil_sweep
  // (recomputation-rho bound), jacobi2d (time-tiled stencil), lenet5
  // (multi-statement conv net).
  static const std::vector<AttainmentGoldenRow> rows = {
      {"gemm", 96, 4018.0, 1.70, 2.40},
      {"cholesky", 96, 670.0, 1.50, 2.10},
      {"gemver", 96, 1024.0, 3.60, 5.10},
      {"attention", 96, 5977.0, 3.10, 4.40},
      {"spmv_csr", 96, 2048.0, 1.00, 1.25},
      {"stencil_sweep", 96, 2048.0, 1.55, 2.25},
      {"jacobi2d", 96, 8036.0, 3.20, 4.60},
      {"lenet5", 96, 7838.0, 1.70, 2.40},
  };
  return rows;
}

}  // namespace soap::testing
