// Deterministic generator of random feasible OptimizationProblems for the
// optimizer differential harness (tests/test_optimizer_diff.cpp) and any
// future property test over the bounds/opt backends.
//
// Every generated problem is feasible by construction: constraint terms use
// the paper's counting kinds over tile variables with small offsets, so the
// all-ones tile point always satisfies every budget at the X values the
// harness solves at, and variable coverage is guaranteed (term 0 is a dense
// product over all variables), so derive_chi never hits the unbounded-reuse
// nullopt path.
#pragma once

#include <cstdint>

#include "bounds/optimizer.hpp"

namespace soap::testing {

/// xorshift64: tiny, deterministic, and independent of libstdc++'s
/// distribution implementations (same generator as the soundness fuzzer).
struct FuzzRng {
  std::uint64_t state;

  explicit FuzzRng(std::uint64_t seed) : state(seed ? seed : 1) {}

  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }

  /// Uniform in [lo, hi], inclusive.
  int range(int lo, int hi) {
    return lo +
           static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// One random feasible problem: 1-3 tile variables, 1-3 dominator (sum)
/// terms in the kPlain/kVersioned counting kinds with offsets 0-2, an
/// optional minimum-set (output) term, and an optional explicit objective
/// (1-2 monomials, degrees 1-2) instead of the default prod-of-vars.
bounds::OptimizationProblem random_problem(FuzzRng& rng);

}  // namespace soap::testing
