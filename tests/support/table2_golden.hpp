// Golden rows from Table 2 of the paper, written down independently of
// src/kernels/table2.cpp.  The corpus encodes paper_bound/expected_bound
// itself; these fixtures pin a hand-picked subset straight from the
// published table so a regression in the corpus encoding and a regression
// in the analyzer cannot mask each other.
#pragma once

#include <string>
#include <vector>

#include "symbolic/expr.hpp"

namespace soap::testing {

struct GoldenRow {
  std::string name;       ///< kernel name as registered in the corpus
  sym::Expr paper_bound;  ///< leading-order bound as printed in Table 2
};

/// One representative row per corpus category (Polybench / neural /
/// various), transcribed from the published table.
const std::vector<GoldenRow>& table2_golden_rows();

}  // namespace soap::testing
