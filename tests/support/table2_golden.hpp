// Golden rows written down independently of the corpus encoding in
// src/kernels: for the Table 2 families they are transcribed straight
// from the published table, and for the post-paper families (attention,
// sparse_stencil) from the closed-form reference bounds recorded when the
// kernels were added.  The corpus encodes paper_bound/expected_bound
// itself; these fixtures pin a hand-picked subset (plus every post-paper
// kernel) so a regression in the corpus encoding and a regression in the
// analyzer cannot mask each other.
#pragma once

#include <string>
#include <vector>

#include "symbolic/expr.hpp"

namespace soap::testing {

struct GoldenRow {
  std::string name;       ///< kernel name as registered in the corpus
  sym::Expr paper_bound;  ///< leading-order bound as printed in Table 2
};

/// One representative row per published block (Polybench / neural /
/// various) plus every post-paper kernel with its closed-form reference.
const std::vector<GoldenRow>& table2_golden_rows();

}  // namespace soap::testing
