// Cross-thread-count and cross-schedule determinism of the SDG analysis:
// for every Table 2 corpus application the full MultiStatementBound — Q
// renderings, per-array rho expressions and reference values (compared
// bit-exactly), best subgraphs, and subgraph counts — must be identical
// for threads = 1 / 2 / 8 / 0(hardware), AND identical between the staged
// pipeline (default) and the level-synchronous reference schedule it
// replaced.  Expr comparisons use operator==, which under hash-consing is
// pointer identity: the strongest possible "bit-identical" statement
// within a run.  Labeled `parallel` for the TSan CI job.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "support/executor.hpp"
#include "support/fault_executor.hpp"
#include "support/thread_pool.hpp"

namespace soap::sdg {
namespace {

// Sanitizer builds run the analyzer ~5-15x slower; keep the corpus sweep to
// a representative subset there (fusion-heavy, stencil, neural, and
// cold-bound rows) so the suite stays inside CI budgets.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::vector<std::string> corpus_names() {
  if (kSanitized) {
    return {"gemm", "cholesky", "jacobi2d", "atax",   "mvt",
            "bicg", "gesummv",  "2mm",      "lulesh", "softmax",
            "horizontal_diffusion",
            // Post-paper families: one fused-accounting attention variant
            // and the data-dependent sparse row.
            "flash_attention", "spmv_csr"};
  }
  // The whole registered corpus — every family, including the post-paper
  // ones, sweeps threads = 1/2/8 and pipelined-vs-level-sync.
  std::vector<std::string> names;
  for (const auto& k : kernels::Registry::instance().kernels()) {
    names.push_back(k.name);
  }
  return names;
}

// Everything observable about a bound, with expressions kept as interned
// nodes so equality is pointer identity and doubles kept raw so equality is
// bit-exact.
struct Snapshot {
  sym::Expr q_leading, q_sdg, q_cold;
  std::size_t subgraphs = 0;
  std::vector<std::string> arrays;
  std::vector<sym::Expr> rhos;
  std::vector<double> rho_values;
  std::vector<std::vector<std::string>> best_subgraphs;
};

Snapshot snapshot(const Program& program, SdgOptions options,
                  std::size_t threads,
                  SdgSchedule schedule = SdgSchedule::kPipelined) {
  options.threads = threads;
  options.schedule = schedule;
  auto bound = multi_statement_bound(program, options);
  Snapshot s;
  if (!bound) return s;
  s.q_leading = bound->Q_leading;
  s.q_sdg = bound->Q_sdg;
  s.q_cold = bound->Q_cold;
  s.subgraphs = bound->subgraphs_evaluated;
  for (const ArrayBound& a : bound->per_array) {
    s.arrays.push_back(a.array);
    s.rhos.push_back(a.rho);
    s.rho_values.push_back(a.rho_value);
    s.best_subgraphs.push_back(a.best_subgraph);
  }
  return s;
}

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const std::string& label) {
  EXPECT_EQ(a.q_leading, b.q_leading) << label;
  EXPECT_EQ(a.q_sdg, b.q_sdg) << label;
  EXPECT_EQ(a.q_leading.str(), b.q_leading.str()) << label;
  EXPECT_EQ(a.q_cold, b.q_cold) << label;
  EXPECT_EQ(a.subgraphs, b.subgraphs) << label;
  ASSERT_EQ(a.arrays.size(), b.arrays.size()) << label;
  for (std::size_t i = 0; i < a.arrays.size(); ++i) {
    EXPECT_EQ(a.arrays[i], b.arrays[i]) << label;
    EXPECT_EQ(a.rhos[i], b.rhos[i]) << label << " rho of " << a.arrays[i];
    // Bit-exact double comparison is the point: the parallel reduction must
    // not reassociate anything.
    EXPECT_EQ(a.rho_values[i], b.rho_values[i])
        << label << " rho value of " << a.arrays[i];
    EXPECT_EQ(a.best_subgraphs[i], b.best_subgraphs[i])
        << label << " best subgraph of " << a.arrays[i];
  }
}

class CorpusDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusDeterminism, BitIdenticalAcrossThreadCounts) {
  const kernels::KernelEntry& k = kernels::kernel_by_name(GetParam());
  Program program = k.build();
  Snapshot serial = snapshot(program, k.options, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    Snapshot parallel = snapshot(program, k.options, threads);
    expect_identical(serial, parallel,
                     k.name + " @" + std::to_string(threads) + " threads");
  }
}

TEST_P(CorpusDeterminism, PipelinedMatchesLevelSyncAtEveryThreadCount) {
  // The acceptance bar of the pipeline refactor: the staged pipeline must
  // reproduce the level-synchronous schedule's MultiStatementBound bit for
  // bit at every thread count (pointer-identical Exprs, bit-exact doubles).
  const kernels::KernelEntry& k = kernels::kernel_by_name(GetParam());
  Program program = k.build();
  Snapshot oracle = snapshot(program, k.options, 1, SdgSchedule::kLevelSync);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                              std::size_t{0}}) {
    Snapshot pipelined =
        snapshot(program, k.options, threads, SdgSchedule::kPipelined);
    expect_identical(oracle, pipelined,
                     k.name + " pipelined @" + std::to_string(threads) +
                         " threads vs level-sync");
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, CorpusDeterminism,
                         ::testing::ValuesIn(corpus_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(SdgDeterminism, ChainProgramAcrossThreadCountsIncludingHardware) {
  // The bench_sdg_scaling shape: a statement chain with a dense level-2/3
  // subgraph population, where sharding actually interleaves.
  std::string src;
  std::string prev = "a0";
  const int statements = kSanitized ? 8 : 16;
  for (int i = 1; i <= statements; ++i) {
    std::string cur = "a" + std::to_string(i);
    src += "for i in range(N):\n  for j in range(N):\n    " + cur +
           "[i,j] = " + prev + "[i,j]\n";
    prev = cur;
  }
  Program p = frontend::parse_program(src);
  SdgOptions opt;
  opt.max_subgraph_size = 3;
  Snapshot serial = snapshot(p, opt, 1);
  EXPECT_GT(serial.subgraphs, 0u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    expect_identical(serial, snapshot(p, opt, threads),
                     "chain @" + std::to_string(threads) + " threads");
  }
}

TEST(SdgDeterminism, AnalyzeKernelThreadOverrideMatchesSerial) {
  // The public entry points: the thread-budget override must not change the
  // derived bound (pointer-identical under hash-consing).
  for (const char* name : {"gemm", "mvt", "atax"}) {
    const kernels::KernelEntry& k = kernels::kernel_by_name(name);
    sym::Expr serial = kernels::analyze_kernel(k);
    EXPECT_EQ(kernels::analyze_kernel(k, 8), serial) << name;
    EXPECT_EQ(kernels::analyze_kernel(k, 0), serial) << name;
  }
}

TEST(SdgDeterminism, InjectedExecutorsDoNotChangeTheBound) {
  // SdgOptions::executor swaps where helpers run; the bound must not care.
  Program p = frontend::parse_program(R"(
for i in range(M):
  for j in range(N):
    tmp[i] += A[i,j] * x[j]
for i in range(M):
  for j in range(N):
    y[j] += A[i,j] * tmp[i]
)");
  SdgOptions opt;
  Snapshot serial = snapshot(p, opt, 1);
  {
    support::ThreadPool private_pool(2);
    SdgOptions with_pool;
    with_pool.threads = 8;
    with_pool.executor = support::ExecutorRef(private_pool);
    expect_identical(serial, snapshot(p, with_pool, 8), "private pool");
  }
  {
    SdgOptions inline_only;
    inline_only.threads = 8;
    inline_only.executor = support::ExecutorRef::serial();
    expect_identical(serial, snapshot(p, inline_only, 8), "serial executor");
  }
}

TEST(SdgDeterminism, FaultInjectionSweepStaysBitIdentical) {
  // A seeded delay/drop/reorder matrix over the helper executor: the
  // fault-injection harness perturbs where and when helpers run, never what
  // is computed — every seeded adversarial schedule must reproduce the
  // serial bound bit for bit (docs/ROBUSTNESS.md, fault-injection sweep).
  support::ThreadPool pool(4);
  const std::vector<std::uint64_t> seeds =
      kSanitized ? std::vector<std::uint64_t>{41}
                 : std::vector<std::uint64_t>{41, 42, 43};
  for (const char* name : {"atax", "2mm", "softmax"}) {
    const kernels::KernelEntry& k = kernels::kernel_by_name(name);
    Program program = k.build();
    Snapshot serial = snapshot(program, k.options, 1);
    for (std::uint64_t seed : seeds) {
      support::FaultPlan plan;
      plan.seed = seed;
      plan.delay_permille = 250;
      plan.delay_max_us = 100;
      plan.drop_permille = 250;
      plan.reorder_window = 4;
      support::FaultInjectingExecutor exec(pool, plan);
      SdgOptions faulty = k.options;
      faulty.executor = support::ExecutorRef(exec);
      expect_identical(serial, snapshot(program, faulty, 4),
                       std::string(name) + " under fault seed " +
                           std::to_string(seed));
    }
  }
}

TEST(SdgDeterminism, EveryOptimizerBackendIsDeterministicAcrossThreads) {
  // The backend contract (docs/OPTIMIZER.md): a backend is a pure function
  // of (problem, request), so under EVERY backend — including the
  // stochastic multistart, whose jitter derives only from the request seed
  // — the full bound must stay bit-identical across thread counts and
  // injected executors, exactly like the default.
  support::ThreadPool private_pool(2);
  for (const char* name : {"gemm", "atax", "softmax"}) {
    const kernels::KernelEntry& k = kernels::kernel_by_name(name);
    Program program = k.build();
    for (bounds::opt::BackendKind backend :
         {bounds::opt::BackendKind::kNelderMead,
          bounds::opt::BackendKind::kMultistart,
          bounds::opt::BackendKind::kSubplex}) {
      SdgOptions options = k.options;
      options.optimizer = backend;
      const std::string label = std::string(name) + " backend " +
                                bounds::opt::backend_name(backend);
      Snapshot serial = snapshot(program, options, 1);
      expect_identical(serial, snapshot(program, options, 8),
                       label + " @8 threads");
      SdgOptions with_pool = options;
      with_pool.executor = support::ExecutorRef(private_pool);
      expect_identical(serial, snapshot(program, with_pool, 8),
                       label + " @8 threads, private pool");
    }
  }
}

TEST(SdgDeterminism, RepeatedParallelRunsAreStable) {
  // Same thread count, repeated runs: schedules differ, results must not.
  Program p = frontend::parse_program(R"(
for i in range(M):
  for j in range(N):
    tmp[i] += A[i,j] * x[j]
for i in range(M):
  for j in range(N):
    y[j] += A[i,j] * tmp[i]
)");
  SdgOptions opt;
  Snapshot first = snapshot(p, opt, 8);
  for (int round = 0; round < 5; ++round) {
    expect_identical(first, snapshot(p, opt, 8),
                     "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace soap::sdg
