// End-to-end soundness fuzzing: for randomly generated SOAP programs, the
// analytic lower bound evaluated at concrete sizes must never exceed the
// I/O of an actual (simulated, Belady-replacement) execution — a valid
// pebbling upper-bounds the optimum, which the bound claims to lower-bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include <algorithm>
#include <utility>
#include <vector>

#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "frontend/lower.hpp"
#include "schedule/tiling.hpp"
#include "schedule/trace.hpp"

namespace soap {
namespace {

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                     hi - lo + 1));
  }
};

// Random d-dimensional time stencil with random offset sets.
std::string random_stencil(Rng& rng, int dims) {
  std::ostringstream src;
  const char* vars[] = {"i", "j", "k"};
  src << "for t in range(T):\n";
  std::string indent = "  ";
  for (int d = 0; d < dims; ++d) {
    src << indent << "for " << vars[d] << " in range(2, N - 2):\n";
    indent += "  ";
  }
  auto point = [&](const std::vector<int>& off, int dt) {
    std::string s = "A[";
    for (int d = 0; d < dims; ++d) {
      s += std::string(vars[d]) +
           (off[d] ? (off[d] > 0 ? "+" + std::to_string(off[d])
                                 : std::to_string(off[d]))
                   : "") +
           ",";
    }
    s += dt ? "t+1]" : "t]";
    return s;
  };
  src << indent << point(std::vector<int>(dims, 0), 1) << " = ";
  int points = rng.range(2, 5);
  for (int p = 0; p < points; ++p) {
    std::vector<int> off(dims);
    for (int d = 0; d < dims; ++d) off[d] = rng.range(-2, 2);
    if (p) src << " + ";
    src << point(off, 0);
  }
  src << "\n";
  return src.str();
}

// Random contraction: Out[sel of vars] += In1[sel] * In2[sel].
std::string random_contraction(Rng& rng) {
  int depth = rng.range(2, 4);
  const char* vars[] = {"i", "j", "k", "l"};
  std::ostringstream src;
  std::string indent;
  for (int d = 0; d < depth; ++d) {
    src << indent << "for " << vars[d] << " in range(N):\n";
    indent += "  ";
  }
  auto subset = [&](int forbidden_mask) {
    int mask = 0;
    while (mask == 0 || mask == forbidden_mask) {
      mask = rng.range(1, (1 << depth) - 1);
    }
    std::string s;
    for (int d = 0; d < depth; ++d) {
      if (mask & (1 << d)) s += std::string(s.empty() ? "" : ",") + vars[d];
    }
    return std::pair<int, std::string>(mask, s);
  };
  auto [out_mask, out_sub] = subset(0);
  auto [a_mask, a_sub] = subset(0);
  auto [b_mask, b_sub] = subset(0);
  (void)a_mask;
  (void)b_mask;
  src << indent << "Out[" << out_sub << "] += In1[" << a_sub << "] * In2["
      << b_sub << "]\n";
  return src.str();
}

void check_sound(const std::string& source,
                 const std::map<std::string, long long>& params,
                 std::size_t S) {
  Program p;
  try {
    p = frontend::parse_program(source);
  } catch (const std::exception& e) {
    FAIL() << "generated program failed to parse: " << e.what() << "\n"
           << source;
  }
  auto bound = bounds::single_statement_bound(p.statements[0]);
  if (!bound) return;  // unbounded reuse: nothing to check
  std::map<std::string, double> env = {{"S", static_cast<double>(S)}};
  for (const auto& [k, v] : params) env[k] = static_cast<double>(v);
  double analytic = bound->Q.eval(env);
  // A concrete execution in the natural order with offline-optimal
  // replacement is a valid pebbling: its I/O upper-bounds the optimum.
  auto m = cachesim::measure_statement(p.statements[0], params, {}, S);
  EXPECT_LE(analytic, static_cast<double>(m.belady.io()) * 1.0 + 1e-6)
      << source << "analytic " << analytic << " vs simulated "
      << m.belady.io() << " at S=" << S;
  // And the derived tiling must stay a valid schedule too.
  auto tiles = schedule::concrete_tiles(p.statements[0], *bound,
                                        static_cast<long long>(S), params);
  auto mt = cachesim::measure_statement(p.statements[0], params, tiles, S);
  EXPECT_LE(analytic, static_cast<double>(mt.belady.io()) + 1e-6) << source;
}

// The multiset of (address, is_write) accesses of a tiled execution —
// generated through the SAME TraceBuilder so element ids agree — must equal
// the natural order's: tiling reorders iterations, it must never drop,
// duplicate, or invent any.
void check_tiling_preserves_accesses(
    const Statement& st, const std::map<std::string, long long>& params,
    const std::map<std::string, long long>& tiles) {
  schedule::TraceBuilder builder;
  builder.append_natural(st, params);
  const std::size_t natural_len = builder.trace().size();
  builder.append_tiled(st, params, tiles);
  using Key = std::pair<std::uint64_t, bool>;
  std::vector<Key> natural, tiled;
  for (std::size_t i = 0; i < builder.trace().size(); ++i) {
    const schedule::Access& a = builder.trace()[i];
    (i < natural_len ? natural : tiled).emplace_back(a.address, a.write);
  }
  ASSERT_EQ(tiled.size(), natural.size());
  std::sort(natural.begin(), natural.end());
  std::sort(tiled.begin(), tiled.end());
  EXPECT_EQ(tiled, natural);
}

// Any legal tiling — not just the optimizer's — is a valid schedule, so
// the bound must hold for random tile shapes too (including tiles larger
// than the extent, which clamp inside the trace generator).
void check_random_tiling_sound(Rng& rng, const std::string& source,
                               const std::map<std::string, long long>& params,
                               std::size_t S) {
  Program p;
  try {
    p = frontend::parse_program(source);
  } catch (const std::exception& e) {
    FAIL() << "generated program failed to parse: " << e.what() << "\n"
           << source;
  }
  const Statement& st = p.statements[0];
  std::map<std::string, long long> tiles;
  for (const Loop& loop : st.domain.loops()) {
    tiles[loop.var] = rng.range(1, 9);
  }
  check_tiling_preserves_accesses(st, params, tiles);
  auto bound = bounds::single_statement_bound(st);
  if (!bound) return;  // unbounded reuse: nothing to check
  std::map<std::string, double> env = {{"S", static_cast<double>(S)}};
  for (const auto& [k, v] : params) env[k] = static_cast<double>(v);
  auto m = cachesim::measure_statement(st, params, tiles, S);
  EXPECT_LE(bound->Q.eval(env), static_cast<double>(m.belady.io()) + 1e-6)
      << source << "with random tiles at S=" << S;
}

class StencilFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StencilFuzz, BoundNeverExceedsSimulatedIo) {
  Rng rng{0x9e3779b97f4a7c15ULL ^
          (static_cast<std::uint64_t>(GetParam()) * 0x2545F4914F6CDD1DULL)};
  int dims = rng.range(1, 2);
  std::string src = random_stencil(rng, dims);
  long long n = dims == 1 ? 40 : 16;
  long long t = 6;
  std::size_t S = static_cast<std::size_t>(rng.range(16, 64));
  check_sound(src, {{"N", n}, {"T", t}}, S);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StencilFuzz, ::testing::Range(0, 12));

class ContractionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ContractionFuzz, BoundNeverExceedsSimulatedIo) {
  Rng rng{0xD1B54A32D192ED03ULL ^
          (static_cast<std::uint64_t>(GetParam()) * 0x9E3779B97F4A7C15ULL)};
  std::string src = random_contraction(rng);
  std::size_t S = static_cast<std::size_t>(rng.range(24, 96));
  check_sound(src, {{"N", 10}}, S);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractionFuzz, ::testing::Range(0, 12));

class RandomTilingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomTilingFuzz, RandomTilesStaySoundAndCoverTheDomain) {
  Rng rng{0xA0761D6478BD642FULL ^
          (static_cast<std::uint64_t>(GetParam()) * 0xE7037ED1A0B428DBULL)};
  if (rng.range(0, 1) == 0) {
    int dims = rng.range(1, 2);
    std::string src = random_stencil(rng, dims);
    long long n = dims == 1 ? 40 : 16;
    std::size_t S = static_cast<std::size_t>(rng.range(16, 64));
    check_random_tiling_sound(rng, src, {{"N", n}, {"T", 6}}, S);
  } else {
    std::string src = random_contraction(rng);
    std::size_t S = static_cast<std::size_t>(rng.range(24, 96));
    check_random_tiling_sound(rng, src, {{"N", 10}}, S);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTilingFuzz, ::testing::Range(0, 16));

}  // namespace
}  // namespace soap
