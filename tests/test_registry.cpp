// The kernel corpus registry: family self-registration, deterministic
// enumeration order, lookup, derived metadata, and the invariant the
// golden tests lean on — registry growth never disturbs the original
// Table 2 rows.
#include "kernels/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "frontend/lower.hpp"
#include "kernels/table2.hpp"

namespace soap::kernels {
namespace {

TEST(Registry, EnumeratesFamiliesInRankOrder) {
  std::vector<std::string> families = Registry::instance().families();
  ASSERT_GE(families.size(), 5u);
  EXPECT_EQ(families[0], "polybench");
  EXPECT_EQ(families[1], "neural");
  EXPECT_EQ(families[2], "various");
  EXPECT_EQ(families[3], "attention");
  EXPECT_EQ(families[4], "sparse_stencil");
}

TEST(Registry, KernelsGroupByFamilyInEnumerationOrder) {
  // kernels() is the concatenation of the families in rank order: every
  // family forms one contiguous block, so corpus indices are stable as
  // long as no family is inserted at a lower rank.
  const auto& all = Registry::instance().kernels();
  ASSERT_GE(all.size(), 43u);
  std::vector<std::string> block_order;
  for (const KernelEntry& k : all) {
    if (block_order.empty() || block_order.back() != k.family) {
      block_order.push_back(k.family);
    }
  }
  EXPECT_EQ(block_order, Registry::instance().families());
}

TEST(Registry, NamesAreUniqueAcrossFamilies) {
  std::set<std::string> names;
  for (const KernelEntry& k : Registry::instance().kernels()) {
    EXPECT_TRUE(names.insert(k.name).second) << k.name;
  }
}

TEST(Registry, LookupFindsEveryRegisteredKernel) {
  const Registry& registry = Registry::instance();
  for (const KernelEntry& k : registry.kernels()) {
    const KernelEntry* found = registry.find(k.name);
    ASSERT_NE(found, nullptr) << k.name;
    EXPECT_EQ(found, &k) << k.name;  // same object, not a copy
  }
  EXPECT_EQ(registry.find("no_such_kernel"), nullptr);
  EXPECT_THROW(registry.at("no_such_kernel"), std::out_of_range);
}

TEST(Registry, FamilySubsetsPartitionTheCorpus) {
  const Registry& registry = Registry::instance();
  std::size_t total = 0;
  for (const std::string& f : registry.families()) {
    total += registry.family(f).size();
  }
  EXPECT_EQ(total, registry.size());
  EXPECT_TRUE(registry.family("no_such_family").empty());
}

TEST(Registry, ProblemSizesDerivedFromExpectedBound) {
  // Entries that don't list their problem-size symbols get them derived
  // from the expected bound, minus the fast-memory size S.
  const KernelEntry& gemm = Registry::instance().at("gemm");
  EXPECT_EQ(gemm.problem_sizes, std::vector<std::string>{"N"});
  const KernelEntry& mqa = Registry::instance().at("mqa");
  EXPECT_EQ(mqa.problem_sizes,
            (std::vector<std::string>{"B", "H", "L", "P"}));
  for (const KernelEntry& k : Registry::instance().kernels()) {
    for (const std::string& s : k.problem_sizes) EXPECT_NE(s, "S") << k.name;
  }
}

TEST(Registry, DslSourceRecordedAndConsistentWithBuild) {
  // Every corpus kernel is currently DSL-defined: the recorded source must
  // be present and reparse to the same statement structure `build` yields.
  for (const KernelEntry& k : Registry::instance().kernels()) {
    ASSERT_FALSE(k.source.empty()) << k.name;
    Program from_build = k.build();
    Program from_source = frontend::parse_program(k.source);
    ASSERT_EQ(from_build.statements.size(), from_source.statements.size())
        << k.name;
    EXPECT_EQ(from_build.str(), from_source.str()) << k.name;
  }
}

TEST(Registry, RegistrationAfterMaterializationThrows) {
  // kernels() has materialized by now (other tests enumerate it); a
  // late registrar must fail loudly instead of silently vanishing.
  Registry::instance().kernels();
  EXPECT_THROW(Registry::instance().add_family(
                   "late", 99, [] { return std::vector<KernelEntry>{}; }),
               std::logic_error);
}

TEST(Registry, Table2ViewIsTheThreePublishedFamilies) {
  std::vector<const KernelEntry*> rows = table2_kernels();
  ASSERT_EQ(rows.size(), 38u);
  for (const KernelEntry* k : rows) {
    EXPECT_TRUE(k->family == "polybench" || k->family == "neural" ||
                k->family == "various")
        << k->name;
  }
}

}  // namespace
}  // namespace soap::kernels
