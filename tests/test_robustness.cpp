// End-to-end robustness semantics across the analysis stack
// (docs/ROBUSTNESS.md): graceful degradation to the sound per-statement
// bound when a deadline or resource budget trips, cancellation that always
// surfaces as kCancelled and never degrades, resilient corpus runs that
// survive per-kernel failures with partial results plus a failure summary,
// and attainment rows that stay sound even when their bound derivation was
// degraded.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/attainment.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "support/cancel.hpp"

namespace soap {
namespace {

using kernels::KernelEntry;

// The unlimited per-statement reference a degraded run must reproduce:
// same accounting, just derived without any budget in the way.
sdg::MultiStatementBound per_statement_reference(const Program& program,
                                                 sdg::SdgOptions options) {
  options.max_subgraph_size = 1;
  options.threads = 1;
  options.stop = support::StopCriteria{};
  auto bound = sdg::multi_statement_bound(program, options);
  EXPECT_TRUE(bound.has_value());
  EXPECT_FALSE(bound->degraded);
  return *bound;
}

TEST(Degradation, ExpiredDeadlineFallsBackToThePerStatementBound) {
  const KernelEntry& k = kernels::kernel_by_name("2mm");
  Program program = k.build();
  const sdg::MultiStatementBound reference =
      per_statement_reference(program, k.options);

  sdg::SdgOptions tripped = k.options;
  tripped.stop.deadline = support::Deadline::after_ms(0);
  auto degraded = sdg::multi_statement_bound(program, tripped);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->degraded_reason,
            support::StatusCode::kDeadlineExceeded);
  // Pointer-identical under hash-consing: the fallback is exactly the
  // per-statement accounting, not some approximation of it.
  EXPECT_EQ(degraded->Q_leading, reference.Q_leading);
  EXPECT_EQ(degraded->Q_sdg, reference.Q_sdg);
}

TEST(Degradation, TinyLiveNodeBudgetDegradesWithTheBudgetReason) {
  const KernelEntry& k = kernels::kernel_by_name("atax");
  Program program = k.build();
  const sdg::MultiStatementBound reference =
      per_statement_reference(program, k.options);

  sdg::SdgOptions tripped = k.options;
  tripped.stop.budget.max_live_nodes = 1;  // far below any live intern table
  auto degraded = sdg::multi_statement_bound(program, tripped);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->degraded_reason, support::StatusCode::kBudgetExceeded);
  EXPECT_EQ(degraded->Q_leading, reference.Q_leading);
}

TEST(Degradation, CancellationNeverDegradesItAlwaysRaises) {
  const KernelEntry& k = kernels::kernel_by_name("gemm");
  Program program = k.build();
  support::CancellationSource source;
  source.request_cancel();
  sdg::SdgOptions options = k.options;
  options.stop.cancel = source.token();
  try {
    sdg::multi_statement_bound(program, options);
    FAIL() << "expected AnalysisError{kCancelled}";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kCancelled);
  }
}

TEST(Degradation, DegradeOffSurfacesTheTripAsAnError) {
  const KernelEntry& k = kernels::kernel_by_name("gemm");
  Program program = k.build();
  sdg::SdgOptions options = k.options;
  options.stop.deadline = support::Deadline::after_ms(0);
  options.degrade_on_budget = false;
  try {
    sdg::multi_statement_bound(program, options);
    FAIL() << "expected AnalysisError{kDeadlineExceeded}";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kDeadlineExceeded);
  }
}

TEST(Degradation, NoLimitsMeansNoDegradationAndTheHistoricalBound) {
  // The zero-impact contract: default StopCriteria must not perturb the
  // derivation at all.
  const KernelEntry& k = kernels::kernel_by_name("2mm");
  Program program = k.build();
  auto bound = sdg::multi_statement_bound(program, k.options);
  ASSERT_TRUE(bound.has_value());
  EXPECT_FALSE(bound->degraded);
  EXPECT_EQ(bound->degraded_reason, support::StatusCode::kOk);
  EXPECT_EQ(bound->Q_leading, k.expected_bound);
}

// --- resilient corpus runs ---

TEST(ResilientCorpus, SurvivesAThrowingKernelWithPartialResults) {
  const KernelEntry& gemm = kernels::kernel_by_name("gemm");
  const KernelEntry& atax = kernels::kernel_by_name("atax");
  KernelEntry exploding;
  exploding.name = "exploding";
  exploding.family = "test";
  exploding.build = []() -> Program {
    throw std::runtime_error("synthetic build failure");
  };
  const std::vector<const KernelEntry*> corpus = {&gemm, &exploding, &atax};

  kernels::CorpusReport report = kernels::analyze_corpus_resilient(corpus);
  ASSERT_EQ(report.kernels.size(), 3u);
  // The healthy kernels around the failure keep their exact bounds...
  EXPECT_TRUE(report.kernels[0].ok());
  EXPECT_EQ(*report.kernels[0].bound, kernels::analyze_kernel(gemm));
  EXPECT_TRUE(report.kernels[2].ok());
  EXPECT_EQ(*report.kernels[2].bound, kernels::analyze_kernel(atax));
  // ...and the failure is fully described in its own slot.
  EXPECT_FALSE(report.kernels[1].ok());
  EXPECT_EQ(report.kernels[1].status, support::StatusCode::kInternalError);
  EXPECT_NE(report.kernels[1].message.find("synthetic build failure"),
            std::string::npos);

  EXPECT_EQ(report.failed(), 1u);
  EXPECT_EQ(report.degraded_count(), 0u);
  EXPECT_EQ(report.worst_status(), support::StatusCode::kInternalError);
  const std::string summary = report.failure_summary();
  EXPECT_NE(summary.find("exploding"), std::string::npos) << summary;
  EXPECT_NE(summary.find("synthetic build failure"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("2/3 kernels produced bounds"), std::string::npos)
      << summary;
}

TEST(ResilientCorpus, TrippedDeadlineDegradesKernelsButKeepsEveryBound) {
  const KernelEntry& gemm = kernels::kernel_by_name("gemm");
  const KernelEntry& mm2 = kernels::kernel_by_name("2mm");
  kernels::CorpusOptions options;
  options.stop.deadline = support::Deadline::after_ms(0);
  kernels::CorpusReport report =
      kernels::analyze_corpus_resilient({&gemm, &mm2}, options);
  ASSERT_EQ(report.kernels.size(), 2u);
  for (const kernels::KernelOutcome& outcome : report.kernels) {
    EXPECT_TRUE(outcome.ok()) << outcome.kernel;
    EXPECT_TRUE(outcome.degraded) << outcome.kernel;
    EXPECT_EQ(outcome.status, support::StatusCode::kDeadlineExceeded)
        << outcome.kernel;
  }
  EXPECT_EQ(report.failed(), 0u);
  EXPECT_EQ(report.degraded_count(), 2u);
  // Degraded-but-bounded still surfaces the tripped criterion as the
  // aggregate status (the corpus exit code).
  EXPECT_EQ(report.worst_status(), support::StatusCode::kDeadlineExceeded);
  EXPECT_NE(report.failure_summary().find("degraded to per-statement bound"),
            std::string::npos);
}

TEST(ResilientCorpus, PreCancelledRunRecordsCancelledPerKernel) {
  const KernelEntry& gemm = kernels::kernel_by_name("gemm");
  const KernelEntry& atax = kernels::kernel_by_name("atax");
  support::CancellationSource source;
  source.request_cancel();
  kernels::CorpusOptions options;
  options.stop.cancel = source.token();
  kernels::CorpusReport report =
      kernels::analyze_corpus_resilient({&gemm, &atax}, options);
  ASSERT_EQ(report.kernels.size(), 2u);
  for (const kernels::KernelOutcome& outcome : report.kernels) {
    EXPECT_FALSE(outcome.ok()) << outcome.kernel;
    EXPECT_EQ(outcome.status, support::StatusCode::kCancelled)
        << outcome.kernel;
  }
  EXPECT_EQ(report.worst_status(), support::StatusCode::kCancelled);
}

// --- degraded attainment rows stay sound ---

TEST(Attainment, DegradedRowsStillSatisfyTheSoundnessInvariant) {
  // A tripped deadline degrades the bound derivation inside the row to the
  // per-statement fallback; the row must say so and Q_sim_belady >= Q_lb
  // must keep holding (the degraded bound is weaker, never unsound).
  const KernelEntry& k = kernels::kernel_by_name("atax");
  analysis::AttainmentOptions options;
  options.cache_sizes = {96};
  options.stop.deadline = support::Deadline::after_ms(0);
  analysis::AttainmentRow row = analysis::measure_kernel(k, 96, options);
  EXPECT_TRUE(row.degraded);
  EXPECT_TRUE(row.sound()) << "Q_lb=" << row.Q_lb
                           << " Q_sim_belady=" << row.Q_sim_belady;
  EXPECT_GT(row.Q_lb, 0.0);

  // The rendered table marks the row so a degraded run is never mistaken
  // for a clean one.
  const std::string table = analysis::format_attainment_table({row});
  EXPECT_NE(table.find("[degraded]"), std::string::npos) << table;

  // And without limits the same row comes out clean.
  analysis::AttainmentOptions unlimited;
  unlimited.cache_sizes = {96};
  analysis::AttainmentRow clean = analysis::measure_kernel(k, 96, unlimited);
  EXPECT_FALSE(clean.degraded);
  EXPECT_TRUE(clean.sound());
}

}  // namespace
}  // namespace soap
