#include "bounds/intensity.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "symbolic/expr.hpp"

namespace soap::bounds {
namespace {

using sym::Expr;

ChiForm power_law(Rational alpha, double c_num, Expr c_exact) {
  ChiForm chi;
  chi.alpha = alpha;
  chi.coefficient = std::move(c_exact);
  chi.coefficient_num = c_num;
  chi.coefficient_exact = true;
  return chi;
}

TEST(MinimizeIntensity, MatrixMultiplicationClosedForm) {
  // chi = (X/3)^{3/2}: X0 = 3S, rho = sqrt(S)/2.
  ChiForm chi = power_law(Rational(3, 2), std::pow(1.0 / 3.0, 1.5),
                          sym::pow(Expr(Rational(1, 27)), Rational(1, 2)));
  IntensityResult r = minimize_intensity(chi);
  ASSERT_TRUE(r.finite_X0);
  EXPECT_EQ(r.X0, Expr(3) * Expr::symbol("S"));
  EXPECT_EQ(r.rho, sym::sqrt(Expr::symbol("S")) / Expr(2));
}

TEST(MinimizeIntensity, QuadraticStencil) {
  // chi = X^2/8 (jacobi1d leading order): X0 = 2S, rho = S/2.
  ChiForm chi = power_law(Rational(2), 0.125, Expr(Rational(1, 8)));
  IntensityResult r = minimize_intensity(chi);
  EXPECT_EQ(r.X0, Expr(2) * Expr::symbol("S"));
  EXPECT_EQ(r.rho, Expr::symbol("S") / Expr(2));
}

TEST(MinimizeIntensity, AlphaOneGoesToInfinity) {
  ChiForm chi = power_law(Rational(1), 2.0, Expr(2));
  IntensityResult r = minimize_intensity(chi);
  EXPECT_FALSE(r.finite_X0);
  EXPECT_EQ(r.rho, Expr(2));
}

TEST(MinimizeIntensity, AgreesWithSymbolicDerivativeRoot) {
  // For chi = c X^a the closed form X0 = a/(a-1) S must zero
  // d/dX [chi/(X-S)].
  for (Rational a : {Rational(3, 2), Rational(2), Rational(4, 3)}) {
    ChiForm chi = power_law(a, 1.0, Expr(1));
    IntensityResult r = minimize_intensity(chi);
    Expr X = Expr::symbol("X");
    Expr rho_fn = sym::pow(X, a) / (X - Expr::symbol("S"));
    Expr d = rho_fn.diff("X");
    double s = 1e6;
    double x0 = r.X0.eval({{"S", s}});
    EXPECT_NEAR(d.eval({{"X", x0}, {"S", s}}), 0.0, 1e-9) << a.str();
  }
}

TEST(MinimizeIntensity, AgreesWithNumericScan) {
  // rho(X0) must be the global minimum over a dense scan of X > S.
  ChiForm chi =
      power_law(Rational(4, 3), std::pow(0.25, 4.0 / 3.0) / 2.0,
                sym::pow(Expr(Rational(1, 2048)), Rational(1, 3)));  // heat3d
  IntensityResult r = minimize_intensity(chi);
  double s = 4096;
  double rho_at_x0 = r.rho.eval({{"S", s}});
  double c = chi.coefficient_num;
  double best = 1e300;
  for (double x = s * 1.01; x < s * 100; x *= 1.01) {
    best = std::min(best, c * std::pow(x, 4.0 / 3.0) / (x - s));
  }
  EXPECT_NEAR(rho_at_x0, best, 1e-3 * best);
}

TEST(AssembleBound, ComposesDomainAndIntensity) {
  ChiForm chi = power_law(Rational(3, 2), std::pow(1.0 / 3.0, 1.5),
                          sym::pow(Expr(Rational(1, 27)), Rational(1, 2)));
  Expr N = Expr::symbol("N");
  IoLowerBound b = assemble_bound(N * N * N, chi);
  EXPECT_EQ(b.Q_leading,
            Expr(2) * N * N * N / sym::sqrt(Expr::symbol("S")));
  EXPECT_EQ(b.alpha, Rational(3, 2));
}

TEST(AssembleBound, DropsLowerOrderDomainTerms) {
  ChiForm chi = power_law(Rational(2), 0.125, Expr(Rational(1, 8)));
  Expr N = Expr::symbol("N"), T = Expr::symbol("T");
  // |D| = N*T - 2T (boundary-trimmed): leading term N*T survives.
  IoLowerBound b = assemble_bound(N * T - Expr(2) * T, chi);
  EXPECT_EQ(b.Q_leading, Expr(2) * N * T / Expr::symbol("S"));
}

}  // namespace
}  // namespace soap::bounds
