// The termination primitives in support/cancel.*: status taxonomy and exit
// codes, cancellation token/source wiring, deadlines, resource budgets, the
// live-node gauge (registered by the symbolic layer, hence the
// soap::symbolic link), and StopCriteria's severity ordering.
#include "support/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "symbolic/expr.hpp"

namespace soap::support {
namespace {

TEST(StatusCode, NamesAndExitCodesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInternalError),
               "internal_error");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidInput), "invalid_input");
  EXPECT_STREQ(status_code_name(StatusCode::kOptimizerNoConverge),
               "optimizer_no_converge");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kBudgetExceeded),
               "budget_exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "cancelled");

  EXPECT_EQ(status_exit_code(StatusCode::kOk), 0);
  EXPECT_EQ(status_exit_code(StatusCode::kInternalError), 1);
  EXPECT_EQ(status_exit_code(StatusCode::kInvalidInput), 2);
  EXPECT_EQ(status_exit_code(StatusCode::kOptimizerNoConverge), 3);
  EXPECT_EQ(status_exit_code(StatusCode::kDeadlineExceeded), 4);
  EXPECT_EQ(status_exit_code(StatusCode::kBudgetExceeded), 5);
  EXPECT_EQ(status_exit_code(StatusCode::kCancelled), 6);
}

TEST(AnalysisError, CarriesCodeAndMessageAndIsARuntimeError) {
  AnalysisError e(StatusCode::kDeadlineExceeded, "too slow");
  EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(e.what(), "too slow");
  const std::runtime_error& base = e;  // legacy catch sites keep working
  EXPECT_STREQ(base.what(), "too slow");
}

TEST(CancellationToken, DefaultIsNeverCancelledAndUnarmed) {
  CancellationToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationSource, TokenObservesRequestAcrossThreads) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.cancelled());
  std::thread other([&source] { source.request_cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(CancellationSource, TokensOutliveTheSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.request_cancel();
  }
  EXPECT_TRUE(token.cancelled());  // shared flag keeps the state alive
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ZeroBudgetExpiresImmediatelyLongBudgetDoesNot) {
  EXPECT_TRUE(Deadline::after_ms(0).expired());
  Deadline far = Deadline::after(std::chrono::hours(1));
  EXPECT_TRUE(far.armed());
  EXPECT_FALSE(far.expired());
}

TEST(ResourceBudget, ZeroMeansUnlimited) {
  ResourceBudget b;
  EXPECT_TRUE(b.unlimited());
  b.max_subgraphs = 10;
  EXPECT_FALSE(b.unlimited());
}

TEST(StopCriteria, DefaultIsUnlimitedAndChecksOk) {
  StopCriteria stop;
  EXPECT_TRUE(stop.unlimited());
  EXPECT_EQ(stop.check(), StatusCode::kOk);
  EXPECT_NO_THROW(stop.enforce("test"));
}

TEST(StopCriteria, CancellationOutranksDeadline) {
  CancellationSource source;
  source.request_cancel();
  StopCriteria stop;
  stop.cancel = source.token();
  stop.deadline = Deadline::after_ms(0);  // also tripped
  EXPECT_EQ(stop.check(), StatusCode::kCancelled);
}

TEST(StopCriteria, EnforceNamesTheCriterionAndTheSite) {
  StopCriteria stop;
  stop.deadline = Deadline::after_ms(0);
  try {
    stop.enforce("unit test");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadline"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unit test"), std::string::npos) << msg;
  }
}

TEST(LiveNodeGauge, SymbolicLayerRegistersTheInternTableCount) {
  // Any interned expression keeps at least one node alive; the gauge must
  // agree with the table's own statistics.
  sym::Expr keep = sym::Expr::symbol("gauge_probe") + sym::Expr(41);
  EXPECT_GT(live_node_count(), 0u);
  EXPECT_EQ(live_node_count(), sym::expr_intern_stats().live_nodes);
}

TEST(StopCriteria, NodeBudgetTripsAgainstTheLiveGauge) {
  sym::Expr keep = sym::Expr::symbol("budget_probe") * sym::Expr(17);
  StopCriteria stop;
  stop.budget.max_live_nodes = 1;  // far below any live table
  EXPECT_EQ(stop.check(), StatusCode::kBudgetExceeded);
  try {
    stop.enforce("budget site");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), StatusCode::kBudgetExceeded);
    EXPECT_NE(std::string(e.what()).find("live-node budget"),
              std::string::npos)
        << e.what();
  }
  // A generous cap does not trip.
  stop.budget.max_live_nodes = live_node_count() + 1000000;
  EXPECT_EQ(stop.check(), StatusCode::kOk);
}

}  // namespace
}  // namespace soap::support
