// Arena: the per-shard block/pool allocator behind the hash-consed node
// storage.  Covers slot reuse through the size-class free lists, oversized
// passthrough, the stats accounting the intern table exposes, the
// std-allocator adapter, and the asymmetric concurrency contract
// (serialized allocate / lock-free deallocate) under racing threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "support/arena.hpp"

namespace soap::support {
namespace {

TEST(Arena, ReusesFreedSlotsOfTheSameClass) {
  Arena arena;
  void* a = arena.allocate(48, 8);
  std::memset(a, 0xab, 48);
  arena.deallocate(a, 48, 8);
  void* b = arena.allocate(48, 8);
#if !SOAP_ARENA_PASSTHROUGH
  EXPECT_EQ(b, a);  // same size class -> the slot comes back
#endif
  arena.deallocate(b, 48, 8);
}

TEST(Arena, DistinctLiveAllocationsDoNotOverlap) {
  Arena arena;
  constexpr std::size_t kBytes = 64;
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(kBytes, 16));
    std::memset(p, i, kBytes);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    // Each block still holds its own fill pattern: no aliasing.
    for (std::size_t j = 0; j < kBytes; ++j) {
      ASSERT_EQ(ptrs[static_cast<std::size_t>(i)][j],
                static_cast<unsigned char>(i));
    }
  }
  EXPECT_EQ(arena.stats().live, 100u);
  for (auto* p : ptrs) arena.deallocate(p, kBytes, 16);
  EXPECT_EQ(arena.stats().live, 0u);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                            std::size_t{64}}) {
    void* p = arena.allocate(align * 2, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
    arena.deallocate(p, align * 2, align);
  }
}

TEST(Arena, OversizedRequestsPassThrough) {
  Arena arena;
  const std::size_t big = Arena::kMaxSmall * 4;
  void* p = arena.allocate(big, 16);
  std::memset(p, 0x5a, big);
  EXPECT_EQ(arena.stats().live, 1u);
#if !SOAP_ARENA_PASSTHROUGH
  // Oversized requests never consume bump blocks.
  EXPECT_EQ(arena.stats().blocks, 0u);
#endif
  arena.deallocate(p, big, 16);
  EXPECT_EQ(arena.stats().live, 0u);
}

TEST(Arena, StatsTrackBlocksAndReservation) {
  Arena arena(/*block_bytes=*/1024);
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) ptrs.push_back(arena.allocate(64, 16));
#if !SOAP_ARENA_PASSTHROUGH
  Arena::Stats s = arena.stats();
  EXPECT_GE(s.blocks, 4u);  // 64 x 64B slots out of 1 KiB blocks
  EXPECT_EQ(s.bytes_reserved, s.blocks * 1024);
#endif
  EXPECT_EQ(arena.stats().live, 64u);
  for (void* p : ptrs) arena.deallocate(p, 64, 16);
}

TEST(Arena, AllocatorAdapterWorksWithStdContainers) {
  Arena arena;
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);
    EXPECT_GT(arena.stats().live, 0u);
  }
  EXPECT_EQ(arena.stats().live, 0u);
  ArenaAllocator<int> a(&arena);
  ArenaAllocator<long> b(a);  // rebinding conversion
  EXPECT_EQ(b.arena(), &arena);
  EXPECT_TRUE((a == ArenaAllocator<int>(&arena)));
}

TEST(Arena, ConcurrentDeallocateRacingSerializedAllocate) {
  // The intern-table discipline: one thread allocates (the shard's exclusive
  // lock serializes that side) while many threads free concurrently (node
  // deleters run wherever the last reference drops).  The allocator must
  // neither lose slots nor hand the same slot to two owners.
  Arena arena;
  constexpr std::size_t kBytes = 96;
  constexpr int kRounds = 50;
  constexpr int kBatch = 256;
  constexpr int kFreeThreads = 4;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<void*> batch;
    batch.reserve(kBatch);
    std::set<void*> distinct;
    for (int i = 0; i < kBatch; ++i) {
      void* p = arena.allocate(kBytes, 16);
      ASSERT_TRUE(distinct.insert(p).second)  // no double-handout
          << "slot handed out twice in round " << round;
      batch.push_back(p);
    }
    // Racing frees from several threads, interleaved with more allocations
    // from this (the serialized) thread.
    std::atomic<int> next{0};
    std::vector<std::thread> frees;
    frees.reserve(kFreeThreads);
    for (int t = 0; t < kFreeThreads; ++t) {
      frees.emplace_back([&] {
        for (int i = next.fetch_add(1); i < kBatch; i = next.fetch_add(1)) {
          arena.deallocate(batch[static_cast<std::size_t>(i)], kBytes, 16);
        }
      });
    }
    std::vector<void*> more;
    for (int i = 0; i < kBatch / 4; ++i) more.push_back(arena.allocate(kBytes, 16));
    for (std::thread& th : frees) th.join();
    for (void* p : more) arena.deallocate(p, kBytes, 16);
  }
  EXPECT_EQ(arena.stats().live, 0u);
}

}  // namespace
}  // namespace soap::support
