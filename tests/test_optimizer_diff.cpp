// The optimizer differential harness (docs/OPTIMIZER.md): every numeric
// backend must agree with the exact-LP exponent and with every other
// backend's constant — corpus-wide (one problem per statement of every
// registered kernel) and over a fuzzed stream of generated feasible
// problems.  Agreement is graded: exponents and LP data are exact and must
// match bit for bit; a constant both backends snapped must be the same
// interned expression (pointer identity under hash-consing); an unsnapped
// constant must match within a small relative tolerance.  Labeled
// `optimizer` so CI can run the differential suite on its own.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bounds/opt/backend.hpp"
#include "bounds/opt/types.hpp"
#include "bounds/optimizer.hpp"
#include "bounds/single_statement.hpp"
#include "kernels/table2.hpp"
#include "problem_fuzz.hpp"
#include "support/cancel.hpp"
#include "support/parallel.hpp"

namespace soap::bounds {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr opt::BackendKind kBackends[] = {opt::BackendKind::kNelderMead,
                                          opt::BackendKind::kMultistart,
                                          opt::BackendKind::kSubplex};
constexpr std::size_t kBackendCount = 3;

double rel_diff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

/// The graded agreement contract between the reference backend's ChiForm
/// and another backend's, on the same problem.
void expect_agreement(const std::string& label, const ChiForm& ref,
                      const ChiForm& other, double constant_rel_tol) {
  // The exponent is exact (LP) and backend-independent by construction;
  // asserting it pins the contract against a backend that would bypass or
  // re-derive it.
  EXPECT_EQ(ref.alpha, other.alpha) << label;
  EXPECT_EQ(ref.exponents, other.exponents) << label;
  // Every backend's fit must track c * X^alpha, not just the reference's.
  EXPECT_LT(other.fit_residual, 0.05) << label;
  EXPECT_NE(other.solve_code, opt::ResultCode::kInfeasible) << label;
  if (ref.coefficient_exact && other.coefficient_exact) {
    // Both snapped: under hash-consing, equality is pointer identity — the
    // strongest agreement statement expressible.
    EXPECT_EQ(ref.coefficient, other.coefficient)
        << label << " exact constants differ: " << ref.coefficient.str()
        << " vs " << other.coefficient.str();
  } else {
    EXPECT_EQ(ref.coefficient_exact, other.coefficient_exact)
        << label << " snap disagreement (c = " << ref.coefficient_num
        << " vs " << other.coefficient_num << ")";
    EXPECT_LE(rel_diff(ref.coefficient_num, other.coefficient_num),
              constant_rel_tol)
        << label << " c = " << ref.coefficient_num << " vs "
        << other.coefficient_num;
  }
}

/// One problem solved through every backend; derivation errors are
/// captured as text so the workers stay assertion-free (asserts run on the
/// main thread) and so an error must reproduce under every backend to pass.
struct Differential {
  std::array<std::optional<ChiForm>, kBackendCount> chi;
  std::array<std::string, kBackendCount> error;
};

Differential run_all_backends(const OptimizationProblem& problem) {
  Differential d;
  for (std::size_t b = 0; b < kBackendCount; ++b) {
    try {
      d.chi[b] = derive_chi(problem, {}, kBackends[b]);
    } catch (const support::AnalysisError& e) {
      d.error[b] = e.what();
    }
  }
  return d;
}

void expect_differential_agreement(const std::string& label,
                                   const Differential& d,
                                   double constant_rel_tol) {
  for (std::size_t b = 1; b < kBackendCount; ++b) {
    const std::string who =
        label + " [" + std::string(opt::backend_name(kBackends[b])) + "]";
    EXPECT_EQ(d.error[0], d.error[b]) << who;
    ASSERT_EQ(d.chi[0].has_value(), d.chi[b].has_value()) << who;
    if (d.chi[0] && d.chi[b]) {
      expect_agreement(who, *d.chi[0], *d.chi[b], constant_rel_tol);
    }
  }
}

// ---------------------------------------------------------------------------
// Registry sweep: one problem per statement of every registered kernel.
// ---------------------------------------------------------------------------

std::vector<std::string> corpus_names() {
  if (kSanitized) {
    // Sanitizer builds sweep the same representative subset as the
    // determinism suite (fusion-heavy, stencil, neural, post-paper rows).
    return {"gemm", "cholesky", "jacobi2d", "atax",   "mvt",
            "bicg", "gesummv",  "2mm",      "lulesh", "softmax",
            "horizontal_diffusion", "flash_attention", "spmv_csr"};
  }
  std::vector<std::string> names;
  for (const auto& k : kernels::Registry::instance().kernels()) {
    names.push_back(k.name);
  }
  return names;
}

class BackendAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendAgreement, EveryStatementProblemAgreesAcrossBackends) {
  const kernels::KernelEntry& k = kernels::kernel_by_name(GetParam());
  Program program = k.build();
  ASSERT_FALSE(program.statements.empty()) << k.name;
  for (std::size_t si = 0; si < program.statements.size(); ++si) {
    const OptimizationProblem problem =
        statement_problem(program.statements[si]);
    const std::string label =
        k.name + " statement #" + std::to_string(si) + " (" +
        program.statements[si].name + ")";
    // Corpus statements are well-conditioned: a snapped constant must be
    // the identical interned expression, an unsnapped one near-bitwise.
    expect_differential_agreement(label, run_all_backends(problem), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, BackendAgreement,
                         ::testing::ValuesIn(corpus_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Fuzz sweep: generated feasible problems, deterministic seeds.
// ---------------------------------------------------------------------------

struct FuzzOutcome {
  std::uint64_t seed = 0;
  Differential diff;
};

TEST(OptimizerDifferential, FuzzedProblemsAgreeAcrossBackends) {
  const std::size_t n = kSanitized ? 150 : 1000;
  support::ParallelOptions popts;
  popts.threads = 0;  // all hardware threads; results are index-slotted
  popts.grain = 8;
  const std::vector<FuzzOutcome> outcomes =
      support::parallel_map<FuzzOutcome>(n, popts, [](std::size_t i) {
        FuzzOutcome out;
        // Fixed base, odd stride: distinct deterministic streams per index.
        out.seed = 0x0BD1F00DULL + static_cast<std::uint64_t>(i) *
                                       0x9E3779B97F4A7C15ULL;
        soap::testing::FuzzRng rng(out.seed);
        out.diff = run_all_backends(soap::testing::random_problem(rng));
        return out;
      });
  for (const FuzzOutcome& out : outcomes) {
    const std::string label = "fuzz seed " + std::to_string(out.seed);
    // Generated problems are feasible by construction; a derivation error
    // under any backend is a bug, not an agreement question.
    EXPECT_TRUE(out.diff.error[0].empty())
        << label << ": " << out.diff.error[0];
    // Fuzzed constants may legitimately resist snapping, so the numeric
    // tolerance is looser than the corpus sweep's.
    expect_differential_agreement(label, out.diff, 1e-2);
  }
}

TEST(OptimizerDifferential, FuzzStreamIsDeterministic) {
  // The harness itself must be reproducible: the same seed builds the same
  // problem and the same Differential (pointer-identical exact constants).
  soap::testing::FuzzRng a(0x0BD1F00DULL);
  soap::testing::FuzzRng b(0x0BD1F00DULL);
  const OptimizationProblem pa = soap::testing::random_problem(a);
  const OptimizationProblem pb = soap::testing::random_problem(b);
  ASSERT_EQ(pa.vars, pb.vars);
  ASSERT_EQ(pa.sum_terms.size(), pb.sum_terms.size());
  const Differential da = run_all_backends(pa);
  const Differential db = run_all_backends(pb);
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    ASSERT_EQ(da.chi[i].has_value(), db.chi[i].has_value());
    if (!da.chi[i]) continue;
    EXPECT_EQ(da.chi[i]->alpha, db.chi[i]->alpha);
    EXPECT_EQ(da.chi[i]->coefficient, db.chi[i]->coefficient);
    // Bit-exact: the numeric pipeline must not depend on run-to-run state.
    EXPECT_EQ(da.chi[i]->coefficient_num, db.chi[i]->coefficient_num);
  }
}

}  // namespace
}  // namespace soap::bounds
