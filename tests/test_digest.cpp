// Digest stability: the cache-key contract of docs/SERVING.md.
//
// The serving story rests on content digests that are (a) stable across
// separate processes (node ids and SymIds are process-local intern order,
// so pointer-derived keys would not be), (b) sensitive to every
// bound-relevant difference (alpha-inequivalent programs, differing
// options), and (c) collision-free in practice over the corpus.  The
// cross-process half shells out to analyze_tool --json twice and compares
// its digest field between runs and against the in-process value.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "service/cache_key.hpp"
#include "support/digest.hpp"
#include "symbolic/expr.hpp"

namespace soap {
namespace {

using service::CacheKey;
using service::expr_digest;
using service::make_cache_key;
using service::program_digest;
using support::Digest;
using support::DigestWriter;

constexpr const char* kGemm =
    "for i in range(N):\n"
    "  for j in range(N):\n"
    "    for k in range(N):\n"
    "      C[i,j] += A[i,k] * B[k,j]\n";

TEST(DigestPrimitives, HexRoundTrip) {
  DigestWriter w;
  w.mix_string("hello");
  const Digest d = w.finish();
  EXPECT_NE(d, Digest{});
  const std::string hex = d.hex();
  EXPECT_EQ(hex.size(), 32u);
  const auto back = Digest::from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
  EXPECT_FALSE(Digest::from_hex("not hex").has_value());
  EXPECT_FALSE(Digest::from_hex("abcd").has_value());
}

TEST(DigestPrimitives, OrderAndBoundariesMatter) {
  DigestWriter ab;
  ab.mix_string("a");
  ab.mix_string("b");
  DigestWriter ba;
  ba.mix_string("b");
  ba.mix_string("a");
  EXPECT_NE(ab.finish(), ba.finish());
  // Length prefixes keep "ab"+"c" distinct from "a"+"bc".
  DigestWriter abc1;
  abc1.mix_string("ab");
  abc1.mix_string("c");
  DigestWriter abc2;
  abc2.mix_string("a");
  abc2.mix_string("bc");
  EXPECT_NE(abc1.finish(), abc2.finish());
}

TEST(ExprDigest, DeterministicWithinProcess) {
  const sym::Expr n = sym::Expr::symbol("N");
  const sym::Expr e1 = n * n + sym::Expr::constant(2);
  const sym::Expr e2 = sym::Expr::symbol("N") * sym::Expr::symbol("N") +
                       sym::Expr::constant(2);
  EXPECT_EQ(e1, e2);  // hash-consed
  EXPECT_EQ(expr_digest(e1), expr_digest(e2));
  service::ExprDigestMemo memo;
  EXPECT_EQ(expr_digest(e1, memo), expr_digest(e1));
  EXPECT_EQ(expr_digest(e1, memo), expr_digest(e1, memo));
}

TEST(ExprDigest, DistinguishesStructure) {
  const sym::Expr n = sym::Expr::symbol("N");
  const sym::Expr m = sym::Expr::symbol("M");
  std::set<std::string> seen;
  for (const sym::Expr& e :
       {n, m, n + m, n * m, n + n, sym::pow(n, Rational(1, 2)),
        sym::pow(n, Rational(-1, 2)), sym::min({n, m}), sym::max({n, m}),
        sym::Expr::constant(Rational(1, 2)),
        sym::Expr::constant(Rational(-1, 2))}) {
    EXPECT_TRUE(seen.insert(expr_digest(e).hex()).second)
        << "collision on " << e.str();
  }
}

TEST(ProgramDigest, AlphaInequivalentRewritesChangeTheDigest) {
  const Program base = frontend::parse_program(kGemm);
  // Renamed size symbol, renamed array, permuted subscripts, and a changed
  // loop nest are all alpha-INequivalent: each must digest differently.
  const char* variants[] = {
      // N -> M on the k loop only
      "for i in range(N):\n"
      "  for j in range(N):\n"
      "    for k in range(M):\n"
      "      C[i,j] += A[i,k] * B[k,j]\n",
      // renamed output array
      "for i in range(N):\n"
      "  for j in range(N):\n"
      "    for k in range(N):\n"
      "      D[i,j] += A[i,k] * B[k,j]\n",
      // transposed access
      "for i in range(N):\n"
      "  for j in range(N):\n"
      "    for k in range(N):\n"
      "      C[i,j] += A[k,i] * B[k,j]\n",
      // one loop removed
      "for i in range(N):\n"
      "  for k in range(N):\n"
      "    C[i,0] += A[i,k] * B[k,0]\n",
  };
  const Digest base_digest = program_digest(base);
  for (const char* source : variants) {
    EXPECT_NE(program_digest(frontend::parse_program(source)), base_digest)
        << source;
  }
  // ...while re-parsing the identical text digests identically.
  EXPECT_EQ(program_digest(frontend::parse_program(kGemm)), base_digest);
}

TEST(CacheKeyTest, BoundRelevantOptionsAreInTheKey) {
  const Program program = frontend::parse_program(kGemm);
  sdg::SdgOptions a;
  const CacheKey base = make_cache_key(program, a);

  sdg::SdgOptions b = a;
  b.max_subgraph_size = a.max_subgraph_size + 1;
  EXPECT_NE(make_cache_key(program, b), base);

  sdg::SdgOptions c = a;
  c.max_subgraphs = a.max_subgraphs - 1;
  EXPECT_NE(make_cache_key(program, c), base);

  sdg::SdgOptions d = a;
  d.use_cold_bound = !a.use_cold_bound;
  EXPECT_NE(make_cache_key(program, d), base);
}

TEST(CacheKeyTest, ExecutionOnlyOptionsAreExcluded) {
  const Program program = frontend::parse_program(kGemm);
  sdg::SdgOptions a;
  const CacheKey base = make_cache_key(program, a);

  // The determinism contract: these change who computes and how fast, never
  // what is computed, so they must share a cache entry.
  sdg::SdgOptions b = a;
  b.threads = 8;
  b.schedule = sdg::SdgSchedule::kLevelSync;
  b.degrade_on_budget = false;
  b.stop.deadline = support::Deadline::after_ms(1000000);
  EXPECT_EQ(make_cache_key(program, b), base);
}

// Collision smoke over the full registry: two kernels may share a key only
// when they lower to the *identical* program under identical bound-relevant
// options (ludcmp is deliberately encoded with lu's dominant statement —
// the cache deduplicating them is the point), never for distinct content.
TEST(CacheKeyTest, NoCollisionsAcrossTheRegistry) {
  std::map<std::string, std::string> seen;  // digest -> program text
  std::size_t kernels = 0;
  std::size_t shared = 0;
  for (const kernels::KernelEntry& entry :
       kernels::Registry::instance().kernels()) {
    const Program program = entry.build();
    const CacheKey key = make_cache_key(program, entry.options);
    const std::string content =
        program.str() + "\n#" + std::to_string(entry.options.max_subgraph_size) +
        "/" + std::to_string(entry.options.max_subgraphs) + "/" +
        std::to_string(entry.options.use_cold_bound);
    const auto [it, inserted] = seen.emplace(key.digest.hex(), content);
    if (!inserted) {
      ++shared;
      EXPECT_EQ(it->second, content)
          << "cache-key collision on kernel " << entry.name
          << ": equal digest for different content";
    }
    ++kernels;
  }
  EXPECT_GE(kernels, 38u);
  // The registry's only intended duplicate encodings are a handful; a wave
  // of shared keys would mean the digest stopped seeing real differences.
  EXPECT_LE(shared, 3u);
}

#ifdef ANALYZE_TOOL_PATH

std::string json_digest_of(const std::string& command) {
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return "";
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int rc = ::pclose(pipe);
  EXPECT_EQ(rc, 0) << command << "\n" << output;
  const std::string needle = "\"digest\":\"";
  const std::size_t at = output.find(needle);
  EXPECT_NE(at, std::string::npos) << output;
  if (at == std::string::npos) return "";
  return output.substr(at + needle.size(), 32);
}

// The headline stability property: two separate processes (fresh intern
// tables, fresh SymIds, different pointer layouts) digest the same program
// text to the same key — and to the same key THIS process computes.
TEST(CacheKeyTest, StableAcrossProcesses) {
  const std::string source_path =
      testing::TempDir() + "/digest_gemm_input.dsl";
  {
    std::ofstream out(source_path);
    out << kGemm;
  }
  const std::string command =
      std::string(ANALYZE_TOOL_PATH) + " --json " + source_path;
  const std::string first = json_digest_of(command);
  const std::string second = json_digest_of(command);
  ASSERT_EQ(first.size(), 32u);
  EXPECT_EQ(first, second);
  const CacheKey local =
      make_cache_key(frontend::parse_program(kGemm), sdg::SdgOptions{});
  EXPECT_EQ(first, local.digest.hex());
  // Bound-relevant flags shift the subprocess digest exactly like the
  // in-process key.
  const std::string shifted =
      json_digest_of(command + " --max-subgraph-size 2");
  EXPECT_NE(shifted, first);
  sdg::SdgOptions small;
  small.max_subgraph_size = 2;
  EXPECT_EQ(shifted,
            make_cache_key(frontend::parse_program(kGemm), small).digest.hex());
  std::remove(source_path.c_str());
}

#endif  // ANALYZE_TOOL_PATH

}  // namespace
}  // namespace soap
