// SmallVec<T, N>: the inline-capacity operand storage of the symbolic core.
// Exercises the inline <-> heap transition, vector-compatible mutation
// (insert/erase/assign), move semantics (buffer steal vs element move), and
// element lifetime accounting with a throwless instrumented type.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "support/small_vec.hpp"

namespace soap::support {
namespace {

/// Counts live instances so every test can assert nothing leaks or is
/// double-destroyed across growth, moves, and erasure.
struct Counted {
  static int live;
  int value = 0;

  Counted() { ++live; }
  explicit Counted(int v) : value(v) { ++live; }
  Counted(const Counted& o) : value(o.value) { ++live; }
  Counted(Counted&& o) noexcept : value(o.value) { ++live; }
  Counted& operator=(const Counted&) = default;
  Counted& operator=(Counted&&) = default;
  ~Counted() { --live; }

  friend bool operator==(const Counted& a, const Counted& b) {
    return a.value == b.value;
  }
};
int Counted::live = 0;

TEST(SmallVec, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  const int* inline_data = v.data();
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.data(), inline_data);  // no heap allocation yet
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, SpillsToHeapBeyondNAndKeepsContents) {
  SmallVec<int, 4> v;
  const int* inline_data = v.data();
  for (int i = 0; i < 37; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 37u);
  EXPECT_NE(v.data(), inline_data);
  EXPECT_GE(v.capacity(), 37u);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  // Contiguity: iterator arithmetic and std algorithms work.
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 36 * 37 / 2);
}

TEST(SmallVec, InsertEraseMatchVectorSemantics) {
  SmallVec<int, 2> sv;
  std::vector<int> ref;
  auto both_insert = [&](std::size_t at, int value) {
    sv.insert(sv.begin() + static_cast<std::ptrdiff_t>(at), value);
    ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(at), value);
  };
  both_insert(0, 10);
  both_insert(0, 5);   // front
  both_insert(2, 20);  // back (== size)
  both_insert(1, 7);   // middle, forces growth past inline capacity
  both_insert(4, 30);
  ASSERT_EQ(sv.size(), ref.size());
  EXPECT_TRUE(std::equal(sv.begin(), sv.end(), ref.begin()));

  auto it = sv.erase(sv.begin() + 1);
  ref.erase(ref.begin() + 1);
  EXPECT_EQ(*it, ref[1]);
  sv.erase(sv.begin() + static_cast<std::ptrdiff_t>(sv.size() - 1));
  ref.pop_back();
  ASSERT_EQ(sv.size(), ref.size());
  EXPECT_TRUE(std::equal(sv.begin(), sv.end(), ref.begin()));
}

TEST(SmallVec, MoveStealsHeapBuffer) {
  SmallVec<std::string, 2> a;
  for (int i = 0; i < 8; ++i) a.push_back("s" + std::to_string(i));
  const std::string* heap = a.data();
  SmallVec<std::string, 2> b(std::move(a));
  EXPECT_EQ(b.data(), heap);  // heap buffer moved wholesale
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[7], "s7");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented state
  a.push_back("reuse-after-move");  // moved-from object is reusable
  EXPECT_EQ(a.size(), 1u);
}

TEST(SmallVec, MoveOfInlineContentsMovesElements) {
  SmallVec<std::string, 4> a{"alpha", "beta"};
  SmallVec<std::string, 4> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "alpha");
  EXPECT_EQ(b[1], "beta");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, AssignAndCopyAndEquality) {
  std::vector<int> src(10);
  std::iota(src.begin(), src.end(), 0);
  SmallVec<int, 4> v;
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 10u);
  SmallVec<int, 4> w = v;
  EXPECT_EQ(w, v);
  w.pop_back();
  EXPECT_NE(w, v);
  w = v;  // copy-assign restores equality
  EXPECT_EQ(w, v);
}

TEST(SmallVec, NoLeaksAcrossGrowthMovesAndClear) {
  ASSERT_EQ(Counted::live, 0);
  {
    SmallVec<Counted, 3> v;
    for (int i = 0; i < 25; ++i) v.emplace_back(i);
    EXPECT_EQ(Counted::live, 25);
    v.erase(v.begin() + 5);
    EXPECT_EQ(Counted::live, 24);
    SmallVec<Counted, 3> w(std::move(v));
    EXPECT_EQ(Counted::live, 24);
    w.clear();
    EXPECT_EQ(Counted::live, 0);
    w.emplace_back(1);
    SmallVec<Counted, 3> x;
    x.emplace_back(2);
    x = std::move(w);  // move-assign over a non-empty target
    EXPECT_EQ(Counted::live, 1);
  }
  EXPECT_EQ(Counted::live, 0);
}

}  // namespace
}  // namespace soap::support
