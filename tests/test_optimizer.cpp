#include "bounds/optimizer.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"

namespace soap::bounds {
namespace {

OptimizationProblem problem_of(const std::string& source) {
  Program p = frontend::parse_program(source);
  return statement_problem(p.statements[0]);
}

TEST(DeriveChi, GemmClosedForm) {
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(3, 2));
  // c = (1/3)^{3/2} = sqrt(3)/9.
  EXPECT_TRUE(chi->coefficient_exact);
  EXPECT_NEAR(chi->coefficient_num, std::pow(1.0 / 3.0, 1.5), 1e-9);
  // Balanced exponents.
  EXPECT_EQ(chi->exponents.at("i"), Rational(1, 2));
  EXPECT_EQ(chi->exponents.at("j"), Rational(1, 2));
  EXPECT_EQ(chi->exponents.at("k"), Rational(1, 2));
}

TEST(DeriveChi, Jacobi1dShiftedQuadratic) {
  auto chi = derive_chi(problem_of(R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(2));
  EXPECT_TRUE(chi->coefficient_exact);
  EXPECT_NEAR(chi->coefficient_num, 0.125, 1e-9);  // chi = (X+2)^2 / 8
}

TEST(DeriveChi, Heat3dFourThirds) {
  auto chi = derive_chi(problem_of(R"(
for t in range(T):
  for i in range(1, N-1):
    for j in range(1, N-1):
      for k in range(1, N-1):
        A[i,j,k,t+1] = A[i,j,k,t] + A[i-1,j,k,t] + A[i+1,j,k,t] + A[i,j-1,k,t] + A[i,j+1,k,t] + A[i,j,k-1,t] + A[i,j,k+1,t]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(4, 3));
  EXPECT_TRUE(chi->coefficient_exact);
  // chi = (X/4)^{4/3}/2.
  EXPECT_NEAR(chi->coefficient_num, std::pow(0.25, 4.0 / 3.0) / 2.0, 1e-7);
  // Optimal time tile is half the spatial tile.
  EXPECT_NEAR(chi->tile_coeffs.at("t") / chi->tile_coeffs.at("i"), 0.5, 1e-6);
}

TEST(DeriveChi, UnboundedReuseReturnsNullopt) {
  // Variable r appears in no access: chi is unbounded.
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  for r in range(R):
    y[i] = x[i]
)"));
  EXPECT_FALSE(chi);
}

TEST(DeriveChi, StreamingAlphaOne) {
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  y[i] = x[i]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(1));
  EXPECT_NEAR(chi->coefficient_num, 1.0, 1e-6);
}

TEST(DeriveChi, SumObjectiveDoublesConstant) {
  // Two statements sharing the same loads: chi = 2xy with xy <= X.
  OptimizationProblem p;
  p.vars = {"i", "j"};
  AccessTerm shared;
  shared.array = "A";
  shared.kind = TermKind::kPlain;
  shared.dims = {{DimSpec::Mode::kProduct, {"i"}, 0},
                 {DimSpec::Mode::kProduct, {"j"}, 0}};
  p.sum_terms = {shared};
  ObjectiveMonomial m;
  m.degrees = {{"i", 1}, {"j", 1}};
  m.coeff = 2;
  p.objective = {m};
  auto chi = derive_chi(p);
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(1));
  EXPECT_NEAR(chi->coefficient_num, 2.0, 1e-6);
}

TEST(MaximizeSubcomputation, RespectsBudget) {
  OptimizationProblem p = problem_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  double X = 3e4;
  NumericOptimum opt = maximize_subcomputation(p, X);
  double used = 0;
  for (const AccessTerm& t : p.sum_terms) used += t.eval(opt.tiles);
  EXPECT_LE(used, X * (1.0 + 1e-6));
  // chi(X) = (X/3)^{3/2} for gemm.
  EXPECT_NEAR(opt.chi, std::pow(X / 3.0, 1.5), 0.01 * std::pow(X / 3.0, 1.5));
}

TEST(MaximizeSubcomputation, MinimumSetConstraintBinds) {
  // Outer product C[i,j] = A[i]*B[j]: the output tile x_i x_j <= X binds.
  OptimizationProblem p = problem_of(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  ASSERT_EQ(p.single_terms.size(), 1u);
  double X = 1e4;
  NumericOptimum opt = maximize_subcomputation(p, X);
  EXPECT_LE(p.single_terms[0].eval(opt.tiles), X * (1.0 + 1e-6));
  EXPECT_NEAR(opt.chi, X, 0.02 * X);  // chi ~ X (output-bound)
}

class ChiMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ChiMonotonicity, ChiGrowsWithBudget) {
  OptimizationProblem p = problem_of(R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i,j,t] + A[i-1,j,t] + A[i+1,j,t] + A[i,j-1,t] + A[i,j+1,t]
)");
  double X = GetParam();
  NumericOptimum lo = maximize_subcomputation(p, X);
  NumericOptimum hi = maximize_subcomputation(p, 2 * X);
  EXPECT_GT(hi.chi, lo.chi);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ChiMonotonicity,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6));

}  // namespace
}  // namespace soap::bounds
