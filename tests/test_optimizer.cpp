#include "bounds/optimizer.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>

#include "bounds/opt/backend.hpp"
#include "bounds/opt/types.hpp"
#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"
#include "support/cancel.hpp"

namespace soap::bounds {
namespace {

OptimizationProblem problem_of(const std::string& source) {
  Program p = frontend::parse_program(source);
  return statement_problem(p.statements[0]);
}

TEST(DeriveChi, GemmClosedForm) {
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(3, 2));
  // c = (1/3)^{3/2} = sqrt(3)/9.
  EXPECT_TRUE(chi->coefficient_exact);
  EXPECT_NEAR(chi->coefficient_num, std::pow(1.0 / 3.0, 1.5), 1e-9);
  // Balanced exponents.
  EXPECT_EQ(chi->exponents.at("i"), Rational(1, 2));
  EXPECT_EQ(chi->exponents.at("j"), Rational(1, 2));
  EXPECT_EQ(chi->exponents.at("k"), Rational(1, 2));
}

TEST(DeriveChi, Jacobi1dShiftedQuadratic) {
  auto chi = derive_chi(problem_of(R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(2));
  EXPECT_TRUE(chi->coefficient_exact);
  EXPECT_NEAR(chi->coefficient_num, 0.125, 1e-9);  // chi = (X+2)^2 / 8
}

TEST(DeriveChi, Heat3dFourThirds) {
  auto chi = derive_chi(problem_of(R"(
for t in range(T):
  for i in range(1, N-1):
    for j in range(1, N-1):
      for k in range(1, N-1):
        A[i,j,k,t+1] = A[i,j,k,t] + A[i-1,j,k,t] + A[i+1,j,k,t] + A[i,j-1,k,t] + A[i,j+1,k,t] + A[i,j,k-1,t] + A[i,j,k+1,t]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(4, 3));
  EXPECT_TRUE(chi->coefficient_exact);
  // chi = (X/4)^{4/3}/2.
  EXPECT_NEAR(chi->coefficient_num, std::pow(0.25, 4.0 / 3.0) / 2.0, 1e-7);
  // Optimal time tile is half the spatial tile.
  EXPECT_NEAR(chi->tile_coeffs.at("t") / chi->tile_coeffs.at("i"), 0.5, 1e-6);
}

TEST(DeriveChi, UnboundedReuseReturnsNullopt) {
  // Variable r appears in no access: chi is unbounded.
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  for r in range(R):
    y[i] = x[i]
)"));
  EXPECT_FALSE(chi);
}

TEST(DeriveChi, StreamingAlphaOne) {
  auto chi = derive_chi(problem_of(R"(
for i in range(N):
  y[i] = x[i]
)"));
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(1));
  EXPECT_NEAR(chi->coefficient_num, 1.0, 1e-6);
}

TEST(DeriveChi, SumObjectiveDoublesConstant) {
  // Two statements sharing the same loads: chi = 2xy with xy <= X.
  OptimizationProblem p;
  p.vars = {"i", "j"};
  AccessTerm shared;
  shared.array = "A";
  shared.kind = TermKind::kPlain;
  shared.dims = {{DimSpec::Mode::kProduct, {"i"}, 0},
                 {DimSpec::Mode::kProduct, {"j"}, 0}};
  p.sum_terms = {shared};
  ObjectiveMonomial m;
  m.degrees = {{"i", 1}, {"j", 1}};
  m.coeff = 2;
  p.objective = {m};
  auto chi = derive_chi(p);
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->alpha, Rational(1));
  EXPECT_NEAR(chi->coefficient_num, 2.0, 1e-6);
}

TEST(MaximizeSubcomputation, RespectsBudget) {
  OptimizationProblem p = problem_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  double X = 3e4;
  NumericOptimum opt = maximize_subcomputation(p, X);
  double used = 0;
  for (const AccessTerm& t : p.sum_terms) used += t.eval(opt.tiles);
  EXPECT_LE(used, X * (1.0 + 1e-6));
  // chi(X) = (X/3)^{3/2} for gemm.
  EXPECT_NEAR(opt.chi, std::pow(X / 3.0, 1.5), 0.01 * std::pow(X / 3.0, 1.5));
}

TEST(MaximizeSubcomputation, MinimumSetConstraintBinds) {
  // Outer product C[i,j] = A[i]*B[j]: the output tile x_i x_j <= X binds.
  OptimizationProblem p = problem_of(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  ASSERT_EQ(p.single_terms.size(), 1u);
  double X = 1e4;
  NumericOptimum opt = maximize_subcomputation(p, X);
  EXPECT_LE(p.single_terms[0].eval(opt.tiles), X * (1.0 + 1e-6));
  EXPECT_NEAR(opt.chi, X, 0.02 * X);  // chi ~ X (output-bound)
}

class ChiMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ChiMonotonicity, ChiGrowsWithBudget) {
  OptimizationProblem p = problem_of(R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i,j,t] + A[i-1,j,t] + A[i+1,j,t] + A[i,j-1,t] + A[i,j+1,t]
)");
  double X = GetParam();
  NumericOptimum lo = maximize_subcomputation(p, X);
  NumericOptimum hi = maximize_subcomputation(p, 2 * X);
  EXPECT_GT(hi.chi, lo.chi);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ChiMonotonicity,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6));

// ---------------------------------------------------------------------------
// The backend interface (bounds/opt): result codes, the shared feasibility
// projection, and the surfacing of non-convergence and stop trips.
// ---------------------------------------------------------------------------

OptimizationProblem gemm_problem() {
  return problem_of(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
}

/// Total budget use of a tile assignment: sum of the sum terms (the
/// dominator constraint's left-hand side).
double budget_use(const OptimizationProblem& p,
                  const std::map<std::string, double>& tiles) {
  double used = 0.0;
  for (const AccessTerm& t : p.sum_terms) used += t.eval(tiles);
  return used;
}

TEST(ResultCodes, NamesSeverityAndParsing) {
  using opt::ResultCode;
  EXPECT_STREQ(opt::result_code_name(ResultCode::kSuccess), "success");
  EXPECT_STREQ(opt::result_code_name(ResultCode::kStopReached),
               "stop_reached");
  EXPECT_STREQ(opt::result_code_name(ResultCode::kNoConverge), "no_converge");
  EXPECT_STREQ(opt::result_code_name(ResultCode::kInfeasible), "infeasible");
  // worst() keeps the more severe code regardless of argument order.
  EXPECT_EQ(opt::worst(ResultCode::kSuccess, ResultCode::kNoConverge),
            ResultCode::kNoConverge);
  EXPECT_EQ(opt::worst(ResultCode::kInfeasible, ResultCode::kStopReached),
            ResultCode::kInfeasible);
  EXPECT_EQ(opt::worst(ResultCode::kSuccess, ResultCode::kSuccess),
            ResultCode::kSuccess);
  // Backend names round-trip through the parser; unknown names fail with a
  // reason that lists the valid spellings.
  for (opt::BackendKind kind :
       {opt::BackendKind::kNelderMead, opt::BackendKind::kMultistart,
        opt::BackendKind::kSubplex}) {
    EXPECT_EQ(opt::parse_backend_name(opt::backend_name(kind)), kind);
    EXPECT_EQ(opt::backend(kind).name(), opt::backend_name(kind));
  }
  std::string reason;
  EXPECT_FALSE(opt::parse_backend_name("bogus", &reason));
  EXPECT_NE(reason.find("bogus"), std::string::npos);
  EXPECT_NE(reason.find("nelder_mead"), std::string::npos);
}

TEST(ProjectFeasible, ProjectedPointSatisfiesEveryConstraint) {
  OptimizationProblem p = gemm_problem();
  const double X = 3e4;
  // A wildly infeasible start: every tile far beyond the budget.
  std::map<std::string, double> tiles{{"i", 1e12}, {"j", 3e11}, {"k", 7e10}};
  auto proj = opt::project_feasible(p, tiles, X);
  ASSERT_TRUE(proj);
  EXPECT_LE(budget_use(p, *proj), X * (1.0 + 1e-9));
  for (const AccessTerm& t : p.single_terms) {
    EXPECT_LE(t.eval(*proj), X * (1.0 + 1e-9));
  }
  for (const auto& [var, v] : *proj) {
    EXPECT_GE(v, 1.0) << var;  // the paper's |D_t| >= 1
  }
  // The projection lands on the budget surface, not merely inside it.
  EXPECT_GE(budget_use(p, *proj), X * (1.0 - 1e-6));
}

TEST(ProjectFeasible, ReprojectionIsIdempotent) {
  OptimizationProblem p = gemm_problem();
  const double X = 1e6;
  std::map<std::string, double> tiles{{"i", 5e7}, {"j", 5e7}, {"k", 2e3}};
  auto once = opt::project_feasible(p, tiles, X);
  ASSERT_TRUE(once);
  auto twice = opt::project_feasible(p, *once, X);
  ASSERT_TRUE(twice);
  for (const auto& [var, v] : *once) {
    EXPECT_NEAR(twice->at(var), v, 1e-6 * v) << var;
  }
}

TEST(ProjectFeasible, HonorsExplicitVarBounds) {
  OptimizationProblem p = gemm_problem();
  const double X = 3e4;
  // Cap every tile at 4: the projection must respect the caps and still
  // satisfy the budget (the capped point is trivially feasible here).
  std::vector<opt::VarBound> bounds(3, opt::VarBound{2.0, 4.0});
  std::map<std::string, double> tiles{{"i", 1e9}, {"j", 1e9}, {"k", 1e9}};
  auto proj = opt::project_feasible(p, tiles, X, bounds);
  ASSERT_TRUE(proj);
  for (const auto& [var, v] : *proj) {
    EXPECT_GE(v, 2.0) << var;
    EXPECT_LE(v, 4.0) << var;
  }
  EXPECT_LE(budget_use(p, *proj), X * (1.0 + 1e-9));
}

TEST(ProjectFeasible, InfeasibleProblemReturnsNullopt) {
  OptimizationProblem p = gemm_problem();
  // Even the all-lower-bound point blows the budget: no feasible point.
  std::vector<opt::VarBound> bounds(3, opt::VarBound{1e6, 1e9});
  std::map<std::string, double> tiles{{"i", 1e6}, {"j", 1e6}, {"k", 1e6}};
  EXPECT_FALSE(opt::project_feasible(p, tiles, 10.0, bounds));
}

TEST(ProjectFeasible, MissingTileVariableThrows) {
  OptimizationProblem p = gemm_problem();
  std::map<std::string, double> tiles{{"i", 10.0}, {"j", 10.0}};  // no "k"
  EXPECT_THROW(opt::project_feasible(p, tiles, 1e4), std::out_of_range);
}

TEST(OptimizerBackend, HealthySolveReportsSuccess) {
  OptimizationProblem p = gemm_problem();
  for (opt::BackendKind kind :
       {opt::BackendKind::kNelderMead, opt::BackendKind::kMultistart,
        opt::BackendKind::kSubplex}) {
    opt::SolveRequest request;
    request.X = 3e4;
    opt::SolveResult result = opt::backend(kind).solve(p, request);
    EXPECT_EQ(result.code, opt::ResultCode::kSuccess)
        << opt::backend_name(kind);
    EXPECT_GT(result.optimum.chi, 0.0) << opt::backend_name(kind);
  }
}

TEST(OptimizerBackend, IterationStarvationSurfacesNoConverge) {
  // The hostile configuration: one iteration per local search cannot meet
  // the convergence tolerance.  Before the backend interface this fell
  // through silently; now every backend reports kNoConverge while still
  // returning the best point it found.
  OptimizationProblem p = gemm_problem();
  for (opt::BackendKind kind :
       {opt::BackendKind::kNelderMead, opt::BackendKind::kMultistart,
        opt::BackendKind::kSubplex}) {
    opt::SolveRequest request;
    request.X = 3e4;
    request.max_iterations = 1;
    opt::SolveResult result = opt::backend(kind).solve(p, request);
    EXPECT_EQ(result.code, opt::ResultCode::kNoConverge)
        << opt::backend_name(kind);
    // The best-so-far point is still populated and feasible.
    EXPECT_GT(result.optimum.chi, 0.0) << opt::backend_name(kind);
    EXPECT_LE(budget_use(p, result.optimum.tiles), 3e4 * (1.0 + 1e-6))
        << opt::backend_name(kind);
  }
}

TEST(OptimizerBackend, EvalBudgetSurfacesStopReachedWithoutThrowing) {
  OptimizationProblem p = gemm_problem();
  support::StopCriteria stop;
  stop.budget.max_solver_evals = 10;
  for (opt::BackendKind kind :
       {opt::BackendKind::kNelderMead, opt::BackendKind::kMultistart,
        opt::BackendKind::kSubplex}) {
    opt::EvalGuard guard{&stop, 0};
    opt::SolveRequest request;
    request.X = 3e4;
    request.guard = &guard;
    opt::SolveResult result = opt::backend(kind).solve(p, request);
    EXPECT_EQ(result.code, opt::ResultCode::kStopReached)
        << opt::backend_name(kind);
    ASSERT_TRUE(result.stop_error.has_value()) << opt::backend_name(kind);
    EXPECT_EQ(result.stop_error->code(), support::StatusCode::kBudgetExceeded)
        << opt::backend_name(kind);
  }
}

TEST(DeriveChi, RecordsHealthySolveCode) {
  auto chi = derive_chi(gemm_problem());
  ASSERT_TRUE(chi);
  EXPECT_EQ(chi->solve_code, opt::ResultCode::kSuccess);
}

}  // namespace
}  // namespace soap::bounds
