// Identity semantics of the hash-consed symbolic core: the interner, node
// deduplication (pointer-identity equality), cached hashes/symbol sets, and
// the memoized rewriters on DAG-shaped (heavily shared) expressions.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/interner.hpp"
#include "support/sym_map.hpp"
#include "symbolic/expr.hpp"
#include "test_util.hpp"

namespace soap::sym {
namespace {

Expr N() { return Expr::symbol("N"); }
Expr S() { return Expr::symbol("S"); }

TEST(Interner, RoundTripsNames) {
  SymId a = intern_symbol("hc_alpha");
  SymId b = intern_symbol("hc_beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(intern_symbol("hc_alpha"), a);  // idempotent
  EXPECT_EQ(symbol_name(a), "hc_alpha");
  EXPECT_EQ(symbol_name(b), "hc_beta");
  EXPECT_GE(interned_symbol_count(), 2u);
  EXPECT_THROW(testing::sink(symbol_name(SymId{})), std::out_of_range);
}

TEST(Interner, ConcurrentInterningIsConsistent) {
  // The intern table is shared and mutex-guarded; hammer it from several
  // threads and verify every thread resolved the same name to the same id.
  constexpr int kThreads = 8;
  std::vector<std::vector<SymId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids] {
      for (int i = 0; i < 64; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(
            intern_symbol("hc_thread_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
}

TEST(HashConsing, EqualByConstructionMeansSameNode) {
  Expr a = Expr(2) * N() * N() * N() / sqrt(S());
  Expr b = N() * Expr(2) / pow(S(), Rational(1, 2)) * N() * N();
  ASSERT_EQ(a, b);
  EXPECT_EQ(&a.node(), &b.node());  // the very same interned node
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.id(), b.id());

  // Different expressions are different nodes.
  Expr c = a + Expr(1);
  EXPECT_NE(&a.node(), &c.node());
}

TEST(HashConsing, SymbolNodesAreShared) {
  Expr n1 = Expr::symbol("N");
  Expr n2 = Expr::symbol("N");
  EXPECT_EQ(&n1.node(), &n2.node());
  EXPECT_EQ(n1.sym_id(), intern_symbol("N"));
  EXPECT_EQ(&Expr::symbol(n1.sym_id()).node(), &n1.node());
}

TEST(HashConsing, DeadNodesAreEvicted) {
  InternStats before = expr_intern_stats();
  {
    Expr big(0);
    for (int i = 0; i < 50; ++i) {
      big = big + Expr::symbol("hc_evict") * Expr(i + 1) *
                      pow(N(), Rational(i % 7 + 2));
    }
    InternStats during = expr_intern_stats();
    EXPECT_GT(during.live_nodes, before.live_nodes);
  }
  InternStats after = expr_intern_stats();
  // Everything allocated inside the scope died with its last reference;
  // the table returns to (at most) its prior size plus the shared leaf
  // nodes that pre-existed.
  EXPECT_LE(after.live_nodes, before.live_nodes + 4);
}

TEST(HashConsing, ConcurrentMakeConvergesToSameNode) {
  // Many threads race make_* on structurally equal expressions; the sharded
  // intern table must hand every thread the very same canonical node (the
  // pointer-identity invariant everything above relies on), shard locks or
  // not.  Each round uses fresh structure so at least one thread loses the
  // probe-then-insert race every time.
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::vector<Expr>> built(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &built, &ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start together to maximize racing
      std::vector<Expr>& mine = built[static_cast<std::size_t>(t)];
      mine.reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        Expr n = Expr::symbol("hc_race_n");
        Expr s = Expr::symbol("hc_race_s");
        mine.push_back(Expr(r + 2) * n * n / sqrt(s) + pow(n, Rational(r + 2)) +
                       min({n, s + Expr(r)}));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      const Expr& a = built[0][static_cast<std::size_t>(r)];
      const Expr& b = built[static_cast<std::size_t>(t)][
          static_cast<std::size_t>(r)];
      ASSERT_EQ(a, b);
      ASSERT_EQ(&a.node(), &b.node());  // pointer-identical across threads
      ASSERT_EQ(a.id(), b.id());
    }
  }
}

TEST(HashConsing, ConcurrentDisjointInterningIsConsistent) {
  // Per-thread expression families (disjoint symbols -> mostly disjoint
  // shards) interned concurrently; each must match a serial rebuild.
  constexpr int kThreads = 8;
  std::vector<Expr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      Expr x = Expr::symbol("hc_dis_" + std::to_string(t));
      Expr acc(0);
      for (int i = 1; i <= 20; ++i) {
        acc = acc + Expr(i) * pow(x, Rational(i % 5 + 1));
      }
      results[static_cast<std::size_t>(t)] = acc;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    Expr x = Expr::symbol("hc_dis_" + std::to_string(t));
    Expr acc(0);
    for (int i = 1; i <= 20; ++i) {
      acc = acc + Expr(i) * pow(x, Rational(i % 5 + 1));
    }
    EXPECT_EQ(results[static_cast<std::size_t>(t)], acc);
    EXPECT_EQ(&results[static_cast<std::size_t>(t)].node(), &acc.node());
  }
}

TEST(HashConsing, EvictionRaceUnderChurn) {
  // The lifetime contract under the arena: weak eviction, where the node
  // deleter re-locks the owning shard to erase its table entry and then
  // returns the slot to the shard arena.  Race creation and destruction of
  // *structurally equal* temporaries across threads so deleters interleave
  // with probes that find the dying entry (the weak_ptr::lock-fails path),
  // then check the table drains back to its pre-test size.
  InternStats before = expr_intern_stats();
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int r = 0; r < kRounds; ++r) {
        // Same structure in every thread at the same round: maximal
        // create/evict contention on the same nodes.
        Expr e = Expr::symbol("hc_churn") * Expr(r % 16 + 1) +
                 pow(Expr::symbol("hc_churn2"), Rational(r % 5 + 2));
        Expr f = e * e + Expr(1);
        testing::sink(f);
        // e and f drop here; their deleters erase the shard entries while
        // sibling threads may be interning the same structural nodes.
      }
    });
  }
  for (std::thread& th : threads) th.join();
  InternStats after = expr_intern_stats();
  // Every temporary died with its last reference.  Headroom: the handful of
  // leaf nodes pinned process-wide (the small-constant cache and the zero
  // node) that this test may have been the first to intern.
  EXPECT_LE(after.live_nodes, before.live_nodes + 8);
  // The table is still consistent after the churn.
  Expr n1 = Expr::symbol("hc_churn");
  Expr n2 = Expr::symbol("hc_churn");
  EXPECT_EQ(&n1.node(), &n2.node());
}

TEST(HashConsing, CachedSymbolSets) {
  Expr e = N() * S() + Expr::symbol("T3") * N();
  EXPECT_TRUE(e.contains(intern_symbol("T3")));
  EXPECT_TRUE(e.contains("N"));
  EXPECT_FALSE(e.contains("hc_not_there"));
  EXPECT_EQ(e.symbol_ids().size(), 3u);
  // symbols() reports names sorted by name regardless of intern order.
  std::vector<std::string> names = e.symbols();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

/// Builds a deeply shared (DAG-shaped) expression: x_{k} = x_{k-1}^2 + 1.
/// As a tree it has ~2^k leaves; hash-consed it is k distinct nodes per
/// level, so only memoized rewriting can finish fast.
Expr dag_tower(const Expr& base, int levels) {
  Expr x = base;
  for (int i = 0; i < levels; ++i) {
    x = x * x + Expr(1);
  }
  return x;
}

TEST(MemoizedRewriters, SubsOnSharedDag) {
  Expr x = dag_tower(N() + S(), 24);
  // Substituting S -> 3 touches every level once; without node-identity
  // memoization this walk would be ~2^24 visits.
  Expr sub = x.subs({{"S", Expr(3)}});
  EXPECT_FALSE(sub.contains("S"));
  EXPECT_TRUE(sub.contains("N"));
  // Spot-check semantics on a small instance of the same shape.
  Expr small = dag_tower(N() + S(), 2);
  EXPECT_EQ(small.subs({{"S", Expr(3)}}), dag_tower(N() + Expr(3), 2));
}

TEST(MemoizedRewriters, SubsLeavesUntouchedSubtreesAlone) {
  Expr e = dag_tower(N(), 8);
  Expr sub = e.subs({{"hc_unused", Expr(7)}});
  EXPECT_EQ(&sub.node(), &e.node());  // no rebuild at all
}

TEST(MemoizedRewriters, DiffOnSharedDag) {
  Expr x = dag_tower(N(), 16);
  Expr d = x.diff("N");
  // d/dN of the tower is huge but the computation must terminate quickly;
  // check the derivative at a point against a numeric difference quotient
  // on a small instance.
  EXPECT_TRUE(d.contains("N"));
  Expr small = dag_tower(N(), 3);
  Expr ds = small.diff("N");
  double n0 = 1.25, h = 1e-6;
  double num = (small.eval({{"N", n0 + h}}) - small.eval({{"N", n0 - h}})) /
               (2 * h);
  EXPECT_NEAR(ds.eval({{"N", n0}}), num, 1e-3);
  // Derivative by unused symbol short-circuits through the symbol cache.
  EXPECT_TRUE(x.diff("hc_unused").is_zero());
}

TEST(MemoizedRewriters, EvalOnSharedDag) {
  Expr x = dag_tower(N(), 40);
  // Tree size saturates (~2^40 nodes); memoized eval visits ~40.  The value
  // itself overflows double to +inf around level 11 — harmless; the point is
  // that the walk terminates and stays positive.
  double v = x.eval({{"N", 0.0}});
  EXPECT_GT(v, 1.0);  // 0 -> 1 -> 2 -> 5 -> ... (-> inf)
  // A small instance stays finite and exact: 0 -> 1 -> 2 -> 5 -> 26.
  EXPECT_DOUBLE_EQ(dag_tower(N(), 4).eval({{"N", 0.0}}), 26.0);
}

TEST(MinMax, SubstitutionFoldsAndPreservesSemantics) {
  Expr m = min({N(), S()});
  // Substituting both arguments to constants folds the min away.
  EXPECT_EQ(m.subs({{"N", Expr(3)}, {"S", Expr(7)}}), Expr(3));
  Expr mx = max({N(), S(), Expr(5)});
  EXPECT_EQ(mx.subs({{"N", Expr(3)}, {"S", Expr(7)}}), Expr(7));
  // Partial substitution keeps a canonical (deduplicated) min/max.
  Expr partial = m.subs({{"S", N()}});
  EXPECT_EQ(partial, N());  // min(N, N) == N
  // Min under substitution that makes arguments equal-by-construction.
  Expr m2 = min({N() * S(), S() * N(), S() + N()});
  EXPECT_EQ(m2.operands().size(), 2u);
}

TEST(StdHash, ExprUsableInUnorderedContainers) {
  std::unordered_set<Expr> set;
  set.insert(N() + S());
  set.insert(S() + N());      // same canonical node
  set.insert(N() * S());
  EXPECT_EQ(set.size(), 2u);
  std::unordered_map<Expr, int> counts;
  counts[N() + S()] += 1;
  counts[S() + N()] += 1;
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[N() + S()], 2);
}

TEST(NumericEquality, SeedAndTrialsAreReproducible) {
  Expr a = (N() + S()) * (N() - S());
  Expr b = N() * N() - S() * S();
  NumericEqualityOptions options;
  options.trials = 12;
  options.seed = 0xdeadbeefcafef00dULL;
  EXPECT_TRUE(numerically_equal(a, b, options));
  EXPECT_FALSE(numerically_equal(a, b + Expr(1), options));
  // Same options, same verdict (deterministic sampling).
  EXPECT_TRUE(numerically_equal(a, b, options));
}

TEST(SymMapContainer, BasicOperations) {
  SymMap<int> m;
  SymId a = intern_symbol("hc_sm_a");
  SymId b = intern_symbol("hc_sm_b");
  EXPECT_TRUE(m.empty());
  m.set(a, 1);
  m.set(b, 2);
  m.set(a, 3);  // overwrite
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(a), nullptr);
  EXPECT_EQ(*m.find(a), 3);
  EXPECT_TRUE(m.contains(b));
  m.erase(b);
  EXPECT_FALSE(m.contains(b));
  m[b] = 9;  // operator[] default-inserts
  EXPECT_EQ(*m.find(b), 9);
}

}  // namespace
}  // namespace soap::sym
