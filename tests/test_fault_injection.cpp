// The deterministic fault-injection harness (support/fault_executor.*) and
// the arena allocation-failure hook: seeded fault decisions replay
// identically, the structured-parallel layers stay correct and bit-identical
// under delays/drops/reorders, and an injected allocation failure inside the
// intern path unwinds cleanly.  Labeled `parallel` so the TSan CI job runs
// the whole suite under the race detector.
#include "support/fault_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <new>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "support/arena.hpp"
#include "support/parallel.hpp"
#include "support/pipeline.hpp"
#include "support/thread_pool.hpp"
#include "symbolic/expr.hpp"

namespace soap::support {
namespace {

// --- seeded decisions replay identically ---

std::vector<int> drop_pattern(std::uint64_t seed) {
  SerialExecutor inner;  // runs surviving submissions inline
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_permille = 300;
  FaultInjectingExecutor exec(inner, plan);
  std::vector<int> ran;
  for (int i = 0; i < 200; ++i) {
    exec.submit([&ran, i] { ran.push_back(i); });
  }
  return ran;
}

TEST(FaultInjectingExecutor, DropDecisionsAreDeterministicPerSeed) {
  const std::vector<int> first = drop_pattern(7);
  EXPECT_EQ(first, drop_pattern(7));
  EXPECT_NE(first, drop_pattern(8));  // a different seed is a different plan
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 200u);  // ~30% dropped
}

TEST(FaultInjectingExecutor, StatsCountEveryDecision) {
  SerialExecutor inner;
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_permille = 500;
  FaultInjectingExecutor exec(inner, plan);
  std::size_t ran = 0;
  for (int i = 0; i < 100; ++i) {
    exec.submit([&ran] { ++ran; });
  }
  const auto stats = exec.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.dropped, 100u - ran);
  EXPECT_GT(stats.dropped, 0u);
}

TEST(FaultInjectingExecutor, ReorderHoldsThenFlushReleasesEverything) {
  SerialExecutor inner;
  FaultPlan plan;
  plan.seed = 11;
  plan.reorder_window = 8;
  FaultInjectingExecutor exec(inner, plan);
  std::vector<int> ran;
  for (int i = 0; i < 40; ++i) {
    exec.submit([&ran, i] { ran.push_back(i); });
  }
  EXPECT_LT(ran.size(), 40u);  // up to reorder_window submissions held
  exec.flush();
  ASSERT_EQ(ran.size(), 40u);
  std::vector<int> sorted = ran;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(40);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);          // every task ran exactly once
  EXPECT_GT(exec.stats().reordered, 0u);
  EXPECT_NE(ran, expected);             // and not in submission order
}

TEST(FaultInjectingExecutor, DestructorFlushesHeldSubmissions) {
  SerialExecutor inner;
  std::size_t ran = 0;
  {
    FaultPlan plan;
    plan.reorder_window = 64;  // hold everything
    FaultInjectingExecutor exec(inner, plan);
    for (int i = 0; i < 10; ++i) {
      exec.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran, 0u);
  }
  EXPECT_EQ(ran, 10u);
}

// --- structured layers stay correct under faults ---

std::vector<std::pair<std::size_t, std::size_t>> pipeline_squares(
    std::size_t n, std::size_t workers, Executor* executor) {
  PipelineOptions opt;
  opt.workers = workers;
  if (executor != nullptr) opt.executor = ExecutorRef(*executor);
  std::vector<std::pair<std::size_t, std::size_t>> consumed;
  run_pipeline<std::size_t>(
      opt,
      [n](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!emit(std::size_t(i))) return;
        }
      },
      [](std::size_t&& i) { return i * i; },
      [&](std::size_t seq, std::size_t&& value) {
        consumed.emplace_back(seq, value);
      });
  return consumed;
}

TEST(FaultInjection, PipelineIsBitIdenticalUnderDelayDropAndReorder) {
  const auto reference = pipeline_squares(400, 1, nullptr);
  ThreadPool pool(4);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_permille = 200;
    plan.delay_max_us = 100;
    plan.drop_permille = 200;
    plan.reorder_window = 4;
    FaultInjectingExecutor exec(pool, plan);
    EXPECT_EQ(pipeline_squares(400, 4, &exec), reference)
        << "seed " << seed;
  }
}

TEST(FaultInjection, PipelineCompletesWhenEveryHelperIsDropped) {
  // drop_permille = 1000: no helper ever runs; the caller must drain the
  // whole pipeline itself (the progress-never-depends-on-the-executor
  // contract).  A violation shows up as the CTest timeout.
  ThreadPool pool(4);
  FaultPlan plan;
  plan.seed = 9;
  plan.drop_permille = 1000;
  FaultInjectingExecutor exec(pool, plan);
  const auto result = pipeline_squares(300, 4, &exec);
  EXPECT_EQ(result, pipeline_squares(300, 1, nullptr));
  EXPECT_EQ(exec.stats().dropped, exec.stats().submitted);
}

TEST(FaultInjection, ParallelForCompletesAndCountsEveryIndexUnderFaults) {
  ThreadPool pool(4);
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_permille = 300;
    plan.delay_max_us = 50;
    plan.drop_permille = 300;
    FaultInjectingExecutor exec(pool, plan);
    ParallelOptions opt;
    opt.threads = 4;
    opt.executor = ExecutorRef(exec);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(1000, opt, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "seed " << seed << " index " << i;
    }
  }
}

TEST(FaultInjection, ErrorRankingSurvivesInjectedDelays) {
  // The lowest-index work failure must win under adversarial scheduling
  // too, exactly as on the clean pool.
  ThreadPool pool(4);
  for (std::uint64_t seed : {31u, 32u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_permille = 400;
    plan.delay_max_us = 100;
    FaultInjectingExecutor exec(pool, plan);
    ParallelOptions opt;
    opt.threads = 4;
    opt.executor = ExecutorRef(exec);
    try {
      parallel_for(256, opt, [](std::size_t i) {
        if (i % 17 == 3) {  // lowest failing index: 3
          throw std::runtime_error("fault at " + std::to_string(i));
        }
      });
      FAIL() << "expected the lowest-index failure, seed " << seed;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fault at 3") << "seed " << seed;
    }
  }
}

// --- arena allocation-failure hook ---

TEST(ArenaFaultHook, InternFailureUnwindsCleanlyAndRetrySucceeds) {
  const std::size_t before = sym::expr_intern_stats().live_nodes;
  Arena::fail_after(1);
  EXPECT_THROW(sym::Expr::symbol("arena_fault_probe"), std::bad_alloc);
  Arena::clear_failure_hook();
  // The failed intern left no node behind...
  EXPECT_EQ(sym::expr_intern_stats().live_nodes, before);
  // ...and the table is fully functional afterwards.
  sym::Expr e = sym::Expr::symbol("arena_fault_probe") + sym::Expr(1);
  EXPECT_GT(sym::expr_intern_stats().live_nodes, before);
  EXPECT_NE(e.str().find("arena_fault_probe"), std::string::npos);
}

TEST(ArenaFaultHook, FailuresUnderConcurrentInterningStayConsistent) {
  // Arm a stream of failures while many threads intern distinct expressions;
  // whichever thread absorbs a bad_alloc must leave the shared table intact.
  ThreadPool pool(4);
  ParallelOptions opt;
  opt.threads = 4;
  opt.executor = ExecutorRef(pool);
  std::atomic<int> failures{0};
  for (int round = 0; round < 8; ++round) {
    Arena::fail_after(5);
    parallel_for(64, opt, [&](std::size_t i) {
      try {
        sym::Expr e = sym::Expr::symbol("conc_fault_" +
                                        std::to_string(i % 16)) +
                      sym::Expr(static_cast<long long>(i));
        (void)e;
      } catch (const std::bad_alloc&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
    Arena::clear_failure_hook();
  }
  // The interner still works after every round of injected failures.
  sym::Expr check = sym::Expr::symbol("conc_fault_0") * sym::Expr(2);
  EXPECT_NE(check.str().find("conc_fault_0"), std::string::npos);
}

}  // namespace
}  // namespace soap::support
