// The staged-pipeline subsystem (support/pipeline.*, support/executor.*):
// ordered reduction, serial bypass and serial-executor parity, backpressure
// bounds under a slow consumer, first/lowest-index exception cancellation,
// and progress on starved executors.  Labeled `parallel` so the TSan CI job
// covers it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/executor.hpp"
#include "support/parallel.hpp"
#include "support/pipeline.hpp"
#include "support/thread_pool.hpp"

namespace soap::support {
namespace {

PipelineOptions with_workers(std::size_t workers, Executor* executor = nullptr,
                             std::size_t capacity = 0, std::size_t window = 0) {
  PipelineOptions opt;
  opt.workers = workers;
  opt.queue_capacity = capacity;
  opt.reorder_window = window;
  if (executor != nullptr) opt.executor = ExecutorRef(*executor);
  return opt;
}

// Runs the reference pipeline: produce 0..n-1, work squares, consume
// collects (seq, value) pairs in call order.
std::vector<std::pair<std::size_t, std::size_t>> squares(
    std::size_t n, const PipelineOptions& options) {
  std::vector<std::pair<std::size_t, std::size_t>> consumed;
  run_pipeline<std::size_t>(
      options,
      [n](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!emit(std::size_t(i))) return;
        }
      },
      [](std::size_t&& i) { return i * i; },
      [&](std::size_t seq, std::size_t&& value) {
        consumed.emplace_back(seq, value);
      });
  return consumed;
}

TEST(Pipeline, SerialBypassProducesInOrderOnCallerThread) {
  std::set<std::thread::id> ids;
  std::vector<std::size_t> seqs;
  run_pipeline<std::size_t>(
      with_workers(1),
      [&](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < 64; ++i) {
          ids.insert(std::this_thread::get_id());  // no lock: must be serial
          EXPECT_TRUE(emit(std::size_t(i)));
        }
      },
      [&](std::size_t&& i) {
        ids.insert(std::this_thread::get_id());
        return 3 * i;
      },
      [&](std::size_t seq, std::size_t&& value) {
        ids.insert(std::this_thread::get_id());
        EXPECT_EQ(value, 3 * seq);
        seqs.push_back(seq);
      });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
  ASSERT_EQ(seqs.size(), 64u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Pipeline, ParallelMatchesSerialAtEveryWorkerCount) {
  const auto serial = squares(500, with_workers(1));
  ASSERT_EQ(serial.size(), 500u);
  for (std::size_t workers : {2u, 4u, 8u, 0u}) {
    EXPECT_EQ(squares(500, with_workers(workers)), serial)
        << workers << " workers";
  }
}

TEST(Pipeline, ConsumeSeesStrictlyIncreasingSequenceDespiteJitter) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  run_pipeline<std::size_t>(
      with_workers(4, &pool),
      [](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < 200; ++i) {
          if (!emit(std::size_t(i))) return;
        }
      },
      [](std::size_t&& i) {
        // Reverse-biased delays maximize out-of-order completion.
        std::this_thread::sleep_for(std::chrono::microseconds(200 - i));
        return i;
      },
      [&](std::size_t seq, std::size_t&& value) {
        EXPECT_EQ(seq, value);
        order.push_back(seq);
      });
  ASSERT_EQ(order.size(), 200u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Pipeline, SerialExecutorParityAtHighWorkerCount) {
  // concurrency() == 0: the whole pipeline must run inline on the caller
  // and still produce the canonical result.
  SerialExecutor serial_executor;
  const auto serial = squares(300, with_workers(1));
  std::set<std::thread::id> ids;
  std::vector<std::pair<std::size_t, std::size_t>> consumed;
  run_pipeline<std::size_t>(
      with_workers(8, &serial_executor),
      [&](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < 300; ++i) {
          ids.insert(std::this_thread::get_id());
          if (!emit(std::size_t(i))) return;
        }
      },
      [&](std::size_t&& i) {
        ids.insert(std::this_thread::get_id());
        return i * i;
      },
      [&](std::size_t seq, std::size_t&& value) {
        consumed.emplace_back(seq, value);
      });
  EXPECT_EQ(consumed, serial);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(Pipeline, BackpressureBoundsProducerLeadUnderSlowConsumer) {
  // capacity + in-flight + reorder window is the hard ceiling on how far
  // production can run ahead of consumption.
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kCapacity = 2;
  constexpr std::size_t kWindow = 4;
  ThreadPool pool(kWorkers - 1);
  std::atomic<std::size_t> produced{0};
  std::atomic<std::size_t> consumed{0};
  std::atomic<std::size_t> max_lead{0};
  run_pipeline<std::size_t>(
      with_workers(kWorkers, &pool, kCapacity, kWindow),
      [&](const std::function<bool(std::size_t&&)>& emit) {
        for (std::size_t i = 0; i < 100; ++i) {
          if (!emit(std::size_t(i))) return;
          std::size_t lead =
              produced.fetch_add(1) + 1 - consumed.load();
          std::size_t seen = max_lead.load();
          while (lead > seen && !max_lead.compare_exchange_weak(seen, lead)) {
          }
        }
      },
      [](std::size_t&& i) { return i; },
      [&](std::size_t, std::size_t&&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        consumed.fetch_add(1);
      });
  EXPECT_EQ(consumed.load(), 100u);
  // produced - consumed <= queue capacity + workers in flight + held
  // results; +1 slack for the snapshot race between the two loads.
  EXPECT_LE(max_lead.load(), kCapacity + kWorkers + kWindow + 1);
}

TEST(Pipeline, WorkExceptionRethrowsLowestIndexOnSerialPath) {
  try {
    squares(100, with_workers(1));  // no throw configured: sanity
    run_pipeline<std::size_t>(
        with_workers(1),
        [](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 100; ++i) {
            if (!emit(std::size_t(i))) return;
          }
        },
        [](std::size_t&& i) -> std::size_t {
          if (i % 10 == 7) throw std::runtime_error("i=" + std::to_string(i));
          return i;
        },
        [](std::size_t, std::size_t&&) {});
    FAIL() << "expected the work exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "i=7");
  }
}

TEST(Pipeline, WorkExceptionCancelsProducerAndRethrows) {
  ThreadPool pool(3);
  std::size_t produced = 0;
  try {
    run_pipeline<std::size_t>(
        with_workers(4, &pool, /*capacity=*/2),
        [&](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 100000; ++i) {
            if (!emit(std::size_t(i))) return;
            ++produced;
          }
        },
        [](std::size_t&& i) -> std::size_t {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          if (i == 3) throw std::runtime_error("stage failure");
          return i;
        },
        [](std::size_t, std::size_t&&) {});
    FAIL() << "expected the work exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stage failure");
  }
  // Cancellation must have stopped the producer long before the end.
  EXPECT_LT(produced, 100000u);
}

TEST(Pipeline, ConsumerExceptionPropagates) {
  for (std::size_t workers : {1u, 4u}) {
    EXPECT_THROW(
        run_pipeline<std::size_t>(
            with_workers(workers),
            [](const std::function<bool(std::size_t&&)>& emit) {
              for (std::size_t i = 0; i < 50; ++i) {
                if (!emit(std::size_t(i))) return;
              }
            },
            [](std::size_t&& i) { return i; },
            [](std::size_t seq, std::size_t&&) {
              if (seq == 5) throw std::logic_error("consumer failure");
            }),
        std::logic_error)
        << workers << " workers";
  }
}

TEST(Pipeline, ProducerExceptionPropagates) {
  for (std::size_t workers : {1u, 4u}) {
    std::atomic<std::size_t> consumed{0};
    EXPECT_THROW(
        run_pipeline<std::size_t>(
            with_workers(workers),
            [](const std::function<bool(std::size_t&&)>& emit) {
              for (std::size_t i = 0; i < 10; ++i) {
                if (!emit(std::size_t(i))) return;
              }
              throw std::runtime_error("producer failure");
            },
            [](std::size_t&& i) { return i; },
            [&](std::size_t, std::size_t&&) { consumed.fetch_add(1); }),
        std::runtime_error)
        << workers << " workers";
  }
}

TEST(Pipeline, WorkErrorOutranksLaterProducerError) {
  // The work failure at sequence 0 must win over the producer's own
  // failure, which is ranked after everything already emitted.  The
  // producer waits for the work failure to actually happen before throwing
  // its own, so the outcome is deterministic.
  ThreadPool pool(2);
  std::atomic<bool> work_threw{false};
  try {
    run_pipeline<std::size_t>(
        with_workers(2, &pool),
        [&](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 5; ++i) {
            if (!emit(std::size_t(i))) break;
          }
          while (!work_threw.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          throw std::runtime_error("producer failure");
        },
        [&](std::size_t&& i) -> std::size_t {
          if (i == 0) {
            work_threw.store(true);
            throw std::runtime_error("work failure");
          }
          return i;
        },
        [](std::size_t, std::size_t&&) {});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "work failure");
  }
}

TEST(Pipeline, StarvedPoolDegradesToCallerWithoutDeadlock) {
  // The pool's only worker is pinned; the caller must drain the whole
  // pipeline itself (a deadlock shows up as the CTest timeout).
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  const auto result = squares(100, with_workers(4, &pool));
  EXPECT_EQ(result, squares(100, with_workers(1)));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(Pipeline, NestedPipelinesInsideParallelForOnOnePool) {
  // The corpus-batch shape: an outer parallel_for whose body runs an inner
  // pipeline on the same 1-worker pool.
  ThreadPool pool(1);
  ParallelOptions outer;
  outer.threads = 4;
  outer.executor = ExecutorRef(pool);
  std::atomic<std::size_t> total{0};
  parallel_for(4, outer, [&](std::size_t) {
    std::size_t local = 0;
    run_pipeline<std::size_t>(
        with_workers(4, &pool),
        [](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 8; ++i) {
            if (!emit(std::size_t(i))) return;
          }
        },
        [](std::size_t&& i) { return i; },
        [&](std::size_t, std::size_t&& v) { local += v; });
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 4u * (8u * 7u / 2));
}

TEST(Pipeline, ZeroItemsNeverCallsWorkOrConsume) {
  for (std::size_t workers : {1u, 4u}) {
    bool touched = false;
    run_pipeline<int>(
        with_workers(workers),
        [](const std::function<bool(int&&)>&) {},
        [&](int&& v) {
          touched = true;
          return v;
        },
        [&](std::size_t, int&&) { touched = true; });
    EXPECT_FALSE(touched) << workers << " workers";
  }
}

TEST(Pipeline, MoveOnlyItemsAndResultsFlowThrough) {
  for (std::size_t workers : {1u, 4u}) {
    std::size_t sum = 0;
    run_pipeline<std::unique_ptr<std::size_t>>(
        with_workers(workers),
        [](const std::function<bool(std::unique_ptr<std::size_t>&&)>& emit) {
          for (std::size_t i = 0; i < 32; ++i) {
            if (!emit(std::make_unique<std::size_t>(i))) return;
          }
        },
        [](std::unique_ptr<std::size_t>&& p) {
          return std::make_unique<std::size_t>(*p * 2);
        },
        [&](std::size_t, std::unique_ptr<std::size_t>&& p) { sum += *p; });
    EXPECT_EQ(sum, 2u * (32u * 31u / 2)) << workers << " workers";
  }
}

TEST(Pipeline, RepeatedRunsOnTheGlobalPoolAreStable) {
  const auto serial = squares(256, with_workers(1));
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(squares(256, with_workers(1 + round % 8)), serial)
        << "round " << round;
  }
}

// --- external cancellation (PipelineOptions::cancel) ---

TEST(Pipeline, PreTrippedTokenCancelsBeforeAnyWork) {
  for (std::size_t workers : {1u, 4u}) {
    CancellationSource source;
    source.request_cancel();
    PipelineOptions opt = with_workers(workers);
    opt.cancel = source.token();
    std::atomic<std::size_t> worked{0};
    std::size_t produced = 0;
    try {
      run_pipeline<std::size_t>(
          opt,
          [&](const std::function<bool(std::size_t&&)>& emit) {
            for (std::size_t i = 0; i < 100; ++i) {
              if (!emit(std::size_t(i))) return;
              ++produced;
            }
          },
          [&](std::size_t&& i) {
            worked.fetch_add(1);
            return i;
          },
          [](std::size_t, std::size_t&&) {});
      FAIL() << "expected AnalysisError{kCancelled} with " << workers
             << " workers";
    } catch (const AnalysisError& e) {
      EXPECT_EQ(e.code(), StatusCode::kCancelled);
    }
    EXPECT_EQ(produced, 0u) << workers << " workers";
    EXPECT_EQ(worked.load(), 0u) << workers << " workers";
  }
}

TEST(Pipeline, CancelMidFlightWhileQueueFullUnderSlowConsumer) {
  // Small queue + tiny reorder window + slow consumer: workers pile up on
  // the reorder-window wait and the producer on help-first backpressure.
  // Cancellation must wake all of them and drain cleanly (a missed wake
  // shows up as the CTest timeout); the consumed prefix stays ordered.
  ThreadPool pool(3);
  CancellationSource source;
  PipelineOptions opt = with_workers(4, &pool, /*capacity=*/2, /*window=*/2);
  opt.cancel = source.token();
  std::vector<std::size_t> consumed;
  std::size_t produced = 0;
  try {
    run_pipeline<std::size_t>(
        opt,
        [&](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 100000; ++i) {
            if (!emit(std::size_t(i))) return;
            ++produced;
          }
        },
        [](std::size_t&& i) { return i; },
        [&](std::size_t seq, std::size_t&& value) {
          EXPECT_EQ(seq, value);
          consumed.push_back(seq);
          if (seq == 20) source.request_cancel();
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        });
    FAIL() << "expected AnalysisError{kCancelled}";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
  // The producer stopped far short of the full range, and everything that
  // reached the consumer did so in order.
  EXPECT_LT(produced, 100000u);
  for (std::size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(Pipeline, RecordedWorkErrorOutranksCancellation) {
  // A real failure recorded before (or while) the token trips must win:
  // cancellation is a reason to stop, not a reason to hide the bug.
  ThreadPool pool(2);
  CancellationSource source;
  PipelineOptions opt = with_workers(2, &pool);
  opt.cancel = source.token();
  try {
    run_pipeline<std::size_t>(
        opt,
        [&](const std::function<bool(std::size_t&&)>& emit) {
          for (std::size_t i = 0; i < 50; ++i) {
            if (!emit(std::size_t(i))) return;
          }
        },
        [&](std::size_t&& i) -> std::size_t {
          if (i == 0) {
            source.request_cancel();
            throw std::runtime_error("work failure");
          }
          return i;
        },
        [](std::size_t, std::size_t&&) {});
    FAIL() << "expected the work failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "work failure");
  }
}

TEST(Pipeline, TeardownStressCancellationRacesOnSharedPool) {
  // Many rounds of cancellation landing at varying phases of the run —
  // during production, mid-drain, after completion — on one shared pool.
  // The invariants: every round either completes fully or raises
  // kCancelled, the consumed prefix is always in order, and the pool
  // survives to the next round (leaks/deadlocks surface under the
  // sanitizer presets; label `parallel` puts this suite in the TSan job).
  ThreadPool pool(4);
  for (int round = 0; round < 60; ++round) {
    CancellationSource source;
    PipelineOptions opt = with_workers(4, &pool, /*capacity=*/4, /*window=*/4);
    opt.cancel = source.token();
    std::vector<std::size_t> consumed;
    std::thread killer([&source, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      source.request_cancel();
    });
    bool cancelled = false;
    try {
      run_pipeline<std::size_t>(
          opt,
          [&](const std::function<bool(std::size_t&&)>& emit) {
            for (std::size_t i = 0; i < 300; ++i) {
              if (!emit(std::size_t(i))) return;
            }
          },
          [](std::size_t&& i) {
            std::this_thread::sleep_for(std::chrono::microseconds(5));
            return i;
          },
          [&](std::size_t seq, std::size_t&&) { consumed.push_back(seq); });
    } catch (const AnalysisError& e) {
      EXPECT_EQ(e.code(), StatusCode::kCancelled) << "round " << round;
      cancelled = true;
    }
    killer.join();
    if (!cancelled) {
      EXPECT_EQ(consumed.size(), 300u) << "round " << round;
    }
    for (std::size_t i = 0; i < consumed.size(); ++i) {
      ASSERT_EQ(consumed[i], i) << "round " << round;
    }
  }
}

TEST(ParallelFor, PreTrippedTokenCancelsSerialAndParallel) {
  for (std::size_t threads : {1u, 4u}) {
    CancellationSource source;
    source.request_cancel();
    ParallelOptions opt;
    opt.threads = threads;
    opt.cancel = source.token();
    std::atomic<std::size_t> ran{0};
    try {
      parallel_for(100, opt, [&](std::size_t) { ran.fetch_add(1); });
      FAIL() << "expected AnalysisError{kCancelled} with " << threads
             << " threads";
    } catch (const AnalysisError& e) {
      EXPECT_EQ(e.code(), StatusCode::kCancelled);
    }
    EXPECT_EQ(ran.load(), 0u) << threads << " threads";
  }
}

TEST(ParallelFor, CancelMidRunStopsClaimingChunks) {
  ThreadPool pool(4);
  CancellationSource source;
  ParallelOptions opt;
  opt.threads = 4;
  opt.executor = ExecutorRef(pool);
  opt.cancel = source.token();
  std::atomic<std::size_t> ran{0};
  try {
    parallel_for(100000, opt, [&](std::size_t) {
      if (ran.fetch_add(1) == 64) source.request_cancel();
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    });
    FAIL() << "expected AnalysisError{kCancelled}";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
  EXPECT_LT(ran.load(), 100000u);
}

}  // namespace
}  // namespace soap::support
