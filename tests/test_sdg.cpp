// Section 6: SDG construction, subgraph enumeration, statement merging and
// Theorem 1, exercised on the paper's Figure 2 example and the fusion
// kernels.
#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "sdg/merge.hpp"
#include "sdg/multi_statement.hpp"
#include "sdg/sdg.hpp"
#include "sdg/subgraph.hpp"

namespace soap::sdg {
namespace {

using sym::Expr;

Program figure2() {
  return frontend::parse_program(R"(
for i in range(N):
  for j in range(M):
    C[i,j] = (A[i] + A[i+1]) * (B[j] + B[j+1])
for i in range(N):
  for j in range(K):
    for k in range(M):
      E[i,j] += C[i,k] * D[k,j]
)");
}

TEST(Sdg, Figure2Structure) {
  Program p = figure2();
  Sdg g = Sdg::build(p);
  // V_S = {A, B, C, D, E}; edges A->C, B->C, C->E, D->E, E->E.
  EXPECT_EQ(g.arrays().size(), 5u);
  EXPECT_TRUE(g.has_edge("A", "C"));
  EXPECT_TRUE(g.has_edge("B", "C"));
  EXPECT_TRUE(g.has_edge("C", "E"));
  EXPECT_TRUE(g.has_edge("D", "E"));
  EXPECT_TRUE(g.has_edge("E", "E"));  // self-edge from the update
  EXPECT_EQ(g.input_arrays(), (std::vector<std::string>{"A", "B", "D"}));
  EXPECT_EQ(g.computed_arrays(), (std::vector<std::string>{"C", "E"}));
}

TEST(Sdg, Figure2Subgraphs) {
  Program p = figure2();
  Sdg g = Sdg::build(p);
  auto subs = enumerate_subgraphs(g, 4);
  // {C}, {E}, {C, E} — exactly the three subgraph statements of Example 8.
  EXPECT_EQ(subs.size(), 3u);
}

TEST(Sdg, Figure2MergedSubgraphReusesC) {
  Program p = figure2();
  Sdg g = Sdg::build(p);
  MergedSubgraph m = merge_subgraph(g, {"C", "E"});
  // In(St_H3) = {A, B, D}: C is internal (computed and reused).
  std::set<std::string> inputs;
  for (const auto& t : m.problem.sum_terms) {
    inputs.insert(t.array.substr(0, t.array.find('@')));
  }
  EXPECT_TRUE(inputs.count("A"));
  EXPECT_TRUE(inputs.count("B"));
  EXPECT_TRUE(inputs.count("D"));
  EXPECT_FALSE(inputs.count("C"));
  // Two member statements -> two objective monomials (different var sets).
  EXPECT_EQ(m.members.size(), 2u);
}

TEST(Sdg, Figure2Bound) {
  auto b = multi_statement_bound(figure2());
  ASSERT_TRUE(b);
  // C = (A + shift(A)) x (B + shift(B)) is rank-1: inside the fused subgraph
  // H3 = {C, E} its elements are recomputed from the O(N+M) vectors for free
  // (Figure 2: "Elements of C are recomputed, decreasing the I/O cost!"),
  // which lifts the intensity to Theta(S) and leaves Q >= 2 K M N / S.
  Expr expected = Expr(2) * Expr::symbol("K") * Expr::symbol("M") *
                  Expr::symbol("N") / Expr::symbol("S");
  EXPECT_EQ(b->Q_leading, expected);
}

TEST(Sdg, AdjacencyViaSharedInput) {
  // atax: tmp and y share A; adjacency must hold even without an SDG edge.
  Program p = frontend::parse_program(R"(
for i in range(M):
  for j in range(N):
    tmp[i] += A[i,j] * x[j]
for i in range(M):
  for j in range(N):
    y[j] += A[i,j] * tmp[i]
)");
  Sdg g = Sdg::build(p);
  EXPECT_TRUE(g.adjacent("tmp", "y"));
}

TEST(Sdg, MergeUnifiesIterationVariables) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    x1[i] += A[i,j] * y1[j]
for i in range(N):
  for j in range(N):
    x2[i] += A[j,i] * y2[j]
)");
  Sdg g = Sdg::build(p);
  MergedSubgraph m = merge_subgraph(g, {"x1", "x2"});
  // The transposed access aligns st2's (j, i) with st1's (i, j): two unified
  // variables, a single shared A load term.
  EXPECT_EQ(m.problem.vars.size(), 2u);
  int a_terms = 0;
  for (const auto& t : m.problem.sum_terms) a_terms += t.array == "A";
  EXPECT_EQ(a_terms, 1);
}

TEST(Sdg, FusionBoundsMatchPaper) {
  struct Case {
    const char* src;
    double expected_at_ref;
  };
  // mvt: Theorem 1 with the merged subgraph gives N^2 (rho = 2).
  Program mvt = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    x1[i] += A[i,j] * y1[j]
for i in range(N):
  for j in range(N):
    x2[i] += A[j,i] * y2[j]
)");
  auto b = multi_statement_bound(mvt);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->Q_leading, Expr::symbol("N") * Expr::symbol("N"));
  // Both computed arrays should pick the fused subgraph with rho = 2.
  for (const auto& a : b->per_array) {
    EXPECT_NEAR(a.rho_value, 2.0, 1e-6) << a.array;
    EXPECT_EQ(a.best_subgraph.size(), 2u) << a.array;
  }
}

TEST(Sdg, SingletonOptionDisablesFusion) {
  Program mvt = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    x1[i] += A[i,j] * y1[j]
for i in range(N):
  for j in range(N):
    x2[i] += A[j,i] * y2[j]
)");
  SdgOptions opt;
  opt.max_subgraph_size = 1;
  auto b = multi_statement_bound(mvt, opt);
  ASSERT_TRUE(b);
  // Without fusion each pass is charged separately: 2 N^2.
  EXPECT_EQ(b->Q_leading,
            Expr(2) * Expr::symbol("N") * Expr::symbol("N"));
}

TEST(Sdg, InteriorArrayWithReductionStillCharged) {
  // 2mm: tmp carries a k-reduction, so its final versions cannot be produced
  // inside a partial tile; fusing must not erase its term (paper: 4N^3).
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      tmp[i,j] += A[i,k] * B[k,j]
for i in range(N):
  for j in range(N):
    for k in range(N):
      D[i,j] += tmp[i,k] * C[k,j]
)");
  auto b = multi_statement_bound(p);
  ASSERT_TRUE(b);
  Expr n3 = Expr::symbol("N") * Expr::symbol("N") * Expr::symbol("N");
  EXPECT_EQ(b->Q_leading, Expr(4) * n3 / sym::sqrt(Expr::symbol("S")));
}

TEST(Sdg, ColdBoundDominatesForRecomputablePipelines) {
  // Horizontal-diffusion shape: intermediates recomputable, bound = in+out.
  Program p = frontend::parse_program(R"(
for i in range(1, I - 1):
  for j in range(1, J - 1):
    lap[i,j] = inf[i-1,j] + inf[i+1,j] + inf[i,j-1] + inf[i,j+1]
for i in range(1, I - 1):
  for j in range(1, J - 1):
    outf[i,j] = lap[i+1,j] - lap[i,j]
)");
  SdgOptions opt;
  opt.use_cold_bound = true;
  auto b = multi_statement_bound(p, opt);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->Q_cold, Expr(2) * Expr::symbol("I") * Expr::symbol("J"));
}

TEST(Sdg, StreamingLevelsMatchMaterializedEnumeration) {
  Program p = figure2();
  Sdg g = Sdg::build(p);
  std::vector<std::vector<std::string>> streamed;
  std::size_t levels = 0;
  std::size_t last_size = 0;
  for_each_subgraph_level(
      g, 4, 100000, [&](std::vector<std::vector<std::string>>& level) {
        ++levels;
        ASSERT_FALSE(level.empty());
        // Level-synchronous: uniform cardinality, strictly increasing.
        for (const auto& h : level) EXPECT_EQ(h.size(), level.front().size());
        EXPECT_GT(level.front().size(), last_size);
        last_size = level.front().size();
        for (auto& h : level) streamed.push_back(std::move(h));
      });
  EXPECT_EQ(levels, 2u);  // {C}, {E} then {C, E}
  EXPECT_EQ(streamed, enumerate_subgraphs(g, 4));
}

TEST(Sdg, PerSubgraphStreamingMatchesMaterializedEnumeration) {
  // The pipelined producer: one subset per sink call, canonical order
  // (by cardinality, then generation order).
  Program p = figure2();
  Sdg g = Sdg::build(p);
  std::vector<std::vector<std::string>> streamed;
  std::size_t last_size = 0;
  for_each_subgraph(g, 4, 100000, [&](std::vector<std::string>&& names) {
    EXPECT_GE(names.size(), last_size);  // never shrinks: level order
    last_size = names.size();
    streamed.push_back(std::move(names));
    return true;
  });
  EXPECT_EQ(streamed, enumerate_subgraphs(g, 4));
}

TEST(Sdg, StreamingSinkCanStopEnumerationEarly) {
  std::string src;
  std::string prev = "a0";
  for (int i = 1; i <= 12; ++i) {
    std::string cur = "a" + std::to_string(i);
    src += "for i in range(N):\n  " + cur + "[i] = " + prev + "[i]\n";
    prev = cur;
  }
  Program p = frontend::parse_program(src);
  Sdg g = Sdg::build(p);
  auto all = enumerate_subgraphs(g, 3);
  ASSERT_GT(all.size(), 5u);
  std::vector<std::vector<std::string>> taken;
  for_each_subgraph(g, 3, 100000, [&](std::vector<std::string>&& names) {
    taken.push_back(std::move(names));
    return taken.size() < 5;  // stop after the fifth subset
  });
  ASSERT_EQ(taken.size(), 5u);
  for (std::size_t i = 0; i < taken.size(); ++i) {
    EXPECT_EQ(taken[i], all[i]) << i;
  }
}

TEST(Sdg, EnumerationStopsExactlyAtMaxCount) {
  std::string src;
  std::string prev = "a0";
  for (int i = 1; i <= 12; ++i) {
    std::string cur = "a" + std::to_string(i);
    src += "for i in range(N):\n  " + cur + "[i] = " + prev + "[i]\n";
    prev = cur;
  }
  Program p = frontend::parse_program(src);
  Sdg g = Sdg::build(p);
  auto all = enumerate_subgraphs(g, 3);
  ASSERT_GT(all.size(), 7u);
  // The cap cuts generation mid-stream (even mid-level) and is exact.
  auto capped = enumerate_subgraphs(g, 3, 7);
  EXPECT_EQ(capped.size(), 7u);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i], all[i]) << i;  // a prefix of the canonical order
  }
  EXPECT_TRUE(enumerate_subgraphs(g, 3, 0).empty());
}

TEST(Sdg, SubgraphEnumerationCap) {
  // A chain of 12 statements: connected subsets of size <= 3 only.
  std::string src;
  std::string prev = "a0";
  for (int i = 1; i <= 12; ++i) {
    std::string cur = "a" + std::to_string(i);
    src += "for i in range(N):\n  " + cur + "[i] = " + prev + "[i]\n";
    prev = cur;
  }
  Program p = frontend::parse_program(src);
  Sdg g = Sdg::build(p);
  auto subs = enumerate_subgraphs(g, 3);
  // 12 singletons + 11 pairs + 10 triples = 33 connected interval subsets...
  // plus shared-input adjacency can widen this; at minimum the intervals.
  EXPECT_GE(subs.size(), 33u);
  for (const auto& h : subs) EXPECT_LE(h.size(), 3u);
}

}  // namespace
}  // namespace soap::sdg
