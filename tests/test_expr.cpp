#include "symbolic/expr.hpp"

#include <gtest/gtest.h>

#include "sym_matchers.hpp"
#include "symbolic/leading.hpp"
#include "test_util.hpp"

namespace soap::sym {
namespace {

Expr N() { return Expr::symbol("N"); }
Expr S() { return Expr::symbol("S"); }

TEST(Expr, ConstantFolding) {
  EXPECT_EQ((Expr(2) + Expr(3)).str(), "5");
  EXPECT_EQ((Expr(2) * Expr(3) - Expr(6)).str(), "0");
  EXPECT_EQ((Expr(Rational(1, 2)) + Expr(Rational(1, 3))).str(), "5/6");
}

TEST(Expr, LikeTermCombination) {
  Expr e = N() + N() + Expr(2) * N();
  EXPECT_EQ(e.str(), "4*N");
  Expr zero = N() - N();
  EXPECT_TRUE(zero.is_zero());
}

TEST(Expr, LikeFactorCombination) {
  Expr e = N() * N() * N();
  EXPECT_EQ(e.str(), "N^3");
  Expr one = N() / N();
  EXPECT_TRUE(one.is_one());
  EXPECT_EQ((pow(N(), Rational(1, 2)) * pow(N(), Rational(1, 2))).str(), "N");
}

TEST(Expr, RadicalsOfConstants) {
  EXPECT_EQ(sqrt(Expr(4)).str(), "2");
  EXPECT_EQ(sqrt(Expr(12)).str(), "2*sqrt(3)");
  EXPECT_EQ(sqrt(Expr(2)) * sqrt(Expr(3)) * sqrt(Expr(6)), Expr(6));
  EXPECT_EQ(cbrt(Expr(Rational(8, 27))).str(), "2/3");
  // Denominator rationalization: sqrt(1/2) = sqrt(2)/2.
  EXPECT_EQ(pow(Expr(Rational(1, 2)), Rational(1, 2)).str(), "sqrt(2)/2");
}

TEST(Expr, PowerRules) {
  EXPECT_EQ(pow(pow(N(), Rational(2)), Rational(1, 2)), N());
  EXPECT_EQ(pow(N() * S(), Rational(1, 2)), sqrt(N()) * sqrt(S()));
  EXPECT_TRUE(pow(N(), Rational(0)).is_one());
  EXPECT_THROW(pow(Expr(0), Rational(-1)), std::domain_error);
}

TEST(Expr, CanonicalEqualityAcrossDerivations) {
  Expr a = Expr(2) * N() * N() * N() / sqrt(S());
  Expr b = N() * Expr(2) / pow(S(), Rational(1, 2)) * N() * N();
  EXPECT_EQ(a, b);
}

TEST(Expr, Eval) {
  Expr q = Expr(2) * pow(N(), Rational(3)) / sqrt(S());
  EXPECT_DOUBLE_EQ(q.eval({{"N", 10.0}, {"S", 4.0}}), 1000.0);
  EXPECT_THROW(testing::sink(q.eval({{"N", 1.0}})), std::out_of_range);
}

TEST(Expr, Subs) {
  Expr e = N() * N() + S();
  Expr sub = e.subs({{"N", Expr(3)}});
  EXPECT_EQ(sub, Expr(9) + S());
}

TEST(Expr, Diff) {
  Expr e = pow(Expr::symbol("X"), Rational(3, 2));
  EXPECT_EQ(e.diff("X"), Expr(Rational(3, 2)) * sqrt(Expr::symbol("X")));
  Expr prod = Expr::symbol("X") * S();
  EXPECT_EQ(prod.diff("X"), S());
  EXPECT_EQ(prod.diff("Z"), Expr(0));
  // d/dX [X^2/(X-S)] vanishes at X = 2S.
  Expr X = Expr::symbol("X");
  Expr rho = pow(X, Rational(2)) / (X - S());
  Expr d = rho.diff("X");
  EXPECT_NEAR(d.eval({{"X", 20.0}, {"S", 10.0}}), 0.0, 1e-12);
}

TEST(Expr, MinMaxFolding) {
  Expr m = min({Expr(3), N(), Expr(5)});
  EXPECT_EQ(m, min({N(), Expr(3)}));
  EXPECT_EQ(max({Expr(3), Expr(5)}), Expr(5));
  EXPECT_EQ(min({N()}), N());
  EXPECT_DOUBLE_EQ(max({N(), S()}).eval({{"N", 2}, {"S", 7}}), 7.0);
}

TEST(Expr, Expand) {
  Expr e = (N() + Expr(1)) * (N() - Expr(1));
  EXPECT_EQ(expand(e), N() * N() - Expr(1));
  Expr sq = pow(N() + Expr(2), Rational(2));
  EXPECT_EQ(expand(sq), N() * N() + Expr(4) * N() + Expr(4));
  // Repeated factors must not recurse (regression: (x-2)^2 via a*b).
  Expr cube = pow(N() - Expr(2), Rational(3));
  EXPECT_EQ(expand(cube),
            N() * N() * N() - Expr(6) * N() * N() + Expr(12) * N() - Expr(8));
}

TEST(Expr, SymbolsAndContains) {
  Expr e = N() * S() + Expr::symbol("T");
  auto syms = e.symbols();
  ASSERT_EQ(syms.size(), 3u);
  EXPECT_TRUE(e.contains("T"));
  EXPECT_FALSE(e.contains("Z"));
}

TEST(Expr, Rendering) {
  EXPECT_EQ((Expr(2) * N() / (Expr(3) * sqrt(S()))).str(),
            "2*N/(3*sqrt(S))");
  EXPECT_EQ((N() - S()).str(), "N - S");
  EXPECT_EQ((-N()).str(), "-N");
  EXPECT_EQ((Expr(1) / (N() - S())).str(), "1/(N - S)");
}

TEST(LeadingTerm, PicksMaxDegree) {
  Expr e = N() * N() * N() / Expr(3) - N() * N() / Expr(2) + N();
  EXPECT_EQ(leading_term(e, {"N"}), N() * N() * N() / Expr(3));
}

TEST(LeadingTerm, TreatsSmallSymbolsAsConstants) {
  Expr e = Expr(2) * N() * N() / sqrt(S()) + N() * S();
  EXPECT_EQ(leading_term_except(e, {"S"}), Expr(2) * N() * N() / sqrt(S()));
}

TEST(LeadingTerm, SumsTies) {
  Expr e = N() * Expr::symbol("M") + N() * N() + Expr::symbol("M") *
           Expr::symbol("M");
  Expr lead = leading_term(e, {"N", "M"});
  EXPECT_EQ(lead, e);  // all terms have total degree 2
}

TEST(TermDegree, RationalDegrees) {
  Expr t = Expr(2) * pow(N(), Rational(3)) / sqrt(S());
  EXPECT_EQ(term_degree(t, {"N"}), Rational(3));
  EXPECT_EQ(term_degree(t, {"N", "S"}), Rational(5, 2));
}

TEST(NumericallyEqual, DetectsEqualAndUnequal) {
  Expr a = (N() + S()) * (N() - S());
  Expr b = N() * N() - S() * S();
  EXPECT_SYM_EQ(a, b);
  EXPECT_SYM_NE(a, b + Expr(1));
}

class PowerFold : public ::testing::TestWithParam<int> {};

TEST_P(PowerFold, IntegerPowersOfConstantsFold) {
  int k = GetParam();
  Expr e = pow(Expr(k), Rational(2));
  ASSERT_TRUE(e.is_const());
  EXPECT_EQ(e.value(), Rational(k) * Rational(k));
  // sqrt(k^2) == k for non-negative k.
  Expr r = sqrt(Expr(k) * Expr(k));
  EXPECT_EQ(r, Expr(k));
}

INSTANTIATE_TEST_SUITE_P(Constants, PowerFold, ::testing::Range(1, 20));

}  // namespace
}  // namespace soap::sym
