// The shared CLI parsing helpers in support/parse.hpp: strict size parsing
// and the one flag scanner behind every --threads / --max-* flag.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "support/parse.hpp"

namespace soap::support {
namespace {

// argv scaffolding: keeps the strings alive and hands out char**.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    ptrs_.reserve(args_.size());
    for (std::string& a : args_) ptrs_.push_back(a.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(ParseSizeT, AcceptsPlainDigits) {
  EXPECT_EQ(parse_size_t("0"), std::size_t{0});
  EXPECT_EQ(parse_size_t("42"), std::size_t{42});
}

TEST(ParseSizeT, RejectsEmptySignsGarbageAndOverflow) {
  EXPECT_FALSE(parse_size_t(""));
  EXPECT_FALSE(parse_size_t("-1"));
  EXPECT_FALSE(parse_size_t("+1"));
  EXPECT_FALSE(parse_size_t("4x"));
  EXPECT_FALSE(parse_size_t(" 4"));
  EXPECT_FALSE(parse_size_t("99999999999999999999999999"));
}

TEST(ParseSizeT, ReportsWhyTheValueWasRejected) {
  std::string why;
  EXPECT_FALSE(parse_size_t("", &why));
  EXPECT_NE(why.find("empty"), std::string::npos) << why;
  EXPECT_FALSE(parse_size_t("-1", &why));
  EXPECT_NE(why.find("non-negative"), std::string::npos) << why;
  EXPECT_FALSE(parse_size_t("+1", &why));
  EXPECT_NE(why.find("not a non-negative integer"), std::string::npos) << why;
  EXPECT_FALSE(parse_size_t("4x", &why));
  EXPECT_NE(why.find("trailing"), std::string::npos) << why;
  EXPECT_FALSE(parse_size_t("99999999999999999999999999", &why));
  EXPECT_NE(why.find("out of range"), std::string::npos) << why;
}

TEST(ParseSizeT, LeavesErrorUntouchedOnSuccess) {
  std::string why = "unchanged";
  EXPECT_EQ(parse_size_t("17", &why), std::size_t{17});
  EXPECT_EQ(why, "unchanged");
}

TEST(ConsumeSizeFlag, MatchesSeparateValueAndAdvances) {
  Argv a({"tool", "--threads", "4", "file"});
  std::size_t out = 0;
  int i = 1;
  EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
            FlagParse::kOk);
  EXPECT_EQ(out, 4u);
  EXPECT_EQ(i, 2);  // consumed the value token
}

TEST(ConsumeSizeFlag, MatchesEqualsForm) {
  Argv a({"tool", "--threads=8"});
  std::size_t out = 0;
  int i = 1;
  EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
            FlagParse::kOk);
  EXPECT_EQ(out, 8u);
  EXPECT_EQ(i, 1);
}

TEST(ConsumeSizeFlag, ReportsMissingOrMalformedValues) {
  std::size_t out = 7;
  {
    Argv a({"tool", "--threads"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
              FlagParse::kBadValue);
  }
  {
    Argv a({"tool", "--threads", "abc"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
              FlagParse::kBadValue);
  }
  {
    Argv a({"tool", "--threads=-2"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
              FlagParse::kBadValue);
  }
  EXPECT_EQ(out, 7u);  // out untouched on failure
}

TEST(ConsumeSizeFlag, SurfacesTheRejectionReason) {
  std::size_t out = 0;
  std::string why;
  {
    Argv a({"tool", "--threads"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out, &why),
              FlagParse::kBadValue);
    EXPECT_NE(why.find("missing value"), std::string::npos) << why;
  }
  {
    Argv a({"tool", "--threads=-2"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out, &why),
              FlagParse::kBadValue);
    EXPECT_NE(why.find("non-negative"), std::string::npos) << why;
  }
}

TEST(ConsumeStringFlag, SurfacesMissingAndEmptyValues) {
  std::string out;
  std::string why;
  {
    Argv a({"tool", "--family"});
    int i = 1;
    EXPECT_EQ(consume_string_flag(a.argc(), a.argv(), i, "family", out, &why),
              FlagParse::kBadValue);
    EXPECT_NE(why.find("missing value"), std::string::npos) << why;
  }
  {
    Argv a({"tool", "--family="});
    int i = 1;
    EXPECT_EQ(consume_string_flag(a.argc(), a.argv(), i, "family", out, &why),
              FlagParse::kBadValue);
    EXPECT_NE(why.find("empty value"), std::string::npos) << why;
  }
}

TEST(ConsumeSizeFlag, DoesNotMatchOtherFlagsOrPrefixes) {
  std::size_t out = 0;
  {
    Argv a({"tool", "--max-subgraphs", "9"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "max-subgraph-size",
                                out),
              FlagParse::kNoMatch);
    EXPECT_EQ(i, 1);
  }
  {
    Argv a({"tool", "file.py"});
    int i = 1;
    EXPECT_EQ(consume_size_flag(a.argc(), a.argv(), i, "threads", out),
              FlagParse::kNoMatch);
  }
}

}  // namespace
}  // namespace soap::support
