#include "symbolic/polynomial.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "symbolic/faulhaber.hpp"

namespace soap::sym {
namespace {

Polynomial n() { return Polynomial::variable("n"); }

TEST(Polynomial, Arithmetic) {
  Polynomial p = n() * n() + Polynomial(Rational(1, 2)) * n();
  Polynomial q = p - p;
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ((p + p).eval({{"n", 2.0}}), 10.0);
}

TEST(Polynomial, Degrees) {
  Polynomial p = n() * n() * Polynomial::variable("m") + n();
  EXPECT_EQ(p.degree("n"), 2);
  EXPECT_EQ(p.degree("m"), 1);
  EXPECT_EQ(p.total_degree(), 3);
  EXPECT_EQ(Polynomial(5).total_degree(), 0);
  EXPECT_EQ(Polynomial().total_degree(), -1);
}

TEST(Polynomial, Substitution) {
  Polynomial p = n() * n();
  Polynomial sub = p.subs({{"n", n() + Polynomial(1)}});
  EXPECT_EQ(sub, n() * n() + Polynomial(2) * n() + Polynomial(1));
}

TEST(Polynomial, CoefficientsOf) {
  Polynomial m = Polynomial::variable("m");
  Polynomial p = n() * n() * m + n() * Polynomial(3) + Polynomial(7);
  auto cs = p.coefficients_of("n");
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0], Polynomial(7));
  EXPECT_EQ(cs[1], Polynomial(3));
  EXPECT_EQ(cs[2], m);
}

TEST(Polynomial, LeadingTerms) {
  Polynomial p = n() * n() - Polynomial(5) * n();
  EXPECT_EQ(p.leading_terms(), n() * n());
}

TEST(Faulhaber, KnownClosedForms) {
  // sum i   = n(n+1)/2
  Polynomial s1 = power_sum(1, "n");
  EXPECT_EQ(s1, Polynomial(Rational(1, 2)) * (n() * n() + n()));
  // sum i^2 = n(n+1)(2n+1)/6
  Polynomial s2 = power_sum(2, "n");
  EXPECT_DOUBLE_EQ(s2.eval({{"n", 10.0}}), 385.0);
  // sum i^3 = (n(n+1)/2)^2
  Polynomial s3 = power_sum(3, "n");
  EXPECT_DOUBLE_EQ(s3.eval({{"n", 10.0}}), 3025.0);
}

class FaulhaberBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FaulhaberBruteForce, MatchesDirectSummation) {
  auto [k, upper] = GetParam();
  Polynomial sk = power_sum(k, "n");
  double direct = 0;
  for (int i = 1; i <= upper; ++i) {
    direct += std::pow(static_cast<double>(i), k);
  }
  EXPECT_DOUBLE_EQ(sk.eval({{"n", static_cast<double>(upper)}}), direct)
      << "k=" << k << " n=" << upper;
}

INSTANTIATE_TEST_SUITE_P(PowersAndRanges, FaulhaberBruteForce,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1, 2, 5, 13)));

TEST(SumOver, PolynomialBounds) {
  // sum_{v=0}^{N-1} 1 = N
  Polynomial N = Polynomial::variable("N");
  Polynomial one(1);
  EXPECT_EQ(sum_over(one, "v", Polynomial(0), N - Polynomial(1)), N);
  // sum_{v=k+1}^{N-1} 1 = N - k - 1
  Polynomial k = Polynomial::variable("k");
  EXPECT_EQ(sum_over(one, "v", k + Polynomial(1), N - Polynomial(1)),
            N - k - Polynomial(1));
  // sum_{v=0}^{N-1} v = N(N-1)/2
  Polynomial v = Polynomial::variable("v");
  EXPECT_EQ(sum_over(v, "v", Polynomial(0), N - Polynomial(1)),
            Polynomial(Rational(1, 2)) * (N * N - N));
}

TEST(SumOver, NestedTriangularVolume) {
  // LU domain: k in [0,N), i and j in [k+1, N): |D| = sum (N-k-1)^2.
  Polynomial N = Polynomial::variable("N");
  Polynomial k = Polynomial::variable("k");
  Polynomial inner = (N - k - Polynomial(1)) * (N - k - Polynomial(1));
  Polynomial vol = sum_over(inner, "k", Polynomial(0), N - Polynomial(1));
  // Exact: N^3/3 - N^2/2 + N/6.
  EXPECT_DOUBLE_EQ(vol.eval({{"N", 10.0}}), 285.0);
  EXPECT_EQ(vol.leading_terms(),
            Polynomial(Rational(1, 3)) * N * N * N);
}

}  // namespace
}  // namespace soap::sym
