#include "support/rational.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace soap {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2), Rational(2));
  EXPECT_GT(Rational(7, 3), Rational(2));
}

TEST(Rational, IntegerPow) {
  EXPECT_EQ(Rational(2, 3).pow(3), Rational(8, 27));
  EXPECT_EQ(Rational(2).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-2), Rational(1, 4));
  EXPECT_THROW(testing::sink(Rational(0).pow(-1)), std::domain_error);
}

TEST(Rational, Floor) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(4).floor(), 4);
}

TEST(Rational, NthRoot) {
  Rational out;
  EXPECT_TRUE(Rational(8, 27).nth_root(3, &out));
  EXPECT_EQ(out, Rational(2, 3));
  EXPECT_TRUE(Rational(1, 4).nth_root(2, &out));
  EXPECT_EQ(out, Rational(1, 2));
  EXPECT_FALSE(Rational(2).nth_root(2, &out));
  EXPECT_FALSE(Rational(-8).nth_root(3, &out));  // sign unsupported
}

TEST(Rational, ToIntChecks) {
  EXPECT_EQ(Rational(5).to_int(), 5);
  EXPECT_THROW(testing::sink(Rational(1, 2).to_int()), std::logic_error);
}

TEST(Rational, StrRendering) {
  EXPECT_EQ(Rational(1, 2).str(), "1/2");
  EXPECT_EQ(Rational(-3).str(), "-3");
  EXPECT_EQ(Rational(0).str(), "0");
}

TEST(Rational, OverflowDetected) {
  Rational big(int128(1) << 100, 1);
  EXPECT_THROW(big * big, OverflowError);
}

TEST(Rationalize, RecoversSimpleFractions) {
  EXPECT_EQ(rationalize(0.125, 1000), Rational(1, 8));
  EXPECT_EQ(rationalize(-0.3333333333333, 1000), Rational(-1, 3));
  EXPECT_EQ(rationalize(2.0, 1000), Rational(2));
}

TEST(RationalizeWithin, PrefersSmallestDenominator) {
  Rational out;
  ASSERT_TRUE(rationalize_within(0.5000004, 1e-5, 1000000, &out));
  EXPECT_EQ(out, Rational(1, 2));
  ASSERT_TRUE(rationalize_within(1.0 / 2048.0, 1e-8, 1000000, &out));
  EXPECT_EQ(out, Rational(1, 2048));
  // Far from any small fraction within a tight tolerance.
  EXPECT_TRUE(rationalize_within(0.7071067811865476, 1e-12, 10, &out) == false);
}

class RationalRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RationalRoundTrip, DoubleRationalizeRoundTrips) {
  int p = GetParam();
  for (int q = 1; q <= 12; ++q) {
    Rational r(p, q);
    Rational back = rationalize(r.to_double(), 100000);
    EXPECT_EQ(back, r) << p << "/" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallNumerators, RationalRoundTrip,
                         ::testing::Range(-12, 13));

TEST(Int128Str, LargeValues) {
  int128 v = int128(1) << 100;
  EXPECT_EQ(int128_str(v), "1267650600228229401496703205376");
  EXPECT_EQ(int128_str(-v), "-1267650600228229401496703205376");
  EXPECT_EQ(int128_str(0), "0");
}

TEST(Gcd128, Basics) {
  EXPECT_EQ(gcd128(12, 18), 6);
  EXPECT_EQ(gcd128(-12, 18), 6);
  EXPECT_EQ(gcd128(0, 7), 7);
}

}  // namespace
}  // namespace soap
