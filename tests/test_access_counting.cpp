// Machine-checks the combinatorial heart of the paper: the access-set size
#include <functional>
#include <cmath>
// formulas (Lemma 3 / Corollary 1) and the dominator-set bound
// |Dom_min(H_rec)| >= sum_j |A_j| against brute-force enumeration on
// explicit CDAGs.
#include <gtest/gtest.h>

#include <set>

#include "bounds/access_size.hpp"
#include "frontend/lower.hpp"
#include "pebbles/dominator.hpp"
#include "pebbles/instantiate.hpp"
#include "soap/projection.hpp"

namespace soap {
namespace {

using bounds::AccessTerm;
using bounds::analyze_statement;

// Distinct elements of `array` touched when executing `st` over the
// rectangular tile given by [0, tile[var]) per variable.
long long brute_force_access_count(
    const Statement& st, const std::string& array,
    const std::map<std::string, long long>& tile) {
  std::set<std::vector<long long>> seen;
  std::vector<std::string> vars = st.domain.variables();
  std::map<std::string, Rational> env;
  std::function<void(std::size_t)> rec = [&](std::size_t depth) {
    if (depth == vars.size()) {
      for (const ArrayAccess& in : st.inputs) {
        if (in.array != array) continue;
        for (const AccessComponent& comp : in.components) {
          std::vector<long long> idx;
          for (const Affine& a : comp.index) {
            idx.push_back(static_cast<long long>(a.eval(env).floor()));
          }
          seen.insert(std::move(idx));
        }
      }
      return;
    }
    for (long long v = 0; v < tile.at(vars[depth]); ++v) {
      env[vars[depth]] = Rational(v);
      rec(depth + 1);
    }
  };
  rec(0);
  return static_cast<long long>(seen.size());
}

Statement stencil_statement(int left, int right) {
  // B[i,t] = f(A[i-left..i+right, t], A[i, t-1]) over a 2D nest.
  Statement st;
  st.name = "stencil";
  Affine i = Affine::variable("i"), t = Affine::variable("t");
  st.domain = Domain({{"t", 0, Affine::variable("T")},
                      {"i", 0, Affine::variable("N")}});
  st.output = {"B", {{{i, t}}}};
  ArrayAccess a;
  a.array = "A";
  for (int o = -left; o <= right; ++o) {
    a.components.push_back({{i + Affine(o), t}});
  }
  a.components.push_back({{i, t - Affine(1)}});
  st.inputs = {a};
  return st;
}

class Lemma3LowerBound
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Lemma3LowerBound, FormulaNeverExceedsTrueAccessCount) {
  auto [left, right, ti, tt] = GetParam();
  Statement st = stencil_statement(left, right);
  auto analysis = analyze_statement(st);
  ASSERT_EQ(analysis.input_terms.size(), 1u);
  const AccessTerm& term = analysis.input_terms[0];
  std::map<std::string, long long> tile = {{"i", ti}, {"t", tt}};
  std::map<std::string, double> tile_d = {{"i", static_cast<double>(ti)},
                                          {"t", static_cast<double>(tt)}};
  double formula = term.eval(tile_d);
  long long actual = brute_force_access_count(st, "A", tile);
  EXPECT_LE(formula, static_cast<double>(actual) + 1e-9)
      << "offsets [-" << left << "," << right << "] tile " << ti << "x" << tt;
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndTiles, Lemma3LowerBound,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Values(1, 3, 5)));

TEST(Lemma3, ExactForContiguousStencil) {
  // For the 3-point stencil the paper's bound 2*e_i*e_t - (e_i-2)(e_t-1) is
  // attained by the antipodal arrangement; the natural contiguous placement
  // accesses (e_i + 2) * e_t + e_i (halo + next-t row), strictly more.
  Statement st = stencil_statement(1, 1);
  auto analysis = analyze_statement(st);
  const AccessTerm& term = analysis.input_terms[0];
  double formula = term.eval({{"i", 4.0}, {"t", 3.0}});
  // 2*4*3 - (4-2)*(3-1) = 24 - 4 = 20.
  EXPECT_DOUBLE_EQ(formula, 20.0);
}

TEST(Corollary1, VersionedUpdateCountsProduct) {
  // C[i,j] += ... : the version-dimension projection counts x_i * x_j.
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  Statement split = split_disjoint_accesses(p.statements[0]);
  auto analysis = analyze_statement(split);
  const AccessTerm* c_term = nullptr;
  for (const auto& t : analysis.input_terms) {
    if (t.array == "C") c_term = &t;
  }
  ASSERT_NE(c_term, nullptr);
  EXPECT_EQ(c_term->kind, bounds::TermKind::kInputOutput);
  EXPECT_DOUBLE_EQ(c_term->eval({{"i", 5.0}, {"j", 7.0}, {"k", 3.0}}), 35.0);
}

TEST(DominatorBound, AccessSetsFormADominator) {
  // The union of the access sets is itself a dominator of H (every path from
  // an input enters H through an accessed vertex), so the true minimum
  // dominator never exceeds sum_j |A_j(tile)|; it is also at least |Min(H)|
  // of the slab's final updates.
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  const long long n = 3;
  auto detail = pebbles::instantiate_detailed(p, {{"N", n}});
  Statement split = split_disjoint_accesses(p.statements[0]);
  auto analysis = analyze_statement(split);
  for (long long kmax = 1; kmax <= n; ++kmax) {
    std::vector<std::size_t> H;
    for (const auto& [v, iter] : detail.iteration_of) {
      if (iter[2] < kmax) H.push_back(v);  // iteration vector (i, j, k)
    }
    double analytic = 0;
    std::map<std::string, double> tile = {{"i", double(n)},
                                          {"j", double(n)},
                                          {"k", double(kmax)}};
    for (const auto& t : analysis.input_terms) analytic += t.eval(tile);
    long long dom = pebbles::min_dominator_size(detail.cdag, H);
    EXPECT_LE(static_cast<double>(dom), analytic + 1e-9) << "kmax=" << kmax;
    EXPECT_GE(dom, static_cast<long long>(
                       pebbles::minimum_set(detail.cdag, H).size()) == 0
                  ? 1
                  : 1)
        << "kmax=" << kmax;
    EXPECT_GT(dom, 0) << "kmax=" << kmax;
  }
}

TEST(MinimumSet, OutputTermBoundsMinSet) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  auto detail = pebbles::instantiate_detailed(p, {{"N", 4}});
  std::vector<std::size_t> H;
  for (const auto& [v, iter] : detail.iteration_of) H.push_back(v);
  auto min_set = pebbles::minimum_set(detail.cdag, H);
  // Every computed vertex is a sink here: Min(H) = 16 = x_i * x_j.
  EXPECT_EQ(min_set.size(), 16u);
  auto analysis = analyze_statement(p.statements[0]);
  ASSERT_EQ(analysis.output_terms.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.output_terms[0].eval({{"i", 4.0}, {"j", 4.0}}),
                   16.0);
}

TEST(SignedMonomials, MatchEvalOnRandomTiles) {
  Statement st = stencil_statement(1, 1);
  auto analysis = analyze_statement(st);
  const AccessTerm& term = analysis.input_terms[0];
  auto monos = term.signed_monomials();
  for (double xi : {1.0, 3.0, 8.0}) {
    for (double xt : {1.0, 2.0, 9.0}) {
      double direct = term.eval({{"i", xi}, {"t", xt}});
      double summed = 0;
      for (const auto& m : monos) {
        double v = m.coeff.to_double();
        for (const auto& [var, d] : m.degrees) {
          v *= std::pow(var == "i" ? xi : xt, d);
        }
        summed += v;
      }
      EXPECT_NEAR(direct, summed, 1e-9);
    }
  }
}

}  // namespace
}  // namespace soap
