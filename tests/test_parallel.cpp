// The parallel-execution subsystem (support/thread_pool.*, support/
// parallel.*): coverage, determinism of index-slotted collection, the
// serial fallback, exception propagation, nested use on a starved pool,
// and thread-count resolution.  Labeled `parallel` so the TSan CI job can
// select exactly the suites that exercise concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/executor.hpp"
#include "support/parallel.hpp"
#include "support/thread_pool.hpp"

namespace soap::support {
namespace {

ParallelOptions with_threads(std::size_t threads, std::size_t grain = 1,
                             Executor* executor = nullptr) {
  ParallelOptions opt;
  opt.threads = threads;
  opt.grain = grain;
  if (executor != nullptr) opt.executor = ExecutorRef(*executor);
  return opt;
}

TEST(ThreadPool, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ReportsItsSizeAsExecutorConcurrency) {
  ThreadPool pool(3);
  Executor& executor = pool;
  EXPECT_EQ(executor.concurrency(), 3u);
}

TEST(SerialExecutorTest, RunsSubmittedTasksInlineAndReportsZeroConcurrency) {
  SerialExecutor executor;
  EXPECT_EQ(executor.concurrency(), 0u);
  std::thread::id ran_on{};
  executor.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(SerialExecutorTest, ForcesParallelForOntoTheCallingThread) {
  // concurrency() == 0 means no helpers are ever submitted: even with a
  // large thread budget the loop runs inline on the caller.
  std::set<std::thread::id> ids;
  ParallelOptions opt;
  opt.threads = 8;
  opt.executor = ExecutorRef::serial();
  parallel_for(100, opt, [&](std::size_t) {
    ids.insert(std::this_thread::get_id());  // no lock: must be serial
  });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ExecutorRefTest, DefaultResolvesToTheGlobalPool) {
  ExecutorRef ref;
  EXPECT_EQ(&ref.get(), &ThreadPool::global());
  EXPECT_GE(ref.concurrency(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++count == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return count == kTasks; }));
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
  }  // join: every submitted task must have run
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, with_threads(8),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, GrainSizedChunksCoverEverything) {
  constexpr std::size_t kN = 1237;  // deliberately not a grain multiple
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, with_threads(4, /*grain=*/64),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialFallbackStaysOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  parallel_for(100, with_threads(1), [&](std::size_t) {
    ids.insert(std::this_thread::get_id());  // no lock: must be single-threaded
  });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ParallelFor, SingleChunkBypassesPool) {
  // n <= grain is one chunk: runs inline even with a large thread budget.
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  parallel_for(50, with_threads(8, /*grain=*/64),
               [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  bool called = false;
  parallel_for(0, with_threads(8), [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ThreadsZeroResolvesAndCompletes) {
  EXPECT_EQ(resolve_threads(0), ThreadPool::hardware_threads());
  EXPECT_EQ(resolve_threads(3), 3u);
  std::atomic<std::size_t> sum{0};
  parallel_for(1000, with_threads(0),
               [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ParallelMap, IndexSlottedResultsAreDeterministic) {
  auto square = [](std::size_t i) { return i * i; };
  auto serial = parallel_map<std::size_t>(512, with_threads(1), square);
  for (std::size_t threads : {2u, 4u, 8u}) {
    auto parallel = parallel_map<std::size_t>(512, with_threads(threads),
                                              square);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ParallelMap, WorksWithNonDefaultConstructibleResults) {
  struct NoDefault {
    explicit NoDefault(std::size_t v) : value(v) {}
    std::size_t value;
  };
  auto out = parallel_map<NoDefault>(
      100, with_threads(4), [](std::size_t i) { return NoDefault(2 * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, 2 * i);
  }
}

TEST(ParallelFor, ExceptionPropagatesFromSerialPath) {
  EXPECT_THROW(parallel_for(10, with_threads(1),
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ExceptionPropagatesFromWorkers) {
  for (int round = 0; round < 10; ++round) {
    try {
      parallel_for(1000, with_threads(8), [](std::size_t i) {
        if (i == 637) throw std::runtime_error("worker failure");
      });
      FAIL() << "expected the worker exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "worker failure");
    }
  }
}

TEST(ParallelFor, LowestObservedFailureWins) {
  // Serial path: deterministic first failure.
  try {
    parallel_for(100, with_threads(1), [](std::size_t i) {
      if (i % 10 == 7) throw std::runtime_error("i=" + std::to_string(i));
    });
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "i=7");
  }
  // Parallel path: some failing index's exception must surface.
  try {
    parallel_for(100, with_threads(8), [](std::size_t i) {
      if (i % 10 == 7) throw std::runtime_error("i=" + std::to_string(i));
    });
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).substr(0, 2), "i=");
  }
}

TEST(ParallelFor, NestedOnStarvedPoolDoesNotDeadlock) {
  // A 1-worker pool cannot run outer helpers and inner helpers at once; the
  // caller-participates design must still finish (queued helpers wake up
  // late and no-op).  A deadlock shows up as the CTest timeout.
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  parallel_for(8, with_threads(4, 1, &pool), [&](std::size_t) {
    parallel_for(8, with_threads(4, 1, &pool),
                 [&](std::size_t j) { total.fetch_add(j); });
  });
  EXPECT_EQ(total.load(), 8u * (8u * 7u / 2));
}

TEST(ParallelFor, NestedSubmitFromWorkerTask) {
  // submit() from inside a running task must enqueue without blocking.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  int inner_ran = 0;
  pool.submit([&] {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++inner_ran;
      cv.notify_all();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return inner_ran == 1; }));
}

TEST(ParallelFor, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(4, with_threads(2, 1, &pool),
                   [&](std::size_t) {
                     parallel_for(4, with_threads(2, 1, &pool),
                                  [](std::size_t j) {
                                    if (j == 2) {
                                      throw std::logic_error("inner");
                                    }
                                  });
                   }),
      std::logic_error);
}

TEST(ParallelFor, StressManyRoundsOnSharedGlobalPool) {
  // Churn the global pool from repeated loops; TSan chews on this one.
  std::size_t expected = 0;
  std::atomic<std::size_t> sum{0};
  for (std::size_t round = 0; round < 50; ++round) {
    parallel_for(200, with_threads(1 + round % 8),
                 [&](std::size_t i) { sum.fetch_add(i * round); });
    expected += (200u * 199u / 2) * round;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, ConcurrentParallelForsFromManyThreads) {
  // Several caller threads using the global pool at once.
  std::vector<std::thread> callers;
  std::atomic<std::size_t> sum{0};
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      parallel_for(500, with_threads(4),
                   [&](std::size_t i) { sum.fetch_add(i); });
    });
  }
  for (std::thread& c : callers) c.join();
  EXPECT_EQ(sum.load(), 4u * (500u * 499u / 2));
}

}  // namespace
}  // namespace soap::support
