#include "frontend/lower.hpp"

#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "support/cancel.hpp"

namespace soap::frontend {
namespace {

TEST(Lexer, TokenizesOperatorsAndNumbers) {
  auto toks = tokenize("A[i,j] += 2 * B[i-1][j]", false);
  ASSERT_GT(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "A");
}

TEST(Lexer, PythonIndentation) {
  auto toks = tokenize("for i in range(N):\n  x[i] = y[i]\n", true);
  bool has_indent = false, has_dedent = false;
  for (const auto& t : toks) {
    has_indent |= t.kind == TokenKind::kIndent;
    has_dedent |= t.kind == TokenKind::kDedent;
  }
  EXPECT_TRUE(has_indent);
  EXPECT_TRUE(has_dedent);
}

TEST(Lexer, StripsComments) {
  auto toks = tokenize("x[i] = y[i]  # comment with ! weird chars", true);
  for (const auto& t : toks) EXPECT_NE(t.text, "#");
}

TEST(Lexer, LanguageDetection) {
  EXPECT_TRUE(looks_like_c("for (int i = 0; i < N; i++) x[i] = y[i];"));
  EXPECT_FALSE(looks_like_c("for i in range(N):\n  x[i] = y[i]\n"));
}

TEST(Parser, PythonLoopNest) {
  auto ast = parse_python(R"(
for i in range(N):
  for j in range(1, M):
    C[i,j] += A[i,j] * 0.5
)");
  ASSERT_EQ(ast.size(), 1u);
  EXPECT_EQ(ast[0]->loop_var, "i");
  ASSERT_EQ(ast[0]->body.size(), 1u);
  EXPECT_EQ(ast[0]->body[0]->loop_var, "j");
}

TEST(Parser, CStyleLoops) {
  auto ast = parse_c(R"(
for (int i = 0; i < N; i++) {
  for (int j = 1; j <= M; j++)
    C[i][j] = A[i][j] + B[j];
}
)");
  ASSERT_EQ(ast.size(), 1u);
  const auto& inner = ast[0]->body[0];
  EXPECT_EQ(inner->loop_var, "j");
  // j <= M becomes range(1, M+1).
  EXPECT_EQ(inner->upper->op, "+");
}

TEST(Parser, ReportsSyntaxErrorsWithLocation) {
  EXPECT_THROW(parse_python("for i in range(:\n  x[i] = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_c("for (i = 0; j < N; i++) x[i] = 1;"),
               std::runtime_error);
}

TEST(Lower, UpdateOperatorAddsOutputAsInput) {
  Program p = parse_program("for i in range(N):\n  x[i] += y[i]\n");
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_TRUE(p.statements[0].updates_output());
}

TEST(Lower, PlainAssignReadingOutputDetected) {
  Program p = parse_program("for i in range(N):\n  x[i] = x[i] + y[i]\n");
  EXPECT_TRUE(p.statements[0].updates_output());
}

TEST(Lower, MergesAccessesPerArray) {
  Program p = parse_program(
      "for i in range(1, N):\n  b[i] = a[i-1] + a[i] + a[i+1]\n");
  ASSERT_EQ(p.statements[0].inputs.size(), 1u);
  EXPECT_EQ(p.statements[0].inputs[0].components.size(), 3u);
}

TEST(Lower, DeduplicatesRepeatedReferences) {
  Program p = parse_program("for i in range(N):\n  b[i] = a[i] * a[i]\n");
  EXPECT_EQ(p.statements[0].inputs[0].components.size(), 1u);
}

TEST(Lower, AffineSubscripts) {
  Program p = parse_program(
      "for i in range(N):\n  for j in range(N):\n    b[i] = a[2*i - j + 3]\n");
  const Affine& idx = p.statements[0].inputs[0].components[0].index[0];
  EXPECT_EQ(idx.coeff("i"), Rational(2));
  EXPECT_EQ(idx.coeff("j"), Rational(-1));
  EXPECT_EQ(idx.constant(), Rational(3));
}

TEST(Lower, RejectsNonAffineSubscripts) {
  EXPECT_THROW(parse_program("for i in range(N):\n  b[i] = a[i*i]\n"),
               std::runtime_error);
}

// What the diagnostic says matters as much as that it throws: every
// frontend error is an AnalysisError{kInvalidInput} carrying line:column
// and the offending token/expression, so a user can find the problem in a
// multi-statement source without bisecting it.
TEST(Lower, DiagnosticCarriesPositionAndOffendingExpression) {
  try {
    parse_program("for i in range(N):\n  b[i] = a[i*i]\n");
    FAIL() << "expected a lowering error";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kInvalidInput);
    const std::string msg = e.what();
    // The subscript i*i starts at line 2; the '*' operator is the node the
    // lowering rejects.
    EXPECT_NE(msg.find("2:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("i*i"), std::string::npos) << msg;
    EXPECT_NE(msg.find("non-affine product"), std::string::npos) << msg;
  }
}

TEST(Lower, DiagnosticPointsAtNonAffineLoopBound) {
  try {
    parse_program("for i in range(N):\n  for j in range(N*i):\n"
                  "    b[i] = a[j]\n");
    FAIL() << "expected a lowering error";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kInvalidInput);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("N*i"), std::string::npos) << msg;
  }
}

TEST(Parser, SyntaxErrorIsInvalidInputWithPosition) {
  try {
    parse_python("for i in range(:\n  x[i] = 1\n");
    FAIL() << "expected a parse error";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kInvalidInput);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("near"), std::string::npos) << msg;
  }
}

TEST(Lexer, BadCharacterIsInvalidInputWithPosition) {
  try {
    tokenize("x[i] = y @ z", false);
    FAIL() << "expected a lex error";
  } catch (const support::AnalysisError& e) {
    EXPECT_EQ(e.code(), support::StatusCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("1:10"), std::string::npos)
        << e.what();
  }
}

TEST(Lower, CallsAreTransparent) {
  Program p = parse_program(
      "for i in range(N):\n  b[i] = max(a[i], exp(c[i]))\n");
  EXPECT_EQ(p.statements[0].inputs.size(), 2u);
}

TEST(Lower, MultipleStatementsShareNothing) {
  Program p = parse_program(R"(
for i in range(N):
  t[i] = a[i]
for i in range(N):
  u[i] = t[i]
)");
  ASSERT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.statements[0].name, "St1");
  EXPECT_EQ(p.statements[1].name, "St2");
  EXPECT_EQ(p.input_arrays(), std::vector<std::string>{"a"});
}

TEST(Lower, DataDependentGatherCollapsesAndChargesIndexArray) {
  // x[colind[i,k]] is a data-dependent read: the subscript collapses to the
  // single representative location (affine 0 — the adversarial maximal-
  // reuse case, sound for lower bounds) and the index array colind becomes
  // an ordinary affine read charged in full.
  Program p = parse_program(
      "for i in range(M):\n  for k in range(K):\n"
      "    y[i] += val[i,k] * x[colind[i,k]]\n");
  ASSERT_EQ(p.statements.size(), 1u);
  const Statement& st = p.statements[0];
  ASSERT_TRUE(st.reads("val"));
  ASSERT_TRUE(st.reads("colind"));
  ASSERT_TRUE(st.reads("x"));
  const ArrayAccess* colind = st.input_for("colind");
  ASSERT_EQ(colind->components.size(), 1u);
  EXPECT_EQ(colind->components[0].index[0].coeff("i"), Rational(1));
  EXPECT_EQ(colind->components[0].index[1].coeff("k"), Rational(1));
  const ArrayAccess* x = st.input_for("x");
  ASSERT_EQ(x->components.size(), 1u);
  ASSERT_EQ(x->components[0].index.size(), 1u);
  EXPECT_TRUE(x->components[0].index[0].is_constant());
  EXPECT_EQ(x->components[0].index[0].constant(), Rational(0));
}

TEST(Lower, DataDependentScatterReadsItsIndexArray) {
  // A data-dependent *store* collapses the same way, and its index array is
  // read even under a plain `=` (the address must be computed).
  Program p = parse_program(
      "for k in range(NNZ):\n  y[rowind[k]] = val[k]\n");
  const Statement& st = p.statements[0];
  EXPECT_EQ(st.output.array, "y");
  ASSERT_EQ(st.output.components.size(), 1u);
  EXPECT_TRUE(st.output.components[0].index[0].is_constant());
  EXPECT_TRUE(st.reads("rowind"));
  EXPECT_TRUE(st.reads("val"));
}

TEST(Lower, NonAffineLoopBoundsStillRejected) {
  // The collapse applies to subscripts only; a data-dependent loop bound
  // (CSR row-pointer iteration) remains a lowering error.
  EXPECT_THROW(
      parse_program("for i in range(M):\n  for k in range(row[i]):\n"
                    "    y[i] += val[k]\n"),
      std::runtime_error);
}

TEST(Lower, ScalarsIgnored) {
  Program p = parse_program(
      "for i in range(N):\n  b[i] = alpha * a[i] + beta\n");
  ASSERT_EQ(p.statements[0].inputs.size(), 1u);
  EXPECT_EQ(p.statements[0].inputs[0].array, "a");
}

}  // namespace
}  // namespace soap::frontend
