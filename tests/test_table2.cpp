// Golden reproduction of Table 2: every one of the paper's 38 applications,
// analyzed end-to-end (source text -> SOAP -> SDG -> bound), must produce the
// expected leading-order term.  EXPERIMENTS.md documents the three rows where
// our engine's constant deliberately differs from the published one
// (fdtd2d, adi, lenet5) — the expectation below is this implementation's
// value; the bench prints both side by side.
#include <gtest/gtest.h>

#include "kernels/table2.hpp"
#include "sym_matchers.hpp"
#include "symbolic/expr.hpp"
#include "table2_golden.hpp"

namespace soap::kernels {
namespace {

class Table2 : public ::testing::TestWithParam<std::string> {};

TEST_P(Table2, ReproducesExpectedBound) {
  const KernelEntry& k = kernel_by_name(GetParam());
  sym::Expr got = analyze_kernel(k);
  EXPECT_SYM_EQ(got, k.expected_bound) << k.name;
}

TEST_P(Table2, BoundIsSoundAgainstPaperRow) {
  // Where our constant differs from the paper's, it must still be a valid
  // lower bound statement: we never claim more than twice the published
  // value without a documented reason, and never less than 1/4 of it
  // (leading order, large sizes, S = 2^20).
  const KernelEntry& k = kernel_by_name(GetParam());
  sym::Expr got = analyze_kernel(k);
  std::map<std::string, double> env;
  for (const std::string& s : got.symbols()) env[s] = 1e6;
  for (const std::string& s : k.paper_bound.symbols()) env[s] = 1e6;
  env["S"] = static_cast<double>(1 << 20);
  double ours = got.eval(env);
  double paper = k.paper_bound.eval(env);
  EXPECT_GE(ours, paper / 4.0) << k.name;
  EXPECT_LE(ours, paper * 4.0) << k.name;
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& k : table2_kernels()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApplications, Table2,
                         ::testing::ValuesIn(all_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(Table2Corpus, HasAll38Applications) {
  EXPECT_EQ(table2_kernels().size(), 38u);
  int polybench = 0, neural = 0, various = 0;
  for (const auto& k : table2_kernels()) {
    polybench += k.category == "polybench";
    neural += k.category == "neural";
    various += k.category == "various";
  }
  EXPECT_EQ(polybench, 30);
  EXPECT_EQ(neural, 5);
  EXPECT_EQ(various, 3);
}

TEST(Table2Corpus, ProgramsParseAndAreWellFormed) {
  for (const auto& k : table2_kernels()) {
    Program p = k.build();
    EXPECT_FALSE(p.statements.empty()) << k.name;
    for (const Statement& st : p.statements) {
      EXPECT_FALSE(st.output.array.empty()) << k.name;
      EXPECT_GT(st.domain.depth(), 0u) << k.name;
    }
  }
}

// The golden rows are transcribed from the published table independently of
// the corpus encoding in src/kernels, so a drift in either the encoding or
// the analyzer fails here even if both test expectations above were
// regenerated together.
TEST(Table2Corpus, MatchesIndependentGoldenRows) {
  for (const auto& row : soap::testing::table2_golden_rows()) {
    const KernelEntry& k = kernel_by_name(row.name);
    EXPECT_SYM_EQ(k.paper_bound, row.paper_bound) << row.name;
    EXPECT_SYM_EQ(analyze_kernel(k), row.paper_bound) << row.name;
  }
}

TEST(Table2Corpus, LookupByName) {
  EXPECT_EQ(kernel_by_name("gemm").category, "polybench");
  EXPECT_THROW(kernel_by_name("nonexistent"), std::out_of_range);
}

}  // namespace
}  // namespace soap::kernels
