// Golden reproduction of the registered corpus: every one of the paper's
// 38 Table 2 applications plus the post-paper families (attention,
// sparse_stencil), analyzed end-to-end (source text -> SOAP -> SDG ->
// bound), must produce the expected leading-order term.  EXPERIMENTS.md
// documents the three rows where our engine's constant deliberately
// differs from the published one (fdtd2d, adi, lenet5) — the expectation
// below is this implementation's value; the bench prints both side by
// side.
#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "kernels/table2.hpp"
#include "sym_matchers.hpp"
#include "symbolic/expr.hpp"
#include "table2_golden.hpp"

namespace soap::kernels {
namespace {

class Corpus : public ::testing::TestWithParam<std::string> {};

TEST_P(Corpus, ReproducesExpectedBound) {
  const KernelEntry& k = kernel_by_name(GetParam());
  sym::Expr got = analyze_kernel(k);
  EXPECT_SYM_EQ(got, k.expected_bound) << k.name;
}

TEST_P(Corpus, BoundIsSoundAgainstReferenceRow) {
  // Where our constant differs from the reference (the paper's row for the
  // Table 2 families, the recorded closed form for the new ones), it must
  // still be a valid lower bound statement: we never claim more than four
  // times the reference value without a documented reason, and never less
  // than 1/4 of it (leading order, large sizes, S = 2^20).
  const KernelEntry& k = kernel_by_name(GetParam());
  sym::Expr got = analyze_kernel(k);
  std::map<std::string, double> env;
  for (const std::string& s : got.symbols()) env[s] = 1e6;
  for (const std::string& s : k.paper_bound.symbols()) env[s] = 1e6;
  env["S"] = static_cast<double>(1 << 20);
  double ours = got.eval(env);
  double paper = k.paper_bound.eval(env);
  EXPECT_GE(ours, paper / 4.0) << k.name;
  EXPECT_LE(ours, paper * 4.0) << k.name;
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& k : Registry::instance().kernels()) {
    names.push_back(k.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApplications, Corpus,
                         ::testing::ValuesIn(all_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(Table2Corpus, HasAll38PublishedApplications) {
  // The original Table 2 blocks, untouched by registry growth: 38 rows in
  // published order, never a new-family kernel among them.
  std::vector<const KernelEntry*> rows = table2_kernels();
  EXPECT_EQ(rows.size(), 38u);
  int polybench = 0, neural = 0, various = 0;
  for (const KernelEntry* k : rows) {
    polybench += k->family == "polybench";
    neural += k->family == "neural";
    various += k->family == "various";
  }
  EXPECT_EQ(polybench, 30);
  EXPECT_EQ(neural, 5);
  EXPECT_EQ(various, 3);
  EXPECT_EQ(rows.front()->name, "gemm");
  EXPECT_EQ(rows.back()->name, "vertical_advection");
}

TEST(Table2Corpus, RegistryGrowsTheCorpusBeyondTable2) {
  const Registry& registry = Registry::instance();
  EXPECT_GE(registry.size(), 43u);
  EXPECT_EQ(registry.family("attention").size(), 3u);
  EXPECT_EQ(registry.family("sparse_stencil").size(), 2u);
  // Families enumerate in rank order, the published blocks first.
  std::vector<std::string> families = registry.families();
  ASSERT_GE(families.size(), 5u);
  EXPECT_EQ(families[0], "polybench");
  EXPECT_EQ(families[1], "neural");
  EXPECT_EQ(families[2], "various");
  EXPECT_EQ(families[3], "attention");
  EXPECT_EQ(families[4], "sparse_stencil");
}

TEST(Table2Corpus, ProgramsParseAndAreWellFormed) {
  for (const auto& k : Registry::instance().kernels()) {
    Program p = k.build();
    EXPECT_FALSE(p.statements.empty()) << k.name;
    for (const Statement& st : p.statements) {
      EXPECT_FALSE(st.output.array.empty()) << k.name;
      EXPECT_GT(st.domain.depth(), 0u) << k.name;
    }
  }
}

// The golden rows are transcribed from the published table (and, for the
// post-paper families, from the closed-form references recorded when the
// kernels were added) independently of the corpus encoding in src/kernels,
// so a drift in either the encoding or the analyzer fails here even if
// both test expectations above were regenerated together.
TEST(Table2Corpus, MatchesIndependentGoldenRows) {
  for (const auto& row : soap::testing::table2_golden_rows()) {
    const KernelEntry& k = kernel_by_name(row.name);
    EXPECT_SYM_EQ(k.paper_bound, row.paper_bound) << row.name;
    EXPECT_SYM_EQ(analyze_kernel(k), row.paper_bound) << row.name;
  }
}

TEST(Table2Corpus, LookupByName) {
  EXPECT_EQ(kernel_by_name("gemm").family, "polybench");
  EXPECT_EQ(kernel_by_name("flash_attention").family, "attention");
  EXPECT_THROW(kernel_by_name("nonexistent"), std::out_of_range);
}

}  // namespace
}  // namespace soap::kernels
