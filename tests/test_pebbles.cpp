#include <gtest/gtest.h>
#include <cmath>

#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"
#include "pebbles/dominator.hpp"
#include "pebbles/game.hpp"
#include "pebbles/heuristic.hpp"
#include "pebbles/instantiate.hpp"
#include "pebbles/optimal.hpp"
#include "pebbles/xpartition.hpp"

namespace soap::pebbles {
namespace {

Cdag chain(std::size_t n) {
  Cdag c;
  std::size_t prev = c.add_vertex("in");
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t v = c.add_vertex("v" + std::to_string(i));
    c.add_edge(prev, v);
    prev = v;
  }
  return c;
}

TEST(Game, ValidChainPebbling) {
  Cdag c = chain(3);
  std::vector<Move> moves = {{MoveType::kLoad, 0},
                             {MoveType::kCompute, 1},
                             {MoveType::kCompute, 2},
                             {MoveType::kStore, 2}};
  GameResult r = run_pebbling(c, 3, moves);
  ASSERT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.io_cost, 2);
  EXPECT_EQ(r.loads, 1);
  EXPECT_EQ(r.stores, 1);
}

TEST(Game, RejectsRuleViolations) {
  Cdag c = chain(3);
  // Compute without red parent.
  GameResult r1 = run_pebbling(c, 3, {{MoveType::kCompute, 1}});
  EXPECT_FALSE(r1.valid);
  // Load without a blue pebble.
  GameResult r2 = run_pebbling(c, 3, {{MoveType::kLoad, 1}});
  EXPECT_FALSE(r2.valid);
  // Exceeding the red budget.
  GameResult r3 = run_pebbling(
      c, 1, {{MoveType::kLoad, 0}, {MoveType::kCompute, 1}});
  EXPECT_FALSE(r3.valid);
  // Compute on an input vertex.
  GameResult r4 = run_pebbling(c, 3, {{MoveType::kCompute, 0}});
  EXPECT_FALSE(r4.valid);
}

TEST(Game, RequiresOutputsInSlowMemory) {
  Cdag c = chain(2);
  GameResult r =
      run_pebbling(c, 2, {{MoveType::kLoad, 0}, {MoveType::kCompute, 1}});
  EXPECT_FALSE(r.valid);  // output never stored
}

TEST(Optimal, ChainCostsOneLoadOneStore) {
  Cdag c = chain(6);
  auto r = optimal_pebbling(c, 2);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cost, 2);
}

TEST(Optimal, BinaryTreeReduction) {
  // Complete binary reduction of 4 inputs.
  Cdag c;
  std::vector<std::size_t> leaves;
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(c.add_vertex("in" + std::to_string(i)));
  }
  std::size_t l = c.add_vertex("l");
  std::size_t r = c.add_vertex("r");
  std::size_t root = c.add_vertex("root");
  c.add_edge(leaves[0], l);
  c.add_edge(leaves[1], l);
  c.add_edge(leaves[2], r);
  c.add_edge(leaves[3], r);
  c.add_edge(l, root);
  c.add_edge(r, root);
  // With S = 4 no spill is needed: 4 loads + 1 store.
  auto opt4 = optimal_pebbling(c, 4);
  ASSERT_TRUE(opt4);
  EXPECT_EQ(opt4->cost, 5);
  // With S = 3 the first internal node must be spilled and reloaded.
  auto opt3 = optimal_pebbling(c, 3);
  ASSERT_TRUE(opt3);
  EXPECT_EQ(opt3->cost, 7);
}

TEST(Optimal, MoreMemoryNeverHurts) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  Cdag c = instantiate(p, {{"N", 2}});
  long long prev = 1 << 30;
  for (std::size_t s : {3, 4, 6}) {
    auto r = optimal_pebbling(c, s);
    ASSERT_TRUE(r);
    EXPECT_LE(r->cost, prev);
    prev = r->cost;
  }
}

TEST(Sandwich, AnalyticLowerOptimalHeuristicUpper) {
  // The full chain the paper promises: analytic bound <= optimal pebbling
  // <= scheduled (Belady) pebbling, on a concrete gemm instance.
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  auto b = bounds::single_statement_bound(p.statements[0]);
  ASSERT_TRUE(b);
  Cdag c = instantiate(p, {{"N", 2}});
  const std::size_t S = 4;
  auto opt = optimal_pebbling(c, S);
  ASSERT_TRUE(opt);
  auto heur = natural_order_pebbling(c, S, Replacement::kBelady);
  GameResult replay = run_pebbling(c, S, heur.moves);
  ASSERT_TRUE(replay.valid) << replay.error;
  EXPECT_EQ(replay.io_cost, heur.io_cost);
  double analytic =
      b->Q.eval({{"N", 2.0}, {"S", static_cast<double>(S)}});
  EXPECT_LE(analytic, static_cast<double>(opt->cost) + 1e-9);
  EXPECT_LE(opt->cost, heur.io_cost);
}

TEST(Heuristic, LruNeverBeatsBelady) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  Cdag c = instantiate(p, {{"N", 3}});
  for (std::size_t s : {4, 6, 10}) {
    auto lru = natural_order_pebbling(c, s, Replacement::kLru);
    auto belady = natural_order_pebbling(c, s, Replacement::kBelady);
    EXPECT_TRUE(run_pebbling(c, s, lru.moves).valid);
    EXPECT_TRUE(run_pebbling(c, s, belady.moves).valid);
    EXPECT_LE(belady.io_cost, lru.io_cost) << "S=" << s;
  }
}

TEST(Heuristic, ThrowsWhenWorkingSetExceedsS) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  Cdag c = instantiate(p, {{"N", 2}});
  EXPECT_THROW(natural_order_pebbling(c, 3, Replacement::kLru),
               std::runtime_error);
}

TEST(Instantiate, VersionedVertices) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for k in range(N):
    acc[i] += x[i,k]
)");
  auto d = instantiate_detailed(p, {{"N", 2}});
  // 4 input reads (x) + 2 initial acc + 4 update versions = 10 vertices.
  EXPECT_EQ(d.cdag.size(), 10u);
  EXPECT_EQ(d.statement_vertices[0].size(), 4u);
  // Outputs: the final version of each acc element.
  EXPECT_EQ(d.cdag.outputs().size(), 2u);
}

TEST(Instantiate, BudgetEnforced) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  InstantiateOptions opt;
  opt.max_vertices = 10;
  EXPECT_THROW(instantiate(p, {{"N", 10}}, opt), std::length_error);
}

TEST(XPartition, ValidatesBudgetsAndAcyclicity) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)");
  auto d = instantiate_detailed(p, {{"N", 2}});
  // One part holding everything.
  std::vector<int> part(d.cdag.size(), -1);
  for (std::size_t v : d.statement_vertices[0]) part[v] = 0;
  auto ok = check_x_partition(d.cdag, part, 100);
  EXPECT_TRUE(ok.valid) << ok.reason;
  EXPECT_EQ(ok.parts, 1u);
  // Budget too small.
  auto tight = check_x_partition(d.cdag, part, 1);
  EXPECT_FALSE(tight.valid);
}

TEST(XPartition, DetectsCyclicParts) {
  // v0 -> v1 -> v2 with parts {v0, v2} and {v1} is acyclic; chain alternating
  // between two parts with a back-and-forth is cyclic.
  Cdag c;
  std::size_t in = c.add_vertex("in");
  std::size_t a = c.add_vertex("a");
  std::size_t b = c.add_vertex("b");
  std::size_t d = c.add_vertex("d");
  c.add_edge(in, a);
  c.add_edge(a, b);
  c.add_edge(b, d);
  auto res = check_x_partition(c, {-1, 0, 1, 0}, 10);
  EXPECT_FALSE(res.valid);
  auto res2 = check_x_partition(c, {-1, 0, 0, 1}, 10);
  EXPECT_TRUE(res2.valid) << res2.reason;
}

TEST(Dominator, MinSetAndDominatorOnGemm) {
  Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  auto d = instantiate_detailed(p, {{"N", 2}});
  std::vector<std::size_t> all = d.statement_vertices[0];
  // Min set: per (i,j), only the last update (k = 1) has no child in H.
  EXPECT_EQ(minimum_set(d.cdag, all).size(), 4u);
  long long dom = min_dominator_size(d.cdag, all);
  EXPECT_GE(dom, 4);   // at least the 4 final outputs' worth of cut
  EXPECT_LE(dom, 12);  // at most all program inputs
}

}  // namespace
}  // namespace soap::pebbles
