#!/usr/bin/env python3
"""Link-checks the repo's markdown docs.

Scans README.md and docs/*.md for markdown links and validates every
intra-repo target:

  * relative links must resolve to an existing file or directory
    (anchors `#...` are stripped; pure-anchor links are checked against
    the headings of the containing file);
  * absolute URLs (http/https/mailto) are skipped — CI must not depend
    on the network;
  * bare `file.md` references inside inline code spans are ignored.

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported as `file:line: target`).  Run from anywhere:

  python3 scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$")


def heading_anchor(text: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        m = HEADING_RE.match(line)
        if m:
            anchors.add(heading_anchor(m.group(1)))
    return anchors


def check_file(md: Path, repo: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(
        md.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                if anchor and heading_anchor(anchor) not in anchors_of(md):
                    errors.append(f"{md.relative_to(repo)}:{lineno}: #{anchor}")
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(repo)}:{lineno}: {target}")
                continue
            if anchor and resolved.suffix == ".md":
                if heading_anchor(anchor) not in anchors_of(resolved):
                    errors.append(
                        f"{md.relative_to(repo)}:{lineno}: {target} "
                        f"(missing anchor)"
                    )
    return errors


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    files = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    errors = []
    for md in files:
        errors.extend(check_file(md, repo))
    for e in errors:
        print(f"broken link: {e}", file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
