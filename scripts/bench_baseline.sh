#!/usr/bin/env bash
# Records the perf trajectory of the symbolic/analysis hot paths.
#
# Runs the google-benchmark binaries with --benchmark_format=json and writes
#   <out_dir>/BENCH_symbolic.json   (bench_symbolic_core)
#   <out_dir>/BENCH_analysis.json   (bench_analysis_perf)
#   <out_dir>/BENCH_sdg.json        (bench_sdg_scaling)
#   <out_dir>/BENCH_bound_cache.json (bench_bound_cache)
# so future PRs can diff their numbers against the committed baselines.
#
# Usage:
#   scripts/bench_baseline.sh [build_dir] [out_dir] [extra benchmark args...]
# Defaults: build_dir=build/release, out_dir=bench/baselines.
#
# Pass a --benchmark_filter=... as an extra arg for a quick smoke run, e.g.
#   scripts/bench_baseline.sh build/release /tmp/smoke --benchmark_filter=/4$
set -euo pipefail

build_dir="${1:-build/release}"
out_dir="${2:-bench/baselines}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found — configure and build first:" >&2
  echo "  cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

mkdir -p "$out_dir"

run() {
  local binary="$1" out="$2"
  shift 2
  if [[ ! -x "$bench_dir/$binary" ]]; then
    echo "skip: $binary not built (google-benchmark missing?)" >&2
    return 0
  fi
  echo "running $binary -> $out"
  "$bench_dir/$binary" --benchmark_format=json "$@" > "$out"
  # A filter matching no benchmark exits 0 but writes empty stdout; fail
  # loudly here instead of handing an empty JSON to whatever diffs it.
  if [[ ! -s "$out" ]]; then
    echo "error: $binary produced no output (benchmark filter matched nothing?)" >&2
    exit 1
  fi
}

run bench_symbolic_core "$out_dir/BENCH_symbolic.json" "$@"
run bench_analysis_perf "$out_dir/BENCH_analysis.json" "$@"
run bench_sdg_scaling "$out_dir/BENCH_sdg.json" "$@"
run bench_bound_cache "$out_dir/BENCH_bound_cache.json" "$@"

echo "baselines written to $out_dir/"
