#!/usr/bin/env python3
"""Diff fresh google-benchmark JSON against the committed baselines.

Reads one or more fresh ``--benchmark_format=json`` files and compares every
benchmark they share with the corresponding file in ``bench/baselines/``
(matched by filename: a fresh ``BENCH_symbolic.json`` diffs against the
baseline ``BENCH_symbolic.json``).  A benchmark regresses when

    fresh_time > baseline_time * (1 + tolerance)

Exits 1 if any compared benchmark regresses beyond tolerance, 2 if nothing
could be compared at all (wrong filter, empty files, disjoint names) so a
silently-vacuous CI gate fails loudly, and 0 otherwise.

Timings on shared CI runners are noisy; the default tolerance is therefore a
generous 50% — the gate exists to catch "accidentally quadratic", not a few
percent of scheduler jitter.  Tighten with --tolerance on quiet hardware.

Usage:
    scripts/bench_compare.py fresh/BENCH_symbolic.json [more.json ...] \
        [--baseline-dir bench/baselines] [--tolerance 0.5] \
        [--filter REGEX] [--metric real_time|cpu_time]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def load_benchmarks(path: Path, metric: str) -> dict[str, float]:
    """Maps benchmark name -> metric value, skipping aggregate rows."""
    with path.open() as f:
        data = json.load(f)
    out: dict[str, float] = {}
    for row in data.get("benchmarks", []):
        # Repetition aggregates (name_mean, name_stddev, ...) carry a
        # run_type of "aggregate"; plain runs either omit run_type or say
        # "iteration".
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        if name is None or metric not in row:
            continue
        out[name] = float(row[metric])
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="+", type=Path,
                        help="fresh --benchmark_format=json output file(s)")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path("bench/baselines"),
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative slowdown (0.5 == +50%%)")
    parser.add_argument("--filter", default="",
                        help="regex; only benchmark names matching it are "
                             "compared (default: all shared names)")
    parser.add_argument("--metric", default="real_time",
                        choices=["real_time", "cpu_time"],
                        help="which reported time to compare")
    args = parser.parse_args()

    name_re = re.compile(args.filter) if args.filter else None
    compared = 0
    regressions: list[str] = []

    for fresh_path in args.fresh:
        baseline_path = args.baseline_dir / fresh_path.name
        if not baseline_path.is_file():
            print(f"note: no baseline {baseline_path}, skipping "
                  f"{fresh_path.name}")
            continue
        fresh = load_benchmarks(fresh_path, args.metric)
        baseline = load_benchmarks(baseline_path, args.metric)
        for name in sorted(fresh.keys() & baseline.keys()):
            if name_re is not None and not name_re.search(name):
                continue
            old, new = baseline[name], fresh[name]
            ratio = new / old if old > 0 else float("inf")
            compared += 1
            verdict = "ok"
            if ratio > 1.0 + args.tolerance:
                verdict = "REGRESSION"
                regressions.append(name)
            print(f"{verdict:>10}  {name}: {old:.0f} -> {new:.0f} ns "
                  f"({(ratio - 1.0) * 100.0:+.1f}%)")

    if compared == 0:
        print("error: no benchmarks compared (empty files, missing "
              "baselines, or a filter that matched nothing)", file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"+{args.tolerance * 100:.0f}%: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"\n{compared} benchmark(s) within +{args.tolerance * 100:.0f}% "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
