#!/usr/bin/env bash
# Records the wall-clock scaling curve of the parallel analysis paths.
#
# Runs the thread sweeps of BM_SdgAnalysisChain and BM_Table2CorpusBatch
# (bench_sdg_scaling) and writes
#   <out_dir>/BENCH_scaling.json   raw google-benchmark JSON
#   <out_dir>/BENCH_scaling.md     speedup table (serial time / threaded time)
#
# The committed bench/baselines numbers were recorded on a ONE-hardware-thread
# container, where every /threads:N variant can only measure oversubscription
# overhead — the speedup column there is expected to hover around 1.0 or
# below.  To record a real curve, run this script on a quiet multicore host
# (see README.md "Benchmarks"); the markdown table makes the per-thread-count
# efficiency directly visible.
#
# Usage:
#   scripts/bench_scaling.sh [build_dir] [out_dir] [extra benchmark args...]
# Defaults: build_dir=build/release, out_dir=bench/scaling.
set -euo pipefail

build_dir="${1:-build/release}"
out_dir="${2:-bench/scaling}"
shift $(( $# > 2 ? 2 : $# )) || true

binary="$build_dir/bench/bench_sdg_scaling"
if [[ ! -x "$binary" ]]; then
  echo "error: $binary not found — configure and build first:" >&2
  echo "  cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

mkdir -p "$out_dir"
json="$out_dir/BENCH_scaling.json"
md="$out_dir/BENCH_scaling.md"

# The /threads:1 entry anchors the speedup column; the rest of the
# /threads:N sweep provides the curve.
filter='BM_SdgAnalysisChain/35/threads:[0-9]+$|BM_Table2CorpusBatch/threads:[0-9]+$'
echo "running bench_sdg_scaling thread sweeps -> $json"
"$binary" --benchmark_format=json "--benchmark_filter=$filter" "$@" > "$json"

python3 - "$json" "$md" <<'PY'
import json, re, sys

json_path, md_path = sys.argv[1], sys.argv[2]
rows = [b for b in json.load(open(json_path))["benchmarks"]
        if b.get("run_type") != "aggregate"]

def base_and_threads(name):
    m = re.match(r"(.*?)/threads:(\d+)$", name)
    if m:
        return m.group(1), int(m.group(2))
    return name, 1

families = {}
for row in rows:
    base, threads = base_and_threads(row["name"])
    families.setdefault(base, {})[threads] = row["real_time"]

lines = [
    "# Wall-clock scaling (bench_sdg_scaling)",
    "",
    "Speedup = serial real time / threaded real time.  Recorded by",
    "`scripts/bench_scaling.sh`; a 1-hardware-thread host pins every row",
    "near 1.0x or below (oversubscription) by construction.",
    "",
    "| benchmark | threads | real time (ms) | speedup |",
    "|---|---:|---:|---:|",
]
for base in sorted(families):
    curve = families[base]
    serial = curve.get(1)
    for threads in sorted(curve):
        t = curve[threads]
        speedup = f"{serial / t:.2f}x" if serial else "n/a"
        lines.append(f"| {base} | {threads} | {t / 1e6:.2f} | {speedup} |")
print("\n".join(lines), file=open(md_path, "w"))
print(f"speedup table written to {md_path}")
PY

cat "$md"
