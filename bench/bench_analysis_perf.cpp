// Experiment V-perf: end-to-end analysis latency per corpus application
// (google-benchmark), plus a per-backend sweep (docs/OPTIMIZER.md) so the
// cost of multistart's extra restarts and subplex's coordinate descent is
// tracked next to the default pipeline.
#include <benchmark/benchmark.h>

#include "bounds/opt/types.hpp"
#include "kernels/table2.hpp"

namespace {

void BM_AnalyzeKernel(benchmark::State& state, const std::string& name) {
  const auto& k = soap::kernels::kernel_by_name(name);
  for (auto _ : state) {
    auto bound = soap::kernels::analyze_kernel(k);
    benchmark::DoNotOptimize(bound);
  }
}

void BM_AnalyzeKernelBackend(benchmark::State& state, const std::string& name,
                             soap::bounds::opt::BackendKind backend) {
  const auto& k = soap::kernels::kernel_by_name(name);
  for (auto _ : state) {
    auto bound = soap::kernels::analyze_kernel(k, 1, {}, backend);
    benchmark::DoNotOptimize(bound);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name :
       {"gemm", "cholesky", "jacobi2d", "heat3d", "fdtd2d", "atax",
        "gemver", "conv", "bert_encoder", "lulesh"}) {
    benchmark::RegisterBenchmark(("BM_Analyze/" + std::string(name)).c_str(),
                                 BM_AnalyzeKernel, std::string(name));
  }
  // Backend sweep over a small latency-diverse slice: a compute kernel, a
  // stencil, and the long-tail neural row.  (The bench-smoke filter `gemm`
  // matches the gemm sweep, so all three backends run in CI.)
  for (const char* name : {"gemm", "jacobi2d", "bert_encoder"}) {
    for (soap::bounds::opt::BackendKind backend :
         {soap::bounds::opt::BackendKind::kNelderMead,
          soap::bounds::opt::BackendKind::kMultistart,
          soap::bounds::opt::BackendKind::kSubplex}) {
      benchmark::RegisterBenchmark(
          ("BM_AnalyzeBackend/" + std::string(name) + "/" +
           soap::bounds::opt::backend_name(backend))
              .c_str(),
          BM_AnalyzeKernelBackend, std::string(name), backend);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
