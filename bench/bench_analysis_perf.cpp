// Experiment V-perf: end-to-end analysis latency per corpus application
// (google-benchmark).
#include <benchmark/benchmark.h>

#include "kernels/table2.hpp"

namespace {

void BM_AnalyzeKernel(benchmark::State& state, const std::string& name) {
  const auto& k = soap::kernels::kernel_by_name(name);
  for (auto _ : state) {
    auto bound = soap::kernels::analyze_kernel(k);
    benchmark::DoNotOptimize(bound);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name :
       {"gemm", "cholesky", "jacobi2d", "heat3d", "fdtd2d", "atax",
        "gemver", "conv", "bert_encoder", "lulesh"}) {
    benchmark::RegisterBenchmark(("BM_Analyze/" + std::string(name)).c_str(),
                                 BM_AnalyzeKernel, std::string(name));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
