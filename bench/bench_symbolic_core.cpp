// Microbench for the symbolic engine: every bound the optimizer derives is
// built, canonicalized, compared, and reduced through these operations, so
// this is the substrate of the analysis hot path (see bench_analysis_perf
// for the end-to-end picture).
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "symbolic/expr.hpp"
#include "symbolic/leading.hpp"

namespace {

using soap::Rational;
using soap::sym::Expr;

Expr polynomial_bound(int terms) {
  Expr s = Expr::symbol("S");
  Expr e(0);
  for (int i = 1; i <= terms; ++i) {
    Expr n = Expr::symbol("N" + std::to_string(i % 4));
    e = e + Expr(i) * n * n * n / soap::sym::sqrt(s) + n * n + Expr(2) * n;
  }
  return e;
}

void BM_CanonicalizeSum(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Expr e = polynomial_bound(terms);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_CanonicalizeSum)->Arg(4)->Arg(16)->Arg(64);

void BM_NumericallyEqual(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr a = polynomial_bound(terms);
  Expr b = polynomial_bound(terms) + Expr(1);
  for (auto _ : state) {
    bool eq = soap::sym::numerically_equal(a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_NumericallyEqual)->Arg(4)->Arg(64);

void BM_LeadingTerm(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr e = polynomial_bound(terms);
  for (auto _ : state) {
    Expr lead = soap::sym::leading_term_except(e, {"S"});
    benchmark::DoNotOptimize(lead);
  }
}
BENCHMARK(BM_LeadingTerm)->Arg(4)->Arg(64);

void BM_SubstituteAndEval(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr e = polynomial_bound(terms);
  std::map<std::string, double> env{{"S", 1 << 20}};
  for (const std::string& s : e.symbols()) env.emplace(s, 1e6);
  for (auto _ : state) {
    double v = e.eval(env);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SubstituteAndEval)->Arg(4)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
