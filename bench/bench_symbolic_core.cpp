// Microbench for the symbolic engine: every bound the optimizer derives is
// built, canonicalized, compared, and reduced through these operations, so
// this is the substrate of the analysis hot path (see bench_analysis_perf
// for the end-to-end picture).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/interner.hpp"
#include "symbolic/expr.hpp"
#include "symbolic/leading.hpp"

namespace {

using soap::Rational;
using soap::sym::Expr;

Expr polynomial_bound(int terms) {
  Expr s = Expr::symbol("S");
  Expr e(0);
  for (int i = 1; i <= terms; ++i) {
    Expr n = Expr::symbol("N" + std::to_string(i % 4));
    e = e + Expr(i) * n * n * n / soap::sym::sqrt(s) + n * n + Expr(2) * n;
  }
  return e;
}

void BM_CanonicalizeSum(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Expr e = polynomial_bound(terms);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_CanonicalizeSum)->Arg(4)->Arg(16)->Arg(64);

void BM_NumericallyEqual(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr a = polynomial_bound(terms);
  Expr b = polynomial_bound(terms) + Expr(1);
  for (auto _ : state) {
    bool eq = soap::sym::numerically_equal(a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_NumericallyEqual)->Arg(4)->Arg(64);

void BM_LeadingTerm(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr e = polynomial_bound(terms);
  for (auto _ : state) {
    Expr lead = soap::sym::leading_term_except(e, {"S"});
    benchmark::DoNotOptimize(lead);
  }
}
BENCHMARK(BM_LeadingTerm)->Arg(4)->Arg(64);

void BM_SubstituteAndEval(benchmark::State& state) {
  int terms = static_cast<int>(state.range(0));
  Expr e = polynomial_bound(terms);
  std::map<std::string, double> env{{"S", 1 << 20}};
  for (const std::string& s : e.symbols()) env.emplace(s, 1e6);
  for (auto _ : state) {
    double v = e.eval(env);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SubstituteAndEval)->Arg(4)->Arg(64);

// --- Contention microbenches -----------------------------------------------
//
// The intern table used to be one global mutex; these benches put the
// remaining contention (now per-shard) into a number instead of leaving it
// inferred from end-to-end runs.  Two mixes, selected by the `disjoint` arg:
//   disjoint:0 — every thread canonicalizes the *same* expressions, so all
//                threads hammer the same shards (read-mostly probe hits; the
//                worst case for reader-side lock traffic).
//   disjoint:1 — per-thread symbols, so threads touch mostly distinct nodes
//                and shards (the scaling case parallel analysis relies on).
// Per-thread throughput that collapses with thread count on a multicore
// host means shard contention is back; on the 1-thread CI container the
// /threads:N variants only measure oversubscription overhead.

void BM_ParallelMakeNode(benchmark::State& state) {
  const bool disjoint = state.range(0) != 0;
  const int tag = disjoint ? state.thread_index() : 0;
  Expr s = Expr::symbol("S");
  std::vector<Expr> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(
        Expr::symbol("pmn_" + std::to_string(tag) + "_" + std::to_string(i)));
  }
  for (auto _ : state) {
    soap::sym::ExprVec terms;
    for (int i = 0; i < 8; ++i) {
      terms.push_back(Expr(i + 1) * leaves[static_cast<std::size_t>(i)] *
                      leaves[static_cast<std::size_t>((i + 1) % 8)] /
                      soap::sym::sqrt(s));
    }
    Expr e = soap::sym::make_add(std::move(terms));
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ParallelMakeNode)
    ->ArgName("disjoint")
    ->Arg(0)
    ->Arg(1)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_ParallelIntern(benchmark::State& state) {
  const bool disjoint = state.range(0) != 0;
  const int tag = disjoint ? state.thread_index() : 0;
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) {
    names.push_back("pi_" + std::to_string(tag) + "_" + std::to_string(i));
  }
  for (auto _ : state) {
    for (const std::string& name : names) {
      soap::SymId id = soap::intern_symbol(name);
      benchmark::DoNotOptimize(id);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(names.size()));
}
BENCHMARK(BM_ParallelIntern)
    ->ArgName("disjoint")
    ->Arg(0)
    ->Arg(1)
    ->ThreadRange(1, 8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
