// Experiment V-peb: machine-checks the framework of Section 2 on explicit
// CDAGs — analytic lower bound <= exhaustive optimal pebbling <= scheduled
// (Belady) pebbling, for several kernels at toy sizes.
#include <cstdio>

#include "bench_flags.hpp"
#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"
#include "pebbles/heuristic.hpp"
#include "pebbles/instantiate.hpp"
#include "pebbles/optimal.hpp"

using namespace soap;

namespace {

void validate(const char* name, const char* src,
              const std::map<std::string, long long>& params,
              const std::vector<std::size_t>& cache_sizes) {
  Program p = frontend::parse_program(src);
  auto bound = bounds::single_statement_bound(p.statements[0]);
  pebbles::Cdag cdag = pebbles::instantiate(p, params);
  std::printf("%s (|V| = %zu):\n", name, cdag.size());
  for (std::size_t S : cache_sizes) {
    std::map<std::string, double> env = {{"S", static_cast<double>(S)}};
    for (const auto& [k, v] : params) env[k] = static_cast<double>(v);
    double analytic = bound ? bound->Q.eval(env) : 0.0;
    auto opt = pebbles::optimal_pebbling(cdag, S);
    pebbles::ScheduleResult heur;
    bool heur_ok = true;
    try {
      heur = pebbles::natural_order_pebbling(cdag, S,
                                             pebbles::Replacement::kBelady);
    } catch (const std::exception&) {
      heur_ok = false;
    }
    std::printf("  S=%2zu  analytic >= %7.2f   optimal = %s   belady = %s\n",
                S, analytic,
                opt ? std::to_string(opt->cost).c_str() : "(search capped)",
                heur_ok ? std::to_string(heur.io_cost).c_str() : "-");
    if (opt && analytic > static_cast<double>(opt->cost) + 1e-9) {
      std::printf("  !! SOUNDNESS VIOLATION\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Red-blue pebble game validation (Section 2) ===\n");
  validate("gemm N=2", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)",
           {{"N", 2}}, {4, 5, 6});
  // --smoke (CTest bench-smoke): the gemm case alone exercises the full
  // analytic/optimal/scheduled pipeline; the remaining CDAGs are too slow
  // for sanitizer runs.
  if (soap::bench::smoke_requested(argc, argv)) return 0;
  validate("jacobi1d N=4 T=2", R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)",
           {{"N", 4}, {"T", 2}}, {4, 5});
  validate("outer product N=3", R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)",
           {{"N", 3}}, {3, 4, 6});
  return 0;
}
