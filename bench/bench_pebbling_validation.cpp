// Experiment V-peb: machine-checks the framework of Section 2 on explicit
// CDAGs — analytic lower bound <= exhaustive optimal pebbling <= scheduled
// (Belady) pebbling, with the scheduled pebbling additionally replayed
// through the game rules (run_pebbling) as an independent validity check.
//
// The whole validation path is sharded: CDAG instantiation, the optimal
// oracle, and schedule+replay all fan (kernel x cache-size) cases across
// the shared pool via pebbles/validate.hpp (--threads N; default 1 =
// serial).  Results land in per-case slots and the report is printed in
// case order, so the output is byte-identical for every thread count.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_flags.hpp"
#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"
#include "pebbles/validate.hpp"

using namespace soap;

namespace {

struct ValidationSpec {
  const char* name;
  const char* src;
  std::map<std::string, long long> params;
  std::vector<std::size_t> cache_sizes;
};

int run(const std::vector<ValidationSpec>& specs, std::size_t threads) {
  pebbles::ShardOptions shard;
  shard.threads = threads;

  // Stage 1: parse + analytic bounds (cheap, serial), then instantiate
  // every kernel's CDAG as one sharded batch.
  std::vector<Program> programs;
  std::vector<std::optional<bounds::IoLowerBound>> analytic;
  std::vector<pebbles::InstantiationJob> jobs;
  programs.reserve(specs.size());
  for (const ValidationSpec& spec : specs) {
    programs.push_back(frontend::parse_program(spec.src));
    analytic.push_back(bounds::single_statement_bound(
        programs.back().statements[0]));
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    jobs.push_back({&programs[i], specs[i].params});
  }
  std::vector<pebbles::Cdag> cdags = pebbles::instantiate_batch(jobs, {},
                                                                shard);

  // Stage 2: flatten to (kernel, S) cases and shard the two expensive
  // machine checks — the exhaustive optimal oracle and the Belady schedule
  // with its game replay.
  std::vector<pebbles::PebbleCase> cases;
  std::vector<std::size_t> case_spec;  // case index -> spec index
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t S : specs[i].cache_sizes) {
      cases.push_back({&cdags[i], S});
      case_spec.push_back(i);
    }
  }
  std::vector<std::optional<pebbles::OptimalResult>> optimal =
      pebbles::optimal_pebblings(cases, {}, shard);
  std::vector<pebbles::ScheduleValidation> belady =
      pebbles::validate_schedules(cases, pebbles::Replacement::kBelady, shard);

  // Stage 3: report in case order.
  int violations = 0;
  std::size_t last_spec = static_cast<std::size_t>(-1);
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const std::size_t i = case_spec[c];
    if (i != last_spec) {
      std::printf("%s (|V| = %zu):\n", specs[i].name, cdags[i].size());
      last_spec = i;
    }
    std::map<std::string, double> env = {
        {"S", static_cast<double>(cases[c].S)}};
    for (const auto& [k, v] : specs[i].params) {
      env[k] = static_cast<double>(v);
    }
    double analytic_value = analytic[i] ? analytic[i]->Q.eval(env) : 0.0;
    const pebbles::ScheduleValidation& v = belady[c];
    std::printf(
        "  S=%2zu  analytic >= %7.2f   optimal = %s   belady = %s   "
        "replay: %s\n",
        cases[c].S, analytic_value,
        optimal[c] ? std::to_string(optimal[c]->cost).c_str()
                   : "(search capped)",
        v.scheduled ? std::to_string(v.schedule.io_cost).c_str() : "-",
        v.scheduled ? (v.consistent() ? "valid" : "INVALID") : "-");
    if (optimal[c] &&
        analytic_value > static_cast<double>(optimal[c]->cost) + 1e-9) {
      std::printf("  !! SOUNDNESS VIOLATION\n");
      ++violations;
    }
    if (v.scheduled && !v.consistent()) {
      std::printf("  !! REPLAY MISMATCH: %s\n", v.replay.error.c_str());
      ++violations;
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Red-blue pebble game validation (Section 2) ===\n");
  std::size_t threads = soap::bench::threads_requested(argc, argv);
  std::vector<ValidationSpec> specs = {
      {"gemm N=2", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)",
       {{"N", 2}}, {4, 5, 6}},
  };
  // --smoke (CTest bench-smoke): the gemm case alone exercises the full
  // analytic/optimal/scheduled/replay pipeline; the remaining CDAGs are too
  // slow for sanitizer runs.
  if (!soap::bench::smoke_requested(argc, argv)) {
    specs.push_back({"jacobi1d N=4 T=2", R"(
for t in range(T):
  for i in range(1, N - 1):
    A[i,t+1] = A[i-1,t] + A[i,t] + A[i+1,t]
)",
                     {{"N", 4}, {"T", 2}}, {4, 5}});
    specs.push_back({"outer product N=3", R"(
for i in range(N):
  for j in range(N):
    C[i,j] = A[i] * B[j]
)",
                     {{"N", 3}}, {3, 4, 6}});
  }
  return run(specs, threads);
}
